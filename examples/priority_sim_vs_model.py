#!/usr/bin/env python3
"""Validating the analytic model by simulation (the paper's methodology).

Runs the canonical priority cluster in the discrete-event simulator
(independent replications, warmup discarded) and prints every analytic
prediction next to its simulated counterpart — per-class delays, tier
utilizations, average power, per-class dynamic energy — then repeats
the exercise under *bursty* (MMPP) arrivals to show where the Poisson
assumption starts to bite.

Run:  python examples/priority_sim_vs_model.py
"""

from repro.analysis import ValidationReport
from repro.core import ClusterPerformanceModel
from repro.experiments.common import canonical_cluster, canonical_workload
from repro.simulation import simulate_replications
from repro.workload import MMPP2


def main() -> None:
    cluster = canonical_cluster()
    workload = canonical_workload(1.2)
    model = ClusterPerformanceModel(cluster, workload)
    report = model.report()

    sim = simulate_replications(
        cluster, workload, horizon=3000.0, n_replications=5, seed=2011
    )

    val = ValidationReport("Poisson arrivals: analytic vs simulated")
    for k, name in enumerate(report.class_names):
        val.add(f"T[{name}] (s)", report.delays[k], sim.delays[k], sim.delays_ci[k])
    val.add("mean delay (s)", report.mean_delay, sim.mean_delay, sim.mean_delay_ci)
    val.add("avg power (W)", report.average_power, sim.average_power, sim.average_power_ci)
    for i, tier in enumerate(cluster.tiers):
        val.add(f"rho[{tier.name}]", report.utilizations[i], sim.utilizations[i])
    print(val.to_table())
    print(f"worst relative error: {val.max_rel_error:.2%}\n")

    # Stress the Poisson assumption: same mean rates, bursty arrivals.
    bursty = [
        MMPP2(rate0=0.4 * c.arrival_rate, rate1=2.5 * c.arrival_rate, r01=0.2, r10=0.5)
        for c in workload.classes
    ]
    sim_bursty = simulate_replications(
        cluster,
        workload,
        horizon=3000.0,
        n_replications=5,
        seed=2012,
        arrival_processes=bursty,
    )
    val2 = ValidationReport("MMPP (bursty) arrivals vs the Poisson-based model")
    for k, name in enumerate(report.class_names):
        val2.add(f"T[{name}] (s)", report.delays[k], sim_bursty.delays[k], sim_bursty.delays_ci[k])
    print(val2.to_table())
    print(
        f"worst relative error under burstiness: {val2.max_rel_error:.2%} "
        "(the analytic model underestimates delays when arrivals cluster — "
        "burstiness is extra variability the Poisson model cannot see)"
    )


if __name__ == "__main__":
    main()
