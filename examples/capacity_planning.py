#!/usr/bin/env python3
"""Capacity planning for a growing customer base (P3 in anger).

Scenario: a provider hosts an enterprise application for gold/silver/
bronze customers under a priority SLA. Traffic is forecast to double
over four quarters; the provider wants, for each quarter, the cheapest
server allocation that keeps every class inside its guarantee — and
the energy bill that allocation implies once tier speeds are tuned
(P2b) instead of pinned at maximum.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.analysis import ascii_table
from repro.core import minimize_cost
from repro.experiments.common import canonical_cluster, canonical_sla, canonical_workload


def main() -> None:
    cluster = canonical_cluster()
    sla = canonical_sla()
    quarters = {"Q1": 1.0, "Q2": 1.3, "Q3": 1.7, "Q4": 2.0}

    rows = []
    for quarter, growth in quarters.items():
        workload = canonical_workload(growth)
        pinned = minimize_cost(cluster, workload, sla, optimize_speeds=False)
        tuned = minimize_cost(cluster, workload, sla, optimize_speeds=True)
        saving = 100.0 * (1.0 - tuned.average_power / pinned.average_power)
        rows.append(
            [
                quarter,
                f"{workload.total_rate:g} req/s",
                tuned.server_counts.tolist(),
                tuned.total_cost,
                round(pinned.average_power, 1),
                round(tuned.average_power, 1),
                f"{saving:.1f}%",
                np.round(tuned.delays, 3).tolist(),
            ]
        )

    print(
        ascii_table(
            [
                "quarter",
                "traffic",
                "servers/tier",
                "cost",
                "power@max (W)",
                "power tuned (W)",
                "energy saved",
                "delays (s)",
            ],
            rows,
            title="Capacity plan: cheapest SLA-feasible allocation per quarter",
        )
    )
    print(
        "\nSLA: gold <= 0.30 s, silver <= 0.60 s, bronze <= 1.20 s "
        "(mean end-to-end delay)"
    )


if __name__ == "__main__":
    main()
