#!/usr/bin/env python3
"""Quickstart: model a priority cluster, read its delay/energy report,
and run each of the paper's three optimizations once.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    SLA,
    ClassSLA,
    ClusterModel,
    ClusterPerformanceModel,
    CustomerClass,
    PowerModel,
    ServerSpec,
    Tier,
    Workload,
    minimize_cost,
    minimize_delay,
    minimize_energy,
)
from repro.distributions import fit_two_moments


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Describe the cluster: three tiers of speed-scalable servers.
    #    Demands are (mean work, SCV) pairs per class, highest priority
    #    first; a demand of x work units takes x/s seconds at speed s.
    # ------------------------------------------------------------------
    node = ServerSpec(
        power=PowerModel(idle=50.0, kappa=120.0, alpha=3.0),  # watts
        min_speed=0.4,
        max_speed=1.0,
        cost=3.0,  # $ per server per charging period
    )

    def demands(means, scv):
        return tuple(fit_two_moments(m, scv) for m in means)

    cluster = ClusterModel(
        [
            Tier("web", demands((0.015, 0.020, 0.025), 1.0), node, servers=2),
            Tier("app", demands((0.060, 0.080, 0.100), 2.0), node, servers=4),
            Tier("db", demands((0.040, 0.050, 0.060), 1.5), node, servers=3),
        ]
    )

    # Three priority classes: gold pays most, is served first everywhere.
    workload = Workload(
        [
            CustomerClass("gold", arrival_rate=4.0),
            CustomerClass("silver", arrival_rate=8.0),
            CustomerClass("bronze", arrival_rate=12.0),
        ]
    )

    # ------------------------------------------------------------------
    # 2. Abstract claim 1: average end-to-end delay and energy per class.
    # ------------------------------------------------------------------
    model = ClusterPerformanceModel(cluster, workload)
    report = model.report()
    print("per-class end-to-end delays (s):")
    for name, delay, energy in zip(report.class_names, report.delays, report.energy_per_class):
        print(f"  {name:<7} T = {delay:6.4f} s   E = {energy:6.2f} J/request")
    print(f"mean delay: {report.mean_delay:.4f} s")
    print(f"average power: {report.average_power:.1f} W")
    print(f"tier utilizations: {np.round(report.utilizations, 3).tolist()}")

    # ------------------------------------------------------------------
    # 3. P1 — fastest cluster within a 10%-reduced power budget.
    # ------------------------------------------------------------------
    budget = 0.9 * report.average_power
    p1 = minimize_delay(cluster, workload, power_budget=budget)
    print(f"\nP1: min delay s.t. power <= {budget:.1f} W")
    print(f"  optimal speeds: {np.round(p1.x, 3).tolist()}")
    print(f"  mean delay {p1.fun:.4f} s at {p1.meta['power']:.1f} W")

    # ------------------------------------------------------------------
    # 4. P2b — cheapest energy meeting per-class delay bounds.
    # ------------------------------------------------------------------
    bounds = report.delays * 1.25
    p2 = minimize_energy(cluster, workload, class_delay_bounds=bounds)
    print(f"\nP2b: min power s.t. per-class delays <= {np.round(bounds, 3).tolist()}")
    print(f"  optimal speeds: {np.round(p2.x, 3).tolist()}")
    print(
        f"  power {p2.meta['power']:.1f} W "
        f"(was {report.average_power:.1f} W at full speed)"
    )

    # ------------------------------------------------------------------
    # 5. P3 — cheapest server allocation honoring a priority SLA.
    # ------------------------------------------------------------------
    sla = SLA(
        [
            ClassSLA("gold", max_mean_delay=0.30, fee=1.00),
            ClassSLA("silver", max_mean_delay=0.60, fee=0.40),
            ClassSLA("bronze", max_mean_delay=1.20, fee=0.10),
        ]
    )
    p3 = minimize_cost(cluster, workload, sla)
    print("\nP3: min cost s.t. priority SLA")
    print(f"  servers per tier: {p3.server_counts.tolist()}  (cost {p3.total_cost:g})")
    print(f"  energy-optimal speeds: {np.round(p3.speeds, 3).tolist()}")
    print(f"  achieved delays: {np.round(p3.delays, 3).tolist()}")
    print(f"  average power: {p3.average_power:.1f} W")


if __name__ == "__main__":
    main()
