#!/usr/bin/env python3
"""Power-capped operation: walking the delay/energy frontier (P1 + P2a).

Scenario: the datacenter imposes a power cap that tightens during peak
grid hours. For each cap the provider solves P1 to find the best
achievable mean delay, and compares it against naive uniform speed
scaling under the same cap. The dual view (P2a) answers the planning
question "what does one more millisecond of promised latency cost in
watts?".

Run:  python examples/energy_budget.py
"""

import numpy as np

from repro.analysis import ascii_table
from repro.baselines import uniform_speed_for_budget
from repro.core import mean_end_to_end_delay, minimize_delay, minimize_energy
from repro.core.opt_common import stability_speed_bounds
from repro.experiments.common import canonical_cluster, canonical_workload


def main() -> None:
    cluster = canonical_cluster()
    workload = canonical_workload(1.2)  # a busy afternoon
    lam = workload.arrival_rates

    box = stability_speed_bounds(cluster, workload)
    p_min = cluster.with_speeds([b[0] for b in box]).average_power(lam)
    p_max = cluster.with_speeds([b[1] for b in box]).average_power(lam)

    print(f"stable power range at this load: {p_min:.0f} .. {p_max:.0f} W\n")

    rows = []
    for frac in (0.05, 0.15, 0.40, 0.80):
        cap = p_min + frac * (p_max - p_min)
        p1 = minimize_delay(cluster, workload, power_budget=cap)
        uni = uniform_speed_for_budget(cluster, workload, cap)
        uni_delay = mean_end_to_end_delay(cluster.with_speeds(uni), workload)
        gain = 100.0 * (1.0 - p1.fun / uni_delay)
        rows.append(
            [
                f"{cap:.0f}",
                np.round(p1.x, 3).tolist(),
                round(p1.fun * 1e3, 2),
                round(uni_delay * 1e3, 2),
                f"{gain:.1f}%",
            ]
        )
    print(
        ascii_table(
            ["cap (W)", "optimal speeds", "P1 delay (ms)", "uniform delay (ms)", "gain"],
            rows,
            title="P1: best mean delay under a power cap",
        )
    )

    # The dual question: watts per promised millisecond.
    print()
    rows = []
    base_delay = mean_end_to_end_delay(cluster, workload)
    for factor in (1.1, 1.3, 1.6, 2.0):
        bound = base_delay * factor
        p2 = minimize_energy(cluster, workload, max_mean_delay=bound)
        rows.append(
            [
                round(bound * 1e3, 2),
                np.round(p2.x, 3).tolist(),
                round(p2.meta["power"], 1),
            ]
        )
    print(
        ascii_table(
            ["promised mean delay (ms)", "optimal speeds", "min power (W)"],
            rows,
            title="P2a: cheapest power meeting a latency promise",
        )
    )


if __name__ == "__main__":
    main()
