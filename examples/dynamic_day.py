#!/usr/bin/env python3
"""Running the power manager through a day of traced traffic.

Scenario: traffic follows a diurnal curve (quiet nights, an afternoon
peak at 160% of nominal). The operator records a day-long arrival
trace, forecasts the next day's hourly rates from it, and lets the
model-predictive controller re-solve P2a every hour. The script
reports the hourly speed schedule and the day's energy bill against
static alternatives — the operational payoff of the paper's
optimization machinery.

Run:  python examples/dynamic_day.py
"""

import numpy as np

from repro.analysis import ascii_table
from repro.core import evaluate_schedule, plan_speed_schedule, static_plan
from repro.experiments.common import canonical_cluster, canonical_workload
from repro.workload import NonHomogeneousPoisson, generate_trace

DAY = 24.0
DELAY_BOUND = 0.35  # seconds, aggregate mean


def diurnal(rate_nominal: float):
    """Rate function: trough 25% at 4h, peak 160% at 16h."""

    def rate_fn(t: float) -> float:
        phase = 2.0 * np.pi * ((t % DAY) - 16.0) / DAY
        factor = (1.6 + 0.25) / 2.0 + (1.6 - 0.25) / 2.0 * np.cos(phase)
        return rate_nominal * factor

    return rate_fn


def main() -> None:
    cluster = canonical_cluster()
    workload = canonical_workload()
    names = list(workload.names)

    # ------------------------------------------------------------------
    # 1. Record one day of traffic per class (NHPP with the diurnal
    #    shape), then extract hourly rates — the controller's forecast.
    # ------------------------------------------------------------------
    processes = [
        NonHomogeneousPoisson(diurnal(rate), rate_max=rate * 1.7)
        for rate in workload.arrival_rates
    ]
    trace = generate_trace(processes, horizon=DAY, seed=42, class_names=names)
    # Two-hour forecast windows: hourly counts are noisy enough that a
    # single lucky burst can exceed the cluster's stable capacity; a
    # controller smooths its forecasts for exactly this reason.
    starts, hourly_rates = trace.windowed_rates(2.0)
    print(
        "traced day: "
        + ", ".join(
            f"{n}={r:.1f}/h avg" for n, r in zip(names, trace.rates())
        )
    )

    # ------------------------------------------------------------------
    # 2. Plan the day: hourly P2a re-solves.
    # ------------------------------------------------------------------
    plans = plan_speed_schedule(
        cluster, names, starts, hourly_rates, DAY, DELAY_BOUND, n_starts=2
    )
    rows = [
        [
            f"{p.start:02.0f}:00",
            round(float(p.rates.sum()), 1),
            np.round(p.speeds, 2).tolist(),
            round(p.power, 0),
            round(p.mean_delay, 3),
            "ok" if p.meets_bound else "VIOLATED",
        ]
        for p in plans
    ]
    print(
        ascii_table(
            ["epoch", "total rate", "speeds", "power (W)", "mean delay (s)", "SLA"],
            rows,
            title=f"2-hour speed schedule (bound {DELAY_BOUND}s)",
        )
    )
    if not all(p.meets_bound for p in plans):
        print(
            "note: VIOLATED epochs mark forecast load beyond the cluster's "
            "capacity — the controller pins max speeds and flags them rather "
            "than aborting; provisioning (P3) is the fix, not speed."
        )

    # ------------------------------------------------------------------
    # 3. Score against the static alternatives.
    # ------------------------------------------------------------------
    max_speeds = np.ones(cluster.num_tiers)
    static_max = static_plan(
        cluster, names, starts, hourly_rates, DAY, DELAY_BOUND, max_speeds
    )
    dyn_report = evaluate_schedule(plans)
    stat_report = evaluate_schedule(static_max)
    saving = 1.0 - dyn_report.total_energy / stat_report.total_energy
    print(
        f"\nday's energy: dynamic {dyn_report.total_energy / 1e3:.2f} kWh "
        f"(compliance {dyn_report.compliance:.0%}) vs static-max "
        f"{stat_report.total_energy / 1e3:.2f} kWh -> {saving:.1%} saved"
    )


if __name__ == "__main__":
    main()
