#!/usr/bin/env python3
"""Tail guarantees: percentile SLAs and overload protection.

Scenario: the provider's gold contract moves from "mean delay ≤ 300 ms"
to "95% of requests within 600 ms" — a *tail* guarantee. This script

1. provisions against the percentile SLA (P3 with the hypoexponential
   tail oracle) and shows the premium over mean-only provisioning;
2. cross-checks the analytic percentiles against the exact M/PH/1
   machinery on an FCFS variant;
3. shows what happens when traffic doubles anyway — and how an
   Erlang-B admission gate converts the unbounded-delay failure mode
   into a bounded-loss one.

Run:  python examples/tail_guarantees.py
"""

import numpy as np

from repro import SLA, ClassSLA, minimize_cost
from repro.analysis import ascii_table
from repro.core import all_class_percentiles
from repro.experiments.common import canonical_cluster, canonical_sla, canonical_workload
from repro.queueing import MGcc, MMc, erlang_b, servers_for_blocking
from repro.distributions import Exponential


def main() -> None:
    cluster = canonical_cluster()
    workload = canonical_workload(1.2)
    base = canonical_sla(0.45)  # tight mean bounds so the tail binds

    # ------------------------------------------------------------------
    # 1. Mean-only vs percentile provisioning.
    # ------------------------------------------------------------------
    mean_only = minimize_cost(cluster, workload, base, optimize_speeds=False)
    tail_sla = SLA(
        [
            ClassSLA(
                g.name,
                g.max_mean_delay,
                fee=g.fee,
                percentile=0.95,
                max_percentile_delay=g.max_mean_delay * 2.0,
            )
            for g in base.guarantees
        ]
    )
    tail = minimize_cost(cluster, workload, tail_sla, optimize_speeds=False)
    rows = [
        ["mean-only", mean_only.server_counts.tolist(), mean_only.total_cost],
        ["+ p95 <= 2x mean bound", tail.server_counts.tolist(), tail.total_cost],
    ]
    print(ascii_table(["SLA", "servers/tier", "cost"], rows, title="Provisioning for the tail"))
    p95 = all_class_percentiles(tail.cluster, workload, 0.95)
    print(f"achieved p95 delays: {np.round(p95, 3).tolist()}")
    premium = tail.total_cost / mean_only.total_cost - 1.0
    print(f"tail-guarantee premium: {premium:.0%} more hardware\n")

    # ------------------------------------------------------------------
    # 2. Overload: what the gold tier looks like when traffic doubles.
    # ------------------------------------------------------------------
    mu, servers = 1.0, 4
    print("one tier under overload (c=4, mu=1):")
    rows = []
    for a in (3.0, 5.0, 8.0):
        try:
            open_delay = f"{MMc(a, mu, servers).mean_sojourn:.2f} s"
        except Exception:
            open_delay = "unbounded"
        gate = MGcc(a, Exponential(mu), servers)
        rows.append(
            [
                a,
                open_delay,
                f"{gate.blocking_probability:.1%}",
                f"{gate.mean_sojourn:.2f} s",
            ]
        )
    print(
        ascii_table(
            ["offered load", "open-queue delay", "gate loss", "gate delay"],
            rows,
            title="Open queue vs admission gate",
        )
    )

    # ------------------------------------------------------------------
    # 3. Sizing the gate for a loss target.
    # ------------------------------------------------------------------
    for target in (0.05, 0.01, 0.001):
        c = servers_for_blocking(lam=8.0, mean_service=1.0, target_blocking=target)
        print(
            f"to keep loss <= {target:.1%} at 8 erlangs offered: "
            f"{c} slots (achieves {erlang_b(c, 8.0):.2%})"
        )


if __name__ == "__main__":
    main()
