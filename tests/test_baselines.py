"""Baseline policy tests."""

import numpy as np
import pytest

from repro.baselines import (
    aggregate_fcfs_delays,
    proportional_speed_for_budget,
    uniform_speed_for_budget,
    uniform_speed_for_delay,
)
from repro.core import end_to_end_delays, mean_end_to_end_delay
from repro.exceptions import InfeasibleProblemError, ModelValidationError
from repro.workload import Workload, CustomerClass


class TestUniformBudget:
    def test_respects_budget(self, three_tier_cluster, three_class_workload):
        lam = three_class_workload.arrival_rates
        full = three_tier_cluster.average_power(lam)
        budget = 0.9 * full
        s = uniform_speed_for_budget(three_tier_cluster, three_class_workload, budget)
        assert three_tier_cluster.with_speeds(s).average_power(lam) <= budget + 1e-6

    def test_spends_available_budget(self, three_tier_cluster, three_class_workload):
        lam = three_class_workload.arrival_rates
        full = three_tier_cluster.average_power(lam)
        budget = 0.9 * full
        s = uniform_speed_for_budget(three_tier_cluster, three_class_workload, budget)
        used = three_tier_cluster.with_speeds(s).average_power(lam)
        assert used == pytest.approx(budget, rel=1e-3)

    def test_huge_budget_gives_max_speeds(self, three_tier_cluster, three_class_workload):
        s = uniform_speed_for_budget(three_tier_cluster, three_class_workload, 1e9)
        np.testing.assert_allclose(s, 1.0)

    def test_tiny_budget_raises(self, three_tier_cluster, three_class_workload):
        with pytest.raises(InfeasibleProblemError):
            uniform_speed_for_budget(three_tier_cluster, three_class_workload, 1.0)


class TestUniformDelay:
    def test_meets_bound_minimally(self, three_tier_cluster, three_class_workload):
        base = mean_end_to_end_delay(three_tier_cluster, three_class_workload)
        bound = 1.4 * base
        s = uniform_speed_for_delay(three_tier_cluster, three_class_workload, bound)
        achieved = mean_end_to_end_delay(
            three_tier_cluster.with_speeds(s), three_class_workload
        )
        assert achieved <= bound + 1e-6
        assert achieved == pytest.approx(bound, rel=1e-3)

    def test_unreachable_bound_raises(self, three_tier_cluster, three_class_workload):
        base = mean_end_to_end_delay(three_tier_cluster, three_class_workload)
        with pytest.raises(InfeasibleProblemError):
            uniform_speed_for_delay(three_tier_cluster, three_class_workload, base * 0.3)


class TestProportionalBudget:
    def test_respects_budget(self, three_tier_cluster, three_class_workload):
        lam = three_class_workload.arrival_rates
        budget = 0.85 * three_tier_cluster.average_power(lam)
        s = proportional_speed_for_budget(three_tier_cluster, three_class_workload, budget)
        assert three_tier_cluster.with_speeds(s).average_power(lam) <= budget + 1e-6

    def test_equalizes_utilization_where_unclamped(self, three_tier_cluster, three_class_workload):
        lam = three_class_workload.arrival_rates
        budget = 0.8 * three_tier_cluster.average_power(lam)
        s = proportional_speed_for_budget(three_tier_cluster, three_class_workload, budget)
        rho = three_tier_cluster.with_speeds(s).utilizations(lam)
        unclamped = (s > 0.4 + 1e-6) & (s < 1.0 - 1e-6)
        if unclamped.sum() >= 2:
            vals = rho[unclamped]
            assert np.ptp(vals) < 1e-3

    def test_infeasible_raises(self, three_tier_cluster, three_class_workload):
        with pytest.raises(InfeasibleProblemError):
            proportional_speed_for_budget(three_tier_cluster, three_class_workload, 1.0)


class TestAggregateFCFS:
    def test_same_wait_all_classes(self, three_tier_cluster, three_class_workload):
        fcfs = aggregate_fcfs_delays(three_tier_cluster, three_class_workload)
        prio = end_to_end_delays(three_tier_cluster, three_class_workload)
        # FCFS sojourns differ only by own service times; the spread is
        # much smaller than under priority.
        assert np.ptp(fcfs) < np.ptp(prio)

    def test_distorts_per_class_delays(self, three_tier_cluster, three_class_workload):
        heavy = three_class_workload.scaled(1.5)
        fcfs = aggregate_fcfs_delays(three_tier_cluster, heavy)
        prio = end_to_end_delays(three_tier_cluster, heavy)
        # Aggregate model overestimates the top class and
        # underestimates the bottom class.
        assert fcfs[0] > prio[0]
        assert fcfs[-1] < prio[-1]

    def test_class_count_mismatch(self, three_tier_cluster):
        wl = Workload([CustomerClass("x", 1.0)])
        with pytest.raises(ModelValidationError):
            aggregate_fcfs_delays(three_tier_cluster, wl)
