"""Bench history recording and the rolling-median regression detector."""

import pytest

from repro.analysis.perf_bench import (
    CALIBRATION,
    append_history,
    check_history,
    history_entry,
    load_history,
)


def make_doc(sim_s: float, cal_s: float = 0.1, extra: dict | None = None) -> dict:
    kernels = {
        CALIBRATION: {"min_s": cal_s},
        "sim_replication_h500": {"min_s": sim_s},
        "analytic_eval_x100": {"min_s": 0.02},
    }
    if extra:
        kernels.update(extra)
    return {
        "schema": 1,
        "created_unix": 1000,
        "host": {"platform": "test"},
        "kernels": kernels,
    }


def history_of(norms: list[float]) -> list[dict]:
    """A history whose sim kernel normalized times are ``norms``."""
    return [
        {"schema": 1, "created_unix": 1000 + i, "host": "test",
         "kernels": {"sim_replication_h500": n, "analytic_eval_x100": 0.2}}
        for i, n in enumerate(norms)
    ]


class TestHistoryEntry:
    def test_normalizes_by_calibration(self):
        entry = history_entry(make_doc(sim_s=0.3, cal_s=0.1))
        assert entry["kernels"]["sim_replication_h500"] == pytest.approx(3.0)
        assert CALIBRATION not in entry["kernels"]

    def test_machine_speed_cancels(self):
        """The same workload on a 2x slower machine records the same
        normalized entry — that is the point of calibration."""
        fast = history_entry(make_doc(sim_s=0.3, cal_s=0.1))
        slow = history_entry(make_doc(
            sim_s=0.6, cal_s=0.2, extra={"analytic_eval_x100": {"min_s": 0.04}},
        ))
        assert fast["kernels"] == slow["kernels"]

    def test_missing_calibration_raises(self):
        doc = make_doc(sim_s=0.3)
        del doc["kernels"][CALIBRATION]
        with pytest.raises(ValueError):
            history_entry(doc)


class TestAppendLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "hist" / "BENCH_history.jsonl"
        append_history(make_doc(0.3), str(path))
        append_history(make_doc(0.33), str(path))
        entries = load_history(str(path))
        assert len(entries) == 2
        assert entries[0]["kernels"]["sim_replication_h500"] == pytest.approx(3.0)

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(str(tmp_path / "none.jsonl")) == []


class TestCheckHistory:
    def test_injected_2x_slowdown_flagged(self):
        """A gated kernel running 2x over its rolling median fails."""
        history = history_of([1.0, 1.05, 0.95, 1.0, 1.02])
        slowed = make_doc(sim_s=0.2, cal_s=0.1)  # normalized 2.0 vs median ~1.0
        lines, failures = check_history(slowed, history, tolerance=0.5)
        assert failures == ["sim_replication_h500"]
        assert any("REGRESSION" in line for line in lines)

    def test_within_tolerance_passes(self):
        history = history_of([1.0, 1.05, 0.95, 1.0, 1.02])
        ok = make_doc(sim_s=0.12, cal_s=0.1)  # normalized 1.2, within 50%
        _, failures = check_history(ok, history, tolerance=0.5)
        assert failures == []

    def test_ungated_kernel_reported_not_failed(self):
        history = history_of([1.0] * 5)
        # analytic kernel jumps 10x but is not a gate
        doc = make_doc(sim_s=0.1, extra={"analytic_eval_x100": {"min_s": 0.2}})
        lines, failures = check_history(doc, history, tolerance=0.5)
        assert failures == []
        assert any("analytic_eval_x100" in line and "info" in line for line in lines)

    def test_young_history_never_fails(self):
        """Fewer than min_entries samples: reported, never a failure."""
        history = history_of([1.0, 1.0])
        slowed = make_doc(sim_s=0.5, cal_s=0.1)  # normalized 5.0
        lines, failures = check_history(slowed, history, min_entries=3)
        assert failures == []
        assert any("skipped" in line for line in lines)

    def test_rolling_window_forgets_old_entries(self):
        """Old fast entries outside the window must not anchor the
        median forever — the detector tracks the recent regime."""
        history = history_of([0.5] * 7 + [2.0] * 3)
        doc = make_doc(sim_s=0.21, cal_s=0.1)  # normalized 2.1 ~ recent regime
        _, failures = check_history(doc, history, tolerance=0.5, window=5)
        assert failures == []
        _, failures_full = check_history(doc, history, tolerance=0.5, window=10)
        # with the long window the old 0.5s drag the median down: flagged
        assert failures_full == ["sim_replication_h500"]

    def test_median_robust_to_one_noisy_entry(self):
        """One garbage history entry (machine hiccup) must not trip the
        detector — the median absorbs it where a mean would not."""
        history = history_of([1.0, 1.0, 8.0, 1.0, 1.0])
        doc = make_doc(sim_s=0.11, cal_s=0.1)
        _, failures = check_history(doc, history, tolerance=0.5)
        assert failures == []


class TestCliFlags:
    def test_bench_parser_accepts_history_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "bench", "--record", "--history", "h.jsonl",
            "--history-tolerance", "0.4", "--history-window", "7",
        ])
        assert args.record is True
        assert args.history == "h.jsonl"
        assert args.history_tolerance == 0.4
        assert args.history_window == 7
