"""Execute the doctest examples embedded in the public docstrings.

The examples in docstrings are part of the documented contract; this
keeps them honest.
"""

import doctest

import pytest

import repro.analysis.tables
import repro.core.sla
import repro.distributions.deterministic
import repro.distributions.exponential
import repro.queueing.mg1
import repro.queueing.mm1
import repro.queueing.mmc
import repro.queueing.ps
import repro.workload.classes

MODULES = [
    repro.distributions.exponential,
    repro.distributions.deterministic,
    repro.queueing.mm1,
    repro.queueing.mmc,
    repro.queueing.mg1,
    repro.workload.classes,
    repro.core.sla,
    repro.analysis.tables,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module)
    assert result.attempted > 0, f"no doctests found in {module.__name__}"
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
