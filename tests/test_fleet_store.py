"""Fleet sweep runner + columnar result store tests.

The fleet runner's contract is *scheduling-independent determinism*:
unit ``u``'s row depends only on ``(master_seed, scenario,
replication)``, never on which worker ran it or in what order units
were stolen from the shared queue. These tests pin that, plus the
store's schema validation, aggregation math, reopen semantics, the
sqlite summary ingest, live progress, and the CLI surface.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.exceptions import ModelValidationError
from repro.experiments.common import small_cluster, small_workload
from repro.obs.progress import PROGRESS_FILENAME, progress_snapshot, read_progress
from repro.obs.store import RunStore
from repro.simulation import FleetScenario, FleetStore, fleet_columns, run_fleet
from repro.simulation.results_store import parquet_available


def _scenarios(loads=(0.5, 0.8), horizon=8.0):
    return [
        FleetScenario(
            label=f"load={f}",
            cluster=small_cluster(),
            workload=small_workload(load_factor=f),
            horizon=horizon,
            params={"load_factor": f},
        )
        for f in loads
    ]


# ---------------------------------------------------------------------------
# FleetStore
# ---------------------------------------------------------------------------


def test_store_roundtrip_and_dtypes(tmp_path):
    cols = ("unit", "scenario", "metric")
    with FleetStore.create(tmp_path / "s", cols, meta={"seed": 3}, rows_per_group=2) as store:
        for u in range(5):
            store.append({"unit": u, "scenario": u % 2, "metric": 0.5 * u})
    again = FleetStore.open(tmp_path / "s")
    assert again.final
    assert again.n_rows == 5
    assert tuple(again.columns) == cols
    data = again.read()
    assert data["unit"].dtype == np.int64
    assert data["metric"].dtype == np.float64
    # rows land in append order; rows_per_group=2 means 3 row groups
    assert data["unit"].tolist() == [0, 1, 2, 3, 4]
    assert data["metric"].tolist() == [0.0, 0.5, 1.0, 1.5, 2.0]
    sub = again.read(columns=["metric"])
    assert list(sub) == ["metric"]


def test_store_validates_rows_and_refuses_overwrite(tmp_path):
    store = FleetStore.create(tmp_path / "s", ("unit", "x"), meta={})
    with pytest.raises(ModelValidationError):
        store.append({"unit": 0})  # missing column
    with pytest.raises(ModelValidationError):
        store.append({"unit": 0, "x": 1.0, "extra": 2.0})  # unknown column
    store.close()
    with pytest.raises(ModelValidationError):
        store.append({"unit": 1, "x": 1.0})  # closed store is immutable
    with pytest.raises(ModelValidationError):
        FleetStore.create(tmp_path / "s", ("unit", "x"), meta={})  # exists


def test_store_aggregate_matches_numpy(tmp_path):
    with FleetStore.create(tmp_path / "s", ("unit", "scenario", "y"), meta={}) as store:
        values = {0: [1.0, 3.0, 5.0], 1: [2.0, 4.0]}
        u = 0
        for sid, ys in values.items():
            for y in ys:
                store.append({"unit": u, "scenario": sid, "y": y})
                u += 1
    agg = FleetStore.open(tmp_path / "s").aggregate(metrics=["y"])
    for sid, ys in values.items():
        rec = agg[sid]
        assert rec["n"] == len(ys)
        assert rec["y"]["mean"] == pytest.approx(np.mean(ys))
        assert rec["y"]["std"] == pytest.approx(np.std(ys, ddof=1))
        assert rec["y"]["min"] == min(ys) and rec["y"]["max"] == max(ys)


def test_store_empty_read_has_schema(tmp_path):
    with FleetStore.create(tmp_path / "s", ("unit", "x"), meta={}) as store:
        pass
    data = FleetStore.open(tmp_path / "s").read()
    assert data["unit"].size == 0 and data["unit"].dtype == np.int64


@pytest.mark.skipif(not parquet_available(), reason="pyarrow not installed")
def test_store_parquet_format(tmp_path):
    with FleetStore.create(tmp_path / "s", ("unit", "x"), meta={}, fmt="parquet") as store:
        store.append({"unit": 0, "x": 1.5})
    again = FleetStore.open(tmp_path / "s")
    assert again.read()["x"].tolist() == [1.5]


# ---------------------------------------------------------------------------
# run_fleet determinism and failure accounting
# ---------------------------------------------------------------------------


def _canonical_rows(store_path):
    """Store rows re-keyed to canonical unit order, wall_s dropped."""
    data = FleetStore.open(store_path).read()
    order = np.argsort(data["unit"])
    return {
        c: data[c][order].tolist() for c in sorted(data) if c != "wall_s"
    }


def test_fleet_serial_vs_pool_bit_identical(tmp_path):
    scenarios = _scenarios()
    a = run_fleet(scenarios, 4, tmp_path / "serial", seed=11, n_jobs=1, store_format="npz")
    b = run_fleet(scenarios, 4, tmp_path / "pool", seed=11, n_jobs=3, store_format="npz")
    assert a.n_done == b.n_done == 8
    assert a.n_failed == b.n_failed == 0
    assert _canonical_rows(tmp_path / "serial") == _canonical_rows(tmp_path / "pool")


def test_fleet_failures_counted_not_fatal(tmp_path):
    # An unstable scenario makes every one of its units raise; the
    # sweep must finish, count them, and keep the stable scenario's rows.
    scenarios = _scenarios(loads=(0.5,)) + [
        FleetScenario(
            label="unstable",
            cluster=small_cluster(),
            workload=small_workload(load_factor=50.0),
            horizon=8.0,
        )
    ]
    summary = run_fleet(scenarios, 3, tmp_path / "s", seed=1, n_jobs=1, store_format="npz")
    assert summary.n_failed == 3
    assert summary.n_done == 3
    store = FleetStore.open(tmp_path / "s")
    assert store.n_rows == 3
    assert set(store.read()["scenario"].tolist()) == {0}
    failures = store.meta["failures"]
    assert len(failures) == 3 and all(u >= 3 for u, _msg in failures)


def test_fleet_validates_inputs(tmp_path):
    with pytest.raises(ModelValidationError):
        run_fleet([], 2, tmp_path / "a")
    with pytest.raises(ModelValidationError):
        run_fleet(_scenarios(), 0, tmp_path / "b")
    from repro.workload.generator import workload_from_rates

    mixed = _scenarios(loads=(0.5,)) + [
        FleetScenario(
            label="other-classes",
            cluster=small_cluster(),
            workload=workload_from_rates([1.0, 2.0], names=("vip", "basic")),
            horizon=8.0,
        )
    ]
    with pytest.raises(ModelValidationError):
        run_fleet(mixed, 2, tmp_path / "c")


def test_fleet_manifest_and_scenario_table(tmp_path):
    scenarios = _scenarios()
    run_fleet(scenarios, 2, tmp_path / "s", seed=5, n_jobs=1, store_format="npz")
    store = FleetStore.open(tmp_path / "s")
    assert store.meta["seed"] == 5
    assert [s["label"] for s in store.meta["scenarios"]] == ["load=0.5", "load=0.8"]
    table = store.scenario_table(metrics=["mean_delay"])
    assert [r["label"] for r in table] == ["load=0.5", "load=0.8"]
    assert all(r["n"] == 2 for r in table)
    assert all(r["params"]["load_factor"] in (0.5, 0.8) for r in table)


# ---------------------------------------------------------------------------
# telemetry / progress / sqlite ingest
# ---------------------------------------------------------------------------


def test_fleet_progress_stream_and_snapshot(tmp_path):
    tel_dir = tmp_path / "tel"
    with obs.telemetry_session(tel_dir, command=["test-fleet"]):
        run_fleet(_scenarios(), 2, tmp_path / "s", seed=2, n_jobs=1, store_format="npz")
    records = read_progress(tel_dir / PROGRESS_FILENAME)
    snap = progress_snapshot(records)
    assert snap["fleet"]["n_done"] == 4
    assert snap["fleet"]["n_failed"] == 0
    assert snap["fleet"]["n_total"] == 4
    assert snap["fleet"]["finished"] is True


def test_runstore_ingest_fleet_idempotent(tmp_path):
    run_fleet(_scenarios(), 2, tmp_path / "s", seed=2, n_jobs=1, store_format="npz")
    with RunStore(tmp_path / "runs.sqlite") as rs:
        sweep_id = rs.ingest_fleet(tmp_path / "s")
        again = rs.ingest_fleet(tmp_path / "s")  # re-ingest replaces, not duplicates
        sweeps = rs.fleet_sweeps()
        assert len(sweeps) == 1
        assert sweeps[0]["n_rows"] == 4
        assert sweeps[0]["n_scenarios"] == 2
        rows = rs.fleet_scenarios(again)
        assert [r["label"] for r in rows] == ["load=0.5", "load=0.8"]
        assert all(r["n"] == 2 for r in rows)
        assert all(np.isfinite(r["mean_delay"]) for r in rows)
        assert isinstance(sweep_id, int) and isinstance(again, int)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_fleet_status_ingest_roundtrip(tmp_path, capsys):
    from repro.cli import main

    store_dir = tmp_path / "fleet-store"
    tel_dir = tmp_path / "tel"
    rc = main(
        [
            "fleet",
            "--load-factors",
            "0.5,0.8",
            "--replications",
            "2",
            "--horizon",
            "8",
            "--jobs",
            "1",
            "--format",
            "npz",
            "--out",
            str(store_dir),
            "--telemetry",
            str(tel_dir),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "load=0.5" in out and "load=0.8" in out
    assert FleetStore.open(store_dir).n_rows == 4

    rc = main(["status", str(tel_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fleet" in out.lower()
    assert "4/4" in out or "4" in out

    db = tmp_path / "runs.sqlite"
    rc = main(["telemetry", "ingest", "--store", str(db), "--fleet", str(store_dir)])
    assert rc == 0
    capsys.readouterr()
    with RunStore(db) as rs:
        assert len(rs.fleet_sweeps()) == 1


def test_fleet_columns_schema():
    cols = fleet_columns(2)
    assert cols[:3] == ("unit", "scenario", "replication")
    assert "delay_c0" in cols and "delay_c1" in cols and "delay_c2" not in cols
    assert cols[-1] == "wall_s"


def test_store_manifest_is_valid_json(tmp_path):
    run_fleet(_scenarios(loads=(0.5,)), 1, tmp_path / "s", n_jobs=1, store_format="npz")
    manifest = json.loads((tmp_path / "s" / "manifest.json").read_text())
    assert manifest["kind"] == "fleet_store"
    assert manifest["final"] is True
    assert manifest["n_rows"] == 1
