"""Power model and server spec tests."""

import numpy as np
import pytest

from repro.cluster import PowerModel, ServerSpec
from repro.exceptions import ModelValidationError


class TestPowerModel:
    def test_busy_power_formula(self):
        pm = PowerModel(idle=50.0, kappa=100.0, alpha=3.0)
        assert pm.busy_power(1.0) == pytest.approx(150.0)
        assert pm.busy_power(0.5) == pytest.approx(50.0 + 100.0 * 0.125)

    def test_busy_power_vectorized(self):
        pm = PowerModel(idle=10.0, kappa=20.0, alpha=2.0)
        s = np.array([0.5, 1.0])
        np.testing.assert_allclose(pm.busy_power(s), [10 + 5, 30])

    def test_dynamic_energy_per_work(self):
        pm = PowerModel(idle=50.0, kappa=100.0, alpha=3.0)
        # kappa * s^(alpha-1): at s=0.5 -> 25, at s=1 -> 100.
        assert pm.dynamic_energy_per_work(0.5) == pytest.approx(25.0)
        assert pm.dynamic_energy_per_work(1.0) == pytest.approx(100.0)

    def test_energy_per_work_increases_with_speed(self):
        pm = PowerModel(idle=0.0, kappa=10.0, alpha=3.0)
        speeds = np.linspace(0.3, 1.0, 8)
        e = pm.dynamic_energy_per_work(speeds)
        assert np.all(np.diff(e) > 0)

    def test_average_power_decomposition(self):
        pm = PowerModel(idle=40.0, kappa=80.0, alpha=3.0)
        # 3 servers, work rate 1.2 at speed 0.8:
        expected = 3 * 40.0 + 1.2 * 80.0 * 0.8**2
        assert pm.average_power(0.8, 1.2, 3) == pytest.approx(expected)

    def test_average_power_zero_work_is_idle_floor(self):
        pm = PowerModel(idle=40.0, kappa=80.0, alpha=3.0)
        assert pm.average_power(1.0, 0.0, 2) == pytest.approx(80.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(idle=-1.0, kappa=1.0, alpha=3.0),
            dict(idle=0.0, kappa=0.0, alpha=3.0),
            dict(idle=0.0, kappa=1.0, alpha=1.0),
            dict(idle=0.0, kappa=1.0, alpha=0.5),
            dict(idle=float("nan"), kappa=1.0, alpha=3.0),
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ModelValidationError):
            PowerModel(**kwargs)

    def test_zero_speed_rejected(self):
        pm = PowerModel(idle=1.0, kappa=1.0, alpha=3.0)
        with pytest.raises(ModelValidationError):
            pm.busy_power(0.0)
        with pytest.raises(ModelValidationError):
            pm.dynamic_energy_per_work(-0.5)


class TestServerSpec:
    def test_clamp_speed(self, basic_spec):
        assert basic_spec.clamp_speed(0.1) == basic_spec.min_speed
        assert basic_spec.clamp_speed(5.0) == basic_spec.max_speed
        assert basic_spec.clamp_speed(0.7) == 0.7

    def test_invalid_speed_range(self):
        pm = PowerModel(idle=1.0, kappa=1.0, alpha=3.0)
        with pytest.raises(ModelValidationError):
            ServerSpec(power=pm, min_speed=0.0, max_speed=1.0)
        with pytest.raises(ModelValidationError):
            ServerSpec(power=pm, min_speed=1.2, max_speed=1.0)

    def test_negative_cost_rejected(self):
        pm = PowerModel(idle=1.0, kappa=1.0, alpha=3.0)
        with pytest.raises(ModelValidationError):
            ServerSpec(power=pm, cost=-1.0)

    def test_power_must_be_power_model(self):
        with pytest.raises(ModelValidationError):
            ServerSpec(power="not a model")  # type: ignore[arg-type]
