"""Probabilistic routing in the simulator vs the analytic Jackson
decomposition, plus batch-means output analysis."""

import numpy as np
import pytest

from repro.cluster import ClusterModel, Tier
from repro.core.delay import end_to_end_delays
from repro.distributions import Exponential
from repro.exceptions import ModelValidationError
from repro.queueing.routing import ClassRouting, visit_ratio_matrix
from repro.simulation import batch_means_ci, simulate
from repro.workload import workload_from_rates


@pytest.fixture
def retry_cluster(basic_spec):
    retry = np.array([[0.0, 1.0], [0.25, 0.0]])
    cr = ClassRouting(retry, 0)
    tiers = [
        Tier("app", (Exponential(3.0),), basic_spec),
        Tier("db", (Exponential(4.0),), basic_spec),
    ]
    cluster = ClusterModel(tiers, visit_ratios=visit_ratio_matrix([retry]))
    return cluster, cr


class TestSimulatedRouting:
    def test_feedback_matches_analytic(self, retry_cluster):
        cluster, cr = retry_cluster
        wl = workload_from_rates([1.0])
        res = simulate(cluster, wl, horizon=25000.0, seed=11, routing=[cr])
        analytic = end_to_end_delays(cluster, wl)
        assert res.delays[0] == pytest.approx(analytic[0], rel=0.06)

    def test_mean_visits_match_traffic_equations(self, retry_cluster):
        cluster, cr = retry_cluster
        wl = workload_from_rates([1.0])
        res = simulate(cluster, wl, horizon=25000.0, seed=12, routing=[cr])
        visits_per_job = res.meta["station_completions"].sum() / res.n_completed.sum()
        assert visits_per_job == pytest.approx(2 * 4.0 / 3.0, rel=0.02)

    def test_entry_distribution(self, basic_spec):
        # Half the jobs enter at each station, no transitions.
        r = np.zeros((2, 2))
        cr = ClassRouting(r, entry=np.array([0.5, 0.5]))
        tiers = [
            Tier("a", (Exponential(4.0),), basic_spec),
            Tier("b", (Exponential(4.0),), basic_spec),
        ]
        cluster = ClusterModel(tiers, visit_ratios=visit_ratio_matrix([r], entries=[np.array([0.5, 0.5])]))
        wl = workload_from_rates([2.0])
        res = simulate(cluster, wl, horizon=8000.0, seed=13, routing=[cr])
        counts = res.meta["station_completions"][0]
        assert counts[0] == pytest.approx(counts[1], rel=0.1)

    def test_visit_ratio_mismatch_rejected(self, retry_cluster, basic_spec):
        _, cr = retry_cluster
        tandem = ClusterModel(
            [
                Tier("app", (Exponential(3.0),), basic_spec),
                Tier("db", (Exponential(4.0),), basic_spec),
            ]
        )
        with pytest.raises(ModelValidationError, match="visit ratios"):
            simulate(tandem, workload_from_rates([1.0]), horizon=100.0, routing=[cr])

    def test_wrong_routing_count_rejected(self, retry_cluster):
        cluster, cr = retry_cluster
        with pytest.raises(ModelValidationError):
            simulate(cluster, workload_from_rates([1.0]), horizon=100.0, routing=[cr, cr])

    def test_non_classrouting_rejected(self, retry_cluster):
        cluster, _ = retry_cluster
        with pytest.raises(ModelValidationError):
            simulate(
                cluster, workload_from_rates([1.0]), horizon=100.0, routing=[np.eye(2)]
            )


class TestBatchMeans:
    def test_iid_matches_naive_ci(self, rng):
        x = rng.exponential(2.0, size=40_000)
        mean, hw = batch_means_ci(x, n_batches=20)
        assert mean == pytest.approx(2.0, rel=0.05)
        # For iid data the batch-means CI approximates the naive CI.
        naive = 1.96 * x.std(ddof=1) / np.sqrt(x.size)
        assert hw == pytest.approx(naive, rel=0.7)

    def test_autocorrelated_series_wider_than_naive(self, rng):
        # AR(1) with strong positive correlation.
        n, phi = 40_000, 0.95
        eps = rng.normal(size=n)
        x = np.empty(n)
        x[0] = eps[0]
        for i in range(1, n):
            x[i] = phi * x[i - 1] + eps[i]
        _, hw = batch_means_ci(x, n_batches=20)
        naive = 1.96 * x.std(ddof=1) / np.sqrt(n)
        assert hw > 2.0 * naive

    def test_covers_known_mean_for_mm1(self, basic_spec):
        from repro.queueing import MM1
        cluster = ClusterModel(
            [Tier("t", (Exponential(1.0),), basic_spec, discipline="fcfs")]
        )
        wl = workload_from_rates([0.6])
        res = simulate(cluster, wl, horizon=30000.0, seed=21, collect_delay_samples=True)
        mean, hw = batch_means_ci(res.delay_samples[0], n_batches=20)
        exact = MM1(0.6, 1.0).mean_sojourn
        assert abs(mean - exact) < 3.0 * hw  # generous coverage check

    def test_too_few_samples_nan(self):
        mean, hw = batch_means_ci(np.array([1.0, 2.0, 3.0]), n_batches=20)
        assert np.isnan(hw)
        assert mean == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ModelValidationError):
            batch_means_ci(np.ones((2, 2)))
        with pytest.raises(ModelValidationError):
            batch_means_ci(np.ones(100), n_batches=1)
