"""Exact-moment and sampling checks for every distribution family."""

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Gamma,
    HyperExponential,
    LogNormal,
    Mixture,
    Pareto,
    Uniform,
    Weibull,
)
from repro.exceptions import ModelValidationError

N_SAMPLES = 200_000

ALL_DISTS = [
    Exponential(rate=2.0),
    Exponential.from_mean(0.25),
    Deterministic(3.0),
    Erlang(k=4, rate=8.0),
    Erlang.from_mean(0.5, k=3),
    HyperExponential(probs=[0.3, 0.7], rates=[1.0, 5.0]),
    HyperExponential.balanced_from_mean_scv(2.0, 4.0),
    LogNormal(mean=1.5, scv=0.8),
    Pareto(alpha=2.5, xm=1.0),
    Pareto.from_mean(2.0, alpha=3.0),
    Uniform(0.5, 2.5),
    Weibull(k=2.0, lam=1.0),
    Weibull.from_mean(0.7, k=1.5),
    Gamma(k=2.5, rate=5.0),
    Gamma.from_mean_scv(1.2, 0.4),
    Mixture(probs=[0.5, 0.5], components=[Exponential(1.0), Deterministic(2.0)]),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: repr(d))
def test_sample_mean_matches_analytic(dist, rng):
    samples = dist.sample(rng, N_SAMPLES)
    # 6-sigma tolerance on the sample mean.
    tol = 6.0 * dist.std / np.sqrt(N_SAMPLES) + 1e-12
    assert abs(samples.mean() - dist.mean) < max(tol, 1e-9)


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: repr(d))
def test_sample_second_moment_matches_analytic(dist, rng):
    samples = dist.sample(rng, N_SAMPLES)
    m2 = float(np.mean(samples**2))
    # Heavy-tailed second moments converge slowly; loose relative band.
    assert m2 == pytest.approx(dist.second_moment, rel=0.15)


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: repr(d))
def test_samples_nonnegative(dist, rng):
    assert np.all(dist.sample(rng, 10_000) >= 0.0)


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: repr(d))
def test_scalar_sample(dist, rng):
    x = dist.sample(rng)
    assert np.isscalar(x) or np.ndim(x) == 0


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: repr(d))
def test_variance_consistency(dist):
    assert dist.variance == pytest.approx(dist.second_moment - dist.mean**2, abs=1e-12)
    assert dist.variance >= 0.0


def test_exponential_moments_exact():
    d = Exponential(rate=4.0)
    assert d.mean == 0.25
    assert d.second_moment == pytest.approx(2 / 16)
    assert d.scv == pytest.approx(1.0)


def test_deterministic_scv_zero():
    assert Deterministic(5.0).scv == 0.0
    assert Deterministic(0.0).mean == 0.0


def test_erlang_scv_is_inverse_k():
    for k in (1, 2, 5, 10):
        assert Erlang(k=k, rate=1.0).scv == pytest.approx(1.0 / k)


def test_erlang_k1_equals_exponential():
    e1, ex = Erlang(k=1, rate=3.0), Exponential(rate=3.0)
    assert e1.mean == ex.mean
    assert e1.second_moment == pytest.approx(ex.second_moment)


def test_hyperexp_balanced_fit_hits_targets():
    for mean, scv in [(1.0, 1.0), (2.0, 1.5), (0.3, 8.0)]:
        h = HyperExponential.balanced_from_mean_scv(mean, scv)
        assert h.mean == pytest.approx(mean, rel=1e-12)
        assert h.scv == pytest.approx(scv, rel=1e-9)


def test_hyperexp_scv_at_least_one():
    h = HyperExponential(probs=[0.2, 0.8], rates=[0.5, 4.0])
    assert h.scv >= 1.0


def test_lognormal_moments():
    d = LogNormal(mean=2.0, scv=0.5)
    assert d.mean == 2.0
    assert d.second_moment == pytest.approx(4.0 * 1.5)


def test_pareto_requires_finite_second_moment():
    with pytest.raises(ModelValidationError):
        Pareto(alpha=2.0, xm=1.0)
    with pytest.raises(ModelValidationError):
        Pareto(alpha=1.5, xm=1.0)


def test_pareto_from_mean_roundtrip():
    d = Pareto.from_mean(3.0, alpha=4.0)
    assert d.mean == pytest.approx(3.0)


def test_uniform_moments():
    d = Uniform(1.0, 3.0)
    assert d.mean == 2.0
    assert d.variance == pytest.approx(4.0 / 12.0)


def test_weibull_k1_is_exponential():
    w = Weibull(k=1.0, lam=2.0)
    assert w.mean == pytest.approx(2.0)
    assert w.scv == pytest.approx(1.0, rel=1e-9)


def test_gamma_fit_exact():
    g = Gamma.from_mean_scv(1.7, 0.3)
    assert g.mean == pytest.approx(1.7)
    assert g.scv == pytest.approx(0.3)


def test_mixture_moments_are_linear():
    a, b = Exponential(1.0), Deterministic(2.0)
    m = Mixture(probs=[0.25, 0.75], components=[a, b])
    assert m.mean == pytest.approx(0.25 * a.mean + 0.75 * b.mean)
    assert m.second_moment == pytest.approx(
        0.25 * a.second_moment + 0.75 * b.second_moment
    )


@pytest.mark.parametrize(
    "bad",
    [
        lambda: Exponential(0.0),
        lambda: Exponential(-1.0),
        lambda: Exponential(float("inf")),
        lambda: Deterministic(-0.1),
        lambda: Erlang(k=0, rate=1.0),
        lambda: Erlang(k=2.5, rate=1.0),
        lambda: Erlang(k=2, rate=-1.0),
        lambda: HyperExponential(probs=[0.5, 0.6], rates=[1.0, 2.0]),
        lambda: HyperExponential(probs=[0.5, 0.5], rates=[1.0, -2.0]),
        lambda: HyperExponential(probs=[1.0], rates=[1.0, 2.0]),
        lambda: HyperExponential.balanced_from_mean_scv(1.0, 0.5),
        lambda: LogNormal(mean=-1.0, scv=1.0),
        lambda: LogNormal(mean=1.0, scv=0.0),
        lambda: Uniform(2.0, 1.0),
        lambda: Uniform(-1.0, 1.0),
        lambda: Weibull(k=0.0, lam=1.0),
        lambda: Gamma(k=1.0, rate=0.0),
        lambda: Mixture(probs=[0.5, 0.5], components=[Exponential(1.0)]),
        lambda: Mixture(probs=[0.4, 0.4], components=[Exponential(1.0), Exponential(2.0)]),
    ],
)
def test_invalid_parameters_raise(bad):
    with pytest.raises(ModelValidationError):
        bad()
