"""Finite-buffer queues: M/M/c/K closed forms and simulated buffers."""

import numpy as np
import pytest

from repro.cluster import ClusterModel, Tier
from repro.distributions import Exponential
from repro.exceptions import ModelValidationError
from repro.queueing import MGcc, MM1, MMc, MMcK
from repro.simulation import simulate
from repro.workload import workload_from_rates


class TestMMcKClosedForms:
    def test_mm1k_geometric_distribution(self):
        q = MMcK(lam=1.5, mu=1.0, c=1, K=5)
        r = 1.5
        expected = np.array([r**n for n in range(6)])
        expected /= expected.sum()
        np.testing.assert_allclose(q.probabilities, expected, rtol=1e-12)

    def test_k_equals_c_is_erlang_b(self):
        # No waiting room at all: M/M/c/c.
        q = MMcK(lam=3.0, mu=1.0, c=4, K=4)
        loss = MGcc(3.0, Exponential(1.0), c=4)
        assert q.blocking_probability == pytest.approx(loss.blocking_probability, rel=1e-12)
        assert q.mean_sojourn == pytest.approx(1.0, rel=1e-12)

    def test_large_k_approaches_open_queue(self):
        q = MMcK(lam=0.7, mu=1.0, c=1, K=500)
        open_q = MM1(0.7, 1.0)
        assert q.blocking_probability < 1e-30
        assert q.mean_sojourn == pytest.approx(open_q.mean_sojourn, rel=1e-9)
        multi = MMcK(lam=2.2, mu=1.0, c=3, K=400)
        assert multi.mean_sojourn == pytest.approx(MMc(2.2, 1.0, 3).mean_sojourn, rel=1e-9)

    def test_overload_is_bounded(self):
        q = MMcK(lam=50.0, mu=1.0, c=2, K=10)
        assert q.blocking_probability > 0.9
        assert np.isfinite(q.mean_sojourn)
        assert q.utilization == pytest.approx(1.0, abs=0.01)

    def test_blocking_decreases_with_buffer(self):
        bs = [MMcK(2.0, 1.0, c=2, K=k).blocking_probability for k in (2, 4, 8, 16)]
        assert all(a > b for a, b in zip(bs, bs[1:]))

    def test_conservation_throughput(self):
        q = MMcK(lam=3.0, mu=1.0, c=2, K=6)
        # Accepted rate equals service completion rate: c_busy * mu.
        busy = q.utilization * q.c
        assert q.throughput == pytest.approx(busy * q.mu, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ModelValidationError):
            MMcK(1.0, 1.0, c=0, K=5)
        with pytest.raises(ModelValidationError):
            MMcK(1.0, 1.0, c=3, K=2)


class TestSimulatedFiniteBuffer:
    def _tier(self, basic_spec, capacity, servers=1, discipline="fcfs"):
        return Tier(
            "t",
            tuple(Exponential(1.0) for _ in range(1)),
            basic_spec,
            servers=servers,
            discipline=discipline,
            capacity=capacity,
        )

    def test_mm1k_blocking_and_sojourn(self, basic_spec):
        q = MMcK(lam=1.5, mu=1.0, c=1, K=5)
        cluster = ClusterModel([self._tier(basic_spec, capacity=5)])
        wl = workload_from_rates([1.5])
        res = simulate(cluster, wl, horizon=25000.0, seed=71)
        blocked = res.meta["n_blocked"][0, 0]
        offered = res.meta["n_offered"][0, 0]
        assert blocked / offered == pytest.approx(q.blocking_probability, rel=0.04)
        assert res.delays[0] == pytest.approx(q.mean_sojourn, rel=0.04)

    def test_mmck_multi_server(self, basic_spec):
        q = MMcK(lam=4.0, mu=1.0, c=3, K=7)
        cluster = ClusterModel([self._tier(basic_spec, capacity=7, servers=3)])
        wl = workload_from_rates([4.0])
        res = simulate(cluster, wl, horizon=20000.0, seed=72)
        blocked = res.meta["n_blocked"][0, 0]
        offered = res.meta["n_offered"][0, 0]
        assert blocked / offered == pytest.approx(q.blocking_probability, rel=0.06)
        assert res.delays[0] == pytest.approx(q.mean_sojourn, rel=0.04)

    def test_overloaded_buffer_runs_without_unstable_flag(self, basic_spec):
        cluster = ClusterModel([self._tier(basic_spec, capacity=4)])
        wl = workload_from_rates([10.0])
        res = simulate(cluster, wl, horizon=2000.0, seed=73)  # no allow_unstable
        assert np.isfinite(res.delays[0])

    def test_analytic_model_refuses_finite_buffers(self, basic_spec):
        from repro.core.delay import end_to_end_delays

        cluster = ClusterModel([self._tier(basic_spec, capacity=5)])
        wl = workload_from_rates([0.5])
        with pytest.raises(ModelValidationError, match="finite buffer"):
            end_to_end_delays(cluster, wl)

    def test_ps_with_capacity_rejected(self, basic_spec):
        tier = Tier(
            "t", (Exponential(1.0),), basic_spec, discipline="ps", capacity=5
        )
        cluster = ClusterModel([tier])
        wl = workload_from_rates([0.5])
        with pytest.raises(ModelValidationError, match="PS"):
            simulate(cluster, wl, horizon=100.0)

    def test_capacity_below_servers_rejected(self, basic_spec):
        with pytest.raises(ModelValidationError):
            Tier("t", (Exponential(1.0),), basic_spec, servers=4, capacity=2)
