"""Structural and shape tests on every experiment driver.

Each experiment is run with reduced parameters (short horizons, few
replications/points) and checked for the qualitative *shape* the
reproduction commits to in DESIGN.md — who wins, monotonicities,
certification — not for specific values.
"""

import numpy as np
import pytest

from repro.experiments import (
    exp_a1_priority_vs_fcfs as a1,
    exp_a2_np_vs_pr as a2,
    exp_a3_multiserver_approx as a3,
    exp_f1_delay_vs_load as f1,
    exp_f2_energy_vs_speed as f2,
    exp_f3_delay_opt_tradeoff as f3,
    exp_f4_energy_opt_tradeoff as f4,
    exp_f5_perclass_vs_aggregate as f5,
    exp_f6_cost_vs_load as f6,
    exp_t1_delay_accuracy as t1,
    exp_t2_energy_accuracy as t2,
    exp_t3_cost_allocation as t3,
    exp_t4_solver_efficiency as t4,
)
from repro.experiments.common import (
    canonical_cluster,
    canonical_sla,
    canonical_workload,
    small_cluster,
    small_sla,
    small_workload,
)


class TestCommonConfigs:
    def test_canonical_cluster_stable_at_default_load(self):
        cluster, workload = canonical_cluster(), canonical_workload()
        assert cluster.is_stable(workload.arrival_rates)

    def test_canonical_sla_feasible_at_default(self):
        from repro.core.delay import end_to_end_delays

        cluster, workload, sla = canonical_cluster(), canonical_workload(), canonical_sla()
        delays = end_to_end_delays(cluster, workload)
        assert sla.is_met(delays, workload)

    def test_small_configs_consistent(self):
        assert small_cluster().num_classes == small_workload().num_classes
        assert len(small_sla().guarantees) == 2

    def test_load_factor_scales(self):
        assert canonical_workload(2.0).total_rate == pytest.approx(
            2.0 * canonical_workload().total_rate
        )


class TestAnalyticExperiments:
    def test_f1_shape(self):
        r = f1.run(load_factors=np.linspace(0.3, 1.6, 5))
        cols = r.series.columns
        # All delay columns increase with load.
        for name, col in cols.items():
            assert np.all(np.diff(col) > 0), name
        # Gold below silver below bronze everywhere.
        assert np.all(cols["T[gold] (s)"] < cols["T[silver] (s)"])
        assert np.all(cols["T[silver] (s)"] < cols["T[bronze] (s)"])
        assert "load factor" in f1.render(r)

    def test_f1_saturation_detection(self):
        r = f1.run(load_factors=[0.5, 1.0, 3.0])
        assert r.saturation_load_factor == 3.0
        assert r.series.x.size == 2

    def test_f2_shape(self):
        r = f2.run(speeds=np.linspace(0.6, 1.0, 5), alphas=(2.0, 3.0))
        for alpha, series in r.series_by_alpha.items():
            assert np.all(np.diff(series.columns["power (W)"]) > 0)
            assert np.all(np.diff(series.columns["mean delay (s)"]) < 0)
        # Cube law burns more power than square law at the top speed.
        p2 = r.series_by_alpha[2.0].columns["power (W)"][-1]
        p3 = r.series_by_alpha[3.0].columns["power (W)"][-1]
        assert p3 == pytest.approx(p2)  # at s=1 alpha is irrelevant
        mid2 = r.series_by_alpha[2.0].columns["power (W)"][0]
        mid3 = r.series_by_alpha[3.0].columns["power (W)"][0]
        assert mid3 < mid2  # below s=1 the cube law saves more

    def test_f3_shape(self):
        r = f3.run(n_points=4, n_starts=2)
        assert r.optimal_dominates
        opt = r.series.columns["optimal delay (s)"]
        assert np.all(np.diff(opt) <= 1e-9)  # delay falls as budget grows
        assert "True" in f3.render(r)

    def test_f4_shape(self):
        r = f4.run(n_points=4, n_starts=2)
        assert r.optimal_dominates
        opt = r.series.columns["optimal power (W)"]
        assert np.all(np.diff(opt) <= 1e-6)  # power falls as bound loosens

    def test_f5_shape(self):
        r = f5.run(ratios=(1.0, 2.0, 4.0), n_starts=2)
        assert r.per_class_at_least_aggregate
        assert np.isfinite(r.aggregate_power)

    def test_f6_shape(self):
        r = f6.run(load_factors=[0.6, 1.2, 1.8])
        assert r.optimizer_never_costlier
        cost = r.series.columns["P3 cost"]
        assert np.all(np.diff(cost) >= 0)  # cost grows with load

    def test_t3_certification(self):
        r = t3.run(small_cap=6)
        assert r.certified
        # The optimizer row must be feasible.
        opt_row = [row for row in r.rows if row[0] == "P3 optimizer"][0]
        assert opt_row[3] is True or opt_row[3] == 1

    def test_t4_gaps_zero(self):
        r = t4.run(small_caps=(6,))
        assert r.all_gaps_zero
        assert np.isfinite(r.p1_seconds) and r.p1_seconds > 0
        assert "T4" in t4.render(r)


@pytest.mark.slow
class TestSimulationExperiments:
    def test_t1_accuracy(self):
        r = t1.run(load_factors=(1.0,), horizon=1200.0, n_replications=3)
        assert r.max_rel_error < 0.10
        assert "T1" in t1.render(r)

    def test_t2_accuracy(self):
        r = t2.run(load_factors=(1.0,), horizon=1200.0, n_replications=3)
        assert r.max_rel_error < 0.10

    def test_a1_priority_model_wins(self):
        r = a1.run(load_factors=(1.5,), horizon=1500.0, n_replications=3)
        # The aggregate model must distort gold vs bronze.
        gold = [row for row in r.rows if row[1] == "gold"][0]
        bronze = [row for row in r.rows if row[1] == "bronze"][0]
        assert gold[4] > gold[2]    # aggregate overestimates gold
        assert bronze[4] < bronze[2]  # aggregate underestimates bronze
        assert r.max_priority_error < 0.12

    def test_a2_preemption_tradeoff(self):
        r = a2.run(load_factor=1.2, horizon=1500.0, n_replications=3)
        assert r.gold_improves_under_pr
        assert r.max_rel_error < 0.12

    def test_a3_exact_case_tight(self):
        r = a3.run(server_counts=(1, 2, 4), horizon=20000.0, n_replications=2)
        assert r.max_exact_error < 0.08
        assert np.isfinite(r.max_approx_error)


class TestExtensionExperiments:
    def test_t5_shape(self):
        from repro.experiments import exp_t5_percentile_sla_cost as t5

        r = t5.run(multipliers=(3.0, 2.0))
        assert r.percentile_never_cheaper
        assert "T5" in t5.render(r)

    def test_a4_shape(self):
        from repro.experiments import exp_a4_dvfs_vs_onoff as a4

        r = a4.run(n_points=3, n_starts=2)
        assert r.combined_never_worse

    def test_f8_shape(self):
        from repro.experiments import exp_f8_dynamic_power as f8

        r = f8.run(n_epochs=8, n_starts=1)
        assert r.dynamic_fully_compliant
        assert r.dynamic_saves_vs_peak > 0.0
        assert r.static_mean_compliance < 1.0

    def test_f9_shape(self):
        from repro.experiments import exp_f9_tco_vs_energy_price as f9

        r = f9.run(prices=(0.0, 0.08))
        assert r.anchored_at_p3
        assert r.servers_monotone_in_price

    def test_a6_shape(self):
        from repro.experiments import exp_a6_admission_control as a6

        r = a6.run(offered_loads=(3.0, 6.0), horizon=2000.0)
        assert r.queueing_diverges
        assert r.loss_delay_flat
        assert "A6" in a6.render(r)


@pytest.mark.slow
class TestExtensionSimulationExperiments:
    def test_f7_shape(self):
        from repro.experiments import exp_f7_percentile_accuracy as f7

        r = f7.run(levels=(0.9,), horizon=1200.0, n_replications=3)
        assert r.max_error_at(0.9) < 0.20

    def test_f7b_shape(self):
        from repro.experiments import exp_f7_percentile_accuracy as f7

        r = f7.run_fcfs(levels=(0.9,), horizon=1200.0, n_replications=3)
        assert r.exact_beats_hypoexp

    def test_a5_shape(self):
        from repro.experiments import exp_a5_decomposition_depth as a5

        r = a5.run(depths=(1, 2), horizon=8000.0, n_replications=2)
        assert r.max_error < 0.15
