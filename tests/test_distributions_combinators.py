"""Scaling, shifting and fitting behaviour."""

import pytest

from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Gamma,
    HyperExponential,
    fit_two_moments,
)
from repro.distributions.base import ScaledDistribution, ShiftedDistribution
from repro.exceptions import ModelValidationError


class TestScaled:
    def test_mean_scales_linearly(self):
        d = Exponential(1.0).scaled(3.0)
        assert d.mean == pytest.approx(3.0)

    def test_second_moment_scales_quadratically(self):
        base = Erlang(k=2, rate=1.0)
        d = base.scaled(0.5)
        assert d.second_moment == pytest.approx(0.25 * base.second_moment)

    def test_scv_invariant_under_scaling(self):
        base = HyperExponential.balanced_from_mean_scv(1.0, 3.0)
        assert base.scaled(7.0).scv == pytest.approx(base.scv)

    def test_closed_families_stay_in_family(self):
        # Every concrete family is closed under scaling, so scaling
        # returns the same type with rescaled parameters — which keeps
        # exact dispatch (common-mu detection, PH conversion) working
        # at any tier speed.
        assert isinstance(Exponential(2.0).scaled(3.0), Exponential)
        assert Exponential(2.0).scaled(3.0).rate == pytest.approx(2.0 / 3.0)
        assert isinstance(Erlang(k=2, rate=1.0).scaled(0.5), Erlang)
        assert isinstance(HyperExponential.balanced_from_mean_scv(1.0, 2.0).scaled(2.0), HyperExponential)
        assert isinstance(Deterministic(1.0).scaled(4.0), Deterministic)

    def test_nested_scaling_collapses_for_wrapped(self):
        # Only non-closed shapes fall back to the generic wrapper;
        # a shifted distribution is one, and repeated scaling of the
        # wrapper must collapse to a single factor.
        base = Exponential(1.0).shifted(1.0)
        d = base.scaled(2.0).scaled(3.0)
        assert isinstance(d, ScaledDistribution)
        assert not isinstance(d.base, ScaledDistribution)
        assert d.factor == pytest.approx(6.0)
        assert d.mean == pytest.approx(12.0)

    def test_samples_scale(self, rng):
        base = Deterministic(2.0)
        assert base.scaled(2.5).sample(rng) == pytest.approx(5.0)

    @pytest.mark.parametrize("factor", [0.0, -1.0, float("inf"), float("nan")])
    def test_bad_factor_raises(self, factor):
        with pytest.raises(ModelValidationError):
            Exponential(1.0).scaled(factor)

    def test_speed_scaling_semantics(self):
        # A demand of mean 0.5 work units at speed 2 takes 0.25 s.
        demand = Exponential.from_mean(0.5)
        service = demand.scaled(1.0 / 2.0)
        assert service.mean == pytest.approx(0.25)


class TestShifted:
    def test_mean_shifts(self):
        d = Exponential(1.0).shifted(0.5)
        assert d.mean == pytest.approx(1.5)

    def test_second_moment_binomial_expansion(self):
        base = Exponential(2.0)
        d = base.shifted(1.0)
        expected = base.second_moment + 2.0 * base.mean + 1.0
        assert d.second_moment == pytest.approx(expected)

    def test_shift_zero_returns_self(self):
        d = Exponential(1.0)
        assert d.shifted(0.0) is d

    def test_negative_shift_raises(self):
        with pytest.raises(ModelValidationError):
            Exponential(1.0).shifted(-0.1)

    def test_samples_shift(self, rng):
        d = Deterministic(1.0).shifted(2.0)
        assert d.sample(rng) == pytest.approx(3.0)
        assert isinstance(d, ShiftedDistribution)

    def test_variance_unchanged_by_shift(self):
        base = Erlang(k=3, rate=2.0)
        assert base.shifted(5.0).variance == pytest.approx(base.variance)


class TestFitTwoMoments:
    @pytest.mark.parametrize("scv,family", [
        (0.0, Deterministic),
        (0.25, Gamma),
        (0.9999999999999, Exponential),
        (1.0, Exponential),
        (1.5, HyperExponential),
        (10.0, HyperExponential),
    ])
    def test_family_selection(self, scv, family):
        assert isinstance(fit_two_moments(1.0, scv), family)

    @pytest.mark.parametrize("mean", [0.01, 1.0, 100.0])
    @pytest.mark.parametrize("scv", [0.0, 0.3, 0.7, 1.0, 2.0, 6.0])
    def test_fit_is_exact(self, mean, scv):
        d = fit_two_moments(mean, scv)
        assert d.mean == pytest.approx(mean, rel=1e-10)
        assert d.scv == pytest.approx(scv, rel=1e-8, abs=1e-10)

    def test_invalid_inputs(self):
        with pytest.raises(ModelValidationError):
            fit_two_moments(0.0, 1.0)
        with pytest.raises(ModelValidationError):
            fit_two_moments(1.0, -0.5)
