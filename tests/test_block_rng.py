"""The block-sampling determinism contract and the BlockCursor.

The vectorized event core pregenerates service times and arrival gaps
in NumPy blocks instead of drawing them one scalar at a time. That is
only sound because, for the opted-in families, one ``sample(rng,
size=n)`` call consumes the generator's bit stream in exactly the same
order as ``n`` successive scalar ``sample(rng)`` calls — so a
cursor-fed simulation is bit-identical to the scalar-draw engine it
replaced. These tests pin that contract family by family, the
``BlockCursor`` refill mechanics, and the safety flags of the families
that must stay on the scalar path.
"""

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Gamma,
    HyperExponential,
    LogNormal,
    Mixture,
    Pareto,
    Uniform,
    Weibull,
)
from repro.exceptions import ModelValidationError
from repro.simulation.rng import BlockCursor, RngStreams, fnv1a64

# Every family that opts into block pregeneration (block_sampling_safe
# = True), with non-trivial parameters. If a new family opts in, add it
# here — the contract test below is the gate.
BLOCK_SAFE = [
    Exponential(rate=2.5),
    Uniform(low=0.2, high=1.7),
    Gamma(k=2.3, rate=1.9),
    Erlang(k=3, rate=4.0),
    Pareto(alpha=2.8, xm=0.5),
    LogNormal(mean=1.2, scv=1.8),
    Weibull(k=1.6, lam=0.9),
    Deterministic(0.75),
    Exponential(rate=2.0).scaled(0.4),  # elementwise wrapper delegates
    Gamma(k=1.5, rate=2.0).shifted(0.3),
]

ids = [repr(d) for d in BLOCK_SAFE]


@pytest.mark.parametrize("dist", BLOCK_SAFE, ids=ids)
def test_block_draw_equals_scalar_draws(dist):
    """One size=n block consumes the bit stream exactly like n scalars."""
    assert dist.block_sampling_safe
    n = 257
    block = np.asarray(dist.sample(np.random.default_rng(42), n))
    rng = np.random.default_rng(42)
    scalars = np.array([float(dist.sample(rng)) for _ in range(n)])
    np.testing.assert_array_equal(block, scalars)


@pytest.mark.parametrize("dist", BLOCK_SAFE, ids=ids)
def test_cursor_matches_scalar_engine(dist):
    """A BlockCursor is bit-identical to scalar draws across refills."""
    block_size = 64
    n = 3 * block_size + 17  # several refills plus a partial block
    cursor = BlockCursor(np.random.default_rng(7), dist.sample, block_size=block_size)
    from_cursor = [cursor() for _ in range(n)]
    rng = np.random.default_rng(7)
    scalars = [float(dist.sample(rng)) for _ in range(n)]
    assert from_cursor == scalars


def test_cursor_refill_boundary_is_invisible():
    """Values straddling a refill come from one continuous stream."""
    dist = Exponential(rate=1.0)
    cursor = BlockCursor(np.random.default_rng(0), dist.sample, block_size=4)
    sequence = [cursor() for _ in range(10)]
    direct = np.random.default_rng(0)
    blocks = np.concatenate([dist.sample(direct, 4) for _ in range(3)])
    assert sequence == blocks[:10].tolist()


def test_cursor_rejects_bad_block_size():
    with pytest.raises(ModelValidationError):
        BlockCursor(np.random.default_rng(0), Exponential(1.0).sample, block_size=0)


def test_unsafe_families_stay_scalar():
    """Branch-then-draw families must NOT opt in: their block path
    (all branch choices, then all branch draws) interleaves the bit
    stream differently from the scalar path."""
    h2 = HyperExponential.balanced_from_mean_scv(mean=1.0, scv=4.0)
    mix = Mixture(probs=[0.3, 0.7], components=[Exponential(1.0), Exponential(5.0)])
    assert not h2.block_sampling_safe
    assert not mix.block_sampling_safe
    # And the divergence is real, not hypothetical:
    n = 50
    block = np.asarray(h2.sample(np.random.default_rng(5), n))
    rng = np.random.default_rng(5)
    scalars = np.array([float(h2.sample(rng)) for _ in range(n)])
    assert not np.array_equal(block, scalars)


def test_hyperexponential_scalar_fast_path_is_bit_exact():
    """The simulator's inlined H2 draw (CDF searchsorted + scaled
    standard exponential) consumes the stream exactly like the
    reference choice()+exponential() pair."""
    h2 = HyperExponential(probs=[0.25, 0.75], rates=[4.0, 0.8])
    rng_fast = np.random.default_rng(11)
    fast = [float(h2.sample(rng_fast)) for _ in range(200)]
    rng_ref = np.random.default_rng(11)
    ref = []
    for _ in range(200):
        branch = int(rng_ref.choice(2, p=h2.probs))
        ref.append(float(rng_ref.exponential(scale=1.0 / h2.rates[branch])))
    assert fast == ref


def test_wrappers_delegate_block_safety():
    safe = Exponential(1.0)
    unsafe = HyperExponential.balanced_from_mean_scv(1.0, 2.0)
    assert safe.scaled(2.0).block_sampling_safe
    assert safe.shifted(0.1).block_sampling_safe
    assert not unsafe.shifted(0.1).block_sampling_safe
    # HyperExponential.scaled returns a (still unsafe) HyperExponential.
    assert not unsafe.scaled(2.0).block_sampling_safe


def test_fnv1a64_digest_is_stable_and_cached():
    # Reference recomputation, independent of the module's cache.
    def ref(name):
        digest = 0xCBF29CE484222325
        for ch in name.encode():
            digest = ((digest ^ ch) * 0x100000001B3) & ((1 << 64) - 1)
        return digest

    for name in ("", "arrival.web", "service.db.batch", "x" * 100):
        assert fnv1a64(name) == ref(name)
        assert fnv1a64(name) == fnv1a64(name)  # cache hit, same value


def test_streams_unaffected_by_block_consumption():
    """Pulling a cursor on one stream never perturbs another stream —
    the common-random-numbers property the engine relies on."""
    streams_a = RngStreams(3)
    cursor = BlockCursor(streams_a.stream("svc"), Exponential(2.0).sample, block_size=8)
    for _ in range(20):
        cursor()
    arrivals_a = streams_a.stream("arrivals").random(6)
    arrivals_b = RngStreams(3).stream("arrivals").random(6)
    np.testing.assert_array_equal(arrivals_a, arrivals_b)
