"""Run manifest: fingerprint determinism, fields, atomic writing."""

import json

from repro import obs
from repro.cluster import ClusterModel
from repro.obs.manifest import (
    MANIFEST_VERSION,
    build_manifest,
    config_fingerprint,
    write_manifest,
)
from repro.workload import Workload


class TestConfigFingerprint:
    def test_deterministic_for_equal_configs(self, three_tier_cluster, three_class_workload):
        a = config_fingerprint({"cluster": three_tier_cluster, "workload": three_class_workload})
        b = config_fingerprint({"cluster": three_tier_cluster, "workload": three_class_workload})
        assert a == b and len(a) == 64

    def test_structurally_equal_rebuilds_hash_identically(self, basic_spec):
        """Two independently-built equal configurations fingerprint the
        same (the cache.py canonical-JSON guarantee, inherited here)."""
        from repro.distributions import Exponential
        from repro.cluster import Tier

        def build():
            return ClusterModel([Tier("t", (Exponential(1.0),), basic_spec)])

        assert config_fingerprint(build()) == config_fingerprint(build())

    def test_different_config_different_fingerprint(self, three_tier_cluster):
        a = config_fingerprint(three_tier_cluster)
        b = config_fingerprint(three_tier_cluster.with_speeds([0.9, 0.9, 0.9]))
        assert a != b

    def test_matches_simulation_cache_reduction(self, three_tier_cluster):
        """Same canonical reduction as the replication cache: hashing
        the cache's own _jsonable payload reproduces the fingerprint."""
        import hashlib

        from repro.simulation.cache import _jsonable

        payload = json.dumps(
            _jsonable(three_tier_cluster), sort_keys=True, separators=(",", ":")
        )
        assert config_fingerprint(three_tier_cluster) == hashlib.sha256(payload.encode()).hexdigest()

    def test_unfingerprintable_config_is_none(self):
        assert config_fingerprint({"fn": lambda x: x}) is None

    def test_none_config_is_none(self):
        assert config_fingerprint(None) is None


class TestBuildManifest:
    def test_deterministic_fields_for_fixed_seed_and_config(self, three_tier_cluster):
        """The reproducibility-relevant fields are identical run to run
        for a fixed seed + configuration."""
        deterministic = ("manifest_version", "package", "version", "command", "seed",
                        "config_fingerprint")
        a = build_manifest(command=["repro", "run", "T1"], seed=7, config=three_tier_cluster)
        b = build_manifest(command=["repro", "run", "T1"], seed=7, config=three_tier_cluster)
        assert {k: a[k] for k in deterministic} == {k: b[k] for k in deterministic}
        assert a["manifest_version"] == MANIFEST_VERSION
        assert a["seed"] == 7
        assert a["config_fingerprint"] == config_fingerprint(three_tier_cluster)

    def test_host_and_version_fields(self):
        man = build_manifest()
        assert man["package"] == "repro"
        assert man["host"]["cpu_count"] >= 1
        assert man["host"]["python"]
        assert man["created_unix"] > 0

    def test_manifest_is_json_serializable(self, telemetry):
        with telemetry.tracer.span("root", k=1):
            pass
        telemetry.metrics.counter("c").add(2)
        man = build_manifest(
            metrics_snapshot=telemetry.metrics.snapshot(),
            spans=[s.as_dict() for s in telemetry.tracer.roots],
            extra={"note": "x"},
        )
        round_tripped = json.loads(json.dumps(man))
        assert round_tripped["spans"][0]["name"] == "root"
        assert round_tripped["metrics"]["c"]["value"] == 2
        assert round_tripped["extra"] == {"note": "x"}

    def test_write_manifest_atomic(self, tmp_path):
        path = write_manifest(tmp_path / "sub" / "manifest.json", build_manifest(seed=1))
        assert path.exists()
        assert json.loads(path.read_text())["seed"] == 1
        assert not list((tmp_path / "sub").glob("*.tmp.*"))


class TestTelemetrySession:
    def test_session_writes_manifest_and_events(self, tmp_path):
        out = tmp_path / "artifact"
        with obs.telemetry_session(out, command=["repro", "x"]) as tel:
            tel.annotate(seed=3, config={"k": 1})
            with obs.span("outer"):
                obs.event("tick", i=1)
            obs.counter("n").add(4)
        manifest = json.loads((out / obs.MANIFEST_FILENAME).read_text())
        events = [
            json.loads(line)
            for line in (out / obs.EVENTS_FILENAME).read_text().splitlines()
        ]
        assert manifest["seed"] == 3
        assert manifest["command"] == ["repro", "x"]
        assert manifest["metrics"]["n"]["value"] == 4
        assert [s["name"] for s in manifest["spans"]] == ["outer"]
        assert [(e["type"], e["name"]) for e in events] == [("event", "tick"), ("span", "outer")]
        assert not obs.is_enabled()

    def test_session_finalizes_on_error(self, tmp_path):
        out = tmp_path / "artifact"
        try:
            with obs.telemetry_session(out):
                obs.event("before_crash")
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert (out / obs.MANIFEST_FILENAME).exists()
        assert "before_crash" in (out / obs.EVENTS_FILENAME).read_text()
        assert not obs.is_enabled()

    def test_session_without_out_dir_collects_in_memory(self):
        with obs.telemetry_session(None) as tel:
            with obs.span("s"):
                pass
            assert len(tel.tracer.roots) == 1
        assert not obs.is_enabled()


class TestWorkloadFingerprint:
    def test_workload_fingerprints(self, three_class_workload):
        assert isinstance(three_class_workload, Workload)
        assert config_fingerprint(three_class_workload)
