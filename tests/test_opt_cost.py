"""P3 optimizer tests (minimize cost under per-class SLAs)."""

import numpy as np
import pytest

from repro.baselines import exhaustive_cost_minimization
from repro.core import SLA, ClassSLA, end_to_end_delays, minimize_cost
from repro.exceptions import InfeasibleProblemError, ModelValidationError
from repro.experiments.common import (
    canonical_cluster,
    canonical_sla,
    canonical_workload,
    small_cluster,
    small_sla,
    small_workload,
)


class TestMinimizeCostSmall:
    def test_matches_exhaustive_default_sla(self):
        cluster, workload, sla = small_cluster(), small_workload(), small_sla()
        alloc = minimize_cost(cluster, workload, sla, max_servers_per_tier=8, optimize_speeds=False)
        counts, cost, _ = exhaustive_cost_minimization(cluster, workload, sla, 8)
        assert alloc.total_cost == pytest.approx(cost)

    @pytest.mark.parametrize("tightness", [0.6, 0.8, 1.2])
    def test_matches_exhaustive_across_tightness(self, tightness):
        cluster, workload = small_cluster(), small_workload()
        sla = small_sla(tightness)
        alloc = minimize_cost(cluster, workload, sla, max_servers_per_tier=10, optimize_speeds=False)
        _, cost, _ = exhaustive_cost_minimization(cluster, workload, sla, 10)
        assert alloc.total_cost == pytest.approx(cost)

    def test_sla_actually_met(self):
        cluster, workload, sla = small_cluster(), small_workload(), small_sla()
        alloc = minimize_cost(cluster, workload, sla)
        assert sla.is_met(alloc.delays, workload, tol=1e-9)

    def test_cost_monotone_in_tightness(self):
        cluster, workload = small_cluster(), small_workload()
        costs = [
            minimize_cost(cluster, workload, small_sla(t), optimize_speeds=False).total_cost
            for t in (1.5, 1.0, 0.6)
        ]
        assert costs[0] <= costs[1] <= costs[2]

    def test_cost_monotone_in_load(self):
        cluster, sla = small_cluster(), small_sla()
        costs = [
            minimize_cost(cluster, small_workload(f), sla, optimize_speeds=False).total_cost
            for f in (0.5, 1.0, 2.0)
        ]
        assert costs[0] <= costs[1] <= costs[2]

    def test_speed_optimization_reduces_power_not_cost(self):
        cluster, workload, sla = small_cluster(), small_workload(), small_sla()
        fast = minimize_cost(cluster, workload, sla, optimize_speeds=False)
        tuned = minimize_cost(cluster, workload, sla, optimize_speeds=True)
        assert tuned.total_cost == pytest.approx(fast.total_cost)
        assert tuned.average_power <= fast.average_power + 1e-6
        # The tuned configuration still meets the SLA.
        assert sla.is_met(tuned.delays, workload, tol=1e-6)

    def test_impossible_sla_raises(self):
        cluster, workload = small_cluster(), small_workload()
        # Bound below the zero-queueing service time at max speed.
        impossible = SLA([ClassSLA("gold", 0.01), ClassSLA("bronze", 0.01)])
        with pytest.raises(InfeasibleProblemError):
            minimize_cost(cluster, workload, impossible, max_servers_per_tier=16)

    def test_bad_cap(self):
        with pytest.raises(ModelValidationError):
            minimize_cost(small_cluster(), small_workload(), small_sla(), max_servers_per_tier=0)

    def test_auto_bound_mode(self):
        cluster, workload, sla = small_cluster(), small_workload(), small_sla()
        alloc = minimize_cost(cluster, workload, sla, max_servers_per_tier=None)
        assert sla.is_met(alloc.delays, workload, tol=1e-6)


class TestMinimizeCostCanonical:
    def test_canonical_solves(self):
        alloc = minimize_cost(canonical_cluster(), canonical_workload(), canonical_sla())
        assert alloc.total_cost > 0
        assert np.all(alloc.server_counts >= 1)
        assert canonical_sla().is_met(alloc.delays, canonical_workload(), tol=1e-6)

    def test_allocation_stable(self):
        alloc = minimize_cost(canonical_cluster(), canonical_workload(), canonical_sla())
        assert alloc.cluster.is_stable(canonical_workload().arrival_rates)

    def test_evaluations_counted(self):
        alloc = minimize_cost(
            canonical_cluster(), canonical_workload(), canonical_sla(), optimize_speeds=False
        )
        assert alloc.n_evaluations >= 1

    def test_evaluation_counters_in_meta(self):
        alloc = minimize_cost(
            canonical_cluster(), canonical_workload(), canonical_sla(), optimize_speeds=False
        )
        assert alloc.meta["evals"] == alloc.n_evaluations
        # The local search re-probes neighbors the greedy phase already
        # certified, so the memo must record cache hits.
        assert alloc.meta["evals_cached"] > 0


class TestWarmStartAndMemo:
    """counts_hint / feasibility_memo threading through minimize_cost."""

    def test_counts_hint_reproduces_cold_optimum_cheaper(self):
        cluster, workload, sla = small_cluster(), small_workload(), small_sla()
        cold = minimize_cost(cluster, workload, sla, max_servers_per_tier=8, optimize_speeds=False)
        warm = minimize_cost(
            cluster,
            workload,
            sla,
            max_servers_per_tier=8,
            optimize_speeds=False,
            counts_hint=cold.server_counts,
        )
        np.testing.assert_array_equal(warm.server_counts, cold.server_counts)
        assert warm.total_cost == pytest.approx(cold.total_cost)
        assert "counts_hint" in warm.meta
        assert warm.n_evaluations <= cold.n_evaluations

    def test_infeasible_hint_falls_back_to_greedy(self):
        cluster, workload, sla = small_cluster(), small_workload(), small_sla()
        cold = minimize_cost(cluster, workload, sla, max_servers_per_tier=8, optimize_speeds=False)
        warm = minimize_cost(
            cluster,
            workload,
            sla,
            max_servers_per_tier=8,
            optimize_speeds=False,
            counts_hint=np.array([1, 1]),
        )
        assert warm.total_cost == pytest.approx(cold.total_cost)

    def test_shared_memo_drives_repeat_solve_to_zero_fresh_evals(self):
        cluster, workload, sla = small_cluster(), small_workload(), small_sla()
        memo: dict = {}
        first = minimize_cost(
            cluster, workload, sla, max_servers_per_tier=8,
            optimize_speeds=False, feasibility_memo=memo,
        )
        assert first.n_evaluations > 0 and len(memo) == first.n_evaluations
        second = minimize_cost(
            cluster, workload, sla, max_servers_per_tier=8,
            optimize_speeds=False, feasibility_memo=memo,
        )
        assert second.n_evaluations == 0
        assert second.meta["evals_cached"] > 0
        assert second.total_cost == pytest.approx(first.total_cost)
        np.testing.assert_array_equal(second.server_counts, first.server_counts)

    def test_memo_shared_across_widening_caps(self):
        # The T4 continuation pattern: same triple, growing cap.
        cluster, workload, sla = small_cluster(), small_workload(), small_sla()
        memo: dict = {}
        small = minimize_cost(
            cluster, workload, sla, max_servers_per_tier=6,
            optimize_speeds=False, feasibility_memo=memo,
        )
        wide = minimize_cost(
            cluster, workload, sla, max_servers_per_tier=8,
            optimize_speeds=False, counts_hint=small.server_counts, feasibility_memo=memo,
        )
        assert wide.total_cost == pytest.approx(small.total_cost)
        assert wide.n_evaluations < small.n_evaluations

    def test_removing_any_server_breaks_sla_or_cost_minimality(self):
        # Local optimality: no single-server removal stays feasible.
        workload, sla = canonical_workload(), canonical_sla()
        alloc = minimize_cost(canonical_cluster(), workload, sla, optimize_speeds=False)
        at_max = alloc.cluster
        bounds = sla.delay_bounds(workload)
        for i in range(len(alloc.server_counts)):
            counts = alloc.server_counts.copy()
            if counts[i] <= 1:
                continue
            counts[i] -= 1
            candidate = at_max.with_servers(counts)
            try:
                delays = end_to_end_delays(candidate, workload)
                assert not np.all(delays <= bounds), (
                    f"removing a server from tier {i} keeps the SLA — not locally optimal"
                )
            except Exception:
                pass  # unstable: certainly infeasible


class TestExhaustiveBaseline:
    def test_space_guard(self):
        with pytest.raises(ModelValidationError):
            exhaustive_cost_minimization(
                canonical_cluster(), canonical_workload(), canonical_sla(), 400
            )

    def test_infeasible_raises(self):
        impossible = SLA([ClassSLA("gold", 0.01), ClassSLA("bronze", 0.01)])
        with pytest.raises(InfeasibleProblemError):
            exhaustive_cost_minimization(small_cluster(), small_workload(), impossible, 4)

    def test_returns_feasible_minimum(self):
        cluster, workload, sla = small_cluster(), small_workload(), small_sla()
        counts, cost, evals = exhaustive_cost_minimization(cluster, workload, sla, 6)
        delays = end_to_end_delays(
            cluster.with_speeds([t.spec.max_speed for t in cluster.tiers]).with_servers(counts),
            workload,
        )
        assert sla.is_met(delays, workload)
        assert evals >= 1


class TestSolverDiagnostics:
    def test_p3_embedded_speed_solve_reports_status_zero(self):
        cluster, workload, sla = small_cluster(), small_workload(), small_sla()
        alloc = minimize_cost(cluster, workload, sla, optimize_speeds=True)
        p2b = alloc.meta.get("speed_optimization")
        if p2b is None:
            pytest.skip("speed optimization rejected/failed for this instance")
        assert p2b.success and p2b.status == 0
        assert p2b.nit > 0 and p2b.nfev > 0
