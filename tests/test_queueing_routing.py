"""Probabilistic-routing (traffic equation) tests."""

import numpy as np
import pytest

from repro.exceptions import ModelValidationError
from repro.queueing import visit_ratio_matrix, visit_ratios_from_routing


class TestVisitRatios:
    def test_pure_tandem(self):
        r = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 0.0]])
        np.testing.assert_allclose(visit_ratios_from_routing(r, 0), [1.0, 1.0, 1.0])

    def test_self_loop_geometric(self):
        # Retry with probability p: v = 1 / (1 - p).
        for p in (0.1, 0.5, 0.9):
            v = visit_ratios_from_routing(np.array([[p]]), 0)
            assert v[0] == pytest.approx(1.0 / (1.0 - p))

    def test_db_retry_pattern(self):
        # app -> db, db retries app with prob 0.25.
        r = np.array([[0.0, 1.0], [0.25, 0.0]])
        v = visit_ratios_from_routing(r, 0)
        # v_app = 1 + 0.25 v_db; v_db = v_app  =>  v_app = 4/3.
        assert v[0] == pytest.approx(4.0 / 3.0)
        assert v[1] == pytest.approx(4.0 / 3.0)

    def test_branching_entry_distribution(self):
        r = np.zeros((2, 2))
        v = visit_ratios_from_routing(r, np.array([0.3, 0.7]))
        np.testing.assert_allclose(v, [0.3, 0.7])

    def test_skip_tier(self):
        # Class enters at station 1, never touches station 0.
        r = np.zeros((2, 2))
        v = visit_ratios_from_routing(r, 1)
        np.testing.assert_allclose(v, [0.0, 1.0])

    def test_nonterminating_chain_rejected(self):
        with pytest.raises(ModelValidationError):
            visit_ratios_from_routing(np.array([[1.0]]), 0)
        with pytest.raises(ModelValidationError):
            visit_ratios_from_routing(np.array([[0.0, 1.0], [1.0, 0.0]]), 0)

    def test_bad_matrix(self):
        with pytest.raises(ModelValidationError):
            visit_ratios_from_routing(np.array([[0.5, 0.6]]), 0)  # not square
        with pytest.raises(ModelValidationError):
            visit_ratios_from_routing(np.array([[-0.1]]), 0)
        with pytest.raises(ModelValidationError):
            visit_ratios_from_routing(np.array([[0.7, 0.5], [0.0, 0.0]]), 0)  # row > 1

    def test_bad_entry(self):
        r = np.zeros((2, 2))
        with pytest.raises(ModelValidationError):
            visit_ratios_from_routing(r, 5)
        with pytest.raises(ModelValidationError):
            visit_ratios_from_routing(r, np.array([0.5, 0.6]))

    def test_matrix_builder(self):
        tandem = np.array([[0.0, 1.0], [0.0, 0.0]])
        retry = np.array([[0.0, 1.0], [0.5, 0.0]])
        v = visit_ratio_matrix([tandem, retry])
        assert v.shape == (2, 2)
        np.testing.assert_allclose(v[0], [1.0, 1.0])
        np.testing.assert_allclose(v[1], [2.0, 2.0])

    def test_matrix_builder_validation(self):
        with pytest.raises(ModelValidationError):
            visit_ratio_matrix([])
        with pytest.raises(ModelValidationError):
            visit_ratio_matrix([np.zeros((2, 2))], entries=[0, 1])


class TestRoutingIntoClusterModel:
    def test_end_to_end_with_feedback(self, basic_spec):
        from repro.cluster import ClusterModel, Tier
        from repro.core.delay import end_to_end_delays
        from repro.distributions import Exponential
        from repro.workload import workload_from_rates

        tiers = [
            Tier("app", (Exponential(4.0),), basic_spec),
            Tier("db", (Exponential(5.0),), basic_spec),
        ]
        retry = np.array([[0.0, 1.0], [0.25, 0.0]])
        v = visit_ratio_matrix([retry])
        cluster = ClusterModel(tiers, visit_ratios=v)
        wl = workload_from_rates([1.0])
        t = end_to_end_delays(cluster, wl)
        # More visits than the pure tandem -> strictly larger delay.
        tandem = ClusterModel(tiers)
        assert t[0] > end_to_end_delays(tandem, wl)[0]
        # Station loads reflect the 4/3 visit ratio.
        rates = cluster.network().station_arrival_rates(wl.arrival_rates)
        np.testing.assert_allclose(rates[0], [4.0 / 3.0, 4.0 / 3.0])
