"""CLI and experiment-registry tests."""

import pytest

from repro.cli import build_parser, main
from repro.exceptions import ModelValidationError
from repro.experiments.registry import REGISTRY, get_experiment, run_experiment


class TestRegistry:
    def test_all_ids_present(self):
        expected = {
            "T1", "T2", "T3", "T4", "T5",
            "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9",
            "A1", "A2", "A3", "A4", "A5", "A6", "A7",
        }
        assert set(REGISTRY) == expected

    def test_lookup_case_insensitive(self):
        assert get_experiment("f1").id == "F1"

    def test_unknown_id(self):
        with pytest.raises(ModelValidationError):
            get_experiment("Z9")

    def test_quick_run_analytic_experiment(self):
        text = run_experiment("F1", quick=True)
        assert "load factor" in text

    def test_quick_run_via_experiment_object(self):
        exp = get_experiment("F6")
        result = exp.run(quick=True)
        assert "F6" in exp.render(result)


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "T1", "--quick"])
        assert args.experiment_id == "T1" and args.quick

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "A4" in out

    def test_report_command(self, capsys):
        assert main(["report", "--load-factor", "1.2"]) == 0
        out = capsys.readouterr().out
        assert "gold" in out and "power" in out

    def test_run_command_writes_file(self, capsys, tmp_path):
        out_file = tmp_path / "f1.txt"
        assert main(["run", "F1", "--quick", "--out", str(out_file)]) == 0
        assert out_file.read_text().startswith("F1")

    def test_solve_p1(self, capsys):
        assert main(["solve", "p1"]) == 0
        assert "P1" in capsys.readouterr().out

    def test_solve_p3(self, capsys):
        assert main(["solve", "p3"]) == 0
        out = capsys.readouterr().out
        assert "servers" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
