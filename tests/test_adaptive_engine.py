"""Adaptive precision-targeted replication engine + CRN comparisons.

Covers the sequential stopping rule of
:func:`repro.simulation.simulate_replications_adaptive`:

1. ``PrecisionTarget`` validation and its scalar → metric expansion.
2. The reproducibility contract — the chosen prefix (and therefore
   every exported aggregate) is bit-identical across reruns, round
   sizes, worker counts, and against a fixed-count run of the same
   length at the same seed.
3. Stopping behaviour: loose targets stop at ``min_replications``,
   unreachable targets stop at the cap with ``target_met == False``,
   the antithetic estimator always simulates whole pairs.
4. Cache interplay: a warm second adaptive run replays entirely from
   the on-disk cache.
5. Telemetry: per-round ``sim.adaptive.round`` events and the
   engine counters.
6. :func:`repro.simulation.compare_scenarios` — CRN pairing produces a
   strictly tighter difference interval than independent streams (the
   A2 acceptance property), and each side is bit-identical to a plain
   replication run at the same seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelValidationError
from repro.simulation import (
    PrecisionTarget,
    Scenario,
    compare_scenarios,
    simulate_replications,
    simulate_replications_adaptive,
)
from repro.simulation.adaptive import DEFAULT_METRICS


def _adaptive(cluster, workload, target, seed=42, **kw):
    return simulate_replications_adaptive(
        cluster, workload, horizon=300.0, target=target, seed=seed, **kw
    )


LOOSE = dict(rel_ci={"mean_delay": 0.9}, min_replications=3, max_replications=12)
#: Calibrated on the two-class fixture at horizon 300, seed 42: the
#: naive estimator needs 5 replications over 3 rounds — enough rounds
#: to make the invariance assertions meaningful.
MULTI_ROUND = PrecisionTarget(
    rel_ci={"mean_delay": 0.3},
    min_replications=3,
    max_replications=24,
    round_size=1,
    estimator="naive",
)


class TestPrecisionTargetValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"level": 0.0},
            {"level": 1.0},
            {"estimator": "bootstrap"},
            {"min_replications": 1},
            {"min_replications": 8, "max_replications": 4},
            {"round_size": 0},
            {"rel_ci": 1.5},
            {"rel_ci": {"mean_delay": 0.0}},
            {"rel_ci": {}},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ModelValidationError):
            PrecisionTarget(**kwargs)

    def test_scalar_tolerance_expands_to_default_metrics(self):
        tgt = PrecisionTarget(rel_ci=0.05)
        assert tgt.metric_targets() == {m: 0.05 for m in DEFAULT_METRICS}

    def test_mapping_is_taken_verbatim(self):
        tgt = PrecisionTarget(rel_ci={"delay/hi": 0.1})
        assert tgt.metric_targets() == {"delay/hi": 0.1}

    def test_as_dict_round_trips_the_configuration(self):
        tgt = PrecisionTarget(rel_ci=0.02, min_replications=4, max_replications=16)
        d = tgt.as_dict()
        assert d["rel_ci"] == {m: 0.02 for m in DEFAULT_METRICS}
        assert d["min_replications"] == 4 and d["max_replications"] == 16
        assert d["estimator"] == "cv"


class TestStoppingRule:
    def test_loose_target_stops_at_min_replications(
        self, two_class_cluster, two_class_workload
    ):
        rep = _adaptive(two_class_cluster, two_class_workload, PrecisionTarget(**LOOSE))
        ad = rep.meta["adaptive"]
        assert ad["target_met"] is True
        assert ad["n_used"] == 3 and ad["n_rounds"] == 1
        assert rep.n_replications == 3
        assert ad["reps_saved_vs_cap"] == 12 - ad["n_simulated"]

    def test_unreachable_target_stops_at_cap(
        self, two_class_cluster, two_class_workload
    ):
        tgt = PrecisionTarget(
            rel_ci={"mean_delay": 0.001},
            min_replications=3,
            max_replications=5,
            round_size=1,
            estimator="naive",
        )
        rep = _adaptive(two_class_cluster, two_class_workload, tgt)
        ad = rep.meta["adaptive"]
        assert ad["target_met"] is False
        assert ad["n_used"] == ad["n_simulated"] == 5
        assert ad["reps_saved_vs_cap"] == 0
        assert rep.n_replications == 5

    def test_round_trace_records_the_decision(
        self, two_class_cluster, two_class_workload
    ):
        rep = _adaptive(two_class_cluster, two_class_workload, MULTI_ROUND)
        ad = rep.meta["adaptive"]
        rounds = ad["rounds"]
        assert [r["round"] for r in rounds] == list(range(ad["n_rounds"]))
        assert all(r["stop_at"] is None for r in rounds[:-1])
        assert rounds[-1]["stop_at"] == ad["n_used"]
        assert all("mean_delay" in r["estimates"] for r in rounds)
        # n_available grows by round_size=1 after the min-sized first round.
        avail = [r["n_available"] for r in rounds]
        assert avail[0] == 3 and all(b - a == 1 for a, b in zip(avail, avail[1:]))

    def test_antithetic_estimator_simulates_whole_pairs(
        self, two_class_cluster, two_class_workload
    ):
        tgt = PrecisionTarget(
            rel_ci={"mean_delay": 0.9},
            min_replications=4,
            max_replications=8,
            estimator="antithetic",
        )
        rep = _adaptive(two_class_cluster, two_class_workload, tgt)
        ad = rep.meta["adaptive"]
        assert ad["target_met"] is True
        assert ad["n_used"] % 2 == 0 and ad["n_simulated"] % 2 == 0
        assert 4 <= ad["n_used"] <= 8
        # The stopping unit is the pair: n_units counts pairs, not runs.
        assert ad["estimates"]["mean_delay"]["n_units"] == ad["n_used"] // 2

    def test_unknown_metric_raises(self, two_class_cluster, two_class_workload):
        tgt = PrecisionTarget(rel_ci={"throughput": 0.1}, min_replications=2)
        with pytest.raises(ModelValidationError, match="unknown metric"):
            _adaptive(two_class_cluster, two_class_workload, tgt)

    def test_unknown_class_in_delay_metric_raises(
        self, two_class_cluster, two_class_workload
    ):
        tgt = PrecisionTarget(rel_ci={"delay/platinum": 0.1}, min_replications=2)
        with pytest.raises(ModelValidationError, match="unknown class"):
            _adaptive(two_class_cluster, two_class_workload, tgt)

    def test_vr_factor_and_both_estimate_families_reported(
        self, two_class_cluster, two_class_workload
    ):
        rep = _adaptive(
            two_class_cluster,
            two_class_workload,
            PrecisionTarget(rel_ci=0.9, min_replications=3, max_replications=12),
        )
        ad = rep.meta["adaptive"]
        for m in DEFAULT_METRICS:
            assert ad["estimates"][m]["n_units"] == ad["n_used"]
            assert ad["naive_estimates"][m]["method"] == "naive"
            assert ad["vr_factor"][m] > 0.0


class TestReproducibilityContract:
    def test_identical_reruns_are_bit_identical(
        self, two_class_cluster, two_class_workload
    ):
        a = _adaptive(two_class_cluster, two_class_workload, MULTI_ROUND)
        b = _adaptive(two_class_cluster, two_class_workload, MULTI_ROUND)
        assert a.meta["adaptive"]["rounds"] == b.meta["adaptive"]["rounds"]
        assert a.mean_delay == b.mean_delay
        assert np.array_equal(a.delays, b.delays)
        assert a.average_power == b.average_power

    def test_round_size_does_not_change_the_result(
        self, two_class_cluster, two_class_workload
    ):
        small = _adaptive(two_class_cluster, two_class_workload, MULTI_ROUND)
        assert small.meta["adaptive"]["n_rounds"] > 1  # the knob matters here
        big = _adaptive(
            two_class_cluster,
            two_class_workload,
            PrecisionTarget(
                rel_ci={"mean_delay": 0.3},
                min_replications=3,
                max_replications=24,
                round_size=5,
                estimator="naive",
            ),
        )
        assert big.meta["adaptive"]["n_used"] == small.meta["adaptive"]["n_used"]
        assert big.mean_delay == small.mean_delay
        assert np.array_equal(big.delays, small.delays)
        assert big.average_power == small.average_power

    def test_n_jobs_does_not_change_the_result(
        self, two_class_cluster, two_class_workload
    ):
        serial = _adaptive(two_class_cluster, two_class_workload, MULTI_ROUND)
        parallel = _adaptive(
            two_class_cluster, two_class_workload, MULTI_ROUND, n_jobs=2
        )
        assert parallel.meta["adaptive"]["n_used"] == serial.meta["adaptive"]["n_used"]
        assert parallel.mean_delay == serial.mean_delay
        assert np.array_equal(parallel.delays, serial.delays)
        assert parallel.average_power == serial.average_power

    def test_aggregates_match_fixed_count_run_exactly(
        self, two_class_cluster, two_class_workload
    ):
        adaptive = _adaptive(two_class_cluster, two_class_workload, MULTI_ROUND)
        fixed = simulate_replications(
            two_class_cluster,
            two_class_workload,
            horizon=300.0,
            n_replications=adaptive.n_replications,
            seed=42,
        )
        assert adaptive.mean_delay == fixed.mean_delay
        assert adaptive.mean_delay_ci == fixed.mean_delay_ci
        assert np.array_equal(adaptive.delays, fixed.delays)
        assert np.array_equal(adaptive.delays_ci, fixed.delays_ci)
        assert adaptive.average_power == fixed.average_power
        assert adaptive.average_power_ci == fixed.average_power_ci


class TestCacheInterplay:
    def test_second_adaptive_run_replays_from_cache(
        self, tmp_path, two_class_cluster, two_class_workload
    ):
        cold = _adaptive(
            two_class_cluster, two_class_workload, MULTI_ROUND, cache_dir=str(tmp_path)
        )
        assert cold.meta["cache_hits"] == 0
        assert cold.meta["cache_misses"] == cold.meta["adaptive"]["n_simulated"]
        warm = _adaptive(
            two_class_cluster, two_class_workload, MULTI_ROUND, cache_dir=str(tmp_path)
        )
        assert warm.meta["cache_misses"] == 0
        assert warm.meta["cache_hits"] == warm.meta["adaptive"]["n_simulated"]
        assert warm.mean_delay == cold.mean_delay
        assert np.array_equal(warm.delays, cold.delays)


class TestAdaptiveTelemetry:
    def test_round_events_and_counters(
        self, telemetry, two_class_cluster, two_class_workload
    ):
        from repro.obs.sinks import InMemorySink

        sink = InMemorySink()
        telemetry.tracer.sinks.append(sink)
        rep = _adaptive(two_class_cluster, two_class_workload, MULTI_ROUND)
        ad = rep.meta["adaptive"]
        rounds = [ev for ev in sink.events if ev["name"] == "sim.adaptive.round"]
        assert len(rounds) == ad["n_rounds"]
        last = rounds[-1]["fields"]
        assert last["stop_at"] == ad["n_used"]
        assert last["rel_ci.mean_delay"] <= 0.3
        assert telemetry.metrics.counter("sim.adaptive.rounds").value == ad["n_rounds"]
        assert (
            telemetry.metrics.counter("sim.adaptive.reps_saved").value
            == 24 - ad["n_simulated"]
        )


def _priority_cluster(basic_spec, discipline):
    from repro.cluster import ClusterModel, Tier
    from repro.distributions import Exponential

    return ClusterModel(
        [
            Tier(
                "only",
                (Exponential(1.0), Exponential(1.0)),
                basic_spec,
                servers=1,
                speed=1.0,
                discipline=discipline,
            )
        ]
    )


class TestCompareScenarios:
    def test_needs_two_replications(self, two_class_cluster, two_class_workload):
        sc = Scenario(two_class_cluster, two_class_workload)
        with pytest.raises(ModelValidationError, match="at least 2"):
            compare_scenarios(sc, sc, horizon=100.0, n_replications=1)

    def test_crn_paired_interval_strictly_tighter_than_independent(
        self, basic_spec, two_class_workload
    ):
        # The A2 acceptance property: non-preemptive vs preemptive-resume
        # priority under CRN. Both sides see the same arrivals and
        # demands, so the within-pair correlation is near 1 and the
        # paired-t difference interval must beat the Welch interval that
        # ignores the pairing — strictly, and by a wide margin.
        comp = compare_scenarios(
            Scenario(_priority_cluster(basic_spec, "priority_np"), two_class_workload, label="np"),
            Scenario(_priority_cluster(basic_spec, "priority_pr"), two_class_workload, label="pr"),
            horizon=400.0,
            n_replications=5,
            seed=7,
        )
        for metric in ("mean_delay", "average_power"):
            row = comp.metrics[metric]
            assert row["paired"].halfwidth < row["independent"].halfwidth
            assert row["vr_factor"] > 1.0
            assert row["correlation"] > 0.9
        assert comp.paired("mean_delay").method == "crn-paired"
        assert comp.vr_factor("mean_delay") > 10.0

    def test_sides_are_bit_identical_to_plain_replication_runs(
        self, two_class_cluster, two_class_workload
    ):
        sc = Scenario(two_class_cluster, two_class_workload, label="a")
        comp = compare_scenarios(sc, sc, horizon=200.0, n_replications=3, seed=11)
        direct = simulate_replications(
            two_class_cluster,
            two_class_workload,
            horizon=200.0,
            n_replications=3,
            seed=11,
        )
        for side in (comp.result_a, comp.result_b):
            assert side.mean_delay == direct.mean_delay
            assert np.array_equal(side.delays, direct.delays)
        # Identical scenarios under CRN differ by exactly zero.
        assert comp.paired("mean_delay").value == 0.0
