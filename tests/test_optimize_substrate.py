"""Generic optimization machinery tests."""

import numpy as np
import pytest

from repro.exceptions import InfeasibleProblemError, ModelValidationError, UnstableSystemError
from repro.optimize import (
    Constraint,
    OptimizationResult,
    bisect_threshold,
    greedy_integer_allocation,
    integer_local_search,
    minimize_box_constrained,
    multistart_points,
)


class TestMultistartPoints:
    def test_count_and_bounds(self):
        pts = multistart_points([(0.0, 1.0), (2.0, 4.0)], 7)
        assert pts.shape == (7, 2)
        assert np.all(pts[:, 0] >= 0.0) and np.all(pts[:, 0] <= 1.0)
        assert np.all(pts[:, 1] >= 2.0) and np.all(pts[:, 1] <= 4.0)

    def test_deterministic(self):
        a = multistart_points([(0.0, 1.0)], 10)
        b = multistart_points([(0.0, 1.0)], 10)
        np.testing.assert_array_equal(a, b)

    def test_midpoint_first(self):
        pts = multistart_points([(0.0, 2.0)], 1)
        assert pts[0, 0] == pytest.approx(1.0)

    def test_bad_inputs(self):
        with pytest.raises(ModelValidationError):
            multistart_points([(0.0, 1.0)], 0)
        with pytest.raises(ModelValidationError):
            multistart_points([(1.0, 0.0)], 3)


class TestMinimizeBoxConstrained:
    def test_unconstrained_quadratic(self):
        res = minimize_box_constrained(
            lambda x: float((x[0] - 0.3) ** 2 + (x[1] - 0.7) ** 2),
            [(0.0, 1.0), (0.0, 1.0)],
        )
        assert res.success
        np.testing.assert_allclose(res.x, [0.3, 0.7], atol=1e-5)

    def test_active_constraint(self):
        # min x^2 s.t. x >= 0.5 on [0, 1]
        res = minimize_box_constrained(
            lambda x: float(x[0] ** 2),
            [(0.0, 1.0)],
            constraints=[Constraint(lambda x: x[0] - 0.5, name="floor")],
        )
        assert res.success
        assert res.x[0] == pytest.approx(0.5, abs=1e-6)

    def test_infeasible_constraint_reported(self):
        res = minimize_box_constrained(
            lambda x: float(x[0]),
            [(0.0, 1.0)],
            constraints=[Constraint(lambda x: x[0] - 2.0, name="impossible")],
        )
        assert not res.success
        assert res.constraint_violation > 0.5

    def test_unstable_objective_penalized_not_crashed(self):
        def objective(x):
            if x[0] < 0.5:
                raise UnstableSystemError("synthetic divergence")
            return float(x[0])

        res = minimize_box_constrained(objective, [(0.0, 1.0)], n_starts=5)
        assert res.success
        assert res.x[0] >= 0.5 - 1e-6

    def test_evaluation_counter(self):
        res = minimize_box_constrained(lambda x: float(x[0] ** 2), [(0.0, 1.0)], n_starts=2)
        assert res.n_evaluations > 0

    def test_result_ordering(self):
        good = OptimizationResult(x=np.array([0.0]), fun=1.0, success=True)
        better = OptimizationResult(x=np.array([0.0]), fun=0.5, success=True)
        bad = OptimizationResult(x=np.array([0.0]), fun=0.0, success=False)
        assert better.better_than(good)
        assert good.better_than(bad)
        assert bad.better_than(None)


class TestWarmStart:
    """x0_hint acceptance guard on minimize_box_constrained."""

    @staticmethod
    def _quadratic(x):
        return float((x[0] - 0.3) ** 2 + (x[1] - 0.7) ** 2)

    def test_good_hint_accepted_and_matches_cold(self):
        cold = minimize_box_constrained(self._quadratic, [(0.0, 1.0), (0.0, 1.0)], n_starts=3)
        warm = minimize_box_constrained(
            self._quadratic, [(0.0, 1.0), (0.0, 1.0)], n_starts=3, x0_hint=cold.x
        )
        info = warm.meta["warm_start"]
        assert info["accepted"] and info["converged"]
        assert warm.fun == pytest.approx(cold.fun, rel=1e-6)
        # An accepted warm start skips the multistart loop entirely.
        assert warm.n_evaluations < cold.n_evaluations

    @staticmethod
    def _double_well(x):
        # Local minima near 0.1 (global) and 0.9; the tilt makes the
        # right basin strictly worse.
        return float((x[0] - 0.1) ** 2 * (x[0] - 0.9) ** 2 + 0.05 * x[0])

    def test_hint_in_wrong_basin_rejected_by_guard(self):
        warm = minimize_box_constrained(
            self._double_well,
            [(0.0, 1.0)],
            n_starts=8,
            x0_hint=[0.9],
            objective_batch=lambda pts: np.array([self._double_well(p) for p in pts]),
        )
        info = warm.meta["warm_start"]
        assert not info["accepted"]
        # The fallback multistart still lands in the global basin.
        assert warm.x[0] < 0.5
        assert warm.fun < self._double_well([0.9])

    def test_hint_clipped_into_box(self):
        warm = minimize_box_constrained(
            self._quadratic, [(0.0, 1.0), (0.0, 1.0)], x0_hint=[5.0, -5.0]
        )
        assert warm.success  # out-of-box hint must not crash the solve

    def test_hint_shape_validated(self):
        with pytest.raises(ModelValidationError):
            minimize_box_constrained(
                self._quadratic, [(0.0, 1.0), (0.0, 1.0)], x0_hint=[0.5]
            )

    def test_constraint_batch_shape_validated(self):
        with pytest.raises(ModelValidationError):
            minimize_box_constrained(
                self._quadratic,
                [(0.0, 1.0), (0.0, 1.0)],
                n_starts=3,
                objective_batch=lambda pts: np.array([self._quadratic(p) for p in pts]),
                constraint_batch=lambda pts: np.zeros((len(pts), 2)),
            )

    def test_infeasible_seeds_excluded_from_guard(self):
        # Every seed violates the constraint; the guard must not use
        # their (finite, low) raw objectives to reject a feasible hint.
        constraint = Constraint(lambda x: x[0] - 0.8, name="floor")
        warm = minimize_box_constrained(
            lambda x: float(x[0]),
            [(0.0, 1.0)],
            constraints=[constraint],
            n_starts=4,
            x0_hint=[0.8],
            objective_batch=lambda pts: pts[:, 0],
            constraint_batch=lambda pts: pts[:, 0] - 0.8,
        )
        info = warm.meta["warm_start"]
        assert info["accepted"]
        assert warm.x[0] == pytest.approx(0.8, abs=1e-6)

    def test_no_hint_no_meta(self):
        res = minimize_box_constrained(self._quadratic, [(0.0, 1.0), (0.0, 1.0)])
        assert "warm_start" not in res.meta


class TestIntegerSearch:
    def _problem(self, threshold=10):
        # Feasible iff 2*a + b >= threshold; cost 3a + 2b.
        def evaluate(c):
            score = max(threshold - (2 * c[0] + c[1]), 0)
            return score == 0, float(score)

        def cost(c):
            return float(3 * c[0] + 2 * c[1])

        return evaluate, cost

    def test_greedy_finds_feasible(self):
        evaluate, cost = self._problem()
        counts = greedy_integer_allocation(evaluate, cost, [1, 1], [20, 20])
        assert evaluate(counts)[0]

    def test_local_search_improves_to_optimum(self):
        evaluate, cost = self._problem()
        start = np.array([10, 10])
        final = integer_local_search(start, evaluate, cost, [1, 1], [20, 20])
        assert evaluate(final)[0]
        # Optimum: maximize use of a (relief 2 per cost 3 beats 1 per 2).
        # Best integer solutions of 2a+b>=10 minimizing 3a+2b: a=4,b=2
        # (cost 16) or a=5,b=0->b>=1 so a=4,b=2 wins within lb=1: a=4,b=2 cost 16
        assert cost(final) <= 17.0

    def test_greedy_infeasible_raises(self):
        def never(c):
            return False, 1.0

        with pytest.raises(InfeasibleProblemError):
            greedy_integer_allocation(never, lambda c: 1.0, [1], [4])

    def test_local_search_requires_feasible_start(self):
        evaluate, cost = self._problem()
        with pytest.raises(ModelValidationError):
            integer_local_search([1, 1], evaluate, cost, [1, 1], [20, 20])

    def test_bounds_validation(self):
        evaluate, cost = self._problem()
        with pytest.raises(ModelValidationError):
            greedy_integer_allocation(evaluate, cost, [5], [2])
        with pytest.raises(ModelValidationError):
            greedy_integer_allocation(evaluate, cost, [0, 1], [5, 5])


class TestBisection:
    def test_finds_threshold(self):
        x = bisect_threshold(lambda v: v >= 0.637, 0.0, 1.0, tol=1e-9)
        assert x == pytest.approx(0.637, abs=1e-6)

    def test_lo_already_true(self):
        assert bisect_threshold(lambda v: True, 0.2, 1.0) == 0.2

    def test_never_true_raises(self):
        with pytest.raises(InfeasibleProblemError):
            bisect_threshold(lambda v: False, 0.0, 1.0)

    def test_empty_interval(self):
        with pytest.raises(ModelValidationError):
            bisect_threshold(lambda v: True, 1.0, 0.0)


class TestSolverDiagnostics:
    """SciPy diagnostics surfaced on OptimizationResult (nit/nfev/status)."""

    def test_converged_solve_reports_status_zero(self):
        res = minimize_box_constrained(
            lambda x: float((x[0] - 0.3) ** 2 + (x[1] - 0.7) ** 2),
            [(0.0, 1.0), (0.0, 1.0)],
        )
        assert res.success
        assert res.status == 0
        assert res.nit > 0
        assert 0 < res.nfev <= res.n_evaluations

    def test_constraint_residuals_in_meta(self):
        res = minimize_box_constrained(
            lambda x: float(x[0] ** 2),
            [(0.0, 1.0)],
            constraints=[Constraint(lambda x: x[0] - 0.5, name="floor")],
        )
        residuals = res.meta["constraint_residuals"]
        # Active constraint: slack ~0 but not (meaningfully) negative.
        assert residuals["floor"] == pytest.approx(0.0, abs=1e-6)

    def test_default_diagnostics_zeroed(self):
        res = OptimizationResult(x=np.array([1.0]), fun=0.0, success=True, message="")
        assert res.nit == 0 and res.nfev == 0 and res.status is None
