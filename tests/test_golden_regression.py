"""Golden-value regression tests.

The simulator and the analytic formulas are deterministic functions of
their inputs (the simulator through its seed). These tests pin a few
exact outputs so that *any* unintended change to event ordering, RNG
stream layout, or formula algebra trips a failure — the change may be
fine, but it must be a conscious decision (update the constants in the
same commit that changes behaviour).
"""

import numpy as np
import pytest

from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.core.delay import end_to_end_delays
from repro.core.energy import average_power
from repro.distributions import Exponential, fit_two_moments
from repro.simulation import simulate
from repro.workload import workload_from_rates

SPEC = ServerSpec(PowerModel(idle=25.0, kappa=75.0, alpha=3.0), min_speed=0.4, max_speed=1.0)


@pytest.fixture
def pinned_cluster():
    tiers = [
        Tier("front", (Exponential(4.0), fit_two_moments(0.3, 2.0)), SPEC, servers=1),
        Tier("back", (Exponential(2.0), fit_two_moments(0.6, 1.5)), SPEC, servers=2),
    ]
    return ClusterModel(tiers)


@pytest.fixture
def pinned_workload():
    return workload_from_rates([0.5, 0.8], names=("hi", "lo"))


class TestAnalyticGolden:
    def test_end_to_end_delays(self, pinned_cluster, pinned_workload):
        t = end_to_end_delays(pinned_cluster, pinned_workload)
        np.testing.assert_allclose(
            t, [0.9832506541077969, 1.267323864736688], rtol=1e-12
        )

    def test_average_power(self, pinned_cluster, pinned_workload):
        p = average_power(pinned_cluster, pinned_workload)
        assert p == pytest.approx(157.125, rel=1e-12)


class TestSimulatorGolden:
    def test_short_run_exact_counts_and_delays(self, pinned_cluster, pinned_workload):
        res = simulate(pinned_cluster, pinned_workload, horizon=200.0, seed=2024)
        # Any change to event ordering or RNG stream layout shifts these.
        np.testing.assert_array_equal(res.n_completed, [96, 157])
        np.testing.assert_allclose(
            res.delays, [1.094432565976234, 1.3529888401661325], rtol=1e-9
        )

    def test_same_seed_same_everything(self, pinned_cluster, pinned_workload):
        a = simulate(pinned_cluster, pinned_workload, horizon=150.0, seed=7)
        b = simulate(pinned_cluster, pinned_workload, horizon=150.0, seed=7)
        np.testing.assert_array_equal(a.n_completed, b.n_completed)
        np.testing.assert_allclose(a.station_waits, b.station_waits, rtol=0, atol=0)
        assert a.average_power == b.average_power
