"""Backend-parity suite for the compiled event-loop kernel.

The compiled C kernel behind ``REPRO_SIM_BACKEND=compiled`` must be a
pure performance transform: every number it produces is required to be
**bit-identical** to the pure-Python engine's, across execution
backends (serial loop vs process pool) and across the full support
envelope — epoch controllers (the kernel yields at each boundary for
the Python control decision), antithetic mirrored streams, PS tiers,
and queue-sampling telemetry all run compiled. This file holds it to
that with the same golden pins the Python engine answers to, plus
fallback-semantics tests: a kernel that cannot build/load, or a
configuration outside the kernel's envelope, degrades to pure Python
with exactly one visible :class:`CompiledFallbackWarning` per process
and reason (and silently under ``REPRO_SIM_BACKEND=auto``).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.exceptions import CompiledFallbackWarning, ModelValidationError
from repro.simulation import RngStreams, simulate
from repro.simulation import compiled as compiled_mod
from repro.simulation.parallel import ProcessPoolBackend, SerialBackend

import test_golden_sim_metrics as golden_mod

pytestmark = pytest.mark.filterwarnings("ignore::repro.exceptions.WarmupDiscardWarning")

COMPILED_AVAILABLE = compiled_mod.kernel_available()

needs_kernel = pytest.mark.skipif(
    not COMPILED_AVAILABLE, reason="compiled kernel unavailable (no C toolchain?)"
)


@pytest.fixture(autouse=True)
def _fresh_warning_state(monkeypatch):
    """Each test starts with the once-per-reason warning memory empty."""
    monkeypatch.setattr(compiled_mod, "_warned", set())


# ---------------------------------------------------------------------------
# golden bit-identity on the compiled backend
# ---------------------------------------------------------------------------


@needs_kernel
@pytest.mark.parametrize("name", sorted(golden_mod._scenarios()))
def test_golden_metrics_bit_identical_compiled(name, monkeypatch):
    """Every golden scenario pins the same floats under the compiled
    backend — scenarios outside the kernel's envelope (PS tiers) fall
    back and must *still* match, by construction."""
    monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
    golden = golden_mod.GOLDEN_PATH
    pinned = __import__("json").loads(golden.read_text())
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", CompiledFallbackWarning)
        fresh = golden_mod._snapshot(golden_mod._scenarios()[name]())
    golden_mod._assert_identical(pinned[name], fresh, path=name)


def _epoch_controller(t, queues, speeds):
    """Module-level (picklable) controller: nudge speeds with load."""
    total = float(np.sum(queues))
    return np.clip(0.6 + 0.05 * total, 0.6, 1.0) * np.ones_like(speeds)


def _replication_numbers(backend_env, n_jobs, with_controller, monkeypatch):
    """Snapshot of 3 replications run through the requested execution
    backend (serial loop vs 2-worker process pool) under the requested
    simulation backend, with the epoch controller optionally engaged
    (which routes each run to the Python engine by design)."""
    monkeypatch.setenv("REPRO_SIM_BACKEND", backend_env)
    from repro.experiments.common import canonical_cluster, canonical_workload

    cluster, workload = canonical_cluster(), canonical_workload()
    extra = {}
    if with_controller:
        extra = {"epoch_times": [20.0, 40.0, 60.0], "epoch_controller": _epoch_controller}
    payloads = [
        (i, dict(cluster=cluster, workload=workload, horizon=80.0, seed=child, **extra))
        for i, child in enumerate(RngStreams.replication_seeds(42, 3))
    ]
    backend = SerialBackend() if n_jobs == 1 else ProcessPoolBackend(n_jobs)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", CompiledFallbackWarning)
        out = backend.run(payloads)
    return {i: golden_mod._snapshot(res) for i, (res, _wall) in sorted(out.items())}


@needs_kernel
@pytest.mark.parametrize("backend_env", ["python", "compiled"])
@pytest.mark.parametrize("n_jobs", [1, 2])
@pytest.mark.parametrize("with_controller", [False, True])
def test_replication_matrix_bit_identical(backend_env, n_jobs, with_controller, monkeypatch):
    """{python, compiled} × {serial, process} × controller on/off all
    produce the same bits as the python-serial reference."""
    reference = _replication_numbers("python", 1, with_controller, monkeypatch)
    probe = _replication_numbers(backend_env, n_jobs, with_controller, monkeypatch)
    assert sorted(probe) == sorted(reference)
    for i in reference:
        golden_mod._assert_identical(reference[i], probe[i], path=f"rep[{i}]")


@needs_kernel
def test_single_run_bit_identical_delay_samples_and_log(monkeypatch):
    """Delay-sample streams and the structured job log match exactly."""
    cluster = golden_mod._two_tier("priority_np")
    workload = golden_mod._workload()

    def run():
        return simulate(
            cluster,
            workload,
            horizon=120.0,
            seed=31,
            collect_delay_samples=True,
            collect_job_log=True,
        )

    monkeypatch.setenv("REPRO_SIM_BACKEND", "python")
    ref = run()
    monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
    got = run()
    for a, b in zip(ref.delay_samples, got.delay_samples):
        assert np.array_equal(a, b)
    assert np.array_equal(ref.job_log, got.job_log)
    golden_mod._assert_identical(
        golden_mod._snapshot(ref), golden_mod._snapshot(got), path="single_run"
    )


# ---------------------------------------------------------------------------
# backend selection and fallback semantics
# ---------------------------------------------------------------------------


def test_invalid_backend_env_rejected(monkeypatch):
    from repro.experiments.common import canonical_cluster, canonical_workload

    monkeypatch.setenv("REPRO_SIM_BACKEND", "turbo")
    with pytest.raises(ModelValidationError, match="REPRO_SIM_BACKEND"):
        simulate(canonical_cluster(), canonical_workload(), horizon=5.0, seed=0)


def test_build_failure_degrades_with_single_warning(monkeypatch):
    """A kernel that cannot load falls back to pure Python with exactly
    one visible warning per process, and the numbers are the Python
    engine's."""
    from repro.experiments.common import canonical_cluster, canonical_workload

    def broken_load():
        raise compiled_mod.KernelBuildError("simulated toolchain failure")

    monkeypatch.setattr(compiled_mod, "load_kernel", broken_load)
    monkeypatch.setenv("REPRO_SIM_BACKEND", "python")
    ref = simulate(canonical_cluster(), canonical_workload(), horizon=40.0, seed=8)

    monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
    with pytest.warns(CompiledFallbackWarning, match="toolchain failure"):
        first = simulate(canonical_cluster(), canonical_workload(), horizon=40.0, seed=8)
    with warnings.catch_warnings():
        warnings.simplefilter("error", CompiledFallbackWarning)  # second warn would raise
        second = simulate(canonical_cluster(), canonical_workload(), horizon=40.0, seed=8)

    assert np.array_equal(ref.delays, first.delays)
    assert np.array_equal(ref.delays, second.delays)
    assert ref.average_power == first.average_power == second.average_power


def test_auto_backend_falls_back_silently(monkeypatch):
    from repro.experiments.common import canonical_cluster, canonical_workload

    def broken_load():
        raise compiled_mod.KernelBuildError("simulated toolchain failure")

    monkeypatch.setattr(compiled_mod, "load_kernel", broken_load)
    monkeypatch.setenv("REPRO_SIM_BACKEND", "auto")
    with warnings.catch_warnings():
        warnings.simplefilter("error", CompiledFallbackWarning)
        simulate(canonical_cluster(), canonical_workload(), horizon=20.0, seed=8)


@needs_kernel
def test_ps_tiers_run_compiled_bit_identical(monkeypatch):
    """PS tiers are inside the kernel envelope: no warning, same bits,
    same event count (the heap orders match exactly)."""
    cluster = golden_mod._two_tier("ps", servers=(1, 2))
    workload = golden_mod._workload()
    monkeypatch.setenv("REPRO_SIM_BACKEND", "python")
    ref = simulate(cluster, workload, horizon=60.0, seed=5)
    monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
    with warnings.catch_warnings():
        warnings.simplefilter("error", CompiledFallbackWarning)
        got = simulate(cluster, workload, horizon=60.0, seed=5)
    assert np.array_equal(ref.delays, got.delays)
    assert ref.average_power == got.average_power
    assert ref.meta["n_events"] == got.meta["n_events"]


@needs_kernel
def test_ps_with_finite_buffer_rejected_compiled(monkeypatch):
    """The engine's PS+capacity validation error surfaces identically
    through the compiled path (it is a model error, not a fallback)."""
    from repro.cluster.tier import Tier
    from repro.experiments.common import canonical_cluster, canonical_workload

    base = canonical_cluster(discipline="ps")
    tiers = list(base.tiers)
    spec = tiers[0].spec
    tiers[0] = Tier(
        tiers[0].name,
        tiers[0].demands,
        spec,
        servers=tiers[0].servers,
        speed=tiers[0].speed,
        discipline="ps",
        capacity=tiers[0].servers + 2,
    )
    cluster = type(base)(tuple(tiers))
    monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
    with pytest.raises(ModelValidationError, match="finite buffers"):
        simulate(cluster, canonical_workload(), horizon=10.0, seed=0)


@needs_kernel
def test_antithetic_seed_runs_compiled_bit_identical(monkeypatch):
    """Both members of an antithetic pair run compiled via mirrored
    pre-drawn uniform blocks — no warning, bits match the Python
    engine's coupled streams exactly."""
    from repro.experiments.common import canonical_cluster, canonical_workload

    for member in RngStreams.replication_seed_pairs(9, 1)[0]:
        monkeypatch.setenv("REPRO_SIM_BACKEND", "python")
        ref = simulate(canonical_cluster(), canonical_workload(), horizon=40.0, seed=member)
        monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
        with warnings.catch_warnings():
            warnings.simplefilter("error", CompiledFallbackWarning)
            got = simulate(
                canonical_cluster(), canonical_workload(), horizon=40.0, seed=member
            )
        assert np.array_equal(ref.delays, got.delays)
        assert ref.average_power == got.average_power
        assert ref.meta["n_events"] == got.meta["n_events"]


@needs_kernel
def test_epoch_controller_trace_bit_identical(monkeypatch):
    """The epoch-yield protocol reproduces the engine's full per-epoch
    record — boundary times, queue snapshots, applied speeds, segmented
    energy — not just the end-of-run aggregates."""
    from repro.experiments.common import canonical_cluster, canonical_workload

    kwargs = dict(
        horizon=80.0,
        seed=42,
        epoch_times=[20.0, 40.0, 60.0],
        epoch_controller=_epoch_controller,
    )
    monkeypatch.setenv("REPRO_SIM_BACKEND", "python")
    ref = simulate(canonical_cluster(), canonical_workload(), **kwargs)
    monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
    with warnings.catch_warnings():
        warnings.simplefilter("error", CompiledFallbackWarning)
        got = simulate(canonical_cluster(), canonical_workload(), **kwargs)
    assert np.array_equal(ref.delays, got.delays)
    assert ref.meta["dynamic_energy"] == got.meta["dynamic_energy"]
    assert np.array_equal(ref.meta["final_speeds"], got.meta["final_speeds"])
    ta, tb = ref.meta["epoch_trace"], got.meta["epoch_trace"]
    assert len(ta) == len(tb)
    for ra, rb in zip(ta, tb):
        assert ra["t"] == rb["t"]
        assert np.array_equal(ra["queues"], rb["queues"])
        assert np.array_equal(ra["speeds"], rb["speeds"])
        assert ra["dynamic_energy"] == rb["dynamic_energy"]


@needs_kernel
def test_queue_sampling_telemetry_identical(monkeypatch, tmp_path):
    """Buffered C-side queue sampling batch-flushes the exact gauge
    values and ``sim.queue_sample`` event rows the Python loop emits."""
    import json

    from repro.experiments.common import canonical_cluster, canonical_workload
    from repro.obs import telemetry_session

    def rows(out_dir):
        found = []
        for path in sorted(out_dir.glob("*.jsonl")):
            for line in path.read_text().splitlines():
                rec = json.loads(line)
                if rec.get("name") == "sim.queue_sample":
                    rec.pop("ts", None)  # wall-clock stamp, not simulated time
                    found.append(rec)
        return found

    def run(backend, out_dir):
        monkeypatch.setenv("REPRO_SIM_BACKEND", backend)
        with telemetry_session(out_dir, sample_queues=True, queue_sample_interval=2.0):
            return simulate(
                canonical_cluster(), canonical_workload(), horizon=60.0, seed=11
            )

    ref = run("python", tmp_path / "py")
    with warnings.catch_warnings():
        warnings.simplefilter("error", CompiledFallbackWarning)
        got = run("compiled", tmp_path / "c")
    ref_rows, got_rows = rows(tmp_path / "py"), rows(tmp_path / "c")
    assert len(ref_rows) > 0
    assert ref_rows == got_rows
    assert np.array_equal(ref.delays, got.delays)


# ---------------------------------------------------------------------------
# the _unsupported_reason decision matrix
# ---------------------------------------------------------------------------


def _decision(cluster, seed=0, epoch_controller=None):
    return compiled_mod._unsupported_reason(cluster, seed, epoch_controller)


def test_unsupported_reason_none_for_epoch_controller():
    from repro.experiments.common import canonical_cluster

    assert _decision(canonical_cluster(), epoch_controller=_epoch_controller) is None


def test_unsupported_reason_none_for_antithetic_seed():
    from repro.experiments.common import canonical_cluster

    for member in RngStreams.replication_seed_pairs(3, 1)[0]:
        assert _decision(canonical_cluster(), seed=member) is None


def test_unsupported_reason_none_for_ps_tiers():
    from repro.experiments.common import canonical_cluster

    assert _decision(canonical_cluster(discipline="ps")) is None


def test_unsupported_reason_none_for_queue_sampling(monkeypatch, tmp_path):
    """Queue sampling is a telemetry mode, not a config knob — the
    decision must stay None while it is active."""
    from repro.experiments.common import canonical_cluster
    from repro.obs import telemetry_session

    with telemetry_session(tmp_path, sample_queues=True):
        assert _decision(canonical_cluster()) is None


def test_unsupported_reason_exact_string_for_unknown_discipline():
    """A discipline outside the kernel's dispatch table is the one
    remaining fallback class, with a stable reason string."""
    from types import SimpleNamespace

    tier = SimpleNamespace(discipline="edf")
    cluster = SimpleNamespace(tiers=[tier])
    assert (
        _decision(cluster)
        == "tier discipline 'edf' is not modeled by the compiled kernel"
    )


def test_unsupported_reason_fallback_matches_and_auto_silent(monkeypatch):
    """A forced out-of-envelope config degrades to the Python engine
    bit-identically; ``compiled`` warns once, ``auto`` stays silent."""
    from repro.experiments.common import canonical_cluster, canonical_workload

    monkeypatch.setattr(
        compiled_mod,
        "_unsupported_reason",
        lambda cluster, seed, epoch_controller: "synthetic out-of-envelope reason",
    )
    monkeypatch.setenv("REPRO_SIM_BACKEND", "python")
    ref = simulate(canonical_cluster(), canonical_workload(), horizon=30.0, seed=4)
    monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
    with pytest.warns(CompiledFallbackWarning, match="synthetic out-of-envelope"):
        got = simulate(canonical_cluster(), canonical_workload(), horizon=30.0, seed=4)
    assert np.array_equal(ref.delays, got.delays)
    assert ref.average_power == got.average_power
    monkeypatch.setenv("REPRO_SIM_BACKEND", "auto")
    with warnings.catch_warnings():
        warnings.simplefilter("error", CompiledFallbackWarning)
        silent = simulate(canonical_cluster(), canonical_workload(), horizon=30.0, seed=4)
    assert np.array_equal(ref.delays, silent.delays)


# ---------------------------------------------------------------------------
# process-pool warm-start initializer (regression: identical results)
# ---------------------------------------------------------------------------


def _payloads(n=3, horizon=60.0, seed=77):
    from repro.experiments.common import canonical_cluster, canonical_workload

    cluster, workload = canonical_cluster(), canonical_workload()
    return [
        (
            i,
            {
                "cluster": cluster,
                "workload": workload,
                "horizon": horizon,
                "warmup_fraction": 0.1,
                "seed": child,
            },
        )
        for i, child in enumerate(RngStreams.replication_seeds(seed, n))
    ]


def _result_bits(out):
    return {
        i: (res.delays.tolist(), res.average_power, res.meta["n_events"])
        for i, (res, _wall) in out.items()
    }


def test_warm_start_initializer_identical_results():
    """The per-process warm-up initializer must not change a single bit
    of any replication, relative to cold workers and the serial loop."""
    payloads = _payloads()
    serial = _result_bits(SerialBackend().run(payloads))
    warm = _result_bits(ProcessPoolBackend(2, warm_start=True).run(payloads))
    cold = _result_bits(ProcessPoolBackend(2, warm_start=False).run(payloads))
    assert warm == serial
    assert cold == serial


@needs_kernel
def test_warm_start_compiled_backend_identical_results(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
    payloads = _payloads(n=2, horizon=40.0)
    warm = _result_bits(ProcessPoolBackend(2, warm_start=True).run(payloads))
    cold = _result_bits(ProcessPoolBackend(2, warm_start=False).run(payloads))
    monkeypatch.setenv("REPRO_SIM_BACKEND", "python")
    serial = _result_bits(SerialBackend().run(payloads))
    assert warm == serial
    assert cold == serial


def test_warm_worker_runs_in_process(monkeypatch):
    """The initializer itself is cheap, import-only and idempotent."""
    from repro.simulation.parallel import _warm_worker

    monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
    _warm_worker()
    _warm_worker("python")
    assert __import__("os").environ["REPRO_SIM_BACKEND"] == "python"


def test_warm_worker_inherits_warned_reasons(monkeypatch):
    """Regression: the once-per-process CompiledFallbackWarning dedup
    must carry into warm-started pool workers — a reason the parent
    already surfaced is seeded into the worker's memory, so a pool
    warns once per pool, not once per worker."""
    from repro.simulation.parallel import _warm_worker, _warned_snapshot

    monkeypatch.setenv("REPRO_SIM_BACKEND", "python")
    compiled_mod._warned.add("synthetic reason already shown")
    assert _warned_snapshot() == ("synthetic reason already shown",)

    # Simulate a fresh worker: empty dedup memory, then the initializer
    # runs with the parent's snapshot (in-process stand-in for the
    # spawned child; the seeding path is identical).
    monkeypatch.setattr(compiled_mod, "_warned", set())
    _warm_worker("python", ("synthetic reason already shown",))
    assert "synthetic reason already shown" in compiled_mod._warned

    # And the warning machinery honors the inherited entry: no re-emit.
    with warnings.catch_warnings():
        warnings.simplefilter("error", CompiledFallbackWarning)
        compiled_mod._warn_fallback("synthetic reason already shown")


def test_pool_initargs_carry_warned_snapshot(monkeypatch):
    """The live pool wires the snapshot through initargs."""
    from repro.simulation import parallel as parallel_mod

    compiled_mod._warned.add("pool-visible reason")
    captured = {}

    class _FakeExecutor:
        def __init__(self, max_workers=None, initializer=None, initargs=()):
            captured["initargs"] = initargs

        def shutdown(self):
            pass

    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _FakeExecutor)
    session = parallel_mod.PoolSession(2, warm_start=True)
    try:
        session.run([(0, {})])
    except Exception:
        pass  # the fake executor cannot run payloads; pool creation is the point
    assert captured["initargs"][1] == ("pool-visible reason",)
