"""Backend-parity suite for the compiled event-loop kernel.

The compiled C kernel behind ``REPRO_SIM_BACKEND=compiled`` must be a
pure performance transform: every number it produces is required to be
**bit-identical** to the pure-Python engine's, across execution
backends (serial loop vs process pool) and with the epoch-controller
hook engaged (which routes to the Python engine by design). This file
holds it to that with the same golden pins the Python engine answers
to, plus fallback-semantics tests: a kernel that cannot build/load, or
a configuration outside the kernel's envelope, degrades to pure Python
with exactly one visible :class:`CompiledFallbackWarning` per process
and reason (and silently under ``REPRO_SIM_BACKEND=auto``).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.exceptions import CompiledFallbackWarning, ModelValidationError
from repro.simulation import RngStreams, simulate
from repro.simulation import compiled as compiled_mod
from repro.simulation.parallel import ProcessPoolBackend, SerialBackend

import test_golden_sim_metrics as golden_mod

pytestmark = pytest.mark.filterwarnings("ignore::repro.exceptions.WarmupDiscardWarning")

COMPILED_AVAILABLE = compiled_mod.kernel_available()

needs_kernel = pytest.mark.skipif(
    not COMPILED_AVAILABLE, reason="compiled kernel unavailable (no C toolchain?)"
)


@pytest.fixture(autouse=True)
def _fresh_warning_state(monkeypatch):
    """Each test starts with the once-per-reason warning memory empty."""
    monkeypatch.setattr(compiled_mod, "_warned", set())


# ---------------------------------------------------------------------------
# golden bit-identity on the compiled backend
# ---------------------------------------------------------------------------


@needs_kernel
@pytest.mark.parametrize("name", sorted(golden_mod._scenarios()))
def test_golden_metrics_bit_identical_compiled(name, monkeypatch):
    """Every golden scenario pins the same floats under the compiled
    backend — scenarios outside the kernel's envelope (PS tiers) fall
    back and must *still* match, by construction."""
    monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
    golden = golden_mod.GOLDEN_PATH
    pinned = __import__("json").loads(golden.read_text())
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", CompiledFallbackWarning)
        fresh = golden_mod._snapshot(golden_mod._scenarios()[name]())
    golden_mod._assert_identical(pinned[name], fresh, path=name)


def _epoch_controller(t, queues, speeds):
    """Module-level (picklable) controller: nudge speeds with load."""
    total = float(np.sum(queues))
    return np.clip(0.6 + 0.05 * total, 0.6, 1.0) * np.ones_like(speeds)


def _replication_numbers(backend_env, n_jobs, with_controller, monkeypatch):
    """Snapshot of 3 replications run through the requested execution
    backend (serial loop vs 2-worker process pool) under the requested
    simulation backend, with the epoch controller optionally engaged
    (which routes each run to the Python engine by design)."""
    monkeypatch.setenv("REPRO_SIM_BACKEND", backend_env)
    from repro.experiments.common import canonical_cluster, canonical_workload

    cluster, workload = canonical_cluster(), canonical_workload()
    extra = {}
    if with_controller:
        extra = {"epoch_times": [20.0, 40.0, 60.0], "epoch_controller": _epoch_controller}
    payloads = [
        (i, dict(cluster=cluster, workload=workload, horizon=80.0, seed=child, **extra))
        for i, child in enumerate(RngStreams.replication_seeds(42, 3))
    ]
    backend = SerialBackend() if n_jobs == 1 else ProcessPoolBackend(n_jobs)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", CompiledFallbackWarning)
        out = backend.run(payloads)
    return {i: golden_mod._snapshot(res) for i, (res, _wall) in sorted(out.items())}


@needs_kernel
@pytest.mark.parametrize("backend_env", ["python", "compiled"])
@pytest.mark.parametrize("n_jobs", [1, 2])
@pytest.mark.parametrize("with_controller", [False, True])
def test_replication_matrix_bit_identical(backend_env, n_jobs, with_controller, monkeypatch):
    """{python, compiled} × {serial, process} × controller on/off all
    produce the same bits as the python-serial reference."""
    reference = _replication_numbers("python", 1, with_controller, monkeypatch)
    probe = _replication_numbers(backend_env, n_jobs, with_controller, monkeypatch)
    assert sorted(probe) == sorted(reference)
    for i in reference:
        golden_mod._assert_identical(reference[i], probe[i], path=f"rep[{i}]")


@needs_kernel
def test_single_run_bit_identical_delay_samples_and_log(monkeypatch):
    """Delay-sample streams and the structured job log match exactly."""
    cluster = golden_mod._two_tier("priority_np")
    workload = golden_mod._workload()

    def run():
        return simulate(
            cluster,
            workload,
            horizon=120.0,
            seed=31,
            collect_delay_samples=True,
            collect_job_log=True,
        )

    monkeypatch.setenv("REPRO_SIM_BACKEND", "python")
    ref = run()
    monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
    got = run()
    for a, b in zip(ref.delay_samples, got.delay_samples):
        assert np.array_equal(a, b)
    assert np.array_equal(ref.job_log, got.job_log)
    golden_mod._assert_identical(
        golden_mod._snapshot(ref), golden_mod._snapshot(got), path="single_run"
    )


# ---------------------------------------------------------------------------
# backend selection and fallback semantics
# ---------------------------------------------------------------------------


def test_invalid_backend_env_rejected(monkeypatch):
    from repro.experiments.common import canonical_cluster, canonical_workload

    monkeypatch.setenv("REPRO_SIM_BACKEND", "turbo")
    with pytest.raises(ModelValidationError, match="REPRO_SIM_BACKEND"):
        simulate(canonical_cluster(), canonical_workload(), horizon=5.0, seed=0)


def test_build_failure_degrades_with_single_warning(monkeypatch):
    """A kernel that cannot load falls back to pure Python with exactly
    one visible warning per process, and the numbers are the Python
    engine's."""
    from repro.experiments.common import canonical_cluster, canonical_workload

    def broken_load():
        raise compiled_mod.KernelBuildError("simulated toolchain failure")

    monkeypatch.setattr(compiled_mod, "load_kernel", broken_load)
    monkeypatch.setenv("REPRO_SIM_BACKEND", "python")
    ref = simulate(canonical_cluster(), canonical_workload(), horizon=40.0, seed=8)

    monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
    with pytest.warns(CompiledFallbackWarning, match="toolchain failure"):
        first = simulate(canonical_cluster(), canonical_workload(), horizon=40.0, seed=8)
    with warnings.catch_warnings():
        warnings.simplefilter("error", CompiledFallbackWarning)  # second warn would raise
        second = simulate(canonical_cluster(), canonical_workload(), horizon=40.0, seed=8)

    assert np.array_equal(ref.delays, first.delays)
    assert np.array_equal(ref.delays, second.delays)
    assert ref.average_power == first.average_power == second.average_power


def test_auto_backend_falls_back_silently(monkeypatch):
    from repro.experiments.common import canonical_cluster, canonical_workload

    def broken_load():
        raise compiled_mod.KernelBuildError("simulated toolchain failure")

    monkeypatch.setattr(compiled_mod, "load_kernel", broken_load)
    monkeypatch.setenv("REPRO_SIM_BACKEND", "auto")
    with warnings.catch_warnings():
        warnings.simplefilter("error", CompiledFallbackWarning)
        simulate(canonical_cluster(), canonical_workload(), horizon=20.0, seed=8)


def test_unsupported_config_warns_and_matches(monkeypatch):
    """PS tiers are outside the kernel envelope: warn once, match bits."""
    cluster = golden_mod._two_tier("ps", servers=(1, 2))
    workload = golden_mod._workload()
    monkeypatch.setenv("REPRO_SIM_BACKEND", "python")
    ref = simulate(cluster, workload, horizon=60.0, seed=5)
    monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
    with pytest.warns(CompiledFallbackWarning, match="[Pp]rocessor-sharing"):
        got = simulate(cluster, workload, horizon=60.0, seed=5)
    assert np.array_equal(ref.delays, got.delays)
    assert ref.average_power == got.average_power


@needs_kernel
def test_antithetic_seed_falls_back(monkeypatch):
    """Antithetic (mirrored) streams run on the Python engine — and the
    compiled selector must not change their numbers."""
    from repro.experiments.common import canonical_cluster, canonical_workload

    _primary, mirror = RngStreams.replication_seed_pairs(9, 1)[0]
    monkeypatch.setenv("REPRO_SIM_BACKEND", "python")
    ref = simulate(canonical_cluster(), canonical_workload(), horizon=40.0, seed=mirror)
    monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
    with pytest.warns(CompiledFallbackWarning, match="[Aa]ntithetic"):
        got = simulate(canonical_cluster(), canonical_workload(), horizon=40.0, seed=mirror)
    assert np.array_equal(ref.delays, got.delays)


# ---------------------------------------------------------------------------
# process-pool warm-start initializer (regression: identical results)
# ---------------------------------------------------------------------------


def _payloads(n=3, horizon=60.0, seed=77):
    from repro.experiments.common import canonical_cluster, canonical_workload

    cluster, workload = canonical_cluster(), canonical_workload()
    return [
        (
            i,
            {
                "cluster": cluster,
                "workload": workload,
                "horizon": horizon,
                "warmup_fraction": 0.1,
                "seed": child,
            },
        )
        for i, child in enumerate(RngStreams.replication_seeds(seed, n))
    ]


def _result_bits(out):
    return {
        i: (res.delays.tolist(), res.average_power, res.meta["n_events"])
        for i, (res, _wall) in out.items()
    }


def test_warm_start_initializer_identical_results():
    """The per-process warm-up initializer must not change a single bit
    of any replication, relative to cold workers and the serial loop."""
    payloads = _payloads()
    serial = _result_bits(SerialBackend().run(payloads))
    warm = _result_bits(ProcessPoolBackend(2, warm_start=True).run(payloads))
    cold = _result_bits(ProcessPoolBackend(2, warm_start=False).run(payloads))
    assert warm == serial
    assert cold == serial


@needs_kernel
def test_warm_start_compiled_backend_identical_results(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_BACKEND", "compiled")
    payloads = _payloads(n=2, horizon=40.0)
    warm = _result_bits(ProcessPoolBackend(2, warm_start=True).run(payloads))
    cold = _result_bits(ProcessPoolBackend(2, warm_start=False).run(payloads))
    monkeypatch.setenv("REPRO_SIM_BACKEND", "python")
    serial = _result_bits(SerialBackend().run(payloads))
    assert warm == serial
    assert cold == serial


def test_warm_worker_runs_in_process(monkeypatch):
    """The initializer itself is cheap, import-only and idempotent."""
    from repro.simulation.parallel import _warm_worker

    monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
    _warm_worker()
    _warm_worker("python")
    assert __import__("os").environ["REPRO_SIM_BACKEND"] == "python"
