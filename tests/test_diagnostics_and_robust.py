"""Diagnostics module and robust-P2 tests."""

import numpy as np
import pytest

from repro.analysis import Severity, diagnose
from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.core import end_to_end_delays, minimize_energy, minimize_energy_robust
from repro.distributions import Exponential, fit_two_moments
from repro.exceptions import InfeasibleProblemError, ModelValidationError
from repro.workload import Workload, CustomerClass, workload_from_rates


def codes(findings):
    return {f.code for f in findings}


class TestDiagnose:
    def test_healthy_config_only_info(self, three_tier_cluster, three_class_workload):
        findings = diagnose(three_tier_cluster, three_class_workload)
        assert all(f.severity != Severity.CRITICAL for f in findings)
        assert "bottleneck" in codes(findings)

    def test_saturated_tier_critical(self, three_tier_cluster, three_class_workload):
        findings = diagnose(three_tier_cluster, three_class_workload.scaled(4.0))
        assert "saturated-tier" in codes(findings)
        assert findings[0].severity == Severity.CRITICAL  # sorted first

    def test_near_saturation_warning(self, three_tier_cluster, three_class_workload):
        findings = diagnose(three_tier_cluster, three_class_workload.scaled(1.8))
        assert "near-saturation" in codes(findings)

    def test_extreme_variability_flagged(self, basic_spec):
        tier = Tier("t", (fit_two_moments(0.1, 25.0),), basic_spec)
        findings = diagnose(ClusterModel([tier]), workload_from_rates([1.0]))
        assert "extreme-variability" in codes(findings)

    def test_priority_inversion_flagged(self, basic_spec):
        tier = Tier("t", (Exponential.from_mean(0.5), Exponential.from_mean(0.01)), basic_spec)
        wl = Workload([CustomerClass("heavy-gold", 1.0), CustomerClass("light", 1.0)])
        findings = diagnose(ClusterModel([tier]), wl)
        assert "priority-inversion" in codes(findings)

    def test_speed_limits_flagged(self, basic_spec):
        t_max = Tier("a", (Exponential(4.0),), basic_spec, speed=1.0)
        t_min = Tier("b", (Exponential(4.0),), basic_spec, speed=0.4)
        findings = diagnose(ClusterModel([t_max, t_min]), workload_from_rates([0.5]))
        assert {"speed-at-max", "speed-at-min"} <= codes(findings)

    def test_idle_dominated_power(self):
        pm = PowerModel(idle=500.0, kappa=10.0, alpha=3.0)
        spec = ServerSpec(pm, min_speed=0.4, max_speed=1.0)
        tier = Tier("t", (Exponential(4.0),), spec)
        findings = diagnose(ClusterModel([tier]), workload_from_rates([0.5]))
        assert "idle-dominated-power" in codes(findings)

    def test_class_count_mismatch(self, three_tier_cluster):
        with pytest.raises(ModelValidationError):
            diagnose(three_tier_cluster, workload_from_rates([1.0]))

    def test_findings_sorted_by_severity(self, three_tier_cluster, three_class_workload):
        findings = diagnose(three_tier_cluster, three_class_workload.scaled(3.5))
        sev = [f.severity for f in findings]
        order = {Severity.CRITICAL: 0, Severity.WARNING: 1, Severity.INFO: 2}
        assert sev == sorted(sev, key=lambda s: order[s])


class TestRobustP2:
    def test_worst_case_bound_holds(self, three_tier_cluster, three_class_workload):
        bounds = end_to_end_delays(three_tier_cluster, three_class_workload) * 1.4
        res = minimize_energy_robust(
            three_tier_cluster,
            three_class_workload,
            rate_uncertainty=0.2,
            class_delay_bounds=bounds,
            n_starts=2,
        )
        assert res.success
        np.testing.assert_array_less(res.meta["worst_case_delays"], bounds + 1e-6)
        # Nominal delays are strictly better than worst-case.
        assert np.all(res.meta["delays"] < res.meta["worst_case_delays"])

    def test_robustness_costs_power(self, three_tier_cluster, three_class_workload):
        bounds = end_to_end_delays(three_tier_cluster, three_class_workload) * 1.6
        nominal = minimize_energy(
            three_tier_cluster, three_class_workload, class_delay_bounds=bounds, n_starts=2
        )
        # Compare at the same (forecast) rates: robustness can only
        # push speeds up.
        robust = minimize_energy_robust(
            three_tier_cluster,
            three_class_workload,
            rate_uncertainty=0.15,
            class_delay_bounds=bounds,
            n_starts=2,
        )
        assert robust.meta["power"] >= nominal.meta["power"] - 1e-4

    def test_zero_uncertainty_matches_nominal(self, three_tier_cluster, three_class_workload):
        bounds = end_to_end_delays(three_tier_cluster, three_class_workload) * 1.4
        nominal = minimize_energy(
            three_tier_cluster, three_class_workload, class_delay_bounds=bounds, n_starts=2
        )
        robust = minimize_energy_robust(
            three_tier_cluster,
            three_class_workload,
            rate_uncertainty=0.0,
            class_delay_bounds=bounds,
            n_starts=2,
        )
        assert robust.meta["power"] == pytest.approx(nominal.meta["power"], rel=1e-6)

    def test_excessive_uncertainty_infeasible(self, three_tier_cluster, three_class_workload):
        bounds = end_to_end_delays(three_tier_cluster, three_class_workload) * 1.2
        with pytest.raises(InfeasibleProblemError):
            # 3x rates saturate the cluster outright.
            minimize_energy_robust(
                three_tier_cluster,
                three_class_workload,
                rate_uncertainty=2.0,
                class_delay_bounds=bounds,
            )

    def test_bad_uncertainty(self, three_tier_cluster, three_class_workload):
        with pytest.raises(ModelValidationError):
            minimize_energy_robust(
                three_tier_cluster,
                three_class_workload,
                rate_uncertainty=-0.1,
                max_mean_delay=1.0,
            )
