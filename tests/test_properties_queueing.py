"""Property-based tests on queueing invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.distributions import Exponential, fit_two_moments
from repro.queueing import (
    MG1,
    MM1,
    MMc,
    ClassLoad,
    erlang_b,
    erlang_c,
    nonpreemptive_priority_mg1,
    preemptive_resume_priority_mg1,
)

rhos = st.floats(min_value=0.01, max_value=0.95, allow_nan=False)
mus = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)
scvs = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


class TestMM1Properties:
    @given(rho=rhos, mu=mus)
    @settings(max_examples=200)
    def test_littles_law(self, rho, mu):
        q = MM1(lam=rho * mu, mu=mu)
        assert q.mean_number_in_system == pytest.approx(q.lam * q.mean_sojourn, rel=1e-9)
        assert q.mean_queue_length == pytest.approx(q.lam * q.mean_wait, rel=1e-9)

    @given(rho=rhos, mu=mus)
    def test_sojourn_exceeds_service(self, rho, mu):
        q = MM1(lam=rho * mu, mu=mu)
        assert q.mean_sojourn >= q.mean_service

    @given(rho1=rhos, rho2=rhos, mu=mus)
    def test_wait_monotone_in_load(self, rho1, rho2, mu):
        assume(abs(rho1 - rho2) > 1e-6)
        lo, hi = sorted((rho1, rho2))
        assert MM1(lo * mu, mu).mean_wait <= MM1(hi * mu, mu).mean_wait


class TestErlangProperties:
    @given(c=st.integers(min_value=1, max_value=100), a=st.floats(min_value=1e-3, max_value=80.0))
    @settings(max_examples=200)
    def test_erlang_b_is_probability(self, c, a):
        b = erlang_b(c, a)
        assert 0.0 <= b <= 1.0

    @given(c=st.integers(min_value=1, max_value=60), rho=st.floats(min_value=0.01, max_value=0.98))
    def test_erlang_c_is_probability_and_above_b(self, c, rho):
        a = rho * c
        cc = erlang_c(c, a)
        assert 0.0 <= cc <= 1.0
        assert cc >= erlang_b(c, a) - 1e-12

    @given(c=st.integers(min_value=1, max_value=30), rho=st.floats(min_value=0.05, max_value=0.9))
    def test_pooling_improves(self, c, rho):
        # c+1 servers at the same per-server load wait less per job.
        q1 = MMc(lam=rho * c, mu=1.0, c=c)
        q2 = MMc(lam=rho * c, mu=1.0, c=c + 1)
        assert q2.mean_wait <= q1.mean_wait + 1e-12


class TestPKProperties:
    @given(rho=rhos, mean=st.floats(min_value=0.01, max_value=10.0), scv=scvs)
    @settings(max_examples=200)
    def test_pk_scales_linearly_in_scv(self, rho, mean, scv):
        lam = rho / mean
        w = MG1(lam, fit_two_moments(mean, scv)).mean_wait
        w_exp = MG1(lam, Exponential.from_mean(mean)).mean_wait
        assert w == pytest.approx(w_exp * (1.0 + scv) / 2.0, rel=1e-6)

    @given(rho=rhos, mean=st.floats(min_value=0.01, max_value=10.0), scv=scvs)
    def test_wait_nonnegative(self, rho, mean, scv):
        lam = rho / mean
        assert MG1(lam, fit_two_moments(mean, scv)).mean_wait >= 0.0


@st.composite
def class_loads(draw, max_classes=4, total_rho_max=0.9):
    """Random stable multi-class loads."""
    k = draw(st.integers(min_value=1, max_value=max_classes))
    shares = [draw(st.floats(min_value=0.05, max_value=1.0)) for _ in range(k)]
    total_rho = draw(st.floats(min_value=0.05, max_value=total_rho_max))
    shares_arr = np.array(shares)
    rhos_arr = total_rho * shares_arr / shares_arr.sum()
    loads = []
    for rho_k in rhos_arr:
        mean = draw(st.floats(min_value=0.05, max_value=5.0))
        scv = draw(st.floats(min_value=0.0, max_value=5.0))
        loads.append(ClassLoad(rho_k / mean, fit_two_moments(mean, scv)))
    return loads


class TestPriorityProperties:
    @given(loads=class_loads())
    @settings(max_examples=150, deadline=None)
    def test_cobham_waits_increase_down_priorities(self, loads):
        pw = nonpreemptive_priority_mg1(loads)
        assert np.all(np.diff(pw.mean_waits) >= -1e-12)

    @given(loads=class_loads())
    @settings(max_examples=150, deadline=None)
    def test_conservation_law_matches_fcfs(self, loads):
        # sum_k rho_k W_k is the same under priority and global FCFS
        # (both non-preemptive and work-conserving): rho * W_PK.
        pw = nonpreemptive_priority_mg1(loads)
        lam_total = sum(c.arrival_rate for c in loads)
        w0 = sum(c.residual for c in loads)
        rho = sum(c.utilization for c in loads)
        lhs = float(np.dot(pw.utilizations, pw.mean_waits))
        rhs = rho * w0 / (1.0 - rho)
        assert lhs == pytest.approx(rhs, rel=1e-9)

    @given(loads=class_loads())
    @settings(max_examples=150, deadline=None)
    def test_pr_top_class_no_worse_than_np(self, loads):
        np_w = nonpreemptive_priority_mg1(loads)
        pr_w = preemptive_resume_priority_mg1(loads)
        assert pr_w.mean_sojourns[0] <= np_w.mean_sojourns[0] + 1e-12

    @given(loads=class_loads(max_classes=3))
    @settings(max_examples=100, deadline=None)
    def test_adding_lower_class_never_helps_np(self, loads):
        assume(len(loads) >= 2)
        without = nonpreemptive_priority_mg1(loads[:-1])
        with_low = nonpreemptive_priority_mg1(loads)
        # Existing classes' waits can only grow when traffic is added
        # below them (their own W0 grows).
        k = len(loads) - 1
        assert np.all(with_low.mean_waits[:k] >= without.mean_waits - 1e-12)
