"""Epoch policy tests: drift-plus-penalty rule, static and planned."""

import numpy as np
import pytest

from repro.control import (
    DriftPlusPenaltyController,
    PlannedSpeedPolicy,
    StaticSpeedPolicy,
)
from repro.core.controller import plan_speed_schedule
from repro.exceptions import ModelValidationError
from repro.experiments.common import canonical_cluster, canonical_workload


@pytest.fixture
def cluster():
    return canonical_cluster()


class TestDriftPlusPenalty:
    def test_closed_form_minimizer(self, cluster):
        # The decision must equal the clipped stationary point of
        # V*kappa*s^alpha - Q*s per tier.
        v = 1e-3
        dpp = DriftPlusPenaltyController(cluster, v)
        backlog = np.array([0.3, 1.7, 0.9])
        kappa = np.array([t.spec.power.kappa for t in cluster.tiers])
        alpha = np.array([t.spec.power.alpha for t in cluster.tiers])
        lo = np.array([t.spec.min_speed for t in cluster.tiers])
        hi = np.array([t.spec.max_speed for t in cluster.tiers])
        expected = np.clip(
            (backlog / (v * kappa * alpha)) ** (1.0 / (alpha - 1.0)), lo, hi
        )
        np.testing.assert_allclose(dpp.speeds_for_backlog(backlog), expected)

    def test_speeds_box_respected(self, cluster):
        dpp = DriftPlusPenaltyController(cluster, 1e-3)
        lo = np.array([t.spec.min_speed for t in cluster.tiers])
        hi = np.array([t.spec.max_speed for t in cluster.tiers])
        for q in (np.zeros(3), np.full(3, 1e-6), np.full(3, 1e6)):
            s = dpp.speeds_for_backlog(q)
            assert np.all(s >= lo - 1e-12) and np.all(s <= hi + 1e-12)
        np.testing.assert_allclose(dpp.speeds_for_backlog(np.zeros(3)), lo)
        np.testing.assert_allclose(dpp.speeds_for_backlog(np.full(3, 1e6)), hi)

    def test_v_zero_is_pure_drift(self, cluster):
        dpp = DriftPlusPenaltyController(cluster, 0.0)
        lo = np.array([t.spec.min_speed for t in cluster.tiers])
        hi = np.array([t.spec.max_speed for t in cluster.tiers])
        np.testing.assert_allclose(
            dpp.speeds_for_backlog(np.array([0.0, 0.5, 0.0])), [lo[0], hi[1], lo[2]]
        )

    def test_larger_v_never_faster(self, cluster):
        backlog = np.array([0.5, 2.0, 1.0])
        speeds = [
            DriftPlusPenaltyController(cluster, v).speeds_for_backlog(backlog)
            for v in (1e-4, 1e-3, 1e-2)
        ]
        for s_small_v, s_large_v in zip(speeds, speeds[1:]):
            assert np.all(s_large_v <= s_small_v + 1e-12)

    def test_decide_converts_counts_to_work_backlog(self, cluster):
        dpp = DriftPlusPenaltyController(cluster, 1e-3)
        counts = np.array([[2, 0, 1], [0, 3, 0], [1, 1, 1]])
        demands = np.array([[d.mean for d in t.demands] for t in cluster.tiers])
        expected = dpp.speeds_for_backlog((counts * demands).sum(axis=1))
        np.testing.assert_allclose(
            dpp.decide(0.0, counts, np.ones(3)), expected
        )

    def test_class_weights_push_speeds(self, cluster):
        counts = np.array([[5, 0, 0], [5, 0, 0], [5, 0, 0]])
        plain = DriftPlusPenaltyController(cluster, 1e-3)
        gold_heavy = DriftPlusPenaltyController(
            cluster, 1e-3, class_weights=[10.0, 1.0, 1.0]
        )
        s_plain = plain.decide(0.0, counts, np.ones(3))
        s_heavy = gold_heavy.decide(0.0, counts, np.ones(3))
        assert np.all(s_heavy >= s_plain)
        assert np.any(s_heavy > s_plain)

    def test_validation(self, cluster):
        with pytest.raises(ModelValidationError):
            DriftPlusPenaltyController(cluster, -1.0)
        with pytest.raises(ModelValidationError):
            DriftPlusPenaltyController(cluster, float("nan"))
        with pytest.raises(ModelValidationError):
            DriftPlusPenaltyController(cluster, 1e-3, class_weights=[1.0])
        with pytest.raises(ModelValidationError):
            DriftPlusPenaltyController(cluster, 1e-3, class_weights=[1.0, -1.0, 1.0])

    def test_fresh_is_equivalent(self, cluster):
        dpp = DriftPlusPenaltyController(cluster, 2e-3)
        clone = dpp.fresh()
        q = np.array([0.1, 0.7, 0.2])
        np.testing.assert_allclose(
            clone.speeds_for_backlog(q), dpp.speeds_for_backlog(q)
        )
        assert clone.v_param == dpp.v_param


class TestStaticAndPlanned:
    def test_static_returns_fixed_vector(self):
        pol = StaticSpeedPolicy([0.7, 0.8, 0.9], name="s")
        out = pol.decide(12.0, np.zeros((3, 3)), np.ones(3))
        np.testing.assert_allclose(out, [0.7, 0.8, 0.9])
        assert pol.name == "s"

    def test_static_validation(self):
        with pytest.raises(ModelValidationError):
            StaticSpeedPolicy([])
        with pytest.raises(ModelValidationError):
            StaticSpeedPolicy([1.0, -0.5])

    def test_planned_looks_up_containing_epoch(self, cluster):
        names = list(canonical_workload().names)
        starts = np.array([0.0, 6.0, 12.0, 18.0])
        base = canonical_workload().arrival_rates
        rates = np.array([0.4, 0.8, 1.5, 1.0])[:, None] * base[None, :]
        plans = plan_speed_schedule(cluster, names, starts, rates, 24.0, 0.35, n_starts=1)
        pol = PlannedSpeedPolicy(plans)
        # Decision instants inside each plan epoch pick that epoch's
        # speeds; instants before the first epoch clamp to it.
        np.testing.assert_allclose(pol.decide(7.5, None, None), plans[1].speeds)
        np.testing.assert_allclose(pol.decide(6.0, None, None), plans[1].speeds)
        np.testing.assert_allclose(pol.decide(23.9, None, None), plans[3].speeds)
        np.testing.assert_allclose(pol.decide(0.0, None, None), plans[0].speeds)

    def test_planned_validation(self):
        with pytest.raises(ModelValidationError):
            PlannedSpeedPolicy([])
