"""Multi-class priority queue formula tests (Cobham, preemptive-resume,
multi-server)."""

import numpy as np
import pytest

from repro.distributions import Exponential, HyperExponential, fit_two_moments
from repro.exceptions import ModelValidationError, UnstableSystemError
from repro.queueing import (
    MG1,
    MMc,
    ClassLoad,
    bondi_buzen_priority_waits,
    nonpreemptive_priority_mg1,
    nonpreemptive_priority_mmc_common_mu,
    preemptive_resume_priority_mg1,
)


def loads(*pairs):
    return [ClassLoad(lam, svc) for lam, svc in pairs]


class TestCobham:
    def test_single_class_reduces_to_pk(self):
        svc = HyperExponential.balanced_from_mean_scv(1.0, 2.0)
        pw = nonpreemptive_priority_mg1(loads((0.5, svc)))
        assert pw.mean_waits[0] == pytest.approx(MG1(0.5, svc).mean_wait, rel=1e-12)

    def test_textbook_two_class_exponential(self):
        # lam=(0.3,0.4), mu=1: W0=0.7, sigma=(0.3,0.7)
        pw = nonpreemptive_priority_mg1(
            loads((0.3, Exponential(1.0)), (0.4, Exponential(1.0)))
        )
        w0 = 0.3 * 2.0 / 2 + 0.4 * 2.0 / 2  # = 0.7
        assert pw.mean_waits[0] == pytest.approx(w0 / (1.0 * (1 - 0.3)))
        assert pw.mean_waits[1] == pytest.approx(w0 / ((1 - 0.3) * (1 - 0.7)))

    def test_priority_ordering(self):
        pw = nonpreemptive_priority_mg1(
            loads((0.2, Exponential(1.0)), (0.3, Exponential(1.0)), (0.3, Exponential(1.0)))
        )
        assert pw.mean_waits[0] < pw.mean_waits[1] < pw.mean_waits[2]

    def test_conservation_law(self):
        # Kleinrock: sum_k rho_k W_k = rho * W0 / (1 - rho) is invariant
        # under any non-preemptive work-conserving order change.
        classes_a = loads((0.3, Exponential(2.0)), (0.4, Exponential(1.0)))
        classes_b = list(reversed(classes_a))
        wa = nonpreemptive_priority_mg1(classes_a)
        wb = nonpreemptive_priority_mg1(classes_b)
        sum_a = float(np.dot(wa.utilizations, wa.mean_waits))
        # class order reversed: utilizations come back reversed too
        sum_b = float(np.dot(wb.utilizations, wb.mean_waits))
        assert sum_a == pytest.approx(sum_b, rel=1e-12)

    def test_top_class_still_waits_behind_residuals(self):
        # Non-preemptive: even the top class sees the in-service job.
        pw = nonpreemptive_priority_mg1(
            loads((0.1, Exponential(10.0)), (0.5, Exponential(1.0)))
        )
        assert pw.mean_waits[0] > 0.0

    def test_unstable_total_raises(self):
        with pytest.raises(UnstableSystemError):
            nonpreemptive_priority_mg1(
                loads((0.6, Exponential(1.0)), (0.5, Exponential(1.0)))
            )

    def test_zero_rate_class_allowed(self):
        pw = nonpreemptive_priority_mg1(
            loads((0.0, Exponential(1.0)), (0.5, Exponential(1.0)))
        )
        # A zero-rate top class still "waits" the amount it would if a
        # probe arrived; formula stays finite and positive.
        assert np.all(np.isfinite(pw.mean_waits))

    def test_empty_classes_raise(self):
        with pytest.raises(ModelValidationError):
            nonpreemptive_priority_mg1([])

    def test_aggregate_helpers(self):
        pw = nonpreemptive_priority_mg1(
            loads((0.3, Exponential(1.0)), (0.4, Exponential(1.0)))
        )
        agg_w = pw.aggregate_wait([0.3, 0.4])
        expected = (0.3 * pw.mean_waits[0] + 0.4 * pw.mean_waits[1]) / 0.7
        assert agg_w == pytest.approx(expected)
        assert pw.aggregate_sojourn([0.3, 0.4]) > agg_w


class TestPreemptiveResume:
    def test_single_class_reduces_to_pk_sojourn(self):
        svc = Exponential(1.0)
        pw = preemptive_resume_priority_mg1(loads((0.5, svc)))
        assert pw.mean_sojourns[0] == pytest.approx(MG1(0.5, svc).mean_sojourn, rel=1e-12)

    def test_top_class_ignores_lower_classes(self):
        # Under PR the top class sees a private M/G/1.
        top_only = preemptive_resume_priority_mg1(loads((0.3, Exponential(1.0))))
        with_lower = preemptive_resume_priority_mg1(
            loads((0.3, Exponential(1.0)), (0.5, Exponential(2.0)))
        )
        assert with_lower.mean_sojourns[0] == pytest.approx(
            top_only.mean_sojourns[0], rel=1e-12
        )

    def test_pr_beats_np_for_top_class(self):
        cls = loads((0.3, Exponential(1.0)), (0.4, Exponential(1.0)))
        np_w = nonpreemptive_priority_mg1(cls)
        pr_w = preemptive_resume_priority_mg1(cls)
        assert pr_w.mean_sojourns[0] < np_w.mean_sojourns[0]
        # ...and the bottom class pays for it.
        assert pr_w.mean_sojourns[-1] > np_w.mean_sojourns[-1]

    def test_textbook_two_class_exponential(self):
        # mu=1, lam=(0.3, 0.4): T1 = (1 + 0.3)/(1-0.3) ... direct formula
        pw = preemptive_resume_priority_mg1(
            loads((0.3, Exponential(1.0)), (0.4, Exponential(1.0)))
        )
        t1 = 1.0 / (1 - 0.0) + (0.3 * 2.0 / 2) / ((1 - 0.0) * (1 - 0.3))
        t2 = 1.0 / (1 - 0.3) + ((0.3 + 0.4) * 2.0 / 2) / ((1 - 0.3) * (1 - 0.7))
        assert pw.mean_sojourns[0] == pytest.approx(t1, rel=1e-12)
        assert pw.mean_sojourns[1] == pytest.approx(t2, rel=1e-12)

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            preemptive_resume_priority_mg1(
                loads((0.7, Exponential(1.0)), (0.4, Exponential(1.0)))
            )


class TestPriorityMMcCommonMu:
    def test_single_class_matches_mmc(self):
        pw = nonpreemptive_priority_mmc_common_mu([1.5], mu=1.0, c=2)
        assert pw.mean_waits[0] == pytest.approx(MMc(1.5, 1.0, c=2).mean_wait, rel=1e-12)

    def test_c1_matches_cobham(self):
        lam = [0.3, 0.4]
        multi = nonpreemptive_priority_mmc_common_mu(lam, mu=1.0, c=1)
        cobham = nonpreemptive_priority_mg1(
            loads((0.3, Exponential(1.0)), (0.4, Exponential(1.0)))
        )
        np.testing.assert_allclose(multi.mean_waits, cobham.mean_waits, rtol=1e-12)

    def test_priority_ordering(self):
        pw = nonpreemptive_priority_mmc_common_mu([0.8, 1.0, 0.9], mu=1.0, c=4)
        assert pw.mean_waits[0] < pw.mean_waits[1] < pw.mean_waits[2]

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            nonpreemptive_priority_mmc_common_mu([1.5, 0.6], mu=1.0, c=2)

    def test_invalid_inputs(self):
        with pytest.raises(ModelValidationError):
            nonpreemptive_priority_mmc_common_mu([], mu=1.0, c=1)
        with pytest.raises(ModelValidationError):
            nonpreemptive_priority_mmc_common_mu([1.0], mu=1.0, c=0)
        with pytest.raises(ModelValidationError):
            nonpreemptive_priority_mmc_common_mu([-1.0], mu=1.0, c=1)


class TestBondiBuzen:
    def test_c1_exactly_cobham(self):
        cls = loads((0.3, fit_two_moments(1.0, 2.0)), (0.2, fit_two_moments(1.5, 2.0)))
        bb = bondi_buzen_priority_waits(cls, c=1)
        cobham = nonpreemptive_priority_mg1(cls)
        np.testing.assert_allclose(bb.mean_waits, cobham.mean_waits, rtol=1e-12)

    @pytest.mark.parametrize("c", [2, 4])
    def test_common_exponential_close_to_exact(self, c):
        # With identical exponential classes the scaling approximation
        # should land near the exact Kella-Yechiali value. Load scales
        # with c to hold per-server utilization at 0.7.
        lam = [0.28 * c, 0.42 * c]
        cls = loads((lam[0], Exponential(1.0)), (lam[1], Exponential(1.0)))
        bb = bondi_buzen_priority_waits(cls, c=c)
        exact = nonpreemptive_priority_mmc_common_mu(lam, mu=1.0, c=c)
        np.testing.assert_allclose(bb.mean_waits, exact.mean_waits, rtol=0.12)

    def test_priority_ordering_preserved(self):
        cls = loads((0.5, fit_two_moments(1.0, 2.5)), (1.0, fit_two_moments(1.2, 2.5)))
        bb = bondi_buzen_priority_waits(cls, c=3)
        assert bb.mean_waits[0] < bb.mean_waits[1]

    def test_sojourn_adds_actual_service(self):
        cls = loads((0.5, fit_two_moments(1.0, 1.5)),)
        bb = bondi_buzen_priority_waits(cls, c=2)
        assert bb.mean_sojourns[0] == pytest.approx(bb.mean_waits[0] + 1.0)

    def test_unstable_raises(self):
        cls = loads((3.0, Exponential(1.0)),)
        with pytest.raises(UnstableSystemError):
            bondi_buzen_priority_waits(cls, c=2)

    def test_invalid_inputs(self):
        with pytest.raises(ModelValidationError):
            bondi_buzen_priority_waits([], c=2)
        with pytest.raises(ModelValidationError):
            bondi_buzen_priority_waits(loads((0.5, Exponential(1.0))), c=0)
