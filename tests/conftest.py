"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.distributions import Exponential, fit_two_moments
from repro.workload import CustomerClass, Workload


@pytest.fixture
def rng():
    """Deterministic generator for sampling tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def telemetry(tmp_path):
    """Global telemetry enabled into a temp dir; always disabled after.

    Yields the :class:`repro.obs.Telemetry` singleton so tests can
    inspect ``.tracer.roots`` / ``.metrics`` and finalize the artifact.
    """
    from repro import obs

    obs.TELEMETRY.enable(tmp_path)
    try:
        yield obs.TELEMETRY
    finally:
        obs.TELEMETRY.disable()


@pytest.fixture
def basic_spec():
    """A plain server spec with a cube-law power model."""
    return ServerSpec(
        power=PowerModel(idle=50.0, kappa=100.0, alpha=3.0),
        min_speed=0.4,
        max_speed=1.0,
        cost=3.0,
    )


@pytest.fixture
def two_class_cluster(basic_spec):
    """Single-tier, two-class priority cluster (M/M/1-style demands)."""
    tier = Tier(
        "only",
        (Exponential(1.0), Exponential(1.0)),
        basic_spec,
        servers=1,
        speed=1.0,
        discipline="priority_np",
    )
    return ClusterModel([tier])


@pytest.fixture
def two_class_workload():
    """Matching 2-class workload, stable at speed 1."""
    return Workload([CustomerClass("hi", 0.3), CustomerClass("lo", 0.4)])


@pytest.fixture
def three_tier_cluster(basic_spec):
    """3-tier, 3-class cluster mirroring the canonical experiment setup
    but with the shared basic spec (keeps tests focused on behaviour,
    not parameters)."""

    def demands(means, scv=1.0):
        return tuple(fit_two_moments(m, scv) for m in means)

    tiers = [
        Tier("web", demands((0.02, 0.025, 0.03)), basic_spec, servers=2, speed=1.0),
        Tier("app", demands((0.08, 0.10, 0.12), scv=2.0), basic_spec, servers=4, speed=1.0),
        Tier("db", demands((0.05, 0.06, 0.07), scv=1.5), basic_spec, servers=3, speed=1.0),
    ]
    return ClusterModel(tiers)


@pytest.fixture
def three_class_workload():
    """Matching 3-class workload (busiest tier ~64% at speed 1)."""
    return Workload(
        [
            CustomerClass("gold", 4.0),
            CustomerClass("silver", 8.0),
            CustomerClass("bronze", 12.0),
        ]
    )
