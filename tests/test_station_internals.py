"""White-box tests of the simulation stations' mechanics.

The station classes are exercised directly against a private event
heap, pinning the single-live-entry re-arm (epoch) protocol, the
preemptive-resume bookkeeping and the PS elapse arithmetic that the
end-to-end statistical tests can only verify in aggregate.

Stations push their next-completion entries
``(time, seq, COMPLETION, station, epoch)`` straight onto the heap
they are constructed with; the tests read the *most recently pushed*
entry (highest seq — heap order is not push order) to follow the
re-arm sequence.
"""

from itertools import count

import pytest

from repro.simulation.job import Job
from repro.simulation.ps_station import PSStation
from repro.simulation.station import COMPLETION, SimStation


def last_event(heap):
    """(time, station, epoch) of the most recently pushed heap entry."""
    time, _, kind, station, epoch = max(heap, key=lambda e: e[1])
    assert kind == COMPLETION
    return (time, station, epoch)


def make_station(discipline="priority_np", servers=1, service=2.0, capacity=None):
    heap = []
    samplers = [lambda s=service: s, lambda s=service: s]
    st = SimStation(
        0, 2, servers, discipline, samplers, heap, count(1).__next__, capacity=capacity
    )
    return st, heap


def job(jid, cls, t=0.0):
    return Job(jid, cls, t, (0,))


class TestNonPreemptiveMechanics:
    def test_immediate_start_schedules_completion(self):
        st, heap = make_station()
        st.arrive(1.0, job(1, 0))
        assert last_event(heap) == (3.0, 0, 1)

    def test_queued_job_starts_at_completion(self):
        st, heap = make_station()
        st.arrive(0.0, job(1, 1))
        st.arrive(0.5, job(2, 0))  # higher class queues behind NP service
        done = st.complete(2.0, st.sched_epoch)
        assert done.jid == 1
        # Queued high-priority job starts now, completes at 4.0 (epoch
        # bumped by the re-arm).
        assert last_event(heap) == (4.0, 0, 2)

    def test_priority_order_on_free(self):
        st, heap = make_station()
        st.arrive(0.0, job(1, 0))
        st.arrive(0.1, job(2, 1))  # low priority waits
        st.arrive(0.2, job(3, 0))  # high priority waits
        st.complete(2.0, st.sched_epoch)
        # The high-priority job (jid 3) must be picked before jid 2.
        assert st.srv_job[0].jid == 3

    def test_stale_completion_ignored(self):
        st, heap = make_station(discipline="priority_pr")
        st.arrive(0.0, job(1, 1))
        first_epoch = st.sched_epoch
        st.arrive(1.0, job(2, 0))  # preempts job 1, re-arming the entry
        assert st.sched_epoch != first_epoch
        assert st.complete(2.0, first_epoch) is None  # stale event

    def test_capacity_rejects_when_full(self):
        st, heap = make_station(discipline="fcfs", capacity=2)
        assert st.arrive(0.0, job(1, 0))
        assert st.arrive(0.1, job(2, 0))  # queued, system at capacity
        assert not st.arrive(0.2, job(3, 0))  # rejected
        st.complete(2.0, st.sched_epoch)
        assert st.arrive(2.1, job(4, 0))  # room again


class TestPreemptiveResumeMechanics:
    def test_preempted_job_resumes_with_remaining_time(self):
        st, heap = make_station(discipline="priority_pr")
        st.arrive(0.0, job(1, 1))       # completes at 2.0 nominally
        st.arrive(0.5, job(2, 0))       # preempts after 0.5 of service
        victim = st.queues[1][0]
        assert victim.remaining == pytest.approx(1.5)
        # High-priority job runs 0.5..2.5 (epoch bumped once by the
        # preemption's resync).
        assert last_event(heap) == (2.5, 0, 2)
        st.complete(2.5, 2)
        # Victim resumes: completion at 2.5 + 1.5 = 4.0.
        assert last_event(heap) == (4.0, 0, 3)

    def test_equal_class_does_not_preempt(self):
        st, heap = make_station(discipline="priority_pr")
        st.arrive(0.0, job(1, 0))
        st.arrive(0.5, job(2, 0))
        assert st.srv_job[0].jid == 1  # no preemption among equals
        assert len(st.queues[0]) == 1

    def test_victim_is_lowest_priority_server(self):
        st, heap = make_station(discipline="priority_pr", servers=2)
        st.arrive(0.0, job(1, 0))
        st.arrive(0.1, job(2, 1))
        st.arrive(0.2, job(3, 0))  # must preempt jid 2, not jid 1
        running = {j.jid for j in st.srv_job if j is not None}
        assert running == {1, 3}
        assert st.queues[1][0].jid == 2

    def test_service_total_preserved_across_preemption(self):
        st, heap = make_station(discipline="priority_pr")
        st.arrive(0.0, job(1, 1))
        st.arrive(0.5, job(2, 0))
        st.complete(2.5, st.sched_epoch)
        done = st.complete(4.0, st.sched_epoch)
        assert done.jid == 1
        assert done.service_total == pytest.approx(2.0)  # the full sample


class TestPSMechanics:
    def _make(self, servers=1):
        heap = []
        st = PSStation(0, 2, servers, [lambda: 2.0, lambda: 2.0], heap, count(1).__next__)
        return st, heap

    def test_single_job_full_rate(self):
        st, heap = self._make()
        st.arrive(0.0, job(1, 0))
        assert last_event(heap)[0] == pytest.approx(2.0)

    def test_sharing_halves_rate(self):
        st, heap = self._make()
        st.arrive(0.0, job(1, 0))
        st.arrive(1.0, job(2, 1))  # job 1 has 1.0 left, now at half rate
        # Next completion: job 1 needs 1.0 more work at rate 1/2 -> at 3.0.
        assert last_event(heap)[0] == pytest.approx(3.0)
        done = st.complete(3.0, st.sched_epoch)
        assert done.jid == 1
        # Job 2 did 1.0 of its 2.0 between 1.0 and 3.0; 1.0 left at
        # full rate -> completes at 4.0.
        assert last_event(heap)[0] == pytest.approx(4.0)

    def test_multi_server_no_sharing_until_full(self):
        st, heap = self._make(servers=2)
        st.arrive(0.0, job(1, 0))
        st.arrive(0.5, job(2, 0))
        # Both at full rate: first completion at 2.0.
        assert last_event(heap)[0] == pytest.approx(2.0)

    def test_busy_time_weighted(self):
        st, heap = self._make()
        st.arrive(0.0, job(1, 0))
        st.arrive(1.0, job(2, 1))
        st.complete(3.0, st.sched_epoch)
        st.close_open_intervals(3.0)
        # One server busy the whole [0, 3].
        assert st.busy_total == pytest.approx(3.0)
        # Class 0 work: full rate on [0,1], half on [1,3] -> 1 + 1 = 2.
        assert st.class_busy_totals[0] == pytest.approx(2.0)
        assert st.class_busy_totals[1] == pytest.approx(1.0)
