"""White-box tests of the simulation stations' mechanics.

The station classes are exercised directly with a hand-rolled
scheduler stub, pinning the event-cancellation (epoch) protocol, the
preemptive-resume bookkeeping and the PS elapse arithmetic that the
end-to-end statistical tests can only verify in aggregate.
"""

import pytest

from repro.simulation.job import Job
from repro.simulation.ps_station import PSStation
from repro.simulation.station import SimStation
from repro.simulation.stats import BusyIntegrator


class Recorder:
    """Captures schedule() calls: (time, station, server, epoch)."""

    def __init__(self):
        self.events = []

    def __call__(self, time, station, server, epoch):
        self.events.append((time, station, server, epoch))

    @property
    def last(self):
        return self.events[-1]


def make_station(discipline="priority_np", servers=1, service=2.0, capacity=None):
    rec = Recorder()
    samplers = [lambda s=service: s, lambda s=service: s]
    st = SimStation(0, 2, servers, discipline, samplers, rec, capacity=capacity)
    st.busy = BusyIntegrator(0.0, 1e9)
    st.class_busy = [BusyIntegrator(0.0, 1e9) for _ in range(2)]
    return st, rec


def job(jid, cls, t=0.0):
    return Job(jid, cls, t, (0,))


class TestNonPreemptiveMechanics:
    def test_immediate_start_schedules_completion(self):
        st, rec = make_station()
        st.arrive(1.0, job(1, 0))
        assert rec.last == (3.0, 0, 0, 0)

    def test_queued_job_starts_at_completion(self):
        st, rec = make_station()
        st.arrive(0.0, job(1, 1))
        st.arrive(0.5, job(2, 0))  # higher class queues behind NP service
        done = st.complete(2.0, 0, rec.events[0][3])
        assert done.jid == 1
        # Queued high-priority job starts now, completes at 4.0.
        assert rec.last == (4.0, 0, 0, 1)

    def test_priority_order_on_free(self):
        st, rec = make_station()
        st.arrive(0.0, job(1, 0))
        st.arrive(0.1, job(2, 1))  # low priority waits
        st.arrive(0.2, job(3, 0))  # high priority waits
        st.complete(2.0, 0, 0)
        # The high-priority job (jid 3) must be picked before jid 2.
        assert st.servers[0].job.jid == 3

    def test_stale_completion_ignored(self):
        st, rec = make_station(discipline="priority_pr")
        st.arrive(0.0, job(1, 1))
        first_epoch = rec.events[0][3]
        st.arrive(1.0, job(2, 0))  # preempts job 1
        assert st.complete(2.0, 0, first_epoch) is None  # stale event

    def test_capacity_rejects_when_full(self):
        st, rec = make_station(discipline="fcfs", capacity=2)
        assert st.arrive(0.0, job(1, 0))
        assert st.arrive(0.1, job(2, 0))  # queued, system at capacity
        assert not st.arrive(0.2, job(3, 0))  # rejected
        st.complete(2.0, 0, 0)
        assert st.arrive(2.1, job(4, 0))  # room again


class TestPreemptiveResumeMechanics:
    def test_preempted_job_resumes_with_remaining_time(self):
        st, rec = make_station(discipline="priority_pr")
        st.arrive(0.0, job(1, 1))       # completes at 2.0 nominally
        st.arrive(0.5, job(2, 0))       # preempts after 0.5 of service
        victim = st.queues[1][0]
        assert victim.remaining == pytest.approx(1.5)
        # High-priority job runs 0.5..2.5 (epoch bumped once by the
        # preemption).
        assert rec.last == (2.5, 0, 0, 1)
        st.complete(2.5, 0, 1)
        # Victim resumes: completion at 2.5 + 1.5 = 4.0.
        assert rec.last == (4.0, 0, 0, 2)

    def test_equal_class_does_not_preempt(self):
        st, rec = make_station(discipline="priority_pr")
        st.arrive(0.0, job(1, 0))
        st.arrive(0.5, job(2, 0))
        assert st.servers[0].job.jid == 1  # no preemption among equals
        assert len(st.queues[0]) == 1

    def test_victim_is_lowest_priority_server(self):
        st, rec = make_station(discipline="priority_pr", servers=2)
        st.arrive(0.0, job(1, 0))
        st.arrive(0.1, job(2, 1))
        st.arrive(0.2, job(3, 0))  # must preempt jid 2, not jid 1
        running = {s.job.jid for s in st.servers}
        assert running == {1, 3}
        assert st.queues[1][0].jid == 2

    def test_service_total_preserved_across_preemption(self):
        st, rec = make_station(discipline="priority_pr")
        st.arrive(0.0, job(1, 1))
        st.arrive(0.5, job(2, 0))
        st.complete(2.5, 0, 1)
        done = st.complete(4.0, 0, 2)
        assert done.jid == 1
        assert done.service_total == pytest.approx(2.0)  # the full sample


class TestPSMechanics:
    def _make(self, servers=1):
        rec = Recorder()
        st = PSStation(0, 2, servers, [lambda: 2.0, lambda: 2.0], rec)
        st.busy = BusyIntegrator(0.0, 1e9)
        st.class_busy = [BusyIntegrator(0.0, 1e9) for _ in range(2)]
        return st, rec

    def test_single_job_full_rate(self):
        st, rec = self._make()
        st.arrive(0.0, job(1, 0))
        assert rec.last[0] == pytest.approx(2.0)

    def test_sharing_halves_rate(self):
        st, rec = self._make()
        st.arrive(0.0, job(1, 0))
        st.arrive(1.0, job(2, 1))  # job 1 has 1.0 left, now at half rate
        # Next completion: job 1 needs 1.0 more work at rate 1/2 -> at 3.0.
        assert rec.last[0] == pytest.approx(3.0)
        done = st.complete(3.0, 0, rec.last[3])
        assert done.jid == 1
        # Job 2 did 1.0 of its 2.0 between 1.0 and 3.0; 1.0 left at
        # full rate -> completes at 4.0.
        assert rec.last[0] == pytest.approx(4.0)

    def test_multi_server_no_sharing_until_full(self):
        st, rec = self._make(servers=2)
        st.arrive(0.0, job(1, 0))
        st.arrive(0.5, job(2, 0))
        # Both at full rate: first completion at 2.0.
        assert rec.last[0] == pytest.approx(2.0)

    def test_busy_time_weighted(self):
        st, rec = self._make()
        st.arrive(0.0, job(1, 0))
        st.arrive(1.0, job(2, 1))
        st.complete(3.0, 0, rec.last[3])
        st.close_open_intervals(3.0)
        # One server busy the whole [0, 3].
        assert st.busy.total == pytest.approx(3.0)
        # Class 0 work: full rate on [0,1], half on [1,3] -> 1 + 1 = 2.
        assert st.class_busy[0].total == pytest.approx(2.0)
        assert st.class_busy[1].total == pytest.approx(1.0)
