"""Percentile SLA guarantees in P3 and the on/off baseline."""

import numpy as np
import pytest

from repro.baselines import min_power_onoff, min_power_onoff_with_dvfs
from repro.core import (
    SLA,
    ClassSLA,
    all_class_percentiles,
    mean_end_to_end_delay,
    minimize_cost,
    minimize_energy,
    sla_feasibility,
)
from repro.exceptions import InfeasibleProblemError, ModelValidationError
from repro.experiments.common import (
    canonical_cluster,
    canonical_workload,
    small_cluster,
    small_workload,
)


class TestClassSLAPercentileFields:
    def test_valid_percentile_guarantee(self):
        g = ClassSLA("gold", 0.3, percentile=0.95, max_percentile_delay=0.9)
        assert g.has_percentile

    def test_mean_only_guarantee(self):
        assert not ClassSLA("gold", 0.3).has_percentile

    def test_partial_specification_rejected(self):
        with pytest.raises(ModelValidationError):
            ClassSLA("g", 0.3, percentile=0.95)
        with pytest.raises(ModelValidationError):
            ClassSLA("g", 0.3, max_percentile_delay=0.9)

    def test_bad_level(self):
        with pytest.raises(ModelValidationError):
            ClassSLA("g", 0.3, percentile=1.2, max_percentile_delay=0.9)

    def test_percentile_bound_may_sit_below_mean_bound(self):
        # Legitimate: a loose mean target with a tight tail target.
        g = ClassSLA("g", 0.5, percentile=0.95, max_percentile_delay=0.3)
        assert g.has_percentile

    def test_sla_percentile_specs(self):
        from repro.workload import workload_from_rates

        sla = SLA(
            [
                ClassSLA("gold", 0.3, percentile=0.95, max_percentile_delay=0.9),
                ClassSLA("silver", 0.6),
            ]
        )
        wl = workload_from_rates([1.0, 2.0])
        assert sla.has_percentiles
        specs = sla.percentile_specs(wl)
        assert specs == [(0, 0.95, 0.9)]


class TestPercentileFeasibility:
    def test_feasibility_consistent_with_direct_computation(self):
        cluster, workload = canonical_cluster(), canonical_workload()
        p95 = all_class_percentiles(cluster, workload, 0.95)
        loose = SLA(
            [
                ClassSLA(n, 10.0, percentile=0.95, max_percentile_delay=float(b * 1.2))
                for n, b in zip(workload.names, p95)
            ]
        )
        tight = SLA(
            [
                ClassSLA(n, 10.0, percentile=0.95, max_percentile_delay=float(b * 0.8))
                for n, b in zip(workload.names, p95)
            ]
        )
        assert sla_feasibility(cluster, workload, loose)[0]
        ok, score = sla_feasibility(cluster, workload, tight)
        assert not ok and score > 0.0

    def test_minimize_cost_with_percentiles_buys_more(self):
        cluster, workload = small_cluster(), small_workload()
        mean_sla = SLA([ClassSLA("gold", 0.35), ClassSLA("bronze", 0.9)])
        tight_pct = SLA(
            [
                ClassSLA("gold", 0.35, percentile=0.95, max_percentile_delay=0.6),
                ClassSLA("bronze", 0.9, percentile=0.95, max_percentile_delay=1.4),
            ]
        )
        base = minimize_cost(cluster, workload, mean_sla, optimize_speeds=False)
        pct = minimize_cost(cluster, workload, tight_pct, optimize_speeds=False)
        assert pct.total_cost >= base.total_cost
        # And the final configuration really meets the percentile bounds.
        p95 = all_class_percentiles(pct.cluster, workload, 0.95)
        assert p95[0] <= 0.6 + 1e-9 and p95[1] <= 1.4 + 1e-9

    def test_speed_tuning_never_breaks_percentiles(self):
        cluster, workload = small_cluster(), small_workload()
        sla = SLA(
            [
                ClassSLA("gold", 0.5, percentile=0.95, max_percentile_delay=0.8),
                ClassSLA("bronze", 1.0, percentile=0.95, max_percentile_delay=1.6),
            ]
        )
        alloc = minimize_cost(cluster, workload, sla, optimize_speeds=True)
        ok, _ = sla_feasibility(alloc.cluster, workload, sla)
        assert ok


class TestOnOff:
    def test_meets_bound_with_fewer_servers(self):
        cluster, workload = canonical_cluster(), canonical_workload()
        base_delay = mean_end_to_end_delay(
            cluster.with_speeds([1.0, 1.0, 1.0]), workload
        )
        counts, power = min_power_onoff(cluster, workload, base_delay * 3.0)
        assert counts.sum() < cluster.server_counts.sum()
        full_power = cluster.with_speeds([1.0] * 3).average_power(workload.arrival_rates)
        assert power < full_power
        at_max = cluster.with_speeds([1.0] * 3).with_servers(counts)
        assert mean_end_to_end_delay(at_max, workload) <= base_delay * 3.0 + 1e-9

    def test_tight_bound_keeps_everything_on(self):
        cluster, workload = canonical_cluster(), canonical_workload()
        base_delay = mean_end_to_end_delay(cluster, workload)
        counts, _ = min_power_onoff(cluster, workload, base_delay * 1.01)
        np.testing.assert_array_equal(counts, cluster.server_counts)

    def test_infeasible_bound_raises(self):
        cluster, workload = canonical_cluster(), canonical_workload()
        with pytest.raises(InfeasibleProblemError):
            min_power_onoff(cluster, workload, 1e-4)

    def test_combined_no_worse_than_either(self):
        cluster, workload = canonical_cluster(), canonical_workload()
        bound = mean_end_to_end_delay(cluster, workload) * 2.0
        _, onoff_power = min_power_onoff(cluster, workload, bound)
        dvfs = minimize_energy(cluster, workload, max_mean_delay=bound, n_starts=2)
        counts, speeds, both_power = min_power_onoff_with_dvfs(
            cluster, workload, bound, n_starts=2
        )
        assert both_power <= onoff_power + 1.0
        assert both_power <= dvfs.meta["power"] + 1.0
        # The combined configuration honors the bound.
        final = cluster.with_servers(counts).with_speeds(speeds)
        assert mean_end_to_end_delay(final, workload) <= bound + 1e-6
