"""M/M/1, M/M/c and M/G/1 exact-formula tests."""

import numpy as np
import pytest

from repro.distributions import Deterministic, Erlang, Exponential, HyperExponential
from repro.exceptions import ModelValidationError, UnstableSystemError
from repro.queueing import MG1, MGc, MM1, MMc, erlang_b, erlang_c


class TestMM1:
    def test_textbook_values(self):
        q = MM1(lam=0.5, mu=1.0)
        assert q.rho == 0.5
        assert q.mean_sojourn == pytest.approx(2.0)
        assert q.mean_wait == pytest.approx(1.0)
        assert q.mean_number_in_system == pytest.approx(1.0)
        assert q.mean_queue_length == pytest.approx(0.5)

    def test_littles_law(self):
        q = MM1(lam=0.8, mu=1.2)
        assert q.mean_number_in_system == pytest.approx(q.lam * q.mean_sojourn)
        assert q.mean_queue_length == pytest.approx(q.lam * q.mean_wait)

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            MM1(lam=1.0, mu=1.0)
        with pytest.raises(UnstableSystemError):
            MM1(lam=2.0, mu=1.0)

    def test_invalid_rates(self):
        with pytest.raises(ModelValidationError):
            MM1(lam=-1.0, mu=1.0)
        with pytest.raises(ModelValidationError):
            MM1(lam=0.5, mu=0.0)

    def test_geometric_queue_distribution(self):
        q = MM1(lam=0.6, mu=1.0)
        ns = np.arange(200)
        probs = q.prob_n_in_system(ns)
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)
        assert float(np.dot(ns, probs)) == pytest.approx(q.mean_number_in_system, rel=1e-6)

    def test_sojourn_cdf_and_quantile_inverse(self):
        q = MM1(lam=0.5, mu=1.0)
        for p in (0.1, 0.5, 0.9, 0.99):
            assert q.sojourn_cdf(q.sojourn_quantile(p)) == pytest.approx(p, abs=1e-12)

    def test_sojourn_cdf_bounds(self):
        q = MM1(lam=0.5, mu=1.0)
        assert q.sojourn_cdf(0.0) == pytest.approx(0.0)
        assert q.sojourn_cdf(1e9) == pytest.approx(1.0)

    def test_quantile_rejects_bad_levels(self):
        q = MM1(lam=0.5, mu=1.0)
        for p in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                q.sojourn_quantile(p)


class TestErlangFunctions:
    def test_erlang_b_one_server(self):
        # B(1, a) = a / (1 + a)
        for a in (0.1, 1.0, 5.0):
            assert erlang_b(1, a) == pytest.approx(a / (1 + a))

    def test_erlang_b_decreases_in_servers(self):
        vals = [erlang_b(c, 4.0) for c in range(1, 12)]
        assert all(x > y for x, y in zip(vals, vals[1:]))

    def test_erlang_b_direct_formula(self):
        # B(c, a) = (a^c / c!) / sum_k a^k / k!
        from math import factorial

        c, a = 5, 3.0
        num = a**c / factorial(c)
        den = sum(a**k / factorial(k) for k in range(c + 1))
        assert erlang_b(c, a) == pytest.approx(num / den, rel=1e-12)

    def test_erlang_c_one_server_equals_rho(self):
        assert erlang_c(1, 0.7) == pytest.approx(0.7)

    def test_erlang_c_exceeds_erlang_b(self):
        assert erlang_c(4, 3.0) > erlang_b(4, 3.0)

    def test_erlang_c_zero_load(self):
        assert erlang_c(3, 0.0) == 0.0
        assert erlang_b(3, 0.0) == 0.0

    def test_erlang_c_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            erlang_c(2, 2.0)

    def test_erlang_b_large_c_stable(self):
        # The recurrence must not overflow for hundreds of servers.
        assert 0.0 < erlang_b(500, 480.0) < 1.0


class TestMMc:
    def test_c1_equals_mm1(self):
        q1, qc = MM1(0.6, 1.0), MMc(0.6, 1.0, c=1)
        assert qc.mean_wait == pytest.approx(q1.mean_wait, rel=1e-12)
        assert qc.mean_sojourn == pytest.approx(q1.mean_sojourn, rel=1e-12)

    def test_pooling_beats_split(self):
        # One pooled M/M/2 beats two separate M/M/1 at equal total load.
        pooled = MMc(1.2, 1.0, c=2)
        split = MM1(0.6, 1.0)
        assert pooled.mean_wait < split.mean_wait

    def test_wait_decreases_in_servers(self):
        waits = [MMc(2.0, 1.0, c=c).mean_wait for c in range(3, 9)]
        assert all(x > y for x, y in zip(waits, waits[1:]))

    def test_littles_law(self):
        q = MMc(3.0, 1.0, c=4)
        assert q.mean_number_in_system == pytest.approx(q.lam * q.mean_sojourn)

    def test_wait_cdf_quantile_inverse(self):
        q = MMc(1.5, 1.0, c=2)
        for p in (0.9, 0.99):
            assert q.wait_cdf(q.wait_quantile(p)) == pytest.approx(p, abs=1e-12)

    def test_wait_quantile_zero_below_prob_wait(self):
        q = MMc(0.2, 1.0, c=4)  # lightly loaded: most arrivals don't wait
        assert q.wait_quantile(0.5) == 0.0

    def test_invalid_server_count(self):
        with pytest.raises(ModelValidationError):
            MMc(1.0, 1.0, c=0)
        with pytest.raises(ModelValidationError):
            MMc(1.0, 1.0, c=2.5)

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            MMc(4.0, 1.0, c=4)


class TestMG1:
    def test_exponential_service_matches_mm1(self):
        q = MG1(0.7, Exponential(1.0))
        assert q.mean_wait == pytest.approx(MM1(0.7, 1.0).mean_wait, rel=1e-12)

    def test_deterministic_service_halves_wait(self):
        exp_wait = MG1(0.5, Exponential(1.0)).mean_wait
        det_wait = MG1(0.5, Deterministic(1.0)).mean_wait
        assert det_wait == pytest.approx(0.5 * exp_wait, rel=1e-12)

    def test_pk_formula_direct(self):
        lam, svc = 0.4, Erlang(k=2, rate=4.0)
        q = MG1(lam, svc)
        rho = lam * svc.mean
        expected = lam * svc.second_moment / (2 * (1 - rho))
        assert q.mean_wait == pytest.approx(expected, rel=1e-12)

    def test_wait_increases_with_scv(self):
        waits = [
            MG1(0.5, Deterministic(1.0)).mean_wait,
            MG1(0.5, Exponential(1.0)).mean_wait,
            MG1(0.5, HyperExponential.balanced_from_mean_scv(1.0, 4.0)).mean_wait,
        ]
        assert waits[0] < waits[1] < waits[2]

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            MG1(1.0, Exponential(1.0))

    def test_rejects_non_distribution(self):
        with pytest.raises(ModelValidationError):
            MG1(0.5, 1.0)  # type: ignore[arg-type]


class TestMGc:
    def test_exponential_reduces_to_mmc(self):
        q = MGc(1.5, Exponential(1.0), c=2)
        assert q.mean_wait == pytest.approx(MMc(1.5, 1.0, c=2).mean_wait, rel=1e-12)

    def test_c1_reduces_to_mg1(self):
        svc = HyperExponential.balanced_from_mean_scv(1.0, 3.0)
        assert MGc(0.5, svc, c=1).mean_wait == pytest.approx(
            MG1(0.5, svc).mean_wait, rel=1e-12
        )

    def test_deterministic_halves_mmc_wait(self):
        det = MGc(1.5, Deterministic(1.0), c=2)
        mmc = MMc(1.5, 1.0, c=2)
        assert det.mean_wait == pytest.approx(0.5 * mmc.mean_wait, rel=1e-12)

    def test_littles_law(self):
        q = MGc(2.0, Exponential(1.0), c=3)
        assert q.mean_queue_length == pytest.approx(q.lam * q.mean_wait)
