"""Time-varying workload profile and trace tests."""

import numpy as np
import pytest

from repro.exceptions import ModelValidationError
from repro.workload.timevarying import (
    bursty_trace,
    diurnal_profile,
    diurnal_trace,
    flash_crowd_profile,
    flash_crowd_trace,
    profile_processes,
    profile_rates,
)


class TestProfiles:
    def test_diurnal_bounds_and_peak(self):
        f = diurnal_profile(period=24.0, trough=0.25, peak=1.6)
        t = np.linspace(0.0, 24.0, 1000)
        vals = np.array([f(ti) for ti in t])
        assert vals.min() == pytest.approx(0.25, abs=1e-3)
        assert vals.max() == pytest.approx(1.6, abs=1e-3)
        # Default peak lands 2/3 through the period.
        assert f(16.0) == pytest.approx(1.6)
        assert f(4.0) == pytest.approx(0.25)

    def test_diurnal_validation(self):
        with pytest.raises(ModelValidationError):
            diurnal_profile(period=0.0)
        with pytest.raises(ModelValidationError):
            diurnal_profile(trough=0.0)
        with pytest.raises(ModelValidationError):
            diurnal_profile(trough=1.5, peak=1.0)

    def test_flash_crowd_window(self):
        base = diurnal_profile(period=24.0, trough=0.5, peak=1.0)
        surged = flash_crowd_profile(base, surge_start=10.0, surge_duration=2.0, surge_factor=3.0)
        assert surged(9.99) == pytest.approx(base(9.99))
        assert surged(10.0) == pytest.approx(3.0 * base(10.0))
        assert surged(11.9) == pytest.approx(3.0 * base(11.9))
        assert surged(12.0) == pytest.approx(base(12.0))

    def test_flash_crowd_validation(self):
        base = diurnal_profile()
        with pytest.raises(ModelValidationError):
            flash_crowd_profile(base, 1.0, 0.0, 2.0)
        with pytest.raises(ModelValidationError):
            flash_crowd_profile(base, 1.0, 2.0, 0.5)

    def test_profile_rates_grid(self):
        f = diurnal_profile(period=24.0, trough=0.5, peak=1.5)
        rates = profile_rates(f, [4.0, 8.0], np.array([0.0, 6.0, 12.0]))
        assert rates.shape == (3, 2)
        np.testing.assert_allclose(rates[:, 1] / rates[:, 0], 2.0)
        with pytest.raises(ModelValidationError):
            profile_rates(f, [], [0.0])
        with pytest.raises(ModelValidationError):
            profile_rates(lambda t: -1.0, [4.0], [0.0])


class TestTraces:
    def test_diurnal_trace_rates_near_profile_mean(self):
        base = np.array([4.0, 8.0, 12.0])
        horizon = 400.0
        trace = diurnal_trace(base, horizon, period=horizon, trough=0.5, peak=1.5, seed=1)
        # The sinusoid averages to (trough+peak)/2 = 1.0 over one period.
        np.testing.assert_allclose(trace.rates(), base, rtol=0.15)
        assert trace.horizon == horizon
        assert trace.num_classes == 3

    def test_flash_crowd_trace_adds_arrivals_in_window(self):
        base = np.array([10.0])
        horizon = 200.0
        quiet = diurnal_trace(base, horizon, period=horizon, trough=1.0, peak=1.0, seed=2)
        surged = flash_crowd_trace(
            base, horizon, surge_start=50.0, surge_duration=50.0, surge_factor=3.0,
            period=horizon, trough=1.0, peak=1.0, seed=2,
        )
        def count_in(tr, lo, hi):
            ts = tr.arrivals[0]
            return int(((ts >= lo) & (ts < hi)).sum())

        # Inside the surge window the surged trace runs ~3x hotter.
        ratio = count_in(surged, 50.0, 100.0) / max(count_in(quiet, 50.0, 100.0), 1)
        assert ratio > 2.0

    def test_bursty_trace_preserves_mean_rate(self):
        base = np.array([6.0, 9.0])
        trace = bursty_trace(base, 600.0, burst_factor=4.0, seed=3)
        np.testing.assert_allclose(trace.rates(), base, rtol=0.15)

    def test_bursty_validation(self):
        with pytest.raises(ModelValidationError):
            bursty_trace([5.0], 100.0, burst_factor=1.0)
        with pytest.raises(ModelValidationError):
            bursty_trace([5.0], 100.0, mean_burst=0.0)
        with pytest.raises(ModelValidationError):
            bursty_trace([-5.0], 100.0)

    def test_profile_processes_validation(self):
        f = diurnal_profile()
        with pytest.raises(ModelValidationError):
            profile_processes(f, [1.0], horizon=-5.0)
        with pytest.raises(ModelValidationError):
            profile_processes(f, [0.0], horizon=10.0)
        procs = profile_processes(f, [2.0, 4.0], horizon=48.0)
        assert len(procs) == 2
        assert procs[0].rate == pytest.approx(2.0)
