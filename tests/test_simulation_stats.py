"""Online statistics and RNG stream tests."""

import numpy as np
import pytest

from repro.exceptions import ModelValidationError
from repro.simulation import RngStreams, Welford, confidence_halfwidth
from repro.simulation.stats import BusyIntegrator


class TestWelford:
    def test_matches_numpy(self, rng):
        xs = rng.normal(3.0, 2.0, size=5000)
        w = Welford()
        for x in xs:
            w.add(float(x))
        assert w.mean == pytest.approx(xs.mean(), rel=1e-10)
        assert w.variance == pytest.approx(xs.var(ddof=1), rel=1e-8)
        assert w.n == 5000

    def test_empty_and_single(self):
        w = Welford()
        assert np.isnan(w.mean)
        w.add(2.0)
        assert w.mean == 2.0
        assert np.isnan(w.variance)

    def test_merge_equals_sequential(self, rng):
        xs = rng.exponential(1.0, size=2001)
        a, b, full = Welford(), Welford(), Welford()
        for x in xs[:700]:
            a.add(float(x))
            full.add(float(x))
        for x in xs[700:]:
            b.add(float(x))
            full.add(float(x))
        merged = a.merge(b)
        assert merged.n == full.n
        assert merged.mean == pytest.approx(full.mean, rel=1e-12)
        assert merged.variance == pytest.approx(full.variance, rel=1e-10)

    def test_merge_with_empty(self):
        a = Welford()
        a.add(1.0)
        a.add(3.0)
        merged = a.merge(Welford())
        assert merged.mean == 2.0
        assert Welford().merge(Welford()).n == 0


class TestConfidenceHalfwidth:
    def test_known_value(self):
        # 95% t-quantile with 9 dof is ~2.262.
        hw = confidence_halfwidth(std=1.0, n=10)
        assert hw == pytest.approx(2.2622 / np.sqrt(10), rel=1e-3)

    def test_nan_for_tiny_samples(self):
        assert np.isnan(confidence_halfwidth(1.0, 1))
        assert np.isnan(confidence_halfwidth(float("nan"), 10))

    def test_narrows_with_n(self):
        assert confidence_halfwidth(1.0, 100) < confidence_halfwidth(1.0, 10)

    def test_bad_level(self):
        with pytest.raises(ModelValidationError):
            confidence_halfwidth(1.0, 10, level=1.5)


class TestBusyIntegrator:
    def test_basic_accumulation(self):
        b = BusyIntegrator(0.0, 10.0)
        b.add(1.0, 3.0)
        b.add(5.0, 6.0)
        assert b.total == pytest.approx(3.0)
        assert b.utilization(1) == pytest.approx(0.3)

    def test_clipping(self):
        b = BusyIntegrator(10.0, 20.0)
        b.add(0.0, 12.0)   # clipped to [10, 12]
        b.add(19.0, 25.0)  # clipped to [19, 20]
        b.add(0.0, 5.0)    # entirely outside
        assert b.total == pytest.approx(3.0)

    def test_multi_server_utilization(self):
        b = BusyIntegrator(0.0, 10.0)
        b.add(0.0, 10.0)
        b.add(0.0, 5.0)
        assert b.utilization(2) == pytest.approx(0.75)

    def test_empty_window_rejected(self):
        with pytest.raises(ModelValidationError):
            BusyIntegrator(5.0, 5.0)


class TestRngStreams:
    def test_deterministic(self):
        a = RngStreams(7).stream("x").random(5)
        b = RngStreams(7).stream("x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_named_streams_differ(self):
        s = RngStreams(7)
        assert not np.array_equal(s.stream("a").random(5), s.stream("b").random(5))

    def test_order_independent(self):
        s1 = RngStreams(7)
        s1.stream("a")
        a_then = s1.stream("b").random(5)
        s2 = RngStreams(7)
        b_first = s2.stream("b").random(5)
        np.testing.assert_array_equal(a_then, b_first)

    def test_replication_seeds_independent(self):
        seeds = RngStreams.replication_seeds(0, 3)
        draws = [RngStreams(s).stream("x").random(4) for s in seeds]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_same_stream_cached(self):
        s = RngStreams(1)
        assert s.stream("x") is s.stream("x")

    def test_bad_seed(self):
        with pytest.raises(ModelValidationError):
            RngStreams(-1)
        with pytest.raises(ModelValidationError):
            RngStreams("seed")  # type: ignore[arg-type]

    def test_bad_replication_count(self):
        with pytest.raises(ModelValidationError):
            RngStreams.replication_seeds(0, 0)
