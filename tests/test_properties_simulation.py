"""Property-based tests on the simulator's structural invariants.

These use short horizons (the point is invariants, not tight
estimates) over randomized single-station configurations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.distributions import fit_two_moments
from repro.simulation import simulate
from repro.workload import workload_from_rates

SPEC = ServerSpec(PowerModel(idle=5.0, kappa=20.0, alpha=3.0), min_speed=0.3, max_speed=1.0)


@st.composite
def sim_setups(draw):
    k = draw(st.integers(min_value=1, max_value=3))
    servers = draw(st.integers(min_value=1, max_value=3))
    discipline = draw(st.sampled_from(["fcfs", "priority_np", "priority_pr"]))
    total_rho = draw(st.floats(min_value=0.2, max_value=0.8))
    means = np.array([draw(st.floats(min_value=0.2, max_value=1.5)) for _ in range(k)])
    scv = draw(st.floats(min_value=0.0, max_value=3.0))
    shares = np.array([draw(st.floats(min_value=0.2, max_value=1.0)) for _ in range(k)])
    shares = shares / shares.sum()
    rates = total_rho * servers * shares / means
    tier = Tier(
        "t",
        tuple(fit_two_moments(m, scv) for m in means),
        SPEC,
        servers=servers,
        speed=1.0,
        discipline=discipline,
    )
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return ClusterModel([tier]), workload_from_rates(rates.tolist()), seed


class TestSimulatorInvariants:
    @given(setup=sim_setups())
    @settings(max_examples=25, deadline=None)
    def test_conservation_and_sanity(self, setup):
        cluster, workload, seed = setup
        res = simulate(cluster, workload, horizon=400.0, seed=seed)
        # Delays are positive where observed.
        observed = res.n_completed > 0
        assert np.all(res.delays[observed] > 0.0)
        # Utilization in [0, 1].
        assert 0.0 <= res.utilizations[0] <= 1.0
        # Measured utilization near the analytic offered load. The
        # window is short (400 time units) and busy-period correlations
        # make the utilization estimator noisy at high rho, so the band
        # is wide — the point is sanity, not precision (the precise
        # checks live in test_simulation_validation with long horizons).
        rho = cluster.utilizations(workload.arrival_rates)[0]
        assert res.utilizations[0] == pytest.approx(rho, abs=0.25)
        # Power never below the idle floor, never above busy-everything.
        tier = cluster.tiers[0]
        idle_floor = tier.servers * tier.spec.power.idle
        busy_ceiling = tier.servers * tier.spec.power.busy_power(tier.speed)
        assert idle_floor <= res.average_power <= busy_ceiling + 1e-9

    @given(setup=sim_setups())
    @settings(max_examples=15, deadline=None)
    def test_throughput_matches_offered_load(self, setup):
        cluster, workload, seed = setup
        res = simulate(cluster, workload, horizon=800.0, seed=seed)
        window = res.horizon - res.warmup
        throughput = res.n_completed.sum() / window
        # Stable system: long-run throughput ~ arrival rate (loose band,
        # short run).
        assert throughput == pytest.approx(workload.total_rate, rel=0.25)

    @given(setup=sim_setups())
    @settings(max_examples=10, deadline=None)
    def test_determinism(self, setup):
        cluster, workload, seed = setup
        a = simulate(cluster, workload, horizon=200.0, seed=seed)
        b = simulate(cluster, workload, horizon=200.0, seed=seed)
        np.testing.assert_array_equal(a.n_completed, b.n_completed)
        np.testing.assert_array_equal(a.delays, b.delays)
