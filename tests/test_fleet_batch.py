"""Batched fleet execution tests.

The batched path's contract is the same as the fleet runner's overall
contract — *bit-identical rows for any scheduling* — extended over a
new axis: chunk size. Every (batch_size, jobs, backend) combination
must reproduce the PR 8 unit-at-a-time rows exactly, a replication
failing mid-batch must cost exactly one unit (the rest of the chunk
survives on fresh kernel state), and the columnar ingest + streaming
aggregate must hold at most one row group in memory.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.cluster import ClusterModel, Tier
from repro.distributions.base import Distribution
from repro.exceptions import ModelValidationError
from repro.experiments.common import small_cluster, small_workload
from repro.simulation import FleetScenario, FleetStore, run_fleet
from repro.simulation.compiled import kernel_available
from repro.simulation.fleet import _chunk_plan, _resolve_batch_size

needs_kernel = pytest.mark.skipif(
    not kernel_available(), reason="no C toolchain for the compiled kernel"
)


def _scenarios(loads=(0.5, 0.8), horizon=8.0):
    return [
        FleetScenario(
            label=f"load={f}",
            cluster=small_cluster(),
            workload=small_workload(f),
            horizon=horizon,
            params={"load_factor": f},
        )
        for f in loads
    ]


def _canonical_rows(path):
    """Rows in unit order with the timing column dropped."""
    data = FleetStore.open(path).read()
    order = np.argsort(data["unit"])
    return {k: v[order].tolist() for k, v in data.items() if k != "wall_s"}


# ---------------------------------------------------------------------------
# bit-identity across batch size, scheduling, backend
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("batch_size", [1, 7, 64])
@pytest.mark.parametrize("n_jobs", [1, 2])
@pytest.mark.parametrize("backend", ["python", "compiled"])
def test_fleet_batched_rows_bit_identical(tmp_path, batch_size, n_jobs, backend):
    if backend == "compiled" and not kernel_available():
        pytest.skip("no C toolchain for the compiled kernel")
    scenarios = _scenarios()
    ref = run_fleet(
        scenarios,
        10,
        tmp_path / "ref",
        seed=11,
        n_jobs=1,
        backend="python",
        batch_size=1,
        store_format="npz",
    )
    got = run_fleet(
        scenarios,
        10,
        tmp_path / "got",
        seed=11,
        n_jobs=n_jobs,
        backend=backend,
        batch_size=batch_size,
        store_format="npz",
    )
    assert ref.n_done == got.n_done == 20
    assert ref.n_failed == got.n_failed == 0
    assert _canonical_rows(tmp_path / "got") == _canonical_rows(tmp_path / "ref")


@needs_kernel
def test_fleet_batched_chunk_boundaries(tmp_path):
    # 70 replications under batch 64: a full chunk plus a 6-unit tail
    # per scenario — the resume/reset seams land mid-scenario.
    scenarios = _scenarios(loads=(0.6,))
    ref = run_fleet(
        scenarios,
        70,
        tmp_path / "ref",
        seed=3,
        n_jobs=1,
        backend="python",
        batch_size=1,
        store_format="npz",
    )
    got = run_fleet(
        scenarios,
        70,
        tmp_path / "got",
        seed=3,
        n_jobs=1,
        backend="compiled",
        batch_size=64,
        store_format="npz",
    )
    assert ref.n_done == got.n_done == 70
    assert _canonical_rows(tmp_path / "got") == _canonical_rows(tmp_path / "ref")


def test_fleet_batch_size_recorded_and_validated(tmp_path):
    summary = run_fleet(
        _scenarios(loads=(0.5,)),
        4,
        tmp_path / "s",
        seed=0,
        n_jobs=1,
        batch_size=2,
        store_format="npz",
    )
    assert summary.n_done == 4
    meta = FleetStore.open(tmp_path / "s").meta
    assert meta["batch_size"] == 2
    assert meta["transport"] == "inline"
    for bad in (0, -3, 2.5, "huge", True):
        with pytest.raises(ModelValidationError):
            run_fleet(
                _scenarios(loads=(0.5,)),
                2,
                tmp_path / f"bad-{bad}",
                batch_size=bad,
            )


def test_chunk_plan_and_auto_sizing():
    assert _chunk_plan(2, 5, 2) == [
        (0, 0, 2),
        (0, 2, 2),
        (0, 4, 1),
        (1, 0, 2),
        (1, 2, 2),
        (1, 4, 1),
    ]
    # serial: as large as the scenario allows, capped at 64
    assert _resolve_batch_size("auto", 250, 1000, 1) == 64
    assert _resolve_batch_size("auto", 10, 20, 1) == 10
    # pool: keep ~8 chunks per worker in flight for stealing
    assert _resolve_batch_size("auto", 250, 1000, 4) == 32
    assert _resolve_batch_size("auto", 250, 1000, 64) == 2
    assert _resolve_batch_size(100, 30, 60, 1) == 30  # clamped to scenario


# ---------------------------------------------------------------------------
# failure accounting
# ---------------------------------------------------------------------------


class _FailingNthDraw(Distribution):
    """Wraps a distribution; the ``fail_at``-th sample call raises."""

    def __init__(self, inner, fail_at: int):
        self.inner = inner
        self.fail_at = fail_at
        self.calls = 0

    @property
    def mean(self) -> float:
        return self.inner.mean

    @property
    def second_moment(self) -> float:
        return self.inner.second_moment

    def sample(self, rng, size=None):
        self.calls += 1
        if self.calls == self.fail_at:
            raise RuntimeError("injected draw failure")
        return self.inner.sample(rng, size)


def _bombed_scenario(fail_at: int, horizon=8.0) -> FleetScenario:
    clean = small_cluster()
    t0 = clean.tiers[0]
    cluster = ClusterModel(
        [
            Tier(
                t0.name,
                (_FailingNthDraw(t0.demands[0], fail_at), t0.demands[1]),
                t0.spec,
                servers=t0.servers,
                speed=t0.speed,
                discipline=t0.discipline,
            ),
            clean.tiers[1],
        ]
    )
    return FleetScenario(
        label="bombed", cluster=cluster, workload=small_workload(0.5), horizon=horizon
    )


@needs_kernel
def test_mid_batch_failure_costs_one_unit(tmp_path):
    # One replication's service draw raises partway through a batched
    # chunk: exactly that unit fails, and the replications after it
    # complete on reset kernel state with their own streams — rows
    # bit-identical to a clean unit-at-a-time run.
    n_reps = 6
    summary = run_fleet(
        [_bombed_scenario(fail_at=30)],
        n_reps,
        tmp_path / "bombed",
        seed=4,
        n_jobs=1,
        backend="compiled",
        batch_size=n_reps,
        store_format="npz",
    )
    assert summary.n_failed == 1
    assert summary.n_done == n_reps - 1
    store = FleetStore.open(tmp_path / "bombed")
    (failure,) = store.meta["failures"]
    failed_unit, message = failure
    assert "RuntimeError: injected draw failure" in message
    survivors = sorted(store.read(["unit"])["unit"].tolist())
    assert survivors == [u for u in range(n_reps) if u != failed_unit]

    ref = run_fleet(
        [
            FleetScenario(
                label="clean",
                cluster=small_cluster(),
                workload=small_workload(0.5),
                horizon=8.0,
            )
        ],
        n_reps,
        tmp_path / "clean",
        seed=4,
        n_jobs=1,
        backend="python",
        batch_size=1,
        store_format="npz",
    )
    assert ref.n_failed == 0
    clean_rows = _canonical_rows(tmp_path / "clean")
    got_rows = _canonical_rows(tmp_path / "bombed")
    keep = [i for i, u in enumerate(clean_rows["unit"]) if u != failed_unit]
    for col, values in clean_rows.items():
        assert got_rows[col] == [values[i] for i in keep], col


@needs_kernel
def test_unstable_scenario_fails_whole_chunks_batched(tmp_path):
    # Scenario-level rejection under batching: every unit of the
    # unstable scenario fails with the validation message, the stable
    # scenario's rows all land.
    scenarios = _scenarios(loads=(0.5,)) + [
        FleetScenario(
            label="unstable",
            cluster=small_cluster(),
            workload=small_workload(load_factor=50.0),
            horizon=8.0,
        )
    ]
    summary = run_fleet(
        scenarios,
        4,
        tmp_path / "s",
        seed=1,
        n_jobs=1,
        backend="compiled",
        batch_size=4,
        store_format="npz",
    )
    assert summary.n_failed == 4
    assert summary.n_done == 4
    store = FleetStore.open(tmp_path / "s")
    assert set(store.read(["scenario"])["scenario"].tolist()) == {0}
    failures = store.meta["failures"]
    assert len(failures) == 4
    assert all(u >= 4 for u, _ in failures)
    assert all("unstable" in msg for _, msg in failures)


# ---------------------------------------------------------------------------
# columnar ingest + streaming aggregate
# ---------------------------------------------------------------------------


def test_append_columns_roundtrip_and_validation(tmp_path):
    store = FleetStore.create(
        tmp_path / "s", ("unit", "scenario", "y"), meta={}, rows_per_group=4
    )
    store.append({"unit": 0, "scenario": 0, "y": 1.5})
    store.append_columns(
        {
            "unit": np.array([1, 2]),
            "scenario": np.array([0, 1]),
            "y": np.array([2.5, 3.5]),
        }
    )
    store.append({"unit": 3, "scenario": 1, "y": 4.5})  # seals a group of 4
    store.append_columns(
        {"unit": np.array([4]), "scenario": np.array([1]), "y": np.array([5.5])}
    )
    with pytest.raises(ModelValidationError):
        store.append_columns({"unit": np.array([9])})  # missing columns
    with pytest.raises(ModelValidationError):
        store.append_columns(
            {
                "unit": np.array([9]),
                "scenario": np.array([1, 2]),  # ragged lengths
                "y": np.array([1.0]),
            }
        )
    store.append_columns(
        {"unit": np.array([], dtype=np.int64), "scenario": np.array([], dtype=np.int64), "y": np.array([])}
    )  # empty block is a no-op
    store.close()

    data = FleetStore.open(tmp_path / "s").read()
    # arrival order preserved across interleaved row/column appends
    assert data["unit"].tolist() == [0, 1, 2, 3, 4]
    assert data["y"].tolist() == [1.5, 2.5, 3.5, 4.5, 5.5]
    assert data["unit"].dtype == np.int64 and data["y"].dtype == np.float64


def test_streaming_aggregate_is_memory_bound(tmp_path):
    # 40 npz row groups; the streaming fold must peak well below the
    # materialized size of the store (one group resident at a time).
    n_groups, rows_per_group = 40, 2000
    rng = np.random.default_rng(0)
    with FleetStore.create(
        tmp_path / "s",
        ("unit", "scenario", "y"),
        meta={},
        rows_per_group=rows_per_group,
    ) as store:
        for g in range(n_groups):
            base = g * rows_per_group
            store.append_columns(
                {
                    "unit": np.arange(base, base + rows_per_group, dtype=np.int64),
                    "scenario": np.full(rows_per_group, g % 4, dtype=np.int64),
                    "y": rng.normal(size=rows_per_group),
                }
            )
    store = FleetStore.open(tmp_path / "s")
    total_bytes = n_groups * rows_per_group * 3 * 8

    tracemalloc.start()
    agg = store.aggregate(metrics=["y"])
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert peak < total_bytes / 4, f"aggregate peaked at {peak} B of {total_bytes} B"

    # and the folded moments still match the materialized computation
    data = store.read()
    for sid, rec in agg.items():
        mask = data["scenario"] == sid
        col = data["y"][mask]
        assert rec["n"] == int(mask.sum())
        assert rec["y"]["mean"] == pytest.approx(col.mean(), rel=1e-12)
        assert rec["y"]["std"] == pytest.approx(col.std(ddof=1), rel=1e-10)
        assert rec["y"]["min"] == col.min() and rec["y"]["max"] == col.max()
