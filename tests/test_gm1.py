"""G/M/1 queue: root equation, classic special cases, simulation."""

import numpy as np
import pytest

from repro.cluster import ClusterModel, Tier
from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
    LogNormal,
    fit_two_moments,
)
from repro.exceptions import ModelValidationError, UnstableSystemError
from repro.queueing import GM1, MM1, interarrival_lst
from repro.workload import RenewalProcess, workload_from_rates


class TestLST:
    def test_exponential_lst_closed_form(self):
        # A*(s) = rate / (rate + s).
        d = Exponential(2.0)
        for s in (0.0, 0.5, 3.0):
            assert interarrival_lst(d, s) == pytest.approx(2.0 / (2.0 + s), rel=1e-12)

    def test_erlang_lst_closed_form(self):
        # A*(s) = (rate / (rate + s))^k.
        d = Erlang(k=3, rate=2.0)
        s = 1.3
        assert interarrival_lst(d, s) == pytest.approx((2.0 / 3.3) ** 3, rel=1e-10)

    def test_deterministic_lst(self):
        d = Deterministic(0.7)
        assert interarrival_lst(d, 2.0) == pytest.approx(np.exp(-1.4), rel=1e-12)

    def test_lst_at_zero_is_one(self):
        for d in (Exponential(1.0), Erlang(k=2, rate=3.0), Deterministic(1.5)):
            assert interarrival_lst(d, 0.0) == pytest.approx(1.0, rel=1e-10)

    def test_unsupported_family_raises(self):
        with pytest.raises(ModelValidationError):
            interarrival_lst(LogNormal(1.0, 1.0), 1.0)


class TestGM1:
    def test_poisson_arrivals_reduce_to_mm1(self):
        # Exp(0.7) interarrivals have mean 1/0.7, i.e. arrival rate 0.7.
        q = GM1(Exponential(0.7), mu=1.0)
        mm1 = MM1(0.7, 1.0)
        assert q.sigma == pytest.approx(0.7, rel=1e-9)  # sigma = rho for M/M/1
        assert q.mean_sojourn == pytest.approx(mm1.mean_sojourn, rel=1e-9)
        assert q.mean_wait == pytest.approx(mm1.mean_wait, rel=1e-9)

    def test_dm1_waits_less_than_mm1(self):
        # Deterministic arrivals at the same rate: far smoother.
        dm1 = GM1(Deterministic(1.0 / 0.7), mu=1.0)
        mm1 = MM1(0.7, 1.0)
        assert dm1.mean_wait < mm1.mean_wait

    def test_bursty_arrivals_wait_more_than_mm1(self):
        bursty = HyperExponential.balanced_from_mean_scv(1.0 / 0.7, 4.0)
        q = GM1(bursty, mu=1.0)
        assert q.mean_wait > MM1(0.7, 1.0).mean_wait

    def test_wait_monotone_in_interarrival_scv(self):
        waits = []
        for scv in (0.25, 0.5, 1.0, 2.0, 4.0):
            d = fit_two_moments(1.0 / 0.7, scv) if scv != 0.25 else Erlang.from_mean(1.0 / 0.7, k=4)
            waits.append(GM1(d, mu=1.0).mean_wait)
        assert all(a < b for a, b in zip(waits, waits[1:]))

    def test_littles_law(self):
        q = GM1(Erlang.from_mean(1.25, k=3), mu=1.0)
        assert q.mean_number_in_system == pytest.approx(q.lam * q.mean_sojourn, rel=1e-9)

    def test_sojourn_quantile_inverse(self):
        q = GM1(Erlang.from_mean(1.25, k=3), mu=1.0)
        rate = q.mu * (1.0 - q.sigma)
        for p in (0.5, 0.95):
            t = q.sojourn_quantile(p)
            assert 1.0 - np.exp(-rate * t) == pytest.approx(p, abs=1e-10)

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            GM1(Exponential(2.0), mu=1.0)  # arrival rate 2 > mu

    def test_d_m1_known_value(self):
        # D/M/1 with rho = 0.5: sigma solves sigma = e^{-2(1-sigma)}.
        q = GM1(Deterministic(2.0), mu=1.0)
        assert q.sigma == pytest.approx(
            float(np.exp(-2.0 * (1.0 - q.sigma))), rel=1e-10
        )
        assert 0.0 < q.sigma < 0.5  # far below the M/M/1 value


class TestGM1Simulation:
    @pytest.mark.parametrize(
        "interarrival,seed",
        [
            (Erlang.from_mean(1.0 / 0.7, k=4), 61),  # smooth arrivals
            (HyperExponential.balanced_from_mean_scv(1.0 / 0.7, 3.0), 62),  # bursty
            (Deterministic(1.0 / 0.7), 63),  # D/M/1
        ],
    )
    def test_simulated_sojourn_matches(self, basic_spec, interarrival, seed):
        from repro.simulation import simulate_replications

        q = GM1(interarrival, mu=1.0)
        tier = Tier("t", (Exponential(1.0),), basic_spec, discipline="fcfs")
        cluster = ClusterModel([tier])
        wl = workload_from_rates([0.7])
        rep = simulate_replications(
            cluster,
            wl,
            horizon=30000.0,
            n_replications=3,
            seed=seed,
            arrival_processes=[RenewalProcess(interarrival)],
        )
        assert rep.delays[0] == pytest.approx(q.mean_sojourn, rel=0.06)


class TestRenewalProcess:
    def test_rate(self):
        p = RenewalProcess(Erlang.from_mean(0.25, k=2))
        assert p.rate == pytest.approx(4.0)

    def test_gap_moments(self, rng):
        d = Erlang.from_mean(0.5, k=4)
        p = RenewalProcess(d).fresh()
        gaps = np.array([p.next_arrival(rng)[0] for _ in range(30000)])
        assert gaps.mean() == pytest.approx(0.5, rel=0.03)
        assert gaps.var() / gaps.mean() ** 2 == pytest.approx(0.25, rel=0.1)

    def test_validation(self):
        with pytest.raises(ModelValidationError):
            RenewalProcess("not a distribution")  # type: ignore[arg-type]


class TestGM1Properties:
    """Hypothesis invariants on the sigma-root analysis."""

    def test_sigma_in_unit_interval_property(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(
            rho=st.floats(min_value=0.05, max_value=0.9),
            scv=st.floats(min_value=0.05, max_value=8.0),
        )
        @settings(max_examples=100, deadline=None)
        def check(rho, scv):
            # PH-representable interarrival at mean 1/rho (mu = 1).
            if scv < 1.0:
                k = max(1, round(1.0 / scv))
                ia = Erlang.from_mean(1.0 / rho, k=k)
            else:
                ia = HyperExponential.balanced_from_mean_scv(1.0 / rho, scv)
            q = GM1(ia, mu=1.0)
            assert 0.0 < q.sigma < 1.0
            assert q.mean_wait >= 0.0
            assert q.mean_sojourn > q.mean_wait
            # The root really solves the fixed-point equation.
            assert q.sigma == pytest.approx(
                interarrival_lst(ia, 1.0 - q.sigma), abs=1e-9
            )

        check()
