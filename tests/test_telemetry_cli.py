"""End-to-end telemetry CLI: --telemetry artifacts and `telemetry summarize`."""

import json

import pytest

from repro import obs
from repro.cli import main


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """A real --telemetry artifact from a short replicated simulation."""
    out = tmp_path_factory.mktemp("telemetry") / "run"
    code = main(
        [
            "simulate",
            "--horizon", "50",
            "--replications", "2",
            "--seed", "3",
            "--telemetry", str(out),
        ]
    )
    assert code == 0
    return out


class TestTelemetryFlag:
    def test_artifact_files_written(self, artifact):
        assert (artifact / obs.MANIFEST_FILENAME).exists()
        assert (artifact / obs.EVENTS_FILENAME).exists()
        assert not list(artifact.glob("*.tmp.*"))

    def test_manifest_contents(self, artifact):
        man = json.loads((artifact / obs.MANIFEST_FILENAME).read_text())
        assert man["manifest_version"] == 1
        assert man["command"][0] == "repro" and "simulate" in man["command"]
        assert man["seed"] == 3
        assert man["config_fingerprint"]
        assert man["metrics"]["sim.events"]["value"] > 0
        assert any(s["name"] == "sim.replications" for s in man["spans"])

    def test_events_schema(self, artifact):
        events = [
            json.loads(line)
            for line in (artifact / obs.EVENTS_FILENAME).read_text().splitlines()
        ]
        assert events
        assert all(e["v"] == 1 and e["type"] in ("span", "event") for e in events)
        reps = [e for e in events if e["name"] == "sim.replication"]
        assert len(reps) == 2
        assert all(e["fields"]["events_per_sec"] > 0 for e in reps)

    def test_telemetry_disabled_after_run(self, artifact):
        assert not obs.is_enabled()


class TestSummarize:
    def test_summarize_renders_tables(self, artifact, capsys):
        assert main(["telemetry", "summarize", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "Slowest spans" in out
        assert "Replications (2)" in out
        assert "events/s" in out
        assert "sim.replications" in out
        assert "simulator events" in out

    def test_summarize_accepts_manifest_path(self, artifact, capsys):
        path = artifact / obs.MANIFEST_FILENAME
        assert main(["telemetry", "summarize", str(path)]) == 0
        assert "telemetry run" in capsys.readouterr().out

    def test_summarize_shows_solver_table(self, tmp_path, capsys):
        out = tmp_path / "run"
        with obs.telemetry_session(out, command=["repro", "solve", "p1"]):
            obs.event(
                "solver.result",
                label="p1", method="SLSQP", success=True, fun=0.5,
                nit=7, nfev=30, status=0, message="ok",
                n_evaluations=90, constraint_violation=0.0, wall_s=0.01,
            )
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Optimizer solves (1)" in text
        assert "SLSQP" in text and "p1" in text

    def test_summarize_missing_artifact_errors(self, tmp_path, capsys):
        assert main(["telemetry", "summarize", str(tmp_path / "nope")]) == 1
        assert "error" in capsys.readouterr().out

    def test_summarize_warns_on_dropped_events(self, artifact, tmp_path, capsys):
        """Nonzero dropped-event count must be loudly visible."""
        doctored = tmp_path / "doctored"
        doctored.mkdir()
        man = json.loads((artifact / obs.MANIFEST_FILENAME).read_text())
        man["events"]["dropped"] = 2
        (doctored / obs.MANIFEST_FILENAME).write_text(json.dumps(man))
        assert main(["telemetry", "summarize", str(doctored)]) == 0
        text = capsys.readouterr().out
        assert "WARNING" in text and "2 event(s)" in text and "incomplete" in text

    def test_manifest_carries_event_accounting(self, artifact):
        man = json.loads((artifact / obs.MANIFEST_FILENAME).read_text())
        n_lines = len((artifact / obs.EVENTS_FILENAME).read_text().splitlines())
        assert man["events"]["emitted"] == n_lines
        assert man["events"]["dropped"] == 0


class TestSummarizeComparison:
    @pytest.fixture(scope="class")
    def pair(self, tmp_path_factory):
        """Two runs of the same configuration, different seeds."""
        root = tmp_path_factory.mktemp("cmp")
        dirs = []
        for seed in (10, 11):
            out = root / f"s{seed}"
            assert main([
                "simulate", "--horizon", "40", "--replications", "2",
                "--seed", str(seed), "--telemetry", str(out),
            ]) == 0
            dirs.append(out)
        return dirs

    def test_side_by_side_table(self, pair, capsys):
        assert main(["telemetry", "summarize", *map(str, pair)]) == 0
        text = capsys.readouterr().out
        assert "Run comparison (2 runs)" in text
        for row in ("wall s (root spans)", "events", "cache hits",
                    "sim events", "fingerprint", "seed"):
            assert row in text
        assert "sharing a fingerprint" in text

    def test_single_dir_has_no_comparison(self, pair, capsys):
        assert main(["telemetry", "summarize", str(pair[0])]) == 0
        assert "Run comparison" not in capsys.readouterr().out
