"""Core delay/energy model and the performance-model facade."""

import numpy as np
import pytest

from repro.core import (
    ClusterPerformanceModel,
    average_power,
    end_to_end_delays,
    energy_per_request,
    mean_end_to_end_delay,
    per_class_energy_per_request,
    per_tier_delays,
)
from repro.exceptions import ModelValidationError, UnstableSystemError
from repro.workload import Workload, CustomerClass


class TestDelays:
    def test_priority_ordering(self, three_tier_cluster, three_class_workload):
        t = end_to_end_delays(three_tier_cluster, three_class_workload)
        assert t[0] < t[1] < t[2]

    def test_mean_is_weighted_average(self, three_tier_cluster, three_class_workload):
        t = end_to_end_delays(three_tier_cluster, three_class_workload)
        lam = three_class_workload.arrival_rates
        assert mean_end_to_end_delay(three_tier_cluster, three_class_workload) == pytest.approx(
            float(np.dot(lam, t) / lam.sum())
        )

    def test_per_tier_decomposition_sums(self, three_tier_cluster, three_class_workload):
        per_tier = per_tier_delays(three_tier_cluster, three_class_workload)
        total = sum(d.mean_sojourns for d in per_tier)
        np.testing.assert_allclose(
            total, end_to_end_delays(three_tier_cluster, three_class_workload), rtol=1e-12
        )

    def test_delay_decreases_with_speed(self, three_tier_cluster, three_class_workload):
        slow = mean_end_to_end_delay(
            three_tier_cluster.with_speeds([0.7] * 3), three_class_workload
        )
        fast = mean_end_to_end_delay(three_tier_cluster, three_class_workload)
        assert fast < slow

    def test_delay_increases_with_load(self, three_tier_cluster, three_class_workload):
        light = mean_end_to_end_delay(three_tier_cluster, three_class_workload)
        heavy = mean_end_to_end_delay(
            three_tier_cluster, three_class_workload.scaled(1.4)
        )
        assert heavy > light

    def test_delay_decreases_with_servers(self, three_tier_cluster, three_class_workload):
        more = three_tier_cluster.with_servers([3, 5, 4])
        assert mean_end_to_end_delay(more, three_class_workload) < mean_end_to_end_delay(
            three_tier_cluster, three_class_workload
        )

    def test_saturation_raises(self, three_tier_cluster, three_class_workload):
        with pytest.raises(UnstableSystemError):
            end_to_end_delays(three_tier_cluster, three_class_workload.scaled(4.0))

    def test_class_count_mismatch(self, three_tier_cluster):
        wl = Workload([CustomerClass("only", 1.0)])
        with pytest.raises(ModelValidationError):
            end_to_end_delays(three_tier_cluster, wl)


class TestEnergy:
    def test_power_increases_with_speed(self, three_tier_cluster, three_class_workload):
        p_slow = average_power(three_tier_cluster.with_speeds([0.6] * 3), three_class_workload)
        p_fast = average_power(three_tier_cluster, three_class_workload)
        assert p_slow < p_fast

    def test_energy_per_request_is_power_over_throughput(
        self, three_tier_cluster, three_class_workload
    ):
        p = average_power(three_tier_cluster, three_class_workload)
        e = energy_per_request(three_tier_cluster, three_class_workload)
        assert e == pytest.approx(p / three_class_workload.total_rate)

    @pytest.mark.parametrize("mode", ["equal", "work"])
    def test_energy_conservation(self, three_tier_cluster, three_class_workload, mode):
        # Sum over classes of lam_k * E_k must equal total average power
        # when idle energy is fully apportioned.
        e = per_class_energy_per_request(three_tier_cluster, three_class_workload, idle=mode)
        lam = three_class_workload.arrival_rates
        assert float(np.dot(lam, e)) == pytest.approx(
            average_power(three_tier_cluster, three_class_workload), rel=1e-9
        )

    def test_dynamic_only_mode_smaller(self, three_tier_cluster, three_class_workload):
        none = per_class_energy_per_request(three_tier_cluster, three_class_workload, idle="none")
        equal = per_class_energy_per_request(three_tier_cluster, three_class_workload, idle="equal")
        assert np.all(none < equal)

    def test_bad_idle_mode(self, three_tier_cluster, three_class_workload):
        with pytest.raises(ModelValidationError):
            per_class_energy_per_request(three_tier_cluster, three_class_workload, idle="half")

    def test_higher_demand_class_burns_more_dynamic_energy(
        self, three_tier_cluster, three_class_workload
    ):
        # Bronze demands dominate gold demands tier-by-tier by design.
        e = per_class_energy_per_request(three_tier_cluster, three_class_workload, idle="none")
        assert e[0] < e[1] < e[2]


class TestPerformanceModelFacade:
    def test_report_bundles_consistently(self, three_tier_cluster, three_class_workload):
        m = ClusterPerformanceModel(three_tier_cluster, three_class_workload)
        rep = m.report()
        np.testing.assert_allclose(rep.delays, m.delays())
        assert rep.mean_delay == pytest.approx(m.mean_delay())
        assert rep.average_power == pytest.approx(m.average_power())
        assert rep.class_names == ("gold", "silver", "bronze")

    def test_with_speeds_is_pure(self, three_tier_cluster, three_class_workload):
        m = ClusterPerformanceModel(three_tier_cluster, three_class_workload)
        m2 = m.with_speeds([0.8, 0.8, 0.8])
        assert m.cluster.speeds[0] == 1.0
        assert m2.cluster.speeds[0] == 0.8

    def test_with_workload(self, three_tier_cluster, three_class_workload):
        m = ClusterPerformanceModel(three_tier_cluster, three_class_workload)
        heavier = m.with_workload(three_class_workload.scaled(1.2))
        assert heavier.mean_delay() > m.mean_delay()

    def test_stability_probe(self, three_tier_cluster, three_class_workload):
        m = ClusterPerformanceModel(three_tier_cluster, three_class_workload)
        assert m.is_stable()
        assert not m.with_workload(three_class_workload.scaled(4.0)).is_stable()

    def test_mismatch_rejected(self, three_tier_cluster):
        with pytest.raises(ModelValidationError):
            ClusterPerformanceModel(
                three_tier_cluster, Workload([CustomerClass("x", 1.0)])
            )
