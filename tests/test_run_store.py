"""RunStore ingest/query API and the static dashboard renderer."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.dashboard import render_dashboard
from repro.obs.store import RunStore


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """Two real --telemetry artifacts sharing a config fingerprint."""
    root = tmp_path_factory.mktemp("store")
    dirs = []
    for seed in (1, 2):
        out = root / f"run{seed}"
        code = main([
            "simulate", "--horizon", "40", "--replications", "2",
            "--seed", str(seed), "--telemetry", str(out),
        ])
        assert code == 0
        dirs.append(out)
    return dirs


@pytest.fixture(scope="module")
def rich_artifact(tmp_path_factory):
    """A synthetic artifact exercising every typed event projection."""
    out = tmp_path_factory.mktemp("store") / "rich"
    with obs.telemetry_session(out, command=["test", "rich"]):
        obs.TELEMETRY.annotate(seed=7)
        obs.event("solver.result", label="p1", method="SLSQP", success=True,
                  nit=5, nfev=20, n_evaluations=60, status=0, wall_s=0.01)
        obs.event("sim.adaptive.round", round=1, n_available=4, stop_at=None,
                  **{"rel_ci.mean_delay": 0.2})
        obs.event("sim.adaptive.round", round=2, n_available=8, stop_at=8,
                  **{"rel_ci.mean_delay": 0.04})
        for i in range(3):
            obs.event("sim.epoch", epoch=i, t=0.5 * i, queues=[[i, 0], [0, i]],
                      speeds=[1.0, 0.8], dynamic_energy=10.0 * i)
            obs.event("sweep.point", label="f3", value="0.5", value_num=0.5 + i,
                      fun=1.0 - 0.1 * i, index=i, n_total=3, warm=i > 0,
                      accepted=None, n_evaluations=30, failed=False, wall_s=0.02)
    return out


class TestIngest:
    def test_two_runs_ingested(self, artifacts, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            ids = [store.ingest(d) for d in artifacts]
            runs = store.runs()
            assert [r["id"] for r in runs] == ids
            assert [r["seed"] for r in runs] == [1, 2]
            assert all(r["config_fingerprint"] for r in runs)
            assert runs[0]["config_fingerprint"] == runs[1]["config_fingerprint"]
            assert all(r["n_events"] > 0 and r["wall_s"] > 0 for r in runs)

    def test_reingest_is_idempotent(self, artifacts, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            store.ingest(artifacts[0])
            first = store.runs()[0]
            again = store.ingest(artifacts[0])
            runs = store.runs()
            assert len(runs) == 1 and runs[0]["id"] == again
            assert runs[0]["n_events"] == first["n_events"]
            # children replaced, not duplicated
            assert len(store.spans(again)) > 0
            assert len(store.events(again)) == runs[0]["n_events"] - len(store.spans(again))

    def test_missing_manifest_raises(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            with pytest.raises(FileNotFoundError):
                store.ingest(tmp_path)

    def test_dropped_count_surfaced(self, artifacts, tmp_path):
        doctored = tmp_path / "doctored"
        doctored.mkdir()
        man = json.loads((artifacts[0] / obs.MANIFEST_FILENAME).read_text())
        man["events"]["dropped"] = 3
        (doctored / obs.MANIFEST_FILENAME).write_text(json.dumps(man))
        with RunStore(tmp_path / "runs.sqlite") as store:
            run_id = store.ingest(doctored)
            assert store.run(run_id)["n_dropped"] == 3


class TestQueries:
    def test_spans_events_metrics(self, artifacts, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            rid = store.ingest(artifacts[0])
            spans = store.spans(rid)
            assert any(s["name"] == "sim.replications" for s in spans)
            assert all(isinstance(s["tags"], dict) for s in spans)
            reps = store.events(rid, "sim.replication")
            assert len(reps) == 2
            assert all(r["fields"]["events_per_sec"] > 0 for r in reps)
            metrics = store.metrics(rid)
            assert metrics["sim.events"]["value"] > 0

    def test_metric_series_across_runs(self, artifacts, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            for d in artifacts:
                store.ingest(d)
            series = store.metric_series("sim.events")
            assert len(series) == 2
            assert all(rec["value"] > 0 for rec in series)
            assert [rec["seed"] for rec in series] == [1, 2]

    def test_typed_projections(self, rich_artifact, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            rid = store.ingest(rich_artifact)
            (solve,) = store.solver_results(rid)
            assert solve["label"] == "p1" and solve["success"] == 1
            rounds = store.adaptive_rounds(rid)
            assert [r["round"] for r in rounds] == [1, 2]
            assert rounds[1]["rel_ci"] == {"mean_delay": 0.04}
            trace = store.epoch_trace(rid)
            assert [e["epoch"] for e in trace] == [0, 1, 2]
            assert trace[1]["speeds"] == [1.0, 0.8]
            points = store.sweep_points(rid)
            assert len(points) == 3
            assert points[0]["label"] == "f3" and points[2]["fun"] == pytest.approx(0.8)

    def test_compare(self, artifacts, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            a, b = (store.ingest(d) for d in artifacts)
            cmp = store.compare(a, b)
            assert cmp["same_fingerprint"] is True
            assert cmp["same_seed"] is False
            assert cmp["metrics"]["sim.events"]["ratio"] > 0
            assert cmp["a"]["seed"] == 1 and cmp["b"]["seed"] == 2

    def test_unknown_run_raises(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            with pytest.raises(KeyError):
                store.run(99)


class TestDashboard:
    def test_render_contains_all_sections(self, artifacts, rich_artifact, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            for d in [*artifacts, rich_artifact]:
                store.ingest(d)
            html = render_dashboard(store, tmp_path / "dash.html")
        assert (tmp_path / "dash.html").read_text() == html
        for section in ("<h2>Runs</h2>", "<h2>Span timings</h2>",
                        "<h2>Adaptive replication</h2>",
                        "<h2>Controller epoch traces</h2>",
                        "<h2>Frontier overlays</h2>"):
            assert section in html
        # self-contained: no scripts, no network references
        assert "<script" not in html
        assert 'src="http' not in html and 'href="http' not in html

    def test_bench_history_section(self, artifacts, tmp_path):
        hist = tmp_path / "hist.jsonl"
        with open(hist, "w") as fh:
            for i in range(3):
                fh.write(json.dumps({
                    "schema": 1, "created_unix": 1000 + i, "host": "x",
                    "kernels": {"sim_replication_h500": 1.0 + 0.1 * i},
                }) + "\n")
        with RunStore(tmp_path / "runs.sqlite") as store:
            store.ingest(artifacts[0])
            html = render_dashboard(store, bench_history=hist)
        assert "<h2>Benchmark history</h2>" in html
        assert "sim_replication_h500" in html

    def test_empty_store_renders(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            html = render_dashboard(store)
        assert "No runs ingested yet" in html


class TestCli:
    def test_ingest_then_dashboard(self, artifacts, tmp_path, capsys):
        store = tmp_path / "runs.sqlite"
        out = tmp_path / "dash.html"
        code = main(["telemetry", "ingest", *map(str, artifacts),
                     "--store", str(store)])
        assert code == 0
        text = capsys.readouterr().out
        assert "ingested" in text and "2 run(s)" in text
        assert main(["dashboard", "--store", str(store), "--out", str(out)]) == 0
        assert "<h2>Runs</h2>" in out.read_text()

    def test_ingest_bad_dir_errors(self, tmp_path, capsys):
        code = main(["telemetry", "ingest", str(tmp_path / "nope"),
                     "--store", str(tmp_path / "s.sqlite")])
        assert code == 1
        assert "error" in capsys.readouterr().out

    def test_dashboard_missing_store_errors(self, tmp_path, capsys):
        assert main(["dashboard", "--store", str(tmp_path / "none.sqlite")]) == 1
        assert "error" in capsys.readouterr().out
