"""Dynamic power-management controller and TCO optimizer tests."""

import numpy as np
import pytest

from repro.core import (
    evaluate_schedule,
    minimize_cost,
    minimize_tco,
    plan_speed_schedule,
    static_plan,
)
from repro.exceptions import ModelValidationError
from repro.experiments.common import canonical_cluster, canonical_sla, canonical_workload


@pytest.fixture
def diurnal_setup():
    cluster = canonical_cluster()
    names = list(canonical_workload().names)
    starts = np.array([0.0, 6.0, 12.0, 18.0])
    base = canonical_workload().arrival_rates
    rates = np.array([0.4, 0.8, 1.5, 1.0])[:, None] * base[None, :]
    return cluster, names, starts, rates


class TestController:
    def test_dynamic_meets_bound_everywhere(self, diurnal_setup):
        cluster, names, starts, rates = diurnal_setup
        plans = plan_speed_schedule(cluster, names, starts, rates, 24.0, 0.35, n_starts=2)
        assert all(p.meets_bound for p in plans)
        assert len(plans) == 4

    def test_dynamic_cheaper_than_static_max(self, diurnal_setup):
        cluster, names, starts, rates = diurnal_setup
        dyn = plan_speed_schedule(cluster, names, starts, rates, 24.0, 0.35, n_starts=2)
        static = static_plan(
            cluster, names, starts, rates, 24.0, 0.35, np.ones(cluster.num_tiers)
        )
        assert evaluate_schedule(dyn).total_energy < evaluate_schedule(static).total_energy

    def test_speeds_track_the_load(self, diurnal_setup):
        cluster, names, starts, rates = diurnal_setup
        plans = plan_speed_schedule(cluster, names, starts, rates, 24.0, 0.35, n_starts=2)
        # Peak epoch (index 2) needs faster speeds than the trough (0).
        assert plans[2].speeds.mean() > plans[0].speeds.mean()

    def test_idle_epoch_drops_to_min_speed(self, diurnal_setup):
        cluster, names, starts, rates = diurnal_setup
        rates = rates.copy()
        rates[1] = 0.0
        plans = plan_speed_schedule(cluster, names, starts, rates, 24.0, 0.35, n_starts=1)
        idle = plans[1]
        assert idle.meets_bound
        np.testing.assert_allclose(idle.speeds, [t.spec.min_speed for t in cluster.tiers])
        assert idle.power == pytest.approx(
            sum(t.servers * t.spec.power.idle for t in cluster.tiers)
        )

    def test_overload_epoch_flagged_not_fatal(self, diurnal_setup):
        cluster, names, starts, rates = diurnal_setup
        rates = rates.copy()
        rates[2] *= 4.0  # unstabilizable even at max speed
        plans = plan_speed_schedule(cluster, names, starts, rates, 24.0, 0.35, n_starts=1)
        assert not plans[2].meets_bound
        assert plans[0].meets_bound
        report = evaluate_schedule(plans)
        assert report.compliance == pytest.approx(0.75)
        assert not report.fully_compliant

    def test_validation(self, diurnal_setup):
        cluster, names, starts, rates = diurnal_setup
        with pytest.raises(ModelValidationError):
            plan_speed_schedule(cluster, names, starts, rates[:2], 24.0, 0.35)
        with pytest.raises(ModelValidationError):
            plan_speed_schedule(cluster, names, starts[::-1], rates, 24.0, 0.35)
        with pytest.raises(ModelValidationError):
            plan_speed_schedule(cluster, names, starts, rates, 10.0, 0.35)
        with pytest.raises(ModelValidationError):
            evaluate_schedule([])

    def test_static_plan_validates_like_plan_speed_schedule(self, diurnal_setup):
        # Regression: static_plan skipped the epoch-grid validation that
        # plan_speed_schedule enforces, so mismatched shapes,
        # non-increasing starts or horizon <= starts[-1] produced silent
        # garbage plans (e.g. negative durations) instead of raising.
        cluster, names, starts, rates = diurnal_setup
        speeds = np.ones(cluster.num_tiers)
        with pytest.raises(ModelValidationError):
            static_plan(cluster, names, starts, rates[:2], 24.0, 0.35, speeds)
        with pytest.raises(ModelValidationError):
            static_plan(cluster, names, starts[::-1], rates, 24.0, 0.35, speeds)
        with pytest.raises(ModelValidationError):
            static_plan(cluster, names, starts, rates, 10.0, 0.35, speeds)
        # The valid grid still produces strictly positive durations.
        plans = static_plan(cluster, names, starts, rates, 24.0, 0.35, speeds)
        assert all(p.duration > 0.0 for p in plans)

    def test_warm_hint_reset_after_overload_fallback(self, diurnal_setup, monkeypatch):
        # Regression: after an infeasible/overload epoch fell back to
        # max speeds, the next epoch was still seeded from the
        # *pre-overload* optimum. The hint must reset on the fallback
        # path so the post-overload epoch solves cold.
        import repro.core.controller as ctrl

        cluster, names, starts, rates = diurnal_setup
        rates = rates.copy()
        rates[1] *= 4.0  # unstabilizable even at max speed
        hints = []
        real = ctrl.minimize_energy

        def spy(*args, **kwargs):
            hints.append(kwargs.get("x0_hint"))
            return real(*args, **kwargs)

        monkeypatch.setattr(ctrl, "minimize_energy", spy)
        warm = ctrl.plan_speed_schedule(
            cluster, names, starts, rates, 24.0, 0.35, n_starts=2, warm_start=True
        )
        assert len(hints) == 4
        assert hints[0] is None  # first epoch is always cold
        assert hints[2] is None  # post-overload epoch must be cold again
        assert hints[3] is not None  # continuation resumes afterwards
        monkeypatch.setattr(ctrl, "minimize_energy", real)
        cold = plan_speed_schedule(
            cluster, names, starts, rates, 24.0, 0.35, n_starts=2, warm_start=False
        )
        np.testing.assert_allclose(warm[2].speeds, cold[2].speeds)

    def test_evaluate_schedule_with_inf_delay_epochs(self, diurnal_setup):
        # Overload epochs carry mean_delay=inf; the aggregate report
        # must keep finite energy while surfacing the inf worst delay.
        cluster, names, starts, rates = diurnal_setup
        rates = rates.copy()
        rates[2] *= 4.0
        plans = plan_speed_schedule(cluster, names, starts, rates, 24.0, 0.35, n_starts=1)
        report = evaluate_schedule(plans)
        assert np.isinf(report.worst_mean_delay)
        assert np.isfinite(report.total_energy)
        assert np.isfinite(report.average_power)
        assert report.compliance == pytest.approx(0.75)

    def test_evaluate_schedule_idle_epochs_have_positive_duration(self, diurnal_setup):
        # Idle (zero-rate) epochs still occupy their slice of the
        # horizon: durations stay positive and the idle power is billed.
        cluster, names, starts, rates = diurnal_setup
        rates = rates.copy()
        rates[1] = 0.0
        plans = plan_speed_schedule(cluster, names, starts, rates, 24.0, 0.35, n_starts=1)
        assert all(p.duration > 0.0 for p in plans)
        idle_power = sum(t.servers * t.spec.power.idle for t in cluster.tiers)
        report = evaluate_schedule(plans)
        assert report.total_energy >= idle_power * 24.0 - 1e-9
        assert report.worst_mean_delay < float("inf")

    def test_workload_at_zero_rate_floor_keeps_priorities(self):
        from repro.core.controller import _workload_at

        wl = _workload_at(("gold", "silver", "bronze"), np.array([0.0, 5.0, 0.0]))
        assert wl is not None
        assert list(wl.names) == ["gold", "silver", "bronze"]
        rates = wl.arrival_rates
        assert rates[1] == pytest.approx(5.0)
        # Zero-rate classes keep a vanishing-but-positive rate so the
        # priority ordering (index = priority) stays aligned.
        assert 0.0 < rates[0] <= 5.0 * 1e-9 + 1e-12
        assert 0.0 < rates[2] <= 5.0 * 1e-9 + 1e-12
        assert _workload_at(("a", "b"), np.zeros(2)) is None


class TestTCO:
    def test_zero_price_equals_p3_cost(self):
        cluster, workload, sla = canonical_cluster(), canonical_workload(), canonical_sla()
        p3 = minimize_cost(cluster, workload, sla, optimize_speeds=False)
        tco = minimize_tco(cluster, workload, sla, energy_price=0.0, window=1, n_starts=1)
        assert tco.server_cost == pytest.approx(p3.total_cost)
        assert tco.energy_cost == 0.0

    def test_sla_met(self):
        cluster, workload, sla = canonical_cluster(), canonical_workload(1.2), canonical_sla()
        tco = minimize_tco(cluster, workload, sla, energy_price=0.02, window=1, n_starts=1)
        assert sla.is_met(tco.delays, workload, tol=1e-6)

    def test_objective_decomposition(self):
        cluster, workload, sla = canonical_cluster(), canonical_workload(), canonical_sla()
        tco = minimize_tco(cluster, workload, sla, energy_price=0.03, window=1, n_starts=1)
        assert tco.total_cost == pytest.approx(tco.server_cost + tco.energy_cost)
        assert tco.energy_cost == pytest.approx(0.03 * tco.average_power)

    def test_high_price_scales_out(self):
        cluster, workload, sla = canonical_cluster(), canonical_workload(1.2), canonical_sla()
        cheap = minimize_tco(cluster, workload, sla, energy_price=0.0, window=2, n_starts=1)
        pricey = minimize_tco(cluster, workload, sla, energy_price=0.08, window=2, n_starts=1)
        assert pricey.server_counts.sum() >= cheap.server_counts.sum()
        assert pricey.average_power <= cheap.average_power + 1e-6

    def test_validation(self):
        cluster, workload, sla = canonical_cluster(), canonical_workload(), canonical_sla()
        with pytest.raises(ModelValidationError):
            minimize_tco(cluster, workload, sla, energy_price=-1.0)
        with pytest.raises(ModelValidationError):
            minimize_tco(cluster, workload, sla, energy_price=0.1, window=-1)
