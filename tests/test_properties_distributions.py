"""Property-based tests (hypothesis) on distributions and fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Erlang,
    Exponential,
    HyperExponential,
    LogNormal,
    Pareto,
    Uniform,
    fit_two_moments,
)

means = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False)
scvs = st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False)
scales = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False)


class TestTwoMomentFit:
    @given(mean=means, scv=scvs)
    @settings(max_examples=200)
    def test_fit_matches_both_moments(self, mean, scv):
        d = fit_two_moments(mean, scv)
        assert d.mean == pytest.approx(mean, rel=1e-8)
        assert d.scv == pytest.approx(scv, rel=1e-6, abs=1e-8)

    @given(mean=means, scv=scvs)
    @settings(max_examples=100)
    def test_second_moment_consistent(self, mean, scv):
        d = fit_two_moments(mean, scv)
        assert d.second_moment == pytest.approx(mean**2 * (1.0 + scv), rel=1e-8)


class TestScalingProperties:
    @given(mean=means, scv=scvs, factor=scales)
    @settings(max_examples=200)
    def test_scaling_moments(self, mean, scv, factor):
        d = fit_two_moments(mean, scv).scaled(factor)
        assert d.mean == pytest.approx(factor * mean, rel=1e-8)
        assert d.scv == pytest.approx(scv, rel=1e-6, abs=1e-8)

    @given(mean=means, scv=scvs, offset=st.floats(min_value=0.0, max_value=1e3))
    @settings(max_examples=200)
    def test_shift_variance_invariant(self, mean, scv, offset):
        base = fit_two_moments(mean, scv)
        shifted = base.shifted(offset)
        assert shifted.variance == pytest.approx(base.variance, rel=1e-6, abs=1e-9)
        assert shifted.mean == pytest.approx(mean + offset, rel=1e-9)


class TestMomentInequalities:
    @given(rate=st.floats(min_value=1e-3, max_value=1e3))
    def test_exponential_jensen(self, rate):
        d = Exponential(rate)
        assert d.second_moment >= d.mean**2

    @given(k=st.integers(min_value=1, max_value=50), rate=st.floats(min_value=1e-2, max_value=1e2))
    def test_erlang_scv_band(self, k, rate):
        d = Erlang(k=k, rate=rate)
        assert 0.0 < d.scv <= 1.0 + 1e-12

    @given(mean=means, scv=st.floats(min_value=1.0, max_value=100.0))
    def test_h2_balanced_probabilities_valid(self, mean, scv):
        h = HyperExponential.balanced_from_mean_scv(mean, scv)
        assert np.all(h.probs > 0.0)
        assert h.probs.sum() == pytest.approx(1.0)
        assert np.all(h.rates > 0.0)

    @given(mean=means, scv=st.floats(min_value=1e-3, max_value=50.0))
    def test_lognormal_moments_positive(self, mean, scv):
        d = LogNormal(mean, scv)
        assert d.variance > 0.0
        assert d.second_moment > d.mean**2

    @given(alpha=st.floats(min_value=2.001, max_value=50.0), xm=st.floats(min_value=1e-3, max_value=1e2))
    def test_pareto_moments_finite_and_ordered(self, alpha, xm):
        d = Pareto(alpha=alpha, xm=xm)
        assert np.isfinite(d.second_moment)
        assert d.mean > xm

    @given(
        low=st.floats(min_value=0.0, max_value=10.0),
        width=st.floats(min_value=1e-3, max_value=10.0),
    )
    def test_uniform_mean_inside_support(self, low, width):
        d = Uniform(low, low + width)
        assert low < d.mean < low + width
