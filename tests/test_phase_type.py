"""Phase-type distributions and the exact M/PH/1 waiting time."""

import numpy as np
import pytest

from repro.cluster import ClusterModel, Tier
from repro.core.percentile import class_delay_percentile, class_delay_percentile_ph
from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Gamma,
    HyperExponential,
    LogNormal,
    Mixture,
    fit_two_moments,
)
from repro.exceptions import ModelValidationError, UnstableSystemError
from repro.queueing import MG1, MM1, PhaseType, as_phase_type, mph1_sojourn, mph1_waiting_time
from repro.workload import workload_from_rates


class TestPhaseTypeBasics:
    def test_exponential_survival(self):
        ph = as_phase_type(Exponential(2.0))
        assert ph.survival(1.0) == pytest.approx(np.exp(-2.0))
        assert ph.mean == pytest.approx(0.5)

    def test_erlang_moments(self):
        e = Erlang(k=4, rate=3.0)
        ph = as_phase_type(e)
        assert ph.moment(1) == pytest.approx(e.mean)
        assert ph.moment(2) == pytest.approx(e.second_moment)
        assert ph.moment(3) == pytest.approx(e.third_moment)

    def test_erlang_survival_closed_form(self):
        # Erlang-2 survival: (1 + rt) e^{-rt}.
        ph = as_phase_type(Erlang(k=2, rate=2.0))
        t = 0.9
        assert ph.survival(t) == pytest.approx((1 + 2.0 * t) * np.exp(-2.0 * t), rel=1e-10)

    def test_hyperexponential(self):
        h = HyperExponential(probs=[0.3, 0.7], rates=[1.0, 5.0])
        ph = as_phase_type(h)
        t = 0.5
        exact = 0.3 * np.exp(-t) + 0.7 * np.exp(-5 * t)
        assert ph.survival(t) == pytest.approx(exact, rel=1e-10)
        assert ph.moment(2) == pytest.approx(h.second_moment)

    def test_integer_gamma_supported(self):
        ph = as_phase_type(Gamma(k=3.0, rate=2.0))
        assert ph is not None
        assert ph.mean == pytest.approx(1.5)

    def test_unsupported_families_return_none(self):
        assert as_phase_type(Deterministic(1.0)) is None
        assert as_phase_type(LogNormal(1.0, 1.0)) is None
        assert as_phase_type(Gamma(k=2.5, rate=1.0)) is None

    def test_scaled_ph(self):
        base = Erlang(k=2, rate=2.0)
        ph = as_phase_type(base.scaled(3.0))
        assert ph.mean == pytest.approx(3.0 * base.mean)

    def test_mixture_ph(self):
        m = Mixture(probs=[0.5, 0.5], components=[Exponential(1.0), Erlang(k=2, rate=4.0)])
        ph = as_phase_type(m)
        assert ph.mean == pytest.approx(m.mean)
        assert ph.moment(2) == pytest.approx(m.second_moment, rel=1e-10)

    def test_convolution_mean_adds(self):
        a = as_phase_type(Exponential(1.0))
        b = as_phase_type(Erlang(k=2, rate=3.0))
        assert a.convolve(b).mean == pytest.approx(a.mean + b.mean)

    def test_equilibrium_of_exponential_is_itself(self):
        ph = as_phase_type(Exponential(2.0))
        eq = ph.equilibrium()
        assert eq.survival(0.7) == pytest.approx(ph.survival(0.7), rel=1e-10)

    def test_quantile_inverse(self):
        ph = as_phase_type(HyperExponential.balanced_from_mean_scv(1.0, 4.0))
        for p in (0.1, 0.5, 0.95):
            assert ph.cdf(ph.quantile(p)) == pytest.approx(p, abs=1e-6)

    def test_invalid_representations(self):
        with pytest.raises(ModelValidationError):
            PhaseType(np.array([0.5, 0.7]), -np.eye(2))  # alpha sums > 1
        with pytest.raises(ModelValidationError):
            PhaseType(np.array([1.0]), np.array([[1.0]]))  # positive diagonal
        with pytest.raises(ModelValidationError):
            PhaseType(np.array([1.0, 0.0]), np.array([[-1.0, 2.0], [0.0, -1.0]]))  # row sum > 0


class TestMPH1:
    def test_mm1_wait_tail_exact(self):
        w = mph1_waiting_time(0.6, Exponential(1.0))
        for x in (0.2, 1.0, 4.0):
            assert w.survival(x) == pytest.approx(0.6 * np.exp(-0.4 * x), rel=1e-9)

    def test_sojourn_is_exponential_for_mm1(self):
        s = mph1_sojourn(0.6, Exponential(1.0))
        q = MM1(0.6, 1.0)
        for p in (0.5, 0.9, 0.99):
            assert s.quantile(p) == pytest.approx(q.sojourn_quantile(p), rel=1e-6)

    @pytest.mark.parametrize("svc", [
        Erlang(k=3, rate=3.0),
        HyperExponential.balanced_from_mean_scv(1.0, 3.0),
    ])
    def test_mean_wait_matches_pk(self, svc):
        w = mph1_waiting_time(0.5, svc)
        assert w.mean == pytest.approx(MG1(0.5, svc).mean_wait, rel=1e-9)

    def test_atom_at_zero_is_one_minus_rho(self):
        w = mph1_waiting_time(0.35, Erlang(k=2, rate=4.0))
        rho = 0.35 * 0.5
        assert w.alpha.sum() == pytest.approx(rho, rel=1e-12)
        assert w.survival(0.0) == pytest.approx(rho)

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            mph1_waiting_time(2.0, Exponential(1.0))

    def test_unsupported_service_raises(self):
        with pytest.raises(ModelValidationError):
            mph1_waiting_time(0.5, Deterministic(1.0))

    def test_wait_tail_matches_simulation(self, basic_spec):
        from repro.simulation import simulate

        svc = HyperExponential.balanced_from_mean_scv(1.0, 3.0)
        tier = Tier("t", (svc,), basic_spec, discipline="fcfs")
        cluster = ClusterModel([tier])
        wl = workload_from_rates([0.55])
        res = simulate(cluster, wl, horizon=60000.0, seed=31, collect_delay_samples=True)
        sojourn = mph1_sojourn(0.55, svc)
        for p in (0.5, 0.9, 0.95):
            assert res.delay_percentile(0, p) == pytest.approx(
                sojourn.quantile(p), rel=0.08
            )


class TestExactPHEndToEnd:
    def test_single_mm1_tier_matches_closed_form(self, basic_spec):
        tier = Tier("t", (Exponential(1.0),), basic_spec, discipline="fcfs")
        cluster = ClusterModel([tier])
        wl = workload_from_rates([0.6])
        q = MM1(0.6, 1.0)
        for p in (0.5, 0.95):
            assert class_delay_percentile_ph(cluster, wl, 0, p) == pytest.approx(
                q.sojourn_quantile(p), rel=1e-5
            )

    def test_sharper_than_hypoexp_for_h2_tier(self, basic_spec):
        # With hyperexponential service the per-tier sojourn is NOT
        # exponential; the PH path should beat the hypoexp one against
        # simulation.
        from repro.simulation import simulate

        svc = fit_two_moments(1.0, 4.0)
        tier = Tier("t", (svc,), basic_spec, discipline="fcfs")
        cluster = ClusterModel([tier])
        wl = workload_from_rates([0.5])
        res = simulate(cluster, wl, horizon=60000.0, seed=32, collect_delay_samples=True)
        p = 0.95
        empirical = res.delay_percentile(0, p)
        exact = class_delay_percentile_ph(cluster, wl, 0, p)
        approx = class_delay_percentile(cluster, wl, 0, p)
        assert abs(exact - empirical) < abs(approx - empirical)
        assert exact == pytest.approx(empirical, rel=0.08)

    def test_two_class_fcfs_tandem(self, basic_spec):
        tiers = [
            Tier("a", (Exponential(3.0), Exponential(3.0)), basic_spec, discipline="fcfs"),
            Tier("b", (Exponential(2.0), Exponential(2.0)), basic_spec, discipline="fcfs"),
        ]
        cluster = ClusterModel(tiers)
        wl = workload_from_rates([0.4, 0.6])
        p95 = class_delay_percentile_ph(cluster, wl, 0, 0.95)
        assert p95 > 0.0
        # Both classes see the same FCFS queue and identical service:
        # identical percentiles.
        assert class_delay_percentile_ph(cluster, wl, 1, 0.95) == pytest.approx(p95, rel=1e-6)

    def test_priority_tier_rejected(self, basic_spec):
        tier = Tier("t", (Exponential(1.0),), basic_spec, discipline="priority_np")
        cluster = ClusterModel([tier])
        wl = workload_from_rates([0.5])
        with pytest.raises(ModelValidationError, match="FCFS"):
            class_delay_percentile_ph(cluster, wl, 0, 0.9)

    def test_non_ph_service_rejected(self, basic_spec):
        tier = Tier("t", (Deterministic(1.0),), basic_spec, discipline="fcfs")
        cluster = ClusterModel([tier])
        wl = workload_from_rates([0.5])
        with pytest.raises(ModelValidationError, match="phase-type"):
            class_delay_percentile_ph(cluster, wl, 0, 0.9)


class TestMMcSojournPH:
    def test_c1_collapses_to_mm1(self):
        from repro.queueing.phase_type import mmc_sojourn_ph

        ph = mmc_sojourn_ph(0.6, 1.0, 1)
        q = MM1(0.6, 1.0)
        for p in (0.5, 0.9, 0.99):
            assert ph.quantile(p) == pytest.approx(q.sojourn_quantile(p), rel=1e-5)

    def test_mean_matches_mmc(self):
        from repro.queueing import MMc
        from repro.queueing.phase_type import mmc_sojourn_ph

        ph = mmc_sojourn_ph(2.2, 1.0, 3)
        assert ph.mean == pytest.approx(MMc(2.2, 1.0, 3).mean_sojourn, rel=1e-10)

    def test_tail_matches_simulation(self, basic_spec):
        from repro.queueing.phase_type import mmc_sojourn_ph
        from repro.simulation import simulate
        from repro.workload import workload_from_rates

        tier = Tier("t", (Exponential(1.0),), basic_spec, servers=3, discipline="fcfs")
        cluster = ClusterModel([tier])
        wl = workload_from_rates([2.2])
        res = simulate(cluster, wl, horizon=25000.0, seed=46, collect_delay_samples=True)
        ph = mmc_sojourn_ph(2.2, 1.0, 3)
        for p in (0.9, 0.95):
            assert res.delay_percentile(0, p) == pytest.approx(ph.quantile(p), rel=0.08)

    def test_exact_e2e_path_allows_mmc_tiers(self, basic_spec):
        tiers = [
            Tier("a", (Exponential(2.0),), basic_spec, servers=2, discipline="fcfs"),
            Tier("b", (Exponential(1.5),), basic_spec, servers=1, discipline="fcfs"),
        ]
        cluster = ClusterModel(tiers)
        wl = workload_from_rates([0.7])
        p95 = class_delay_percentile_ph(cluster, wl, 0, 0.95)
        assert p95 > 0.0

    def test_multiserver_nonexponential_rejected(self, basic_spec):
        tiers = [
            Tier("a", (fit_two_moments(0.5, 2.0),), basic_spec, servers=2, discipline="fcfs"),
        ]
        cluster = ClusterModel(tiers)
        wl = workload_from_rates([0.7])
        with pytest.raises(ModelValidationError, match="identical exponential"):
            class_delay_percentile_ph(cluster, wl, 0, 0.9)

    def test_unstable_rejected(self):
        from repro.queueing.phase_type import mmc_sojourn_ph

        with pytest.raises(UnstableSystemError):
            mmc_sojourn_ph(3.0, 1.0, 3)
