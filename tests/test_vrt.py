"""Variance-reduction toolkit: estimators, the CRN/antithetic RNG
contract, and simulation-backed unbiasedness.

Three layers:

* synthetic-data estimator tests — closed-form hand checks plus
  statistical claims strong enough to catch a broken estimator (CV
  corrected mean unbiased, variance strictly below naive, jackknife
  coefficients equal to the brute-force leave-one-out fit);
* the **CRN contract** pinned for :mod:`repro.simulation.rng`: a
  stream's values depend only on ``(master seed, stream name)``; the
  antithetic ``CoupledGenerator`` mirrors uniforms as ``1 - U``, never
  emits 1.0, and keeps non-invertible families independent between the
  pair members;
* simulation-backed unbiasedness on analytically solvable stations —
  M/M/1 and a two-class priority M/G/1 — where the analytic delay from
  :func:`repro.core.delay.end_to_end_delays` must fall inside the
  estimator's interval, and the variance-reduced intervals must be
  strictly tighter than the naive ones on the same runs.
"""

import numpy as np
import pytest

from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.core.delay import end_to_end_delays
from repro.distributions import Exponential, fit_two_moments
from repro.exceptions import ModelValidationError
from repro.simulation import (
    AntitheticSeed,
    CoupledGenerator,
    PrecisionTarget,
    VrEstimate,
    antithetic_estimate,
    control_variate_estimate,
    independent_difference,
    jackknife_cv_coefficients,
    naive_estimate,
    paired_difference,
    simulate_replications_adaptive,
    variance_reduction_factor,
)
from repro.simulation.rng import RngStreams
from repro.simulation.stats import confidence_halfwidth
from repro.workload import workload_from_rates

SPEC = ServerSpec(PowerModel(idle=10.0, kappa=50.0, alpha=3.0), min_speed=0.4, max_speed=1.0)


# ----------------------------------------------------------------------
# Estimators on synthetic data
# ----------------------------------------------------------------------
class TestNaiveEstimate:
    def test_matches_hand_computation(self):
        values = [1.0, 2.0, 3.0, 6.0]
        est = naive_estimate(values)
        assert est.value == pytest.approx(3.0)
        assert est.halfwidth == pytest.approx(
            confidence_halfwidth(float(np.std(values, ddof=1)), 4)
        )
        assert est.n_units == 4 and est.method == "naive"

    def test_single_value_has_nan_halfwidth(self):
        est = naive_estimate([5.0])
        assert est.value == 5.0 and np.isnan(est.halfwidth)
        assert est.rel_halfwidth == float("inf")

    def test_rel_halfwidth_edge_cases(self):
        assert VrEstimate(2.0, 0.5, 4, "naive").rel_halfwidth == pytest.approx(0.25)
        assert VrEstimate(0.0, 0.5, 4, "naive").rel_halfwidth == float("inf")
        assert VrEstimate(0.0, 0.0, 4, "naive").rel_halfwidth == 0.0

    def test_as_dict_round_trip(self):
        d = naive_estimate([1.0, 2.0, 3.0]).as_dict()
        assert set(d) == {
            "value", "halfwidth", "rel_halfwidth", "n_units", "method", "level", "beta",
        }


class TestAntitheticEstimate:
    def test_monotone_function_of_mirrored_uniforms(self, rng):
        # E[U^2] = 1/3; mirrored pairs (U, 1-U) are negatively
        # correlated through any monotone map, so pair means must beat
        # the naive estimator over the same 2n draws.
        u = rng.random(2000)
        primary, mirror = u**2, (1.0 - u) ** 2
        anti = antithetic_estimate(primary, mirror)
        naive = naive_estimate(np.concatenate([primary, mirror]))
        assert anti.value == pytest.approx(naive.value)  # same sample mean
        assert anti.value == pytest.approx(1.0 / 3.0, abs=0.02)
        assert anti.halfwidth < naive.halfwidth
        assert anti.method == "antithetic" and anti.n_units == 2000

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ModelValidationError):
            antithetic_estimate([1.0, 2.0], [1.0])


class TestJackknifeCv:
    def test_matches_brute_force_leave_one_out(self, rng):
        y = rng.normal(size=25)
        c = 0.7 * y + rng.normal(size=25)
        betas = jackknife_cv_coefficients(y, c)
        for j in range(25):
            mask = np.arange(25) != j
            yj, cj = y[mask], c[mask]
            expected = np.cov(yj, cj, ddof=1)[0, 1] / np.var(cj, ddof=1)
            assert betas[j] == pytest.approx(expected, rel=1e-9)

    def test_constant_control_gives_zero(self):
        betas = jackknife_cv_coefficients([1.0, 2.0, 3.0, 4.0], [5.0, 5.0, 5.0, 5.0])
        np.testing.assert_array_equal(betas, 0.0)

    def test_needs_three_observations(self):
        with pytest.raises(ModelValidationError):
            jackknife_cv_coefficients([1.0, 2.0], [1.0, 2.0])


class TestControlVariateEstimate:
    def test_unbiased_and_tighter_than_naive(self, rng):
        # y = 2 + 3 c + eps with E[c] known exactly: the CV estimate
        # must be unbiased for E[y] = 2 + 3 mu_c, and its interval must
        # collapse relative to the naive one (most of y's variance is
        # explained by the control).
        mu_c, n_trials, n = 1.5, 300, 16
        truth = 2.0 + 3.0 * mu_c
        estimates, naive_hw, cv_hw = [], [], []
        for _ in range(n_trials):
            c = mu_c + rng.normal(size=n)
            y = 2.0 + 3.0 * c + 0.1 * rng.normal(size=n)
            est = control_variate_estimate(y, c, mu_c)
            estimates.append(est.value)
            naive_hw.append(naive_estimate(y).halfwidth)
            cv_hw.append(est.halfwidth)
        bias = np.mean(estimates) - truth
        stderr = np.std(estimates, ddof=1) / np.sqrt(n_trials)
        assert abs(bias) < 4 * stderr  # unbiased within Monte Carlo error
        assert np.mean(cv_hw) < 0.2 * np.mean(naive_hw)  # strictly below naive

    def test_beta_recovered(self, rng):
        c = rng.normal(size=200)
        y = 1.0 + 3.0 * c + 0.05 * rng.normal(size=200)
        est = control_variate_estimate(y, c, 0.0)
        assert est.method == "cv"
        assert est.beta == pytest.approx(3.0, abs=0.05)

    def test_fewer_than_three_falls_back_to_naive(self):
        est = control_variate_estimate([1.0, 2.0], [0.5, 0.7], 0.6)
        assert est.method == "naive"
        assert est.value == pytest.approx(1.5)


class TestPairedDifference:
    def test_paired_beats_independent_on_correlated_scenarios(self, rng):
        base = rng.normal(size=30)
        a = base + 1.0 + 0.05 * rng.normal(size=30)
        b = base + 0.05 * rng.normal(size=30)
        paired = paired_difference(a, b)
        indep = independent_difference(a, b)
        assert paired.value == pytest.approx(indep.value)  # same point estimate
        assert paired.value == pytest.approx(1.0, abs=0.1)
        assert paired.halfwidth < indep.halfwidth
        assert variance_reduction_factor(indep, paired) > 1.0

    def test_variance_reduction_factor_arithmetic(self):
        a = VrEstimate(1.0, 0.6, 10, "naive")
        b = VrEstimate(1.0, 0.2, 10, "cv")
        assert variance_reduction_factor(a, b) == pytest.approx(9.0)


# ----------------------------------------------------------------------
# The CRN / antithetic RNG contract
# ----------------------------------------------------------------------
class TestCrnContract:
    def test_stream_depends_only_on_seed_and_name(self):
        s1 = RngStreams(7)
        s2 = RngStreams(7)
        # Different request orders, different co-existing streams.
        s1.stream("service/0/0")
        a = s1.stream("arrivals/0").random(8)
        s2.stream("routing/0")
        s2.stream("service/2/1")
        b = s2.stream("arrivals/0").random(8)
        np.testing.assert_array_equal(a, b)

    def test_distinct_names_are_independent_streams(self):
        s = RngStreams(7)
        a = s.stream("arrivals/0").random(8)
        b = s.stream("arrivals/1").random(8)
        assert not np.array_equal(a, b)

    def test_mirror_sees_one_minus_u(self):
        seq = np.random.SeedSequence(5)
        primary = CoupledGenerator(seq, mirror=False)
        mirror = CoupledGenerator(seq, mirror=True)
        u = primary.random(64)
        v = mirror.random(64)
        np.testing.assert_allclose(v, 1.0 - u, rtol=0, atol=1e-15)
        assert np.all(v < 1.0)  # clipped below 1.0, bisect-safe

    def test_exponentials_negatively_correlated(self):
        seq = np.random.SeedSequence(5)
        x = CoupledGenerator(seq, mirror=False).standard_exponential(512)
        y = CoupledGenerator(seq, mirror=True).standard_exponential(512)
        assert np.all(np.isfinite(x)) and np.all(np.isfinite(y))
        assert np.corrcoef(x, y)[0, 1] < -0.5

    def test_fallback_families_independent_between_members(self):
        seq = np.random.SeedSequence(5)
        g = CoupledGenerator(seq, mirror=False).normal(size=256)
        h = CoupledGenerator(seq, mirror=True).normal(size=256)
        assert not np.array_equal(g, h)
        assert abs(np.corrcoef(g, h)[0, 1]) < 0.25

    def test_seed_pairs_share_the_plain_seed_tree(self):
        plain = RngStreams.replication_seeds(42, 3)
        pairs = RngStreams.replication_seed_pairs(42, 3)
        for child, (primary, mirror) in zip(plain, pairs):
            assert primary.seq.spawn_key == child.spawn_key
            assert mirror.seq.spawn_key == child.spawn_key
            assert primary.mirror is False and mirror.mirror is True

    def test_antithetic_seed_accepted_by_streams(self):
        child = RngStreams.replication_seeds(3, 1)[0]
        s = RngStreams(AntitheticSeed(child, True))
        gen = s.stream("arrivals/0")
        assert isinstance(gen, CoupledGenerator)


# ----------------------------------------------------------------------
# Simulation-backed unbiasedness on solvable stations
# ----------------------------------------------------------------------
def _mm1_cluster() -> ClusterModel:
    return ClusterModel(
        [Tier("mm1", (Exponential(1.0),), SPEC, servers=1, discipline="fcfs")]
    )


def _priority_mg1_cluster() -> ClusterModel:
    demands = (fit_two_moments(0.8, 2.0), fit_two_moments(1.2, 2.0))
    return ClusterModel(
        [Tier("mg1", demands, SPEC, servers=1, discipline="priority_np")]
    )


@pytest.mark.slow
class TestSimulationUnbiasedness:
    def _run(self, cluster, workload, estimator, seed=19):
        target = PrecisionTarget(
            rel_ci=1e-6,  # unreachable: always runs to the cap
            min_replications=4,
            max_replications=8,
            round_size=4,
            estimator=estimator,
        )
        rep = simulate_replications_adaptive(
            cluster, workload, horizon=1500.0, target=target, seed=seed
        )
        return rep.meta["adaptive"]

    def test_cv_estimate_covers_mm1_analytic_delay(self):
        cluster = _mm1_cluster()
        workload = workload_from_rates([0.6])
        analytic = float(end_to_end_delays(cluster, workload)[0])
        ad = self._run(cluster, workload, "cv")
        est = ad["estimates"]["mean_delay"]
        assert abs(est["value"] - analytic) < 4 * max(est["halfwidth"], 1e-12)

    def test_antithetic_estimate_covers_mm1_analytic_delay(self):
        cluster = _mm1_cluster()
        workload = workload_from_rates([0.6])
        analytic = float(end_to_end_delays(cluster, workload)[0])
        ad = self._run(cluster, workload, "antithetic")
        est = ad["estimates"]["mean_delay"]
        assert est["method"] == "antithetic"
        assert abs(est["value"] - analytic) < 4 * max(est["halfwidth"], 1e-12)

    def test_cv_estimate_covers_priority_mg1_analytic_delay(self):
        cluster = _priority_mg1_cluster()
        workload = workload_from_rates([0.25, 0.25], names=("hi", "lo"))
        analytic = end_to_end_delays(cluster, workload)
        mean_analytic = float(np.dot(workload.arrival_rates, analytic)) / float(
            sum(workload.arrival_rates)
        )
        ad = self._run(cluster, workload, "cv")
        est = ad["estimates"]["mean_delay"]
        assert abs(est["value"] - mean_analytic) < 4 * max(est["halfwidth"], 1e-12)

    def test_cv_interval_strictly_below_naive_on_power(self):
        # The utilization/power controls explain most across-replication
        # power variance, so the CV interval must beat the naive one
        # computed from the same runs.
        cluster = _mm1_cluster()
        workload = workload_from_rates([0.6])
        ad = self._run(cluster, workload, "cv")
        cv = ad["estimates"]["average_power"]
        naive = ad["naive_estimates"]["average_power"]
        assert cv["method"] == "cv"
        assert cv["halfwidth"] < naive["halfwidth"]
        assert ad["vr_factor"]["average_power"] > 1.0
