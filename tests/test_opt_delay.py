"""P1 optimizer tests (minimize delay under a power budget)."""

import numpy as np
import pytest

from repro.baselines import proportional_speed_for_budget, uniform_speed_for_budget
from repro.core import mean_end_to_end_delay, minimize_delay
from repro.core.opt_common import stability_speed_bounds
from repro.exceptions import InfeasibleProblemError, ModelValidationError


@pytest.fixture
def budget_mid(three_tier_cluster, three_class_workload):
    """A budget halfway between slowest-stable and max-speed power."""
    box = stability_speed_bounds(three_tier_cluster, three_class_workload)
    lam = three_class_workload.arrival_rates
    lo = three_tier_cluster.with_speeds([b[0] for b in box]).average_power(lam)
    hi = three_tier_cluster.with_speeds([b[1] for b in box]).average_power(lam)
    return 0.5 * (lo + hi)


class TestMinimizeDelay:
    def test_succeeds_and_respects_budget(self, three_tier_cluster, three_class_workload, budget_mid):
        res = minimize_delay(three_tier_cluster, three_class_workload, budget_mid)
        assert res.success
        assert res.meta["power"] <= budget_mid + 1e-4

    def test_budget_binds_at_optimum(self, three_tier_cluster, three_class_workload, budget_mid):
        # Delay decreasing / power increasing in speed: interior optimum
        # spends the whole budget.
        res = minimize_delay(three_tier_cluster, three_class_workload, budget_mid)
        assert res.meta["power"] == pytest.approx(budget_mid, rel=1e-3)

    def test_beats_uniform_baseline(self, three_tier_cluster, three_class_workload, budget_mid):
        res = minimize_delay(three_tier_cluster, three_class_workload, budget_mid)
        uni = uniform_speed_for_budget(three_tier_cluster, three_class_workload, budget_mid)
        uni_delay = mean_end_to_end_delay(
            three_tier_cluster.with_speeds(uni), three_class_workload
        )
        assert res.fun <= uni_delay + 1e-9

    def test_beats_proportional_baseline(self, three_tier_cluster, three_class_workload, budget_mid):
        res = minimize_delay(three_tier_cluster, three_class_workload, budget_mid)
        prop = proportional_speed_for_budget(three_tier_cluster, three_class_workload, budget_mid)
        prop_delay = mean_end_to_end_delay(
            three_tier_cluster.with_speeds(prop), three_class_workload
        )
        assert res.fun <= prop_delay + 1e-9

    def test_delay_monotone_in_budget(self, three_tier_cluster, three_class_workload):
        box = stability_speed_bounds(three_tier_cluster, three_class_workload)
        lam = three_class_workload.arrival_rates
        lo = three_tier_cluster.with_speeds([b[0] for b in box]).average_power(lam)
        hi = three_tier_cluster.with_speeds([b[1] for b in box]).average_power(lam)
        budgets = np.linspace(lo * 1.05, hi, 4)
        delays = [
            minimize_delay(three_tier_cluster, three_class_workload, float(b), n_starts=3).fun
            for b in budgets
        ]
        assert all(a >= b - 1e-9 for a, b in zip(delays, delays[1:]))

    def test_huge_budget_hits_max_speeds(self, three_tier_cluster, three_class_workload):
        res = minimize_delay(three_tier_cluster, three_class_workload, 1e9)
        np.testing.assert_allclose(res.x, 1.0, atol=1e-5)

    def test_infeasible_budget_raises(self, three_tier_cluster, three_class_workload):
        with pytest.raises(InfeasibleProblemError):
            minimize_delay(three_tier_cluster, three_class_workload, power_budget=1.0)

    def test_bad_budget_rejected(self, three_tier_cluster, three_class_workload):
        with pytest.raises(ModelValidationError):
            minimize_delay(three_tier_cluster, three_class_workload, power_budget=-5.0)

    def test_unstabilizable_load_raises(self, three_tier_cluster, three_class_workload):
        with pytest.raises(InfeasibleProblemError):
            minimize_delay(
                three_tier_cluster, three_class_workload.scaled(4.0), power_budget=1e9
            )

    def test_result_meta_cluster_consistent(self, three_tier_cluster, three_class_workload, budget_mid):
        res = minimize_delay(three_tier_cluster, three_class_workload, budget_mid)
        optimized = res.meta["cluster"]
        np.testing.assert_allclose(optimized.speeds, res.x)
        assert mean_end_to_end_delay(optimized, three_class_workload) == pytest.approx(res.fun)

    def test_speeds_within_bounds(self, three_tier_cluster, three_class_workload, budget_mid):
        res = minimize_delay(three_tier_cluster, three_class_workload, budget_mid)
        box = stability_speed_bounds(three_tier_cluster, three_class_workload)
        for s, (lo, hi) in zip(res.x, box):
            assert lo - 1e-9 <= s <= hi + 1e-9

    def test_converged_solve_reports_solver_diagnostics(
        self, three_tier_cluster, three_class_workload, budget_mid
    ):
        res = minimize_delay(three_tier_cluster, three_class_workload, budget_mid)
        assert res.success and res.status == 0
        assert res.nit > 0 and res.nfev > 0
        assert "power budget" in res.meta["constraint_residuals"]
        assert res.meta["constraint_residuals"]["power budget"] >= -1e-4
