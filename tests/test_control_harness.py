"""Trace-driven control harness and simulator epoch-hook tests."""

import numpy as np
import pytest

from repro.control import (
    DriftPlusPenaltyController,
    StaticSpeedPolicy,
    run_controlled,
)
from repro.exceptions import ModelValidationError
from repro.experiments.common import CLASS_NAMES, canonical_cluster, canonical_workload
from repro.simulation.simulator import simulate
from repro.workload.timevarying import diurnal_trace


@pytest.fixture(scope="module")
def cluster():
    return canonical_cluster()


@pytest.fixture(scope="module")
def trace():
    base = canonical_workload().arrival_rates
    return diurnal_trace(
        base, 120.0, period=120.0, trough=0.5, peak=1.2, seed=5, class_names=CLASS_NAMES
    )


class TestSimulatorEpochHook:
    def test_params_must_come_together(self, cluster):
        wl = canonical_workload()
        with pytest.raises(ModelValidationError):
            simulate(cluster, wl, horizon=50.0, epoch_times=[0.0, 10.0])
        with pytest.raises(ModelValidationError):
            simulate(cluster, wl, horizon=50.0, epoch_controller=lambda t, q, s: None)

    def test_epoch_times_validated(self, cluster):
        wl = canonical_workload()
        ctrl = lambda t, q, s: None  # noqa: E731
        for bad in ([], [10.0, 5.0], [-1.0, 5.0], [0.0, float("inf")]):
            with pytest.raises(ModelValidationError):
                simulate(cluster, wl, horizon=50.0, epoch_times=bad, epoch_controller=ctrl)

    def test_ps_tiers_rejected(self):
        wl = canonical_workload()
        ps = canonical_cluster(discipline="ps")
        with pytest.raises(ModelValidationError):
            simulate(
                ps, wl, horizon=50.0, epoch_times=[0.0], epoch_controller=lambda t, q, s: None
            )

    def test_keep_speeds_controller_matches_static_run(self, cluster):
        # A controller that never changes speeds must reproduce the
        # static run's delays exactly (same draws, same dynamics).
        wl = canonical_workload()
        static = simulate(cluster, wl, horizon=300.0, seed=9)
        kept = simulate(
            cluster,
            wl,
            horizon=300.0,
            seed=9,
            epoch_times=np.arange(0.0, 300.0, 25.0),
            epoch_controller=lambda t, q, s: None,
        )
        np.testing.assert_array_equal(static.delays, kept.delays)
        np.testing.assert_array_equal(static.n_completed, kept.n_completed)
        assert kept.average_power == pytest.approx(static.average_power, rel=1e-12)
        assert len(kept.meta["epoch_trace"]) == 12

    def test_controller_return_shape_checked(self, cluster):
        wl = canonical_workload()
        with pytest.raises(ModelValidationError):
            simulate(
                cluster,
                wl,
                horizon=50.0,
                epoch_times=[10.0],
                epoch_controller=lambda t, q, s: np.ones(7),
            )

    def test_speeds_clamped_to_dvfs_box(self, cluster):
        wl = canonical_workload()
        res = simulate(
            cluster,
            wl,
            horizon=60.0,
            seed=2,
            epoch_times=[20.0],
            epoch_controller=lambda t, q, s: np.array([0.01, 99.0, 0.5]),
            allow_unstable=True,
        )
        lo = np.array([t.spec.min_speed for t in cluster.tiers])
        hi = np.array([t.spec.max_speed for t in cluster.tiers])
        applied = res.meta["epoch_trace"][0]["speeds"]
        np.testing.assert_allclose(applied, [lo[0], hi[1], 0.5])
        np.testing.assert_allclose(res.meta["final_speeds"], applied)

    def test_epoch_trace_energy_monotone_and_consistent(self, cluster):
        wl = canonical_workload()

        def ctrl(t, q, s):
            return np.full(3, 0.6) if t < 100.0 else np.ones(3)

        res = simulate(
            cluster,
            wl,
            horizon=200.0,
            seed=4,
            warmup_fraction=0.0,
            epoch_times=np.arange(0.0, 200.0, 10.0),
            epoch_controller=ctrl,
            allow_unstable=True,
        )
        trace = res.meta["epoch_trace"]
        energies = [rec["dynamic_energy"] for rec in trace]
        assert all(b >= a for a, b in zip(energies, energies[1:]))
        assert trace[0]["queues"].shape == (3, 3)
        # Total power decomposes into idle floor + segmented dynamic.
        idle = sum(t.servers * t.spec.power.idle for t in cluster.tiers)
        assert res.average_power == pytest.approx(
            idle + res.meta["dynamic_energy"] / 200.0
        )

    def test_slow_speeds_cost_less_dynamic_power(self, cluster):
        # Cube-law sanity through the segmented accounting: halving all
        # speeds must cut dynamic energy despite longer busy periods
        # (power falls with s^3, busy time only grows with 1/s).
        wl = canonical_workload()
        fast = simulate(
            cluster, wl, horizon=300.0, seed=6,
            epoch_times=[0.0], epoch_controller=lambda t, q, s: np.ones(3),
        )
        slow = simulate(
            cluster, wl, horizon=300.0, seed=6,
            epoch_times=[0.0], epoch_controller=lambda t, q, s: np.full(3, 0.5),
            allow_unstable=True,
        )
        assert slow.meta["dynamic_energy"] < fast.meta["dynamic_energy"]
        # ... while delays lengthen.
        assert slow.mean_delay > fast.mean_delay


class TestRunControlled:
    def test_validation(self, cluster, trace):
        pol = StaticSpeedPolicy(np.ones(3))
        with pytest.raises(ModelValidationError):
            run_controlled(cluster, trace, pol, epoch_length=0.0, max_mean_delay=0.3)
        with pytest.raises(ModelValidationError):
            run_controlled(cluster, trace, pol, epoch_length=500.0, max_mean_delay=0.3)
        with pytest.raises(ModelValidationError):
            run_controlled(cluster, trace, pol, epoch_length=5.0, max_mean_delay=-1.0)

    def test_static_max_scorecard(self, cluster, trace):
        pol = StaticSpeedPolicy(np.ones(3), name="max")
        score = run_controlled(cluster, trace, pol, 5.0, max_mean_delay=0.35, seed=3)
        assert score.policy_name == "max"
        assert score.total_energy == pytest.approx(score.average_power * 120.0)
        assert score.sla_met == (score.mean_delay <= 0.35)
        assert len(score.epoch_trace) == 24
        np.testing.assert_allclose(score.mean_speeds, np.ones(3))

    def test_dpp_saves_energy_vs_max(self, cluster, trace):
        maxp = run_controlled(
            cluster, trace, StaticSpeedPolicy(np.ones(3)), 1.0, 0.35, seed=3
        )
        dpp = run_controlled(
            cluster, trace, DriftPlusPenaltyController(cluster, 5e-4), 1.0, 0.35, seed=3
        )
        assert dpp.total_energy < maxp.total_energy
        assert dpp.mean_delay > maxp.mean_delay

    def test_same_trace_same_seed_is_deterministic(self, cluster, trace):
        pol = DriftPlusPenaltyController(cluster, 5e-4)
        a = run_controlled(cluster, trace, pol, 2.0, 0.35, seed=7)
        b = run_controlled(cluster, trace, pol, 2.0, 0.35, seed=7)
        assert a.total_energy == b.total_energy
        np.testing.assert_array_equal(a.delays, b.delays)
