"""Tandem network tests: dispatch, summation, visit ratios, stability."""

import numpy as np
import pytest

from repro.distributions import Exponential, fit_two_moments
from repro.exceptions import ModelValidationError, UnstableSystemError
from repro.queueing import MG1, MM1, StationSpec, TandemNetwork
from repro.queueing.networks import station_delays
from repro.queueing.priority import ClassLoad, nonpreemptive_priority_mg1


def exp_station(name="s", servers=1, discipline="priority_np", rates=(1.0, 1.0)):
    return StationSpec(
        services=tuple(Exponential(r) for r in rates),
        servers=servers,
        discipline=discipline,
        name=name,
    )


class TestStationDelays:
    def test_fcfs_single_server_matches_aggregate_mg1(self):
        spec = exp_station(discipline="fcfs", rates=(1.0, 1.0))
        d = station_delays(spec, [0.3, 0.4])
        expected = MG1(0.7, Exponential(1.0)).mean_wait
        np.testing.assert_allclose(d.mean_waits, expected, rtol=1e-9)

    def test_fcfs_waits_identical_across_classes(self):
        spec = StationSpec(
            services=(fit_two_moments(0.5, 1.5), fit_two_moments(0.9, 2.0)),
            discipline="fcfs",
        )
        d = station_delays(spec, [0.3, 0.4])
        assert d.mean_waits[0] == pytest.approx(d.mean_waits[1])
        # Sojourns differ by each class's own service time.
        assert d.mean_sojourns[1] - d.mean_sojourns[0] == pytest.approx(0.4)

    def test_priority_np_single_matches_cobham(self):
        spec = exp_station(discipline="priority_np")
        d = station_delays(spec, [0.3, 0.4])
        cobham = nonpreemptive_priority_mg1(
            [ClassLoad(0.3, Exponential(1.0)), ClassLoad(0.4, Exponential(1.0))]
        )
        np.testing.assert_allclose(d.mean_waits, cobham.mean_waits, rtol=1e-12)

    def test_priority_np_multiserver_common_mu_uses_exact_path(self):
        spec = exp_station(servers=3, discipline="priority_np")
        d = station_delays(spec, [1.0, 1.2])
        from repro.queueing import nonpreemptive_priority_mmc_common_mu

        exact = nonpreemptive_priority_mmc_common_mu([1.0, 1.2], mu=1.0, c=3)
        np.testing.assert_allclose(d.mean_waits, exact.mean_waits, rtol=1e-12)

    def test_priority_pr_single_matches_formula(self):
        spec = exp_station(discipline="priority_pr")
        d = station_delays(spec, [0.3, 0.4])
        from repro.queueing import preemptive_resume_priority_mg1

        pr = preemptive_resume_priority_mg1(
            [ClassLoad(0.3, Exponential(1.0)), ClassLoad(0.4, Exponential(1.0))]
        )
        np.testing.assert_allclose(d.mean_sojourns, pr.mean_sojourns, rtol=1e-12)

    def test_priority_pr_multiserver_runs(self):
        spec = exp_station(servers=2, discipline="priority_pr")
        d = station_delays(spec, [0.5, 0.7])
        assert np.all(d.mean_waits >= 0.0)
        assert d.mean_waits[0] < d.mean_waits[1]

    def test_wrong_rate_count_raises(self):
        spec = exp_station()
        with pytest.raises(ModelValidationError):
            station_delays(spec, [0.3])

    def test_negative_rate_raises(self):
        with pytest.raises(ModelValidationError):
            station_delays(exp_station(), [-0.1, 0.4])

    def test_unknown_discipline_rejected_at_spec(self):
        with pytest.raises(ModelValidationError):
            StationSpec(services=(Exponential(1.0),), discipline="lifo")


class TestTandemNetwork:
    def test_single_fcfs_station_equals_mm1(self):
        net = TandemNetwork([exp_station(discipline="fcfs", rates=(1.0,))])
        t = net.end_to_end_delays([0.5])
        assert t[0] == pytest.approx(MM1(0.5, 1.0).mean_sojourn, rel=1e-9)

    def test_delays_sum_over_stations(self):
        s1 = exp_station("a", rates=(2.0, 2.0))
        s2 = exp_station("b", rates=(1.5, 1.5))
        net = TandemNetwork([s1, s2])
        lam = [0.3, 0.4]
        total = net.end_to_end_delays(lam)
        per = net.per_station_delays(lam)
        np.testing.assert_allclose(
            total, per[0].mean_sojourns + per[1].mean_sojourns, rtol=1e-12
        )

    def test_visit_ratios_multiply_delay(self):
        s = exp_station(rates=(4.0, 4.0))
        base = TandemNetwork([s]).end_to_end_delays([0.3, 0.4])
        doubled = TandemNetwork([s], visit_ratios=np.full((2, 1), 2.0))
        t2 = doubled.end_to_end_delays([0.3, 0.4])
        # Double the visits means double the effective load AND double
        # the per-visit count, so delay is more than 2x the base.
        assert np.all(t2 > 2.0 * base)

    def test_visit_ratio_changes_station_load(self):
        s = exp_station(rates=(4.0, 4.0))
        net = TandemNetwork([s], visit_ratios=np.array([[3.0], [1.0]]))
        rates = net.station_arrival_rates([0.2, 0.4])
        np.testing.assert_allclose(rates[:, 0], [0.6, 0.4])

    def test_mean_delay_is_weighted(self):
        net = TandemNetwork([exp_station()])
        lam = [0.3, 0.4]
        t = net.end_to_end_delays(lam)
        expected = (0.3 * t[0] + 0.4 * t[1]) / 0.7
        assert net.mean_delay(lam) == pytest.approx(expected)

    def test_utilizations_and_stability(self):
        net = TandemNetwork([exp_station("a"), exp_station("b", servers=2)])
        lam = [0.3, 0.4]
        rho = net.utilizations(lam)
        assert rho[0] == pytest.approx(0.7)
        assert rho[1] == pytest.approx(0.35)
        assert net.is_stable(lam)
        assert not net.is_stable([0.6, 0.5])

    def test_unstable_station_raises_with_name(self):
        net = TandemNetwork([exp_station("bottleneck")])
        with pytest.raises(UnstableSystemError):
            net.per_station_delays([0.7, 0.7])

    def test_mismatched_class_counts_rejected(self):
        s1 = exp_station(rates=(1.0, 1.0))
        s2 = StationSpec(services=(Exponential(1.0),), name="one-class")
        with pytest.raises(ModelValidationError):
            TandemNetwork([s1, s2])

    def test_bad_visit_ratio_shape(self):
        with pytest.raises(ModelValidationError):
            TandemNetwork([exp_station()], visit_ratios=np.ones((3, 1)))

    def test_class_visiting_nothing_rejected(self):
        with pytest.raises(ModelValidationError):
            TandemNetwork([exp_station()], visit_ratios=np.array([[0.0], [1.0]]))

    def test_empty_network_rejected(self):
        with pytest.raises(ModelValidationError):
            TandemNetwork([])


class TestLossStationDispatch:
    def test_loss_station_analytic_metrics(self):
        spec = StationSpec(services=(Exponential(1.0),), servers=4, discipline="loss")
        d = station_delays(spec, [3.0])
        # Accepted requests never wait; sojourn is the bare service.
        assert d.mean_waits[0] == 0.0
        assert d.mean_sojourns[0] == pytest.approx(1.0)
        # Utilization is the carried (post-blocking) load per server.
        from repro.queueing import erlang_b

        expected = 3.0 * (1.0 - erlang_b(4, 3.0)) / 4
        assert d.utilization == pytest.approx(expected)

    def test_overloaded_loss_station_is_fine(self):
        spec = StationSpec(services=(Exponential(1.0),), servers=2, discipline="loss")
        d = station_delays(spec, [50.0])
        assert d.utilization < 1.0  # carried load is capped by blocking

    def test_network_with_loss_gate_is_stable(self):
        work = exp_station("work", servers=4, rates=(1.0, 1.0))
        gate2 = StationSpec(
            services=(Exponential(1.0), Exponential(1.0)), servers=2, discipline="loss", name="g2"
        )
        net = TandemNetwork([gate2, work])
        # Offered load would saturate a queueing gate (rho = 1.5) but a
        # loss gate cannot be unstable.
        assert net.is_stable([1.5, 1.5])
        delays = net.per_station_delays([1.5, 1.5])
        assert delays[0].mean_waits[0] == 0.0
