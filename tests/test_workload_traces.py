"""Trace record/persist/replay and NHPP arrival tests."""

import numpy as np
import pytest

from repro.exceptions import ModelValidationError
from repro.workload import (
    ArrivalTrace,
    MMPP2,
    NonHomogeneousPoisson,
    PoissonProcess,
    TraceArrivalProcess,
    generate_trace,
)


class TestArrivalTrace:
    def test_generate_rates_match_processes(self):
        trace = generate_trace(
            [PoissonProcess(2.0), PoissonProcess(5.0)], horizon=2000.0, seed=1
        )
        np.testing.assert_allclose(trace.rates(), [2.0, 5.0], rtol=0.08)

    def test_csv_roundtrip(self, tmp_path):
        trace = generate_trace(
            [PoissonProcess(1.0), MMPP2(0.5, 3.0, 0.2, 0.2)],
            horizon=100.0,
            seed=2,
            class_names=["gold", "bronze"],
        )
        path = tmp_path / "trace.csv"
        trace.save_csv(str(path))
        loaded = ArrivalTrace.load_csv(str(path))
        assert loaded.class_names == ["gold", "bronze"]
        assert loaded.horizon == trace.horizon
        for a, b in zip(loaded.arrivals, trace.arrivals):
            np.testing.assert_allclose(a, b)

    def test_windowed_rates(self):
        # Deterministic timestamps: 3 arrivals in [0,10), 1 in [10,20).
        trace = ArrivalTrace([np.array([1.0, 2.0, 3.0, 15.0])], horizon=20.0)
        starts, rates = trace.windowed_rates(10.0)
        np.testing.assert_allclose(starts, [0.0, 10.0])
        np.testing.assert_allclose(rates[:, 0], [0.3, 0.1])

    def test_validation(self):
        with pytest.raises(ModelValidationError):
            ArrivalTrace([], horizon=10.0)
        with pytest.raises(ModelValidationError):
            ArrivalTrace([np.array([5.0, 1.0])], horizon=10.0)  # unsorted
        with pytest.raises(ModelValidationError):
            ArrivalTrace([np.array([11.0])], horizon=10.0)  # beyond horizon
        with pytest.raises(ModelValidationError):
            ArrivalTrace([np.array([1.0])], horizon=10.0, class_names=["a", "b"])

    def test_malformed_csv(self):
        with pytest.raises(ModelValidationError):
            ArrivalTrace.from_csv("not,a,trace\n")
        with pytest.raises(ModelValidationError):
            ArrivalTrace.from_csv("# horizon,10.0\nclass,timestamp\n")  # empty


class TestTraceReplay:
    def test_replay_reproduces_timestamps(self, rng):
        ts = np.array([0.5, 1.25, 1.25, 4.0])
        proc = TraceArrivalProcess(ts, horizon=5.0)
        clock, seen = 0.0, []
        for _ in range(len(ts)):
            gap, batch = proc.next_arrival(rng)
            clock += gap
            seen.append(clock)
        np.testing.assert_allclose(seen, ts)
        # Exhausted: silent forever.
        gap, _ = proc.next_arrival(rng)
        assert np.isinf(gap)

    def test_fresh_restarts(self, rng):
        proc = TraceArrivalProcess(np.array([1.0, 2.0]), horizon=3.0)
        proc.next_arrival(rng)
        again = proc.fresh()
        gap, _ = again.next_arrival(rng)
        assert gap == pytest.approx(1.0)

    def test_simulation_on_trace_matches_poisson_stats(self, basic_spec):
        from repro.cluster import ClusterModel, Tier
        from repro.distributions import Exponential
        from repro.queueing import MM1
        from repro.simulation import simulate
        from repro.workload import workload_from_rates

        horizon = 30000.0
        trace = generate_trace([PoissonProcess(0.6)], horizon=horizon, seed=3)
        tier = Tier("t", (Exponential(1.0),), basic_spec, discipline="fcfs")
        cluster = ClusterModel([tier])
        wl = workload_from_rates([0.6])
        res = simulate(
            cluster,
            wl,
            horizon=horizon,
            seed=4,
            arrival_processes=TraceArrivalProcess.from_trace(trace),
        )
        assert res.delays[0] == pytest.approx(MM1(0.6, 1.0).mean_sojourn, rel=0.06)


class TestNonHomogeneousPoisson:
    def test_constant_rate_matches_poisson(self, rng):
        proc = NonHomogeneousPoisson(lambda t: 2.0, rate_max=2.0)
        gaps = []
        p = proc.fresh()
        for _ in range(20000):
            gap, _ = p.next_arrival(rng)
            gaps.append(gap)
        gaps_arr = np.array(gaps)
        assert gaps_arr.mean() == pytest.approx(0.5, rel=0.05)
        scv = gaps_arr.var() / gaps_arr.mean() ** 2
        assert scv == pytest.approx(1.0, rel=0.1)

    def test_time_varying_intensity(self, rng):
        # Rate 4 in the first half of each cycle of length 2, 0 after.
        proc = NonHomogeneousPoisson(lambda t: 4.0 if (t % 2.0) < 1.0 else 0.0, rate_max=4.0)
        p = proc.fresh()
        clock, stamps = 0.0, []
        while clock < 2000.0:
            gap, _ = p.next_arrival(rng)
            clock += gap
            stamps.append(clock)
        stamps_arr = np.array(stamps)
        in_active = (stamps_arr % 2.0) < 1.0
        assert in_active.mean() > 0.99  # arrivals only in active windows

    def test_rate_fn_above_bound_detected(self, rng):
        proc = NonHomogeneousPoisson(lambda t: 10.0, rate_max=2.0)
        with pytest.raises(ModelValidationError):
            proc.next_arrival(rng)

    def test_validation(self):
        with pytest.raises(ModelValidationError):
            NonHomogeneousPoisson("not callable", rate_max=1.0)  # type: ignore[arg-type]
        with pytest.raises(ModelValidationError):
            NonHomogeneousPoisson(lambda t: 1.0, rate_max=0.0)
