"""Loss systems: Erlang-B analytics, sizing, and simulated validation
(including the celebrated M/G/c/c insensitivity)."""

import pytest

from repro.cluster import ClusterModel, Tier
from repro.distributions import Exponential, fit_two_moments
from repro.exceptions import ModelValidationError
from repro.queueing import MGcc, erlang_b, servers_for_blocking
from repro.simulation import simulate
from repro.workload import workload_from_rates


class TestMGcc:
    def test_blocking_is_erlang_b(self):
        q = MGcc(3.0, Exponential(1.0), c=4)
        assert q.blocking_probability == pytest.approx(erlang_b(4, 3.0))

    def test_carried_load_and_throughput(self):
        q = MGcc(3.0, Exponential(1.0), c=4)
        b = q.blocking_probability
        assert q.carried_load == pytest.approx(3.0 * (1 - b))
        assert q.throughput == pytest.approx(3.0 * (1 - b))
        assert q.utilization == pytest.approx(q.carried_load / 4)

    def test_insensitive_to_distribution_shape(self):
        b_exp = MGcc(3.0, Exponential(1.0), c=4).blocking_probability
        b_h2 = MGcc(3.0, fit_two_moments(1.0, 4.0), c=4).blocking_probability
        b_det = MGcc(3.0, fit_two_moments(1.0, 0.0), c=4).blocking_probability
        assert b_exp == pytest.approx(b_h2) == pytest.approx(b_det)

    def test_accepted_sojourn_is_service_time(self):
        assert MGcc(3.0, Exponential(2.0), c=4).mean_sojourn == 0.5

    def test_overload_is_legal(self):
        # Loss systems have no stability condition.
        q = MGcc(100.0, Exponential(1.0), c=4)
        assert q.blocking_probability > 0.9

    def test_validation(self):
        with pytest.raises(ModelValidationError):
            MGcc(1.0, Exponential(1.0), c=0)
        with pytest.raises(ModelValidationError):
            MGcc(1.0, "svc", c=2)  # type: ignore[arg-type]


class TestServersForBlocking:
    @pytest.mark.parametrize("a,target", [(3.0, 0.01), (10.0, 0.05), (50.0, 0.001)])
    def test_smallest_sufficient_count(self, a, target):
        c = servers_for_blocking(lam=a, mean_service=1.0, target_blocking=target)
        assert erlang_b(c, a) <= target
        assert erlang_b(c - 1, a) > target

    def test_scaling_invariance(self):
        # Only the offered load matters, not lam and E[S] separately.
        c1 = servers_for_blocking(10.0, 1.0, 0.02)
        c2 = servers_for_blocking(5.0, 2.0, 0.02)
        assert c1 == c2

    def test_validation(self):
        with pytest.raises(ModelValidationError):
            servers_for_blocking(1.0, 1.0, 1.5)
        with pytest.raises(ModelValidationError):
            servers_for_blocking(1.0, -1.0, 0.1)
        with pytest.raises(ModelValidationError):
            servers_for_blocking(1e6, 1.0, 1e-9, c_max=10)


class TestSimulatedLossStation:
    def _blocking(self, service, lam, c, seed, horizon=20000.0):
        spec_tier = Tier(
            "gate", (service,), _spec(), servers=c, speed=1.0, discipline="loss"
        )
        cluster = ClusterModel([spec_tier])
        wl = workload_from_rates([lam])
        res = simulate(cluster, wl, horizon=horizon, seed=seed)
        blocked = res.meta["n_blocked"][0, 0]
        offered = res.meta["n_offered"][0, 0]
        return blocked / offered, res

    def test_blocking_matches_erlang_b(self):
        frac, _ = self._blocking(Exponential(1.0), lam=3.0, c=4, seed=51)
        assert frac == pytest.approx(erlang_b(4, 3.0), rel=0.05)

    def test_insensitivity_in_simulation(self):
        # The same offered load with wildly different shapes gives the
        # same simulated blocking — M/G/c/c insensitivity, observed.
        b_exp, _ = self._blocking(Exponential(1.0), lam=3.0, c=4, seed=52)
        b_h2, _ = self._blocking(fit_two_moments(1.0, 4.0), lam=3.0, c=4, seed=53)
        b_det, _ = self._blocking(fit_two_moments(1.0, 0.0), lam=3.0, c=4, seed=54)
        exact = erlang_b(4, 3.0)
        for b in (b_exp, b_h2, b_det):
            assert b == pytest.approx(exact, rel=0.07)

    def test_accepted_jobs_never_wait(self):
        _, res = self._blocking(Exponential(1.0), lam=3.0, c=4, seed=55, horizon=5000.0)
        # Sojourn == service for accepted jobs: station wait ~ 0.
        assert res.station_waits[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert res.delays[0] == pytest.approx(1.0, rel=0.05)

    def test_overloaded_gate_simulates(self):
        frac, _ = self._blocking(Exponential(1.0), lam=30.0, c=4, seed=56, horizon=3000.0)
        assert frac == pytest.approx(erlang_b(4, 30.0), rel=0.03)

    def test_gate_in_front_of_queueing_tier(self):
        # Admission control protects a downstream FCFS tier: its
        # offered rate is thinned by (1 - B).
        tiers = [
            Tier("gate", (Exponential(1.0),), _spec(), servers=3, discipline="loss"),
            Tier("work", (Exponential(1.0),), _spec(), servers=4, discipline="fcfs"),
        ]
        cluster = ClusterModel(tiers)
        wl = workload_from_rates([3.5])
        res = simulate(cluster, wl, horizon=10000.0, seed=57)
        b = erlang_b(3, 3.5)
        accepted_rate = 3.5 * (1 - b)
        window = res.horizon - res.warmup
        measured = res.meta["station_completions"][0, 1] / window
        assert measured == pytest.approx(accepted_rate, rel=0.05)


def _spec():
    from repro.cluster import PowerModel, ServerSpec

    return ServerSpec(PowerModel(idle=5.0, kappa=20.0, alpha=3.0), min_speed=0.4, max_speed=1.0)
