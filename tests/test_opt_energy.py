"""P2 optimizer tests (minimize energy under delay constraints)."""

import numpy as np
import pytest

from repro.baselines import uniform_speed_for_delay
from repro.core import SLA, ClassSLA, end_to_end_delays, mean_end_to_end_delay, minimize_energy
from repro.exceptions import InfeasibleProblemError, ModelValidationError


@pytest.fixture
def loose_bound(three_tier_cluster, three_class_workload):
    return 1.5 * mean_end_to_end_delay(three_tier_cluster, three_class_workload)


class TestP2aAggregate:
    def test_succeeds_and_meets_bound(self, three_tier_cluster, three_class_workload, loose_bound):
        res = minimize_energy(three_tier_cluster, three_class_workload, max_mean_delay=loose_bound)
        assert res.success
        achieved = mean_end_to_end_delay(res.meta["cluster"], three_class_workload)
        assert achieved <= loose_bound + 1e-6

    def test_saves_power_vs_full_speed(self, three_tier_cluster, three_class_workload, loose_bound):
        res = minimize_energy(three_tier_cluster, three_class_workload, max_mean_delay=loose_bound)
        full = three_tier_cluster.average_power(three_class_workload.arrival_rates)
        assert res.meta["power"] < full

    def test_no_worse_than_uniform_baseline(self, three_tier_cluster, three_class_workload, loose_bound):
        res = minimize_energy(three_tier_cluster, three_class_workload, max_mean_delay=loose_bound)
        uni = uniform_speed_for_delay(three_tier_cluster, three_class_workload, loose_bound)
        uni_power = three_tier_cluster.with_speeds(uni).average_power(
            three_class_workload.arrival_rates
        )
        assert res.meta["power"] <= uni_power + 1e-6

    def test_power_monotone_in_bound(self, three_tier_cluster, three_class_workload):
        base = mean_end_to_end_delay(three_tier_cluster, three_class_workload)
        powers = [
            minimize_energy(
                three_tier_cluster, three_class_workload, max_mean_delay=base * f, n_starts=3
            ).meta["power"]
            for f in (1.1, 1.5, 2.5)
        ]
        assert powers[0] >= powers[1] >= powers[2]

    def test_infeasible_bound_raises(self, three_tier_cluster, three_class_workload):
        best = mean_end_to_end_delay(three_tier_cluster, three_class_workload)
        with pytest.raises(InfeasibleProblemError):
            minimize_energy(three_tier_cluster, three_class_workload, max_mean_delay=best * 0.5)


class TestP2bPerClass:
    def test_succeeds_and_meets_every_bound(self, three_tier_cluster, three_class_workload):
        bounds = end_to_end_delays(three_tier_cluster, three_class_workload) * 1.3
        res = minimize_energy(three_tier_cluster, three_class_workload, class_delay_bounds=bounds)
        assert res.success
        np.testing.assert_array_less(res.meta["delays"], bounds + 1e-6)

    def test_sla_source(self, three_tier_cluster, three_class_workload):
        delays = end_to_end_delays(three_tier_cluster, three_class_workload)
        sla = SLA(
            [
                ClassSLA("gold", float(delays[0] * 1.3)),
                ClassSLA("silver", float(delays[1] * 1.3)),
                ClassSLA("bronze", float(delays[2] * 1.3)),
            ]
        )
        res = minimize_energy(three_tier_cluster, three_class_workload, sla=sla)
        assert res.success

    def test_per_class_at_least_aggregate_cost(self, three_tier_cluster, three_class_workload):
        # Per-class bounds whose weighted mean equals D are (weakly)
        # harder than the single aggregate bound D.
        delays = end_to_end_delays(three_tier_cluster, three_class_workload)
        lam = three_class_workload.arrival_rates
        bounds = delays * 1.3
        agg = float(np.dot(lam, bounds) / lam.sum())
        p2b = minimize_energy(
            three_tier_cluster, three_class_workload, class_delay_bounds=bounds, n_starts=3
        )
        p2a = minimize_energy(
            three_tier_cluster, three_class_workload, max_mean_delay=agg, n_starts=3
        )
        assert p2b.meta["power"] >= p2a.meta["power"] - 1e-4

    def test_infeasible_class_bound_names_class(self, three_tier_cluster, three_class_workload):
        delays = end_to_end_delays(three_tier_cluster, three_class_workload)
        bounds = delays * 1.3
        bounds[0] = delays[0] * 0.1  # impossible for gold
        with pytest.raises(InfeasibleProblemError, match="gold"):
            minimize_energy(three_tier_cluster, three_class_workload, class_delay_bounds=bounds)

    def test_wrong_bound_count(self, three_tier_cluster, three_class_workload):
        with pytest.raises(ModelValidationError):
            minimize_energy(
                three_tier_cluster, three_class_workload, class_delay_bounds=[1.0, 1.0]
            )

    def test_nonpositive_bounds(self, three_tier_cluster, three_class_workload):
        with pytest.raises(ModelValidationError):
            minimize_energy(
                three_tier_cluster, three_class_workload, class_delay_bounds=[0.5, -1.0, 0.5]
            )


class TestConstraintSourceValidation:
    def test_no_source(self, three_tier_cluster, three_class_workload):
        with pytest.raises(ModelValidationError):
            minimize_energy(three_tier_cluster, three_class_workload)

    def test_two_sources(self, three_tier_cluster, three_class_workload):
        with pytest.raises(ModelValidationError):
            minimize_energy(
                three_tier_cluster,
                three_class_workload,
                max_mean_delay=1.0,
                class_delay_bounds=[1.0, 1.0, 1.0],
            )

    def test_bad_aggregate_bound(self, three_tier_cluster, three_class_workload):
        with pytest.raises(ModelValidationError):
            minimize_energy(three_tier_cluster, three_class_workload, max_mean_delay=0.0)


class TestSolverDiagnostics:
    def test_p2a_converged_status_zero(self, three_tier_cluster, three_class_workload):
        bound = 1.5 * mean_end_to_end_delay(three_tier_cluster, three_class_workload)
        res = minimize_energy(three_tier_cluster, three_class_workload, max_mean_delay=bound)
        assert res.success and res.status == 0
        assert res.nit > 0 and res.nfev > 0
        assert all(v >= -1e-4 for v in res.meta["constraint_residuals"].values())

    def test_p2b_converged_status_zero(self, three_tier_cluster, three_class_workload):
        bounds = 1.5 * end_to_end_delays(three_tier_cluster, three_class_workload)
        res = minimize_energy(three_tier_cluster, three_class_workload, class_delay_bounds=bounds)
        assert res.success and res.status == 0
        assert res.nit > 0 and res.nfev > 0
        assert len(res.meta["constraint_residuals"]) == len(bounds)
