"""Golden-metrics regression suite for the simulation engine.

Pins seeded :func:`repro.simulation.simulate` outputs captured from the
pre-vectorization event core and asserts the current engine reproduces
them **bit-identically** — same per-class delays, utilizations, energy
and completion counts, down to the last float bit. This is the
contract that lets the engine's internals be rewritten for speed
(block-pregenerated RNG, array-backed stations, next-completion
scheduling) without any risk of silently changing simulated physics.

The pinned values live in ``tests/data/golden_sim_metrics.json``. To
regenerate them after an *intentional* behaviour change::

    PYTHONPATH=src python tests/test_golden_sim_metrics.py --regen

and commit the diff together with the change that caused it.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.distributions import Exponential, fit_two_moments
from repro.simulation import simulate
from repro.workload import workload_from_rates
from repro.workload.arrivals import BatchPoissonProcess, MMPP2

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_sim_metrics.json"

_SPEC = ServerSpec(
    PowerModel(idle=25.0, kappa=75.0, alpha=3.0), min_speed=0.4, max_speed=1.0
)


def _two_tier(discipline: str, servers=(1, 2)) -> ClusterModel:
    tiers = [
        Tier(
            "front",
            (Exponential(4.0), fit_two_moments(0.3, 2.0)),
            _SPEC,
            servers=servers[0],
            discipline=discipline,
        ),
        Tier(
            "back",
            (fit_two_moments(0.5, 0.5), fit_two_moments(0.6, 1.5)),
            _SPEC,
            servers=servers[1],
            discipline=discipline,
        ),
    ]
    return ClusterModel(tiers)


def _workload():
    return workload_from_rates([0.5, 0.8], names=("hi", "lo"))


def _revisit_cluster() -> ClusterModel:
    # Class 0 visits the back tier twice (integer visit ratios > 1).
    tiers = [
        Tier("front", (Exponential(4.0), Exponential(3.0)), _SPEC, servers=1),
        Tier("back", (Exponential(5.0), Exponential(4.0)), _SPEC, servers=2),
    ]
    return ClusterModel(tiers, visit_ratios=np.array([[1.0, 2.0], [1.0, 1.0]]))


def _finite_buffer_cluster() -> ClusterModel:
    tiers = [
        Tier(
            "gate",
            (Exponential(2.5), Exponential(2.0)),
            _SPEC,
            servers=2,
            discipline="fcfs",
            capacity=3,
        ),
        Tier("work", (Exponential(4.0), Exponential(3.0)), _SPEC, servers=2),
    ]
    return ClusterModel(tiers)


# Scenario name -> zero-arg callable returning a SimulationResult. Each
# exercises a different hot path of the engine: scheduling discipline,
# service-sampling family (block-safe vs scalar-fallback), arrival
# process (block-pregenerated Poisson vs stateful scalar), routing
# loops and finite buffers.
def _scenarios():
    return {
        "fcfs_mixed_scv": lambda: simulate(
            _two_tier("fcfs"), _workload(), horizon=160.0, seed=2024
        ),
        "priority_np_hyperexp": lambda: simulate(
            _two_tier("priority_np"), _workload(), horizon=160.0, seed=7
        ),
        "priority_pr_preemption": lambda: simulate(
            _two_tier("priority_pr"), _workload(), horizon=160.0, seed=11
        ),
        "ps_station": lambda: simulate(
            _two_tier("ps", servers=(1, 2)), _workload(), horizon=120.0, seed=5
        ),
        "multi_server_priority": lambda: simulate(
            _two_tier("priority_np", servers=(2, 3)), _workload(), horizon=160.0, seed=3
        ),
        "integer_revisits": lambda: simulate(
            _revisit_cluster(), _workload(), horizon=150.0, seed=13
        ),
        "finite_buffer_blocking": lambda: simulate(
            _finite_buffer_cluster(),
            _workload(),
            horizon=150.0,
            seed=17,
            allow_unstable=True,
        ),
        "batch_and_mmpp_arrivals": lambda: simulate(
            _two_tier("priority_np"),
            _workload(),
            horizon=120.0,
            seed=23,
            arrival_processes=[
                BatchPoissonProcess(epoch_rate=0.3, p=0.6),
                MMPP2(rate0=0.4, rate1=1.6, r01=0.05, r10=0.1),
            ],
        ),
        "delay_samples_collected": lambda: simulate(
            _two_tier("priority_np"),
            _workload(),
            horizon=120.0,
            seed=29,
            collect_delay_samples=True,
            collect_job_log=True,
        ),
    }


def _snapshot(result) -> dict:
    """Everything the engine measures, as exact JSON-serializable data."""
    snap = {
        "n_completed": result.n_completed.tolist(),
        "delays": result.delays.tolist(),
        "delay_std": result.delay_std.tolist(),
        "delay_ci": result.delay_ci.tolist(),
        "station_waits": result.station_waits.tolist(),
        "station_sojourns": result.station_sojourns.tolist(),
        "utilizations": result.utilizations.tolist(),
        "average_power": result.average_power,
        "energy_per_request": result.energy_per_request,
        "per_class_dynamic_energy": result.per_class_dynamic_energy.tolist(),
        "n_jobs_created": result.meta["n_jobs_created"],
        "n_warmup_discarded": result.meta["n_warmup_discarded"],
        "station_completions": result.meta["station_completions"].tolist(),
        "n_blocked": result.meta["n_blocked"].tolist(),
        "n_offered": result.meta["n_offered"].tolist(),
    }
    if result.delay_samples is not None:
        # Pin the tail of each class's sample stream (the full stream is
        # large; the last values depend on every draw before them).
        snap["delay_sample_tails"] = [s[-5:].tolist() for s in result.delay_samples]
        snap["delay_sample_counts"] = [int(s.size) for s in result.delay_samples]
    if result.job_log is not None:
        snap["job_log_rows"] = int(result.job_log.shape[0])
        snap["job_log_last_exit"] = float(result.job_log["exit"][-1])
    return snap


def _assert_identical(pinned, fresh, path=""):
    if isinstance(pinned, dict):
        assert sorted(pinned) == sorted(fresh), f"{path}: key mismatch"
        for key in pinned:
            _assert_identical(pinned[key], fresh[key], f"{path}.{key}")
    elif isinstance(pinned, list):
        assert len(pinned) == len(fresh), f"{path}: length mismatch"
        for i, (a, b) in enumerate(zip(pinned, fresh)):
            _assert_identical(a, b, f"{path}[{i}]")
    elif isinstance(pinned, float) and math.isnan(pinned):
        assert isinstance(fresh, float) and math.isnan(fresh), f"{path}: expected NaN, got {fresh}"
    else:
        # Bit-identical: exact equality, no tolerance. JSON round-trips
        # Python floats exactly (shortest-repr serialization).
        assert pinned == fresh, f"{path}: pinned {pinned!r} != fresh {fresh!r}"


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():  # pragma: no cover - repo invariant
        pytest.fail(
            f"{GOLDEN_PATH} missing; regenerate with "
            "`PYTHONPATH=src python tests/test_golden_sim_metrics.py --regen`"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", sorted(_scenarios()))
def test_simulation_metrics_bit_identical(golden, name):
    assert name in golden, f"no pinned metrics for scenario {name!r}"
    fresh = _snapshot(_scenarios()[name]())
    _assert_identical(golden[name], fresh, path=name)


def test_all_scenarios_pinned(golden):
    """The JSON must not contain stale scenarios (renamed/deleted)."""
    assert sorted(golden) == sorted(_scenarios())


def _regenerate() -> None:  # pragma: no cover - manual tool
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    out = {name: _snapshot(fn()) for name, fn in sorted(_scenarios().items())}
    GOLDEN_PATH.write_text(json.dumps(out, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(out)} scenarios)")


if __name__ == "__main__":  # pragma: no cover - manual tool
    import sys

    if "--regen" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
