"""Property-based tests for the percentile and phase-type machinery."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.percentile import hypoexponential_survival, mg1_wait_moments
from repro.distributions import fit_two_moments
from repro.queueing.phase_type import as_phase_type, mph1_waiting_time

rates_lists = st.lists(
    st.floats(min_value=0.05, max_value=50.0), min_size=1, max_size=6
)


class TestHypoexponentialProperties:
    @given(rates=rates_lists, t=st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=150, deadline=None)
    def test_survival_is_probability(self, rates, t):
        s = hypoexponential_survival(t, rates)
        assert 0.0 <= s <= 1.0

    @given(rates=rates_lists)
    @settings(max_examples=100, deadline=None)
    def test_survival_at_mean_bounded(self, rates):
        # For any positive distribution, P(X > E[X]) < 1; for sums of
        # exponentials it is also strictly positive.
        mean = sum(1.0 / r for r in rates)
        s = hypoexponential_survival(mean, rates)
        assert 0.0 < s < 1.0

    @given(rates=rates_lists, t1=st.floats(min_value=0.0, max_value=20.0), dt=st.floats(min_value=0.0, max_value=20.0))
    @settings(max_examples=150, deadline=None)
    def test_monotone(self, rates, t1, dt):
        assert hypoexponential_survival(t1, rates) >= hypoexponential_survival(t1 + dt, rates) - 1e-9

    @given(rates=rates_lists)
    @settings(max_examples=100, deadline=None)
    def test_adding_a_phase_increases_survival(self, rates):
        t = sum(1.0 / r for r in rates)
        longer = rates + [1.0]
        assert hypoexponential_survival(t, longer) >= hypoexponential_survival(t, rates) - 1e-9


@st.composite
def ph_source(draw):
    """Random PH-representable distribution via the two-moment fit
    restricted to the PH families (scv >= tiny, not deterministic)."""
    mean = draw(st.floats(min_value=0.05, max_value=10.0))
    scv = draw(st.floats(min_value=0.05, max_value=8.0))
    # Gamma path needs an integer shape for PH; route scv < 1 through
    # Erlang-friendly values 1/k.
    if scv < 1.0:
        k = draw(st.integers(min_value=1, max_value=8))
        scv = 1.0 / k
    return fit_two_moments(mean, scv)


class TestPhaseTypeProperties:
    @given(dist=ph_source())
    @settings(max_examples=100, deadline=None)
    def test_ph_moments_match_distribution(self, dist):
        ph = as_phase_type(dist)
        assume(ph is not None)
        assert ph.moment(1) == pytest.approx(dist.mean, rel=1e-8)
        assert ph.moment(2) == pytest.approx(dist.second_moment, rel=1e-8)
        assert ph.moment(3) == pytest.approx(dist.third_moment, rel=1e-6)

    @given(dist=ph_source(), rho=st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=60, deadline=None)
    def test_mph1_wait_mean_matches_takacs(self, dist, rho):
        ph = as_phase_type(dist)
        assume(ph is not None)
        lam = rho / dist.mean
        w = mph1_waiting_time(lam, dist)
        ew, _ = mg1_wait_moments(lam, dist)
        assert w.mean == pytest.approx(ew, rel=1e-7)

    @given(dist=ph_source(), rho=st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=60, deadline=None)
    def test_mph1_wait_second_moment_matches_takacs(self, dist, rho):
        ph = as_phase_type(dist)
        assume(ph is not None)
        lam = rho / dist.mean
        w = mph1_waiting_time(lam, dist)
        _, ew2 = mg1_wait_moments(lam, dist)
        assert w.moment(2) == pytest.approx(ew2, rel=1e-6)

    @given(dist=ph_source(), rho=st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=40, deadline=None)
    def test_wait_atom_equals_one_minus_rho(self, dist, rho):
        ph = as_phase_type(dist)
        assume(ph is not None)
        lam = rho / dist.mean
        w = mph1_waiting_time(lam, dist)
        assert w.alpha.sum() == pytest.approx(rho, rel=1e-9)
