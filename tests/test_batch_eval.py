"""Batched analytic evaluation vs the scalar path, formula by formula.

``BatchEvaluator`` reimplements every per-station formula of
:func:`repro.queueing.networks.station_delays` in vectorized form; the
contract is agreement with the scalar path to floating-point round-off
on *every* discipline and dispatch branch. These tests sweep random
speed/server grids through both paths, pin the vector-friendly
instability signal (``inf`` rows where the scalar path raises), and
check the batched wrappers, the batched percentiles and the vectorized
exhaustive baseline against their scalar counterparts.
"""

import numpy as np
import pytest

from repro.baselines.exhaustive import _scalar_search, exhaustive_cost_minimization
from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.core.batch_eval import BatchEvaluator, erlang_b_vec, erlang_c_vec
from repro.core.delay import (
    end_to_end_delays,
    end_to_end_delays_batch,
    mean_end_to_end_delay,
    mean_end_to_end_delay_batch,
)
from repro.core.energy import average_power, average_power_batch
from repro.core.percentile import all_class_percentiles, all_class_percentiles_batch
from repro.core.sla import SLA, ClassSLA
from repro.distributions import Exponential, fit_two_moments
from repro.exceptions import (
    InfeasibleProblemError,
    ModelValidationError,
    UnstableSystemError,
)
from repro.experiments.common import (
    canonical_cluster,
    canonical_sla,
    canonical_workload,
    small_cluster,
    small_sla,
    small_workload,
)
from repro.optimize.constrained import minimize_box_constrained
from repro.queueing import erlang_b, erlang_c
from repro.workload import workload_from_rates

DISCIPLINES = ("fcfs", "ps", "loss", "priority_np", "priority_pr")


def _scalar_delays(cluster, workload, speeds, counts):
    """Per-class delays through the one-model-per-candidate path."""
    configured = cluster.with_servers(counts).with_speeds(speeds)
    return end_to_end_delays(configured, workload)


def _speed_server_grid(cluster, n, seed, lo=0.5, hi=1.0, cap=6):
    rng = np.random.default_rng(seed)
    speeds = rng.uniform(lo, hi, size=(n, cluster.num_tiers))
    servers = rng.integers(1, cap + 1, size=(n, cluster.num_tiers))
    return speeds, servers


@pytest.mark.parametrize("discipline", DISCIPLINES)
def test_batch_matches_scalar_canonical(discipline):
    """Random speed × server grid on the canonical instance: the batch
    agrees with the scalar model rebuilt per candidate."""
    cluster = canonical_cluster(discipline=discipline)
    workload = canonical_workload()
    speeds, servers = _speed_server_grid(cluster, n=25, seed=0)
    batch = BatchEvaluator(cluster, workload)
    delays = batch.end_to_end_delays(speeds, servers)
    means = batch.mean_delay(speeds, servers)
    power = batch.average_power(speeds, servers)
    for j in range(speeds.shape[0]):
        configured = cluster.with_servers(servers[j]).with_speeds(speeds[j])
        try:
            expected = end_to_end_delays(configured, workload)
        except UnstableSystemError:
            # The scalar path refuses unstable candidates; the batch
            # signals the same candidates with inf rows.
            assert np.all(np.isinf(delays[j])) and np.isinf(means[j])
            continue
        np.testing.assert_allclose(delays[j], expected, rtol=1e-10)
        np.testing.assert_allclose(
            means[j], mean_end_to_end_delay(configured, workload), rtol=1e-10
        )
        np.testing.assert_allclose(
            power[j], average_power(configured, workload), rtol=1e-12
        )


def test_batch_matches_scalar_small_instance():
    cluster, workload = small_cluster(), small_workload()
    speeds, servers = _speed_server_grid(cluster, n=30, seed=1, cap=4)
    delays = BatchEvaluator(cluster, workload).end_to_end_delays(speeds, servers)
    for j in range(speeds.shape[0]):
        try:
            expected = _scalar_delays(cluster, workload, speeds[j], servers[j])
        except UnstableSystemError:
            assert np.all(np.isinf(delays[j]))
            continue
        np.testing.assert_allclose(delays[j], expected, rtol=1e-10)


def _mixed_cluster():
    """One tier per discipline, including a common-exponential-demand
    priority tier (the Kella–Yechiali dispatch branch)."""
    spec = ServerSpec(
        PowerModel(idle=20.0, kappa=50.0, alpha=3.0),
        min_speed=0.3,
        max_speed=1.2,
        cost=1.0,
        name="mixed-node",
    )
    tiers = [
        Tier("t_fcfs", (fit_two_moments(0.03, 2.0), fit_two_moments(0.04, 1.5)), spec, servers=2, discipline="fcfs"),
        Tier("t_ps", (fit_two_moments(0.05, 3.0), fit_two_moments(0.04, 1.0)), spec, servers=1, discipline="ps"),
        Tier("t_loss", (fit_two_moments(0.02, 1.0), fit_two_moments(0.03, 2.5)), spec, servers=2, discipline="loss"),
        # All-Exponential equal-rate demands: the KY branch.
        Tier("t_ky", (Exponential(12.0), Exponential(12.0)), spec, servers=3, discipline="priority_np"),
        Tier("t_pr", (fit_two_moments(0.04, 2.0), fit_two_moments(0.05, 1.2)), spec, servers=2, discipline="priority_pr"),
    ]
    return ClusterModel(tiers)


def test_batch_matches_scalar_mixed_disciplines():
    """All five disciplines (and the KY common-rate branch) in one
    cluster, with per-candidate server counts."""
    cluster = _mixed_cluster()
    workload = workload_from_rates([3.0, 6.0], names=("gold", "bronze"))
    speeds, servers = _speed_server_grid(cluster, n=40, seed=2, lo=0.4, hi=1.2, cap=5)
    delays = BatchEvaluator(cluster, workload).end_to_end_delays(speeds, servers)
    for j in range(speeds.shape[0]):
        try:
            expected = _scalar_delays(cluster, workload, speeds[j], servers[j])
        except UnstableSystemError:
            assert np.all(np.isinf(delays[j]))
            continue
        np.testing.assert_allclose(delays[j], expected, rtol=1e-10)


def test_unstable_rows_are_inf_power_stays_finite():
    cluster, workload = canonical_cluster(), canonical_workload(load_factor=2.5)
    batch = BatchEvaluator(cluster, workload)
    speeds = np.array([[1.0, 1.0, 1.0], [0.5, 0.5, 0.5]])
    delays = batch.end_to_end_delays(speeds)
    assert np.all(np.isinf(delays))  # saturated at 2.5x load
    assert np.all(np.isinf(batch.mean_delay(speeds)))
    assert np.all(np.isfinite(batch.average_power(speeds)))
    # The scalar path refuses the same configuration outright.
    with pytest.raises(UnstableSystemError):
        end_to_end_delays(cluster, workload)


def test_erlang_vec_matches_scalar():
    rng = np.random.default_rng(3)
    c = rng.integers(1, 40, size=200)
    a = rng.uniform(0.0, 1.0, size=200) * c  # keep a < c (stable)
    np.testing.assert_allclose(
        erlang_b_vec(c, a), [erlang_b(int(ci), float(ai)) for ci, ai in zip(c, a)],
        rtol=1e-12,
    )
    np.testing.assert_allclose(
        erlang_c_vec(c, a), [erlang_c(int(ci), float(ai)) for ci, ai in zip(c, a)],
        rtol=1e-12,
    )
    # Degenerate no-load case.
    np.testing.assert_array_equal(erlang_b_vec(np.array([3]), np.array([0.0])), [0.0])
    np.testing.assert_array_equal(erlang_c_vec(np.array([3]), np.array([0.0])), [0.0])


def test_batch_wrapper_functions():
    cluster, workload = canonical_cluster(), canonical_workload()
    batch = BatchEvaluator(cluster, workload)
    speeds = np.random.default_rng(4).uniform(0.6, 1.0, size=(7, 3))
    np.testing.assert_array_equal(
        end_to_end_delays_batch(cluster, workload, speeds),
        batch.end_to_end_delays(speeds),
    )
    np.testing.assert_array_equal(
        mean_end_to_end_delay_batch(cluster, workload, speeds),
        batch.mean_delay(speeds),
    )
    np.testing.assert_array_equal(
        average_power_batch(cluster, workload, speeds),
        batch.average_power(speeds),
    )
    # A 1-D speed vector is one candidate.
    assert end_to_end_delays_batch(cluster, workload, speeds[0]).shape == (1, 3)


def test_input_validation():
    cluster, workload = canonical_cluster(), canonical_workload()
    batch = BatchEvaluator(cluster, workload)
    with pytest.raises(ModelValidationError):
        batch.end_to_end_delays(np.ones((4, 2)))  # wrong tier count
    with pytest.raises(ModelValidationError):
        batch.end_to_end_delays(np.array([[1.0, -0.5, 1.0]]))
    with pytest.raises(ModelValidationError):
        batch.end_to_end_delays(np.ones((2, 3)), servers=np.zeros((2, 3), dtype=int))
    with pytest.raises(ModelValidationError):
        BatchEvaluator(cluster, workload_from_rates([1.0, 2.0]))


def test_percentile_batch_matches_scalar():
    cluster, workload = canonical_cluster(), canonical_workload()
    speeds = np.random.default_rng(5).uniform(0.7, 1.0, size=(8, 3))
    got = all_class_percentiles_batch(cluster, workload, speeds, 0.95)
    for j in range(speeds.shape[0]):
        expected = all_class_percentiles(cluster.with_speeds(speeds[j]), workload, 0.95)
        np.testing.assert_allclose(got[j], expected, rtol=1e-8)


def test_percentile_batch_repeated_visits_fallback():
    """Repeated tier visits (v > 1) have exactly repeated phase rates —
    the partial-fraction form degenerates, so the batch must fall back
    to the scalar matrix-exponential path and still agree."""
    base = canonical_cluster()
    visit_ratios = np.ones((3, 3))
    visit_ratios[0, 1] = 2.0  # gold visits the app tier twice
    cluster = ClusterModel(base.tiers, visit_ratios)
    workload = canonical_workload()
    speeds = np.random.default_rng(6).uniform(0.8, 1.0, size=(4, 3))
    got = all_class_percentiles_batch(cluster, workload, speeds, 0.9)
    for j in range(speeds.shape[0]):
        expected = all_class_percentiles(cluster.with_speeds(speeds[j]), workload, 0.9)
        np.testing.assert_allclose(got[j], expected, rtol=1e-8)


def test_percentile_batch_unstable_rows():
    cluster, workload = canonical_cluster(), canonical_workload(load_factor=2.5)
    out = all_class_percentiles_batch(cluster, workload, np.ones((2, 3)), 0.95)
    assert np.all(np.isinf(out))


def test_exhaustive_known_answers():
    """The vectorized grid search returns the pre-rewrite answers —
    including the path-dependent evaluation count of the prune loop."""
    counts, cost, evals = exhaustive_cost_minimization(
        canonical_cluster(), canonical_workload(), canonical_sla(), 10
    )
    assert counts.tolist() == [1, 3, 2] and cost == 16.5 and evals == 47
    counts, cost, evals = exhaustive_cost_minimization(
        small_cluster(), small_workload(), small_sla(), 12
    )
    assert counts.tolist() == [1, 2] and cost == 8.0 and evals == 3


def test_exhaustive_vectorized_equals_scalar_search():
    cluster, workload, sla = small_cluster(), small_workload(), small_sla()
    at_max = cluster.with_speeds([t.spec.max_speed for t in cluster.tiers])
    costs = np.array([t.spec.cost for t in at_max.tiers])
    expected = _scalar_search(at_max, workload, sla, 8, costs)
    got = exhaustive_cost_minimization(cluster, workload, sla, 8)
    assert got[0].tolist() == expected[0].tolist()
    assert got[1] == expected[1] and got[2] == expected[2]


def test_exhaustive_percentile_sla_uses_scalar_path():
    """A percentile-bearing SLA exercises the scalar fallback and still
    returns a feasible allocation."""
    workload = small_workload()
    sla = SLA(
        [
            ClassSLA("gold", 0.40, fee=1.0, percentile=0.95, max_percentile_delay=1.2),
            ClassSLA("bronze", 1.00, fee=0.2),
        ]
    )
    counts, cost, evals = exhaustive_cost_minimization(small_cluster(), workload, sla, 6)
    assert cost > 0 and evals >= 1 and np.all(counts >= 1)


def test_exhaustive_infeasible_raises():
    with pytest.raises(InfeasibleProblemError):
        exhaustive_cost_minimization(
            small_cluster(), small_workload(), small_sla(tightness=0.05), 4
        )


def test_objective_batch_seeding_matches_plain_solve():
    """Seeding the multistart from a batched objective reorders the
    starts but must not change the optimum."""

    def objective(x):
        return float((x[0] - 0.3) ** 2 + (x[1] - 0.7) ** 2)

    def objective_batch(points):
        return ((points - np.array([0.3, 0.7])) ** 2).sum(axis=1)

    bounds = [(0.0, 1.0), (0.0, 1.0)]
    plain = minimize_box_constrained(objective, bounds, n_starts=4)
    seeded = minimize_box_constrained(
        objective, bounds, n_starts=4, objective_batch=objective_batch
    )
    assert plain.success and seeded.success
    np.testing.assert_allclose(seeded.x, plain.x, atol=1e-8)
    np.testing.assert_allclose(seeded.fun, plain.fun, atol=1e-12)


def test_objective_batch_shape_mismatch_raises():
    def objective(x):
        return float(np.sum(x**2))

    with pytest.raises(ModelValidationError):
        minimize_box_constrained(
            objective,
            [(0.0, 1.0)],
            n_starts=3,
            objective_batch=lambda pts: np.zeros(len(pts) + 1),
        )
