"""Parallel replication engine, result cache, and the replication-API
and warmup-accounting regression tests.

Covers:

* the three PR bugfixes, each with a failing-before/passing-after test:
  1. ``simulate_replications`` forwards ``routing`` /
     ``allow_unstable`` / ``collect_job_log`` to every replication;
  2. the simulator's ``offered`` / ``n_blocked`` counters use the
     job-arrival warmup window (the one the delay statistics use), not
     the hop's event time, and the redundant event-time guard on
     ``station_completions`` is gone;
  3. ``ReplicatedResult.delay_percentiles`` excludes zero-completion
     replications per class instead of letting one NaN poison the
     across-replication mean/CI;
* determinism: ``n_jobs=1`` and ``n_jobs=4`` produce bit-identical
  ``ReplicatedResult`` fields;
* the on-disk cache: warm calls skip the simulator and return equal
  results, and a corrupted cache file is recomputed, not crashed on.
"""

import warnings

import numpy as np
import pytest

from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.distributions import Deterministic, Exponential
from repro.exceptions import ModelValidationError, WarmupDiscardWarning
from repro.queueing.routing import ClassRouting, visit_ratio_matrix
from repro.simulation import (
    CacheUnsupportedError,
    ReplicatedResult,
    SimulationCache,
    SimulationResult,
    confidence_halfwidth,
    simulate,
    simulate_replications,
    simulation_fingerprint,
)
from repro.simulation.parallel import ProcessPoolBackend, SerialBackend, get_backend, resolve_n_jobs
from repro.workload import workload_from_rates
from repro.workload.arrivals import RenewalProcess

SPEC = ServerSpec(PowerModel(idle=10.0, kappa=50.0, alpha=3.0), min_speed=0.4, max_speed=1.0)


def _tandem_cluster(d2: float = 0.2, capacity2: int | None = None) -> ClusterModel:
    """Deterministic 2-tier tandem: service 0.6 then ``d2`` seconds."""
    tiers = [
        Tier("t1", (Deterministic(0.6),), SPEC, servers=1, discipline="fcfs"),
        Tier("t2", (Deterministic(d2),), SPEC, servers=1, discipline="fcfs", capacity=capacity2),
    ]
    return ClusterModel(tiers)


def _deterministic_arrivals():
    """Renewal arrivals every 0.9 s: jobs at t = 0.9, 1.8, ..., 9.9."""
    return [RenewalProcess(Deterministic(0.9))]


# ----------------------------------------------------------------------
# Bugfix 1: simulate_replications forwards all simulate() options.
# ----------------------------------------------------------------------
class TestOptionForwarding:
    def test_collect_job_log_reaches_every_replication(self, two_class_cluster, two_class_workload):
        rep = simulate_replications(
            two_class_cluster,
            two_class_workload,
            horizon=300.0,
            n_replications=2,
            seed=3,
            collect_job_log=True,
        )
        for r in rep.replications:
            assert r.job_log is not None
            assert r.job_log.shape[0] == int(r.n_completed.sum())

    def test_allow_unstable_is_forwarded(self, basic_spec):
        tier = Tier("only", (Exponential(1.0),), basic_spec, discipline="fcfs")
        cluster = ClusterModel([tier])
        overloaded = workload_from_rates([1.5])  # rho = 1.5
        with pytest.raises(ModelValidationError):
            simulate_replications(cluster, overloaded, horizon=50.0, n_replications=2)
        rep = simulate_replications(
            cluster, overloaded, horizon=50.0, n_replications=2, allow_unstable=True
        )
        assert rep.n_replications == 2

    def test_routing_is_forwarded(self, basic_spec):
        retry = np.array([[0.0, 1.0], [0.25, 0.0]])
        cr = ClassRouting(retry, 0)
        cluster = ClusterModel(
            [
                Tier("app", (Exponential(3.0),), basic_spec),
                Tier("db", (Exponential(4.0),), basic_spec),
            ],
            visit_ratios=visit_ratio_matrix([retry]),
        )
        wl = workload_from_rates([1.0])
        rep = simulate_replications(
            cluster, wl, horizon=2000.0, n_replications=3, seed=9, routing=[cr]
        )
        # Across-replication CI now exists for the routed topology.
        assert np.all(np.isfinite(rep.delays_ci))
        # Feedback routing means > 2 station visits per completed job.
        visits = sum(r.meta["station_completions"].sum() for r in rep.replications)
        completed = sum(r.n_completed.sum() for r in rep.replications)
        assert visits / completed > 2.0


# ----------------------------------------------------------------------
# Bugfix 2: blocking counters use the job-arrival warmup window.
# ----------------------------------------------------------------------
@pytest.mark.filterwarnings("ignore::repro.exceptions.WarmupDiscardWarning")
class TestWarmupWindowCounters:
    """Deterministic tandem, horizon 10, warmup 5, arrivals at 0.9k.

    The tiny deterministic windows here discard most completions by
    construction (that is the point of the regression scenarios), so
    the warmup-discard advisory is expected and silenced.

    Post-warmup arrivals are k = 6..11 (t = 5.4..9.9). Tier-2 entries
    happen at 0.9k + 0.6. The job arriving at t = 4.5 (k = 5) enters
    tier 2 at t = 5.1: the *old* event-time gate counted it as offered
    after warmup even though the delay statistics exclude it; the fixed
    gate does not.
    """

    def test_offered_uses_arrival_window(self):
        res = simulate(
            _tandem_cluster(),
            workload_from_rates([1.0 / 0.9]),
            horizon=10.0,
            warmup_fraction=0.5,
            seed=0,
            arrival_processes=_deterministic_arrivals(),
        )
        offered = res.meta["n_offered"]
        # Tier 1: arrivals k=6..11 -> 6. Tier 2: of those, k=6..10
        # enter before the horizon -> 5 (the old gate reported 6,
        # including the k=5 job that arrived during warmup).
        assert offered[0, 0] == 6
        assert offered[0, 1] == 5

    def test_blocked_uses_arrival_window(self):
        # Tier-2 service 2.0 with capacity 1 -> it serves one job while
        # the next two tier-2 entries get rejected. The job arriving at
        # t = 4.5 is blocked at t = 5.1; only the fixed gate excludes it.
        res = simulate(
            _tandem_cluster(d2=2.0, capacity2=1),
            workload_from_rates([1.0 / 0.9]),
            horizon=10.0,
            warmup_fraction=0.5,
            seed=0,
            arrival_processes=_deterministic_arrivals(),
        )
        # Blocked tier-2 entries with post-warmup arrivals: jobs
        # arriving at 5.4, 7.2, 8.1 (the old gate also counted the
        # 4.5-arrival blocked at 5.1, reporting 4).
        assert res.meta["n_blocked"][0, 1] == 3
        assert res.meta["n_offered"][0, 1] == 5

    def test_blocking_fraction_consistent_with_delay_window(self):
        # offered - blocked at tier 2 must equal the number of counted
        # jobs that actually entered tier 2 - all measured over the
        # same (job-arrival) population.
        res = simulate(
            _tandem_cluster(d2=2.0, capacity2=1),
            workload_from_rates([1.0 / 0.9]),
            horizon=10.0,
            warmup_fraction=0.5,
            seed=0,
            arrival_processes=_deterministic_arrivals(),
        )
        admitted = res.meta["n_offered"][0, 1] - res.meta["n_blocked"][0, 1]
        assert admitted == 2  # jobs arriving at 6.3 (served 6.9-8.9) and 9.0 (enters 9.6)

    def test_station_completions_equals_counted_visits(self):
        # With the redundant event-time guard gone, station completions
        # are exactly the counted station visits.
        res = simulate(
            _tandem_cluster(),
            workload_from_rates([1.0 / 0.9]),
            horizon=10.0,
            warmup_fraction=0.5,
            seed=0,
            arrival_processes=_deterministic_arrivals(),
        )
        assert res.meta["station_completions"][0, 0] == 5
        assert res.meta["station_completions"][0, 1] == 5

    def test_single_station_blocking_unchanged(self, basic_spec):
        # At the entry station the hop time *is* the arrival time, so
        # the fix must not change single-station loss measurements.
        tier = Tier("loss", (Exponential(1.0),), basic_spec, discipline="fcfs", capacity=1)
        cluster = ClusterModel([tier])
        wl = workload_from_rates([2.0])
        res = simulate(cluster, wl, horizon=2000.0, seed=4)
        offered = res.meta["n_offered"][0, 0]
        blocked = res.meta["n_blocked"][0, 0]
        assert offered > 0 and 0 < blocked < offered


# ----------------------------------------------------------------------
# Bugfix 3: NaN-robust across-replication percentiles.
# ----------------------------------------------------------------------
def _fake_result(samples_per_class: list[list[float]]) -> SimulationResult:
    k = len(samples_per_class)
    n = np.array([len(s) for s in samples_per_class], dtype=np.int64)
    return SimulationResult(
        class_names=tuple(f"c{i}" for i in range(k)),
        n_completed=n,
        delays=np.array([np.mean(s) if s else np.nan for s in samples_per_class]),
        delay_std=np.zeros(k),
        delay_ci=np.zeros(k),
        station_waits=np.zeros((k, 1)),
        station_sojourns=np.zeros((k, 1)),
        utilizations=np.zeros(1),
        average_power=0.0,
        energy_per_request=0.0,
        per_class_dynamic_energy=np.zeros(k),
        horizon=100.0,
        warmup=10.0,
        delay_samples=[np.asarray(s) for s in samples_per_class],
    )


def _wrap(runs: list[SimulationResult]) -> ReplicatedResult:
    k = len(runs[0].class_names)
    return ReplicatedResult(
        class_names=runs[0].class_names,
        n_replications=len(runs),
        delays=np.zeros(k),
        delays_ci=np.zeros(k),
        mean_delay=0.0,
        mean_delay_ci=0.0,
        utilizations=np.zeros(1),
        average_power=0.0,
        average_power_ci=0.0,
        energy_per_request=0.0,
        per_class_dynamic_energy=np.zeros(k),
        station_sojourns=np.zeros((k, 1)),
        station_waits=np.zeros((k, 1)),
        replications=runs,
    )


class TestNanRobustPercentiles:
    def test_zero_completion_replication_does_not_poison_mean(self):
        runs = [
            _fake_result([[1.0, 2.0, 3.0], [5.0, 6.0]]),
            _fake_result([[], [4.0, 8.0]]),  # class 0 never completed here
            _fake_result([[2.0, 4.0, 6.0], [6.0, 10.0]]),
        ]
        rep = _wrap(runs)
        means, cis, counts = rep.delay_percentiles(0.5, with_counts=True)
        assert np.isfinite(means[0])  # old code: NaN
        assert counts.tolist() == [2, 3]
        # Mean over the two finite class-0 replications: (2 + 4) / 2.
        assert means[0] == pytest.approx(3.0)
        assert np.isfinite(cis[0])  # CI from the 2 finite replications

    def test_all_nan_class_stays_nan(self):
        runs = [_fake_result([[], [1.0]]), _fake_result([[], [2.0]])]
        means, cis, counts = _wrap(runs).delay_percentiles(0.5, with_counts=True)
        assert np.isnan(means[0]) and np.isnan(cis[0]) and counts[0] == 0
        assert np.isfinite(means[1])

    def test_single_finite_replication_has_nan_ci(self):
        runs = [_fake_result([[1.0], [1.0]]), _fake_result([[], [2.0]])]
        means, cis, counts = _wrap(runs).delay_percentiles(0.9, with_counts=True)
        assert np.isfinite(means[0]) and np.isnan(cis[0]) and counts[0] == 1

    def test_default_return_stays_two_tuple(self):
        runs = [_fake_result([[1.0], [1.0]]), _fake_result([[2.0], [2.0]])]
        out = _wrap(runs).delay_percentiles(0.5)
        assert len(out) == 2

    def test_vectorized_path_bit_identical_to_per_class_loop(self):
        # The one-pass masked-sum implementation claims bit-identity
        # with the straightforward per-class compact-then-reduce loop.
        # Mixed effective counts (3, 2 and 0 finite replications) hit
        # every branch: the grouped t-quantiles, the single-replication
        # NaN CI and the all-NaN class.
        rng = np.random.default_rng(202)
        runs = [
            _fake_result(
                [
                    list(rng.exponential(2.0, size=5)),
                    list(rng.exponential(1.0, size=4)) if i != 1 else [],
                    [],
                ]
            )
            for i in range(3)
        ]
        rep = _wrap(runs)
        for p in (0.5, 0.9, 0.99):
            means, cis, counts = rep.delay_percentiles(p, with_counts=True)
            per_rep = np.array(
                [
                    [r.delay_percentile(k, p) for k in range(len(rep.class_names))]
                    for r in rep.replications
                ]
            )
            for k in range(per_rep.shape[1]):
                col = per_rep[:, k]
                finite = col[np.isfinite(col)]
                assert counts[k] == finite.size
                if finite.size == 0:
                    assert np.isnan(means[k]) and np.isnan(cis[k])
                    continue
                assert means[k] == finite.sum() / finite.size  # exact, not approx
                if finite.size < 2:
                    assert np.isnan(cis[k])
                else:
                    std = np.sqrt(
                        np.square(finite - means[k]).sum() / (finite.size - 1)
                    )
                    assert cis[k] == confidence_halfwidth(std, finite.size)


# ----------------------------------------------------------------------
# Tentpole: parallel determinism and the on-disk cache.
# ----------------------------------------------------------------------
class TestParallelDeterminism:
    def test_n_jobs_bit_identical(self, two_class_cluster, two_class_workload):
        serial = simulate_replications(
            two_class_cluster, two_class_workload, horizon=400.0, n_replications=4, seed=17
        )
        parallel = simulate_replications(
            two_class_cluster,
            two_class_workload,
            horizon=400.0,
            n_replications=4,
            seed=17,
            n_jobs=4,
        )
        assert serial.meta["backend"] == "serial"
        assert parallel.meta["backend"] == "process" and parallel.meta["n_jobs"] == 4
        for attr in (
            "delays",
            "delays_ci",
            "utilizations",
            "per_class_dynamic_energy",
            "station_sojourns",
            "station_waits",
        ):
            np.testing.assert_array_equal(
                getattr(serial, attr), getattr(parallel, attr), err_msg=attr
            )
        assert serial.mean_delay == parallel.mean_delay
        assert serial.average_power == parallel.average_power
        assert serial.energy_per_request == parallel.energy_per_request
        for a, b in zip(serial.replications, parallel.replications):
            np.testing.assert_array_equal(a.n_completed, b.n_completed)
            np.testing.assert_array_equal(a.delays, b.delays)

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(-1) >= 1
        with pytest.raises(ModelValidationError):
            resolve_n_jobs(-2)
        assert isinstance(get_backend(None), SerialBackend)
        assert isinstance(get_backend(2), ProcessPoolBackend)

    def test_unpicklable_payload_falls_back_to_serial(
        self, two_class_cluster, two_class_workload
    ):
        from repro.workload.arrivals import NonHomogeneousPoisson

        procs = [
            NonHomogeneousPoisson(lambda t: 1.0 + 0.1 * np.sin(t), rate_max=1.2),
            NonHomogeneousPoisson(lambda t: 1.0, rate_max=1.1),
        ]
        rep = simulate_replications(
            two_class_cluster,
            two_class_workload,
            horizon=200.0,
            n_replications=2,
            seed=1,
            arrival_processes=procs,
            n_jobs=2,
            allow_unstable=True,
        )
        assert rep.n_replications == 2
        assert "serial-fallback" in rep.meta["cache"]


class TestSimulationCache:
    def test_second_call_hits_cache_and_matches(
        self, tmp_path, two_class_cluster, two_class_workload
    ):
        kw = dict(horizon=300.0, n_replications=3, seed=5, cache_dir=str(tmp_path))
        cold = simulate_replications(two_class_cluster, two_class_workload, **kw)
        warm = simulate_replications(two_class_cluster, two_class_workload, **kw)
        assert cold.meta["cache_hits"] == 0 and cold.meta["cache_misses"] == 3
        assert warm.meta["cache_hits"] == 3 and warm.meta["cache_misses"] == 0
        assert warm.meta["backend"] == "cache"  # simulator never ran
        np.testing.assert_array_equal(cold.delays, warm.delays)
        np.testing.assert_array_equal(cold.delays_ci, warm.delays_ci)
        assert cold.mean_delay == warm.mean_delay
        assert cold.average_power == warm.average_power
        for a, b in zip(cold.replications, warm.replications):
            np.testing.assert_array_equal(a.n_completed, b.n_completed)
            np.testing.assert_array_equal(a.station_waits, b.station_waits)

    def test_partial_overlap_reuses_prefix(self, tmp_path, two_class_cluster, two_class_workload):
        simulate_replications(
            two_class_cluster,
            two_class_workload,
            horizon=300.0,
            n_replications=2,
            seed=5,
            cache_dir=str(tmp_path),
        )
        more = simulate_replications(
            two_class_cluster,
            two_class_workload,
            horizon=300.0,
            n_replications=4,
            seed=5,
            cache_dir=str(tmp_path),
        )
        # SeedSequence children 0 and 1 are shared between the calls.
        assert more.meta["cache_hits"] == 2 and more.meta["cache_misses"] == 2

    def test_corrupted_entry_recomputed(self, tmp_path, two_class_cluster, two_class_workload):
        kw = dict(horizon=300.0, n_replications=2, seed=5, cache_dir=str(tmp_path))
        cold = simulate_replications(two_class_cluster, two_class_workload, **kw)
        victims = sorted(tmp_path.glob("*/*.pkl"))
        assert len(victims) == 2
        victims[0].write_bytes(b"not a pickle at all")
        again = simulate_replications(two_class_cluster, two_class_workload, **kw)
        assert again.meta["cache_hits"] == 1 and again.meta["cache_misses"] == 1
        np.testing.assert_array_equal(cold.delays, again.delays)
        # The corrupted entry was rewritten: a third call is all hits.
        third = simulate_replications(two_class_cluster, two_class_workload, **kw)
        assert third.meta["cache_hits"] == 2

    def test_cache_discriminates_configurations(self, tmp_path, two_class_cluster, two_class_workload):
        kw = dict(n_replications=2, seed=5, cache_dir=str(tmp_path))
        simulate_replications(two_class_cluster, two_class_workload, horizon=300.0, **kw)
        other = simulate_replications(
            two_class_cluster, two_class_workload, horizon=301.0, **kw
        )
        assert other.meta["cache_hits"] == 0  # different horizon, different keys

    def test_fingerprint_stability_and_type_discrimination(self, basic_spec):
        wl = workload_from_rates([1.0])
        t1 = Tier("a", (Exponential(2.0),), basic_spec)
        t2 = Tier("a", (Exponential(2.0),), basic_spec)
        seed = np.random.SeedSequence(3).spawn(1)[0]
        fp1 = simulation_fingerprint(ClusterModel([t1]), wl, 100.0, 0.1, seed)
        fp2 = simulation_fingerprint(ClusterModel([t2]), wl, 100.0, 0.1, seed)
        assert fp1 == fp2  # structurally equal configs share a key
        fp3 = simulation_fingerprint(ClusterModel([t1]), wl, 100.0, 0.1, np.random.SeedSequence(4).spawn(1)[0])
        assert fp1 != fp3  # different seed, different key

    def test_unsupported_config_bypasses_cache(self, tmp_path, two_class_cluster, two_class_workload):
        from repro.workload.arrivals import NonHomogeneousPoisson

        with pytest.raises(CacheUnsupportedError):
            simulation_fingerprint(
                two_class_cluster,
                two_class_workload,
                100.0,
                0.1,
                np.random.SeedSequence(0),
                arrival_processes=[NonHomogeneousPoisson(lambda t: 1.0, rate_max=1.1)],
            )
        rep = simulate_replications(
            two_class_cluster,
            two_class_workload,
            horizon=100.0,
            n_replications=2,
            seed=0,
            arrival_processes=[
                NonHomogeneousPoisson(lambda t: 1.0, rate_max=1.1),
                NonHomogeneousPoisson(lambda t: 1.0, rate_max=1.1),
            ],
            cache_dir=str(tmp_path),
            allow_unstable=True,
        )
        assert rep.meta["cache"].startswith("unsupported")
        assert len(list(tmp_path.glob("*/*.pkl"))) == 0
        # Regression: a bypassed cache must not count phantom misses —
        # the replications were never looked up, so both totals are 0.
        assert rep.meta["cache_hits"] == 0
        assert rep.meta["cache_misses"] == 0

    def test_cache_api_len_and_clear(self, tmp_path, two_class_cluster, two_class_workload):
        cache = SimulationCache(tmp_path)
        simulate_replications(
            two_class_cluster,
            two_class_workload,
            horizon=200.0,
            n_replications=2,
            seed=5,
            cache_dir=cache,
        )
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestObservability:
    def test_meta_records_per_replication(self, two_class_cluster, two_class_workload):
        rep = simulate_replications(
            two_class_cluster, two_class_workload, horizon=200.0, n_replications=3, seed=2
        )
        recs = rep.meta["replications"]
        assert [r["index"] for r in recs] == [0, 1, 2]
        assert all(r["wall_time_s"] > 0 and r["n_events"] > 0 for r in recs)
        assert all(r["events_per_sec"] > 0 and not r["cached"] for r in recs)
        assert rep.meta["wall_time_s"] > 0

    def test_progress_callback_order_and_counts(self, two_class_cluster, two_class_workload):
        seen = []
        simulate_replications(
            two_class_cluster,
            two_class_workload,
            horizon=200.0,
            n_replications=3,
            seed=2,
            progress=lambda rec, done, total: seen.append((done, total, rec.cached)),
        )
        assert seen == [(1, 3, False), (2, 3, False), (3, 3, False)]

    def test_simulator_event_count_exposed(self, two_class_cluster, two_class_workload):
        res = simulate(two_class_cluster, two_class_workload, horizon=100.0, seed=0)
        assert res.meta["n_events"] > res.n_completed.sum()


class TestWarmupDiscardWarning:
    """The >50%-discard advisory: Python warning + structured event."""

    @staticmethod
    def _run(warmup_fraction):
        cluster = ClusterModel(
            [Tier("only", (Exponential(1.0),), SPEC, servers=1, discipline="fcfs")]
        )
        return simulate(
            cluster,
            workload_from_rates([0.5]),
            horizon=40.0,
            warmup_fraction=warmup_fraction,
            seed=11,
        )

    def test_high_warmup_warns(self):
        with pytest.warns(WarmupDiscardWarning, match="discarded"):
            res = self._run(0.9)
        assert res.meta["n_warmup_discarded"] > 0

    def test_low_warmup_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", WarmupDiscardWarning)
            res = self._run(0.1)
        assert res.meta["n_warmup_discarded"] >= 0

    def test_structured_event_emitted(self, telemetry):
        from repro.obs.sinks import InMemorySink

        sink = InMemorySink()
        telemetry.tracer.sinks.append(sink)
        with pytest.warns(WarmupDiscardWarning):
            self._run(0.9)
        assert "sim.warmup_discard" in [ev["name"] for ev in sink.events]
        (discard,) = [ev for ev in sink.events if ev["name"] == "sim.warmup_discard"]
        assert discard["fields"]["discard_fraction"] > 0.5
