"""SLA contract tests."""

import numpy as np
import pytest

from repro.core import SLA, ClassSLA
from repro.exceptions import ModelValidationError
from repro.workload import workload_from_rates


@pytest.fixture
def sla():
    return SLA(
        [
            ClassSLA("gold", 0.3, fee=1.0),
            ClassSLA("silver", 0.6, fee=0.4),
        ]
    )


@pytest.fixture
def workload():
    return workload_from_rates([2.0, 4.0], names=("gold", "silver"))


class TestClassSLA:
    def test_bad_bound(self):
        with pytest.raises(ModelValidationError):
            ClassSLA("x", 0.0)
        with pytest.raises(ModelValidationError):
            ClassSLA("x", -1.0)

    def test_bad_fee(self):
        with pytest.raises(ModelValidationError):
            ClassSLA("x", 1.0, fee=-0.1)


class TestSLA:
    def test_bounds_follow_workload_order(self, sla, workload):
        np.testing.assert_allclose(sla.delay_bounds(workload), [0.3, 0.6])

    def test_missing_class_raises(self, sla):
        wl = workload_from_rates([1.0], names=("platinum",))
        with pytest.raises(ModelValidationError):
            sla.delay_bounds(wl)

    def test_is_met(self, sla, workload):
        assert sla.is_met(np.array([0.25, 0.55]), workload)
        assert not sla.is_met(np.array([0.35, 0.55]), workload)
        assert sla.is_met(np.array([0.31, 0.55]), workload, tol=0.02)

    def test_violations(self, sla, workload):
        v = sla.violations(np.array([0.4, 0.5]), workload)
        np.testing.assert_allclose(v, [0.1, 0.0], atol=1e-12)

    def test_revenue_rate(self, sla, workload):
        assert sla.revenue_rate(workload) == pytest.approx(2.0 * 1.0 + 4.0 * 0.4)

    def test_getitem(self, sla):
        assert sla["gold"].max_mean_delay == 0.3
        with pytest.raises(ModelValidationError):
            sla["nope"]

    def test_duplicates_rejected(self):
        with pytest.raises(ModelValidationError):
            SLA([ClassSLA("a", 1.0), ClassSLA("a", 2.0)])

    def test_empty_rejected(self):
        with pytest.raises(ModelValidationError):
            SLA([])
