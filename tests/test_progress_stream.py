"""Live progress streaming: ProgressSink, `repro status`, bit-identity."""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.obs.progress import (
    PROGRESS_EVENT_NAMES,
    ProgressSink,
    progress_snapshot,
    read_progress,
)


class TestProgressSink:
    def test_filters_to_progress_events_only(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        sink = ProgressSink(path)
        sink.emit({"v": 1, "type": "span", "name": "sim.replication", "ts": 1.0})
        sink.emit({"v": 1, "type": "event", "name": "sim.queue_sample", "ts": 1.0,
                   "fields": {"n": 3}})
        sink.emit({"v": 1, "type": "event", "name": "sim.replication", "ts": 2.0,
                   "fields": {"index": 0, "n_done": 1, "n_total": 4}})
        sink.close()
        kinds = [r["kind"] for r in read_progress(path)]
        assert kinds == ["start", "sim.replication", "done"]

    def test_every_line_flushed_and_parseable_immediately(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        sink = ProgressSink(path)
        sink.emit({"v": 1, "type": "event", "name": "sweep.point", "ts": 1.0,
                   "fields": {"label": "f3", "index": 0, "n_total": 2}})
        # No close(): the in-flight file must already hold whole records.
        records = read_progress(path)
        assert [r["kind"] for r in records] == ["start", "sweep.point"]
        sink.close()

    def test_unserializable_record_dropped_not_raised(self, tmp_path):
        sink = ProgressSink(tmp_path / "p.jsonl")
        sink.emit({"v": 1, "type": "event", "name": "sim.replication", "ts": 1.0,
                   "fields": {"bad": object()}})
        sink.close()
        assert sink.n_dropped == 1
        assert [r["kind"] for r in read_progress(tmp_path / "p.jsonl")] == ["start", "done"]

    def test_close_idempotent(self, tmp_path):
        sink = ProgressSink(tmp_path / "p.jsonl")
        sink.close()
        sink.close()
        records = read_progress(tmp_path / "p.jsonl")
        assert [r["kind"] for r in records] == ["start", "done"]


class TestReadProgress:
    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text('{"kind":"start","ts":1.0}\n{"kind":"sim.repl')
        records = read_progress(path)
        assert len(records) == 1 and records[0]["kind"] == "start"

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text('{"kind":"start","ts":1.0}\nGARBAGE\n{"kind":"done","ts":2.0}\n')
        with pytest.raises(json.JSONDecodeError):
            read_progress(path)


class TestSnapshot:
    def test_replication_and_adaptive_summary(self):
        records = [
            {"kind": "start", "ts": 1.0},
            {"kind": "sim.replication", "ts": 2.0, "index": 0, "n_done": 1,
             "n_total": 8, "cached": True, "events_per_sec": 0.0},
            {"kind": "sim.replication", "ts": 3.0, "index": 1, "n_done": 2,
             "n_total": 8, "cached": False, "events_per_sec": 1000.0},
            {"kind": "sim.adaptive.round", "ts": 4.0, "round": 1, "n_available": 4,
             "stop_at": None, "rel_ci.mean_delay": 0.12},
            {"kind": "sweep.point", "ts": 5.0, "label": "f3", "index": 0,
             "n_total": 5, "failed": True},
            {"kind": "sim.epoch", "ts": 6.0, "epoch": 0, "t": 0.5},
        ]
        snap = progress_snapshot(records)
        assert snap["started"] and not snap["finished"]
        assert snap["last_ts"] == 6.0
        assert snap["replications"] == {
            "n_done": 2, "n_total": 8, "cache_hits": 1, "last_events_per_sec": 1000.0,
        }
        assert snap["adaptive"]["rel_ci"] == {"mean_delay": 0.12}
        assert snap["sweeps"]["f3"] == {"n_done": 1, "n_total": 5, "n_failed": 1}
        assert snap["epochs"] == {"n_fired": 1, "last_t": 0.5}

    def test_empty_stream(self):
        snap = progress_snapshot([])
        assert snap == {"started": False, "finished": False,
                        "last_ts": None, "n_records": 0}


class TestLiveSession:
    def test_session_writes_progress_stream(self, tmp_path):
        out = tmp_path / "run"
        with obs.telemetry_session(out, command=["test"]):
            obs.event("sim.replication", index=0, n_done=1, n_total=1,
                      cached=False, events_per_sec=1.0, n_events=10, wall_s=0.1)
        records = read_progress(out / obs.PROGRESS_FILENAME)
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "start" and kinds[-1] == "done"
        assert "sim.replication" in kinds
        assert set(kinds) - {"start", "done"} <= PROGRESS_EVENT_NAMES

    def test_status_reads_in_flight_run(self, tmp_path, capsys):
        """`repro status` sees live progress while the engine is still
        replicating — exercised from inside the progress callback."""
        from repro.experiments.common import small_cluster, small_workload
        from repro.simulation import simulate_replications

        out = tmp_path / "run"
        seen: list[dict] = []

        def spy(rec, done, total):
            snap = progress_snapshot(read_progress(out / obs.PROGRESS_FILENAME))
            seen.append(snap)
            assert main(["status", str(out)]) == 0

        with obs.telemetry_session(out, command=["test"]):
            simulate_replications(
                small_cluster(), small_workload(), horizon=30.0,
                n_replications=3, seed=5, progress=spy,
            )
        assert len(seen) == 3
        mid = seen[0]
        assert mid["started"] and not mid["finished"]
        assert mid["replications"]["n_done"] == 1
        assert mid["replications"]["n_total"] == 3
        text = capsys.readouterr().out
        assert "running" in text and "replications" in text
        assert main(["status", str(out)]) == 0
        assert "finished" in capsys.readouterr().out

    def test_status_missing_stream_errors(self, tmp_path, capsys):
        assert main(["status", str(tmp_path)]) == 1
        assert "error" in capsys.readouterr().out

    def test_bit_identity_with_and_without_telemetry(self, tmp_path):
        """Attaching the telemetry + progress stream must not change a
        single simulated number (the observe-don't-perturb contract)."""
        from repro.experiments.common import small_cluster, small_workload
        from repro.simulation import simulate_replications

        kwargs = dict(horizon=40.0, n_replications=3, seed=11)
        bare = simulate_replications(small_cluster(), small_workload(), **kwargs)
        with obs.telemetry_session(tmp_path / "run", command=["test"]):
            observed = simulate_replications(small_cluster(), small_workload(), **kwargs)
        assert bare.mean_delay == observed.mean_delay
        assert bare.average_power == observed.average_power
        np.testing.assert_array_equal(bare.delays, observed.delays)
        np.testing.assert_array_equal(bare.delays_ci, observed.delays_ci)
