"""Every example script must run to completion.

Examples are documentation that executes; a broken example is a
documentation bug. Each is run in a subprocess with the repo's
interpreter; the slow, simulation-heavy ones are marked accordingly.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST = ["quickstart.py", "capacity_planning.py", "energy_budget.py", "tail_guarantees.py"]
SLOW = ["priority_sim_vs_model.py", "dynamic_day.py"]


def _run(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("name", FAST)
def test_fast_example_runs(name):
    proc = _run(name)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), f"{name} produced no output"


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW)
def test_slow_example_runs(name):
    proc = _run(name)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), f"{name} produced no output"


def test_all_examples_are_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST) | set(SLOW), (
        "examples/ changed; update FAST/SLOW in this test"
    )
