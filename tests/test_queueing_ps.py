"""Processor-sharing station tests (analytic + simulated)."""

import numpy as np
import pytest

from repro.cluster import ClusterModel, Tier
from repro.distributions import Deterministic, Exponential, fit_two_moments
from repro.exceptions import ModelValidationError, UnstableSystemError
from repro.queueing import MMc, ps_sojourn_times
from repro.queueing.networks import StationSpec, station_delays
from repro.simulation import simulate
from repro.workload import workload_from_rates


class TestPSAnalytic:
    def test_single_server_formula(self):
        # E[T] = E[S] / (1 - rho), insensitive.
        t = ps_sojourn_times([0.6], (Exponential(1.0),), c=1)
        assert t[0] == pytest.approx(1.0 / 0.4)

    def test_insensitivity(self):
        for scv in (0.0, 1.0, 4.0):
            t = ps_sojourn_times([0.6], (fit_two_moments(1.0, scv),), c=1)
            assert t[0] == pytest.approx(2.5)

    def test_equal_stretch_across_classes(self):
        t = ps_sojourn_times([0.3, 0.2], (Exponential(2.0), Exponential(1.0)), c=1)
        assert t[0] / 0.5 == pytest.approx(t[1] / 1.0)

    def test_multi_server_exponential_matches_mmc_mean(self):
        t = ps_sojourn_times([2.2], (Exponential(1.0),), c=3)
        assert t[0] == pytest.approx(MMc(2.2, 1.0, c=3).mean_sojourn, rel=1e-12)

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            ps_sojourn_times([1.2], (Exponential(1.0),), c=1)

    def test_validation(self):
        with pytest.raises(ModelValidationError):
            ps_sojourn_times([0.5, 0.5], (Exponential(1.0),), c=1)
        with pytest.raises(ModelValidationError):
            ps_sojourn_times([0.5], (Exponential(1.0),), c=0)
        with pytest.raises(ModelValidationError):
            ps_sojourn_times([-0.5], (Exponential(1.0),), c=1)

    def test_station_dispatch(self):
        spec = StationSpec(services=(Exponential(1.0), Exponential(2.0)), discipline="ps")
        d = station_delays(spec, [0.3, 0.4])
        expected = ps_sojourn_times([0.3, 0.4], spec.services, 1)
        np.testing.assert_allclose(d.mean_sojourns, expected, rtol=1e-12)


class TestPSSimulated:
    @pytest.mark.parametrize("scv,seed", [(0.0, 21), (1.0, 22), (4.0, 23)])
    def test_insensitivity_holds_in_simulation(self, basic_spec, scv, seed):
        d = fit_two_moments(1.0, scv)
        tier = Tier("t", (d,), basic_spec, servers=1, speed=1.0, discipline="ps")
        res = simulate(ClusterModel([tier]), workload_from_rates([0.6]), horizon=25000.0, seed=seed)
        assert res.delays[0] == pytest.approx(2.5, rel=0.07)

    def test_two_class_stretch(self, basic_spec):
        tier = Tier(
            "t", (Exponential(2.0), Exponential(1.0)), basic_spec, servers=1, speed=1.0,
            discipline="ps",
        )
        wl = workload_from_rates([0.3, 0.2])
        res = simulate(ClusterModel([tier]), wl, horizon=30000.0, seed=24)
        analytic = ps_sojourn_times([0.3, 0.2], tier.service_times(), 1)
        np.testing.assert_allclose(res.delays, analytic, rtol=0.06)

    def test_multi_server_ps(self, basic_spec):
        tier = Tier("t", (Exponential(1.0),), basic_spec, servers=3, speed=1.0, discipline="ps")
        res = simulate(ClusterModel([tier]), workload_from_rates([2.2]), horizon=15000.0, seed=25)
        analytic = ps_sojourn_times([2.2], (Exponential(1.0),), 3)[0]
        assert res.delays[0] == pytest.approx(analytic, rel=0.06)

    def test_utilization_and_power_accounted(self, basic_spec):
        tier = Tier("t", (Deterministic(1.0),), basic_spec, servers=1, speed=1.0, discipline="ps")
        cl = ClusterModel([tier])
        wl = workload_from_rates([0.5])
        res = simulate(cl, wl, horizon=20000.0, seed=26)
        assert res.utilizations[0] == pytest.approx(0.5, abs=0.02)
        from repro.core.energy import average_power

        assert res.average_power == pytest.approx(average_power(cl, wl), rel=0.03)

    def test_ps_in_tandem_with_priority(self, basic_spec):
        tiers = [
            Tier("front", (Exponential(4.0), Exponential(4.0)), basic_spec, discipline="ps"),
            Tier("back", (Exponential(2.0), Exponential(2.0)), basic_spec, discipline="priority_np"),
        ]
        cl = ClusterModel(tiers)
        wl = workload_from_rates([0.4, 0.6])
        res = simulate(cl, wl, horizon=20000.0, seed=27)
        from repro.core.delay import end_to_end_delays

        analytic = end_to_end_delays(cl, wl)
        np.testing.assert_allclose(res.delays, analytic, rtol=0.07)
