"""The simulator against exact queueing theory.

These are the repo's most load-bearing tests: every analytic formula
and the simulator are independent implementations of the same model,
so agreement here validates both sides at once (the paper's own
methodology).
"""

import numpy as np
import pytest

from repro.cluster import ClusterModel, Tier
from repro.distributions import Deterministic, Exponential, fit_two_moments
from repro.exceptions import ModelValidationError
from repro.queueing import MG1, MM1, MMc, ClassLoad
from repro.queueing.priority import (
    nonpreemptive_priority_mg1,
    preemptive_resume_priority_mg1,
)
from repro.simulation import simulate, simulate_replications
from repro.workload import CustomerClass, Workload, workload_from_rates

HORIZON = 40_000.0


def one_tier(basic_spec, demands, servers=1, discipline="fcfs", speed=1.0):
    return ClusterModel(
        [Tier("t", demands, basic_spec, servers=servers, speed=speed, discipline=discipline)]
    )


class TestAgainstExactFormulas:
    def test_mm1_sojourn_and_utilization(self, basic_spec):
        cluster = one_tier(basic_spec, (Exponential(1.0),))
        wl = Workload([CustomerClass("a", 0.7)])
        res = simulate(cluster, wl, horizon=HORIZON, seed=1)
        exact = MM1(0.7, 1.0)
        assert res.delays[0] == pytest.approx(exact.mean_sojourn, rel=0.04)
        assert res.utilizations[0] == pytest.approx(0.7, abs=0.015)

    def test_md1_wait_is_half_mm1(self, basic_spec):
        cluster = one_tier(basic_spec, (Deterministic(1.0),))
        wl = Workload([CustomerClass("a", 0.6)])
        res = simulate(cluster, wl, horizon=HORIZON, seed=2)
        exact = MG1(0.6, Deterministic(1.0))
        assert res.delays[0] == pytest.approx(exact.mean_sojourn, rel=0.04)

    def test_mmc_sojourn(self, basic_spec):
        cluster = one_tier(basic_spec, (Exponential(1.0),), servers=3)
        wl = Workload([CustomerClass("a", 2.2)])
        res = simulate(cluster, wl, horizon=HORIZON / 2, seed=3)
        exact = MMc(2.2, 1.0, c=3)
        assert res.delays[0] == pytest.approx(exact.mean_sojourn, rel=0.04)

    def test_mg1_high_variability(self, basic_spec):
        svc = fit_two_moments(1.0, 4.0)
        cluster = one_tier(basic_spec, (svc,))
        wl = Workload([CustomerClass("a", 0.5)])
        res = simulate(cluster, wl, horizon=2 * HORIZON, seed=4)
        exact = MG1(0.5, svc)
        assert res.delays[0] == pytest.approx(exact.mean_sojourn, rel=0.08)

    def test_np_priority_two_classes(self, basic_spec, two_class_cluster, two_class_workload):
        res = simulate(two_class_cluster, two_class_workload, horizon=HORIZON, seed=5)
        pw = nonpreemptive_priority_mg1(
            [ClassLoad(0.3, Exponential(1.0)), ClassLoad(0.4, Exponential(1.0))]
        )
        np.testing.assert_allclose(res.delays, pw.mean_sojourns, rtol=0.05)

    def test_pr_priority_two_classes(self, basic_spec):
        cluster = one_tier(
            basic_spec, (Exponential(1.0), Exponential(1.0)), discipline="priority_pr"
        )
        wl = workload_from_rates([0.3, 0.4], names=("hi", "lo"))
        res = simulate(cluster, wl, horizon=HORIZON, seed=6)
        pw = preemptive_resume_priority_mg1(
            [ClassLoad(0.3, Exponential(1.0)), ClassLoad(0.4, Exponential(1.0))]
        )
        np.testing.assert_allclose(res.delays, pw.mean_sojourns, rtol=0.06)

    def test_tandem_two_exponential_fcfs_tiers(self, basic_spec):
        # Burke: tandem of M/M/1s decomposes exactly.
        cluster = ClusterModel(
            [
                Tier("a", (Exponential(1.0),), basic_spec, discipline="fcfs"),
                Tier("b", (Exponential(2.0),), basic_spec, discipline="fcfs"),
            ]
        )
        wl = Workload([CustomerClass("x", 0.6)])
        res = simulate(cluster, wl, horizon=HORIZON, seed=7)
        expected = MM1(0.6, 1.0).mean_sojourn + MM1(0.6, 2.0).mean_sojourn
        assert res.delays[0] == pytest.approx(expected, rel=0.05)

    def test_speed_scaling_halves_service(self, basic_spec):
        # Speed 0.5 doubles service times: equivalent to mu=0.5.
        cluster = one_tier(basic_spec, (Exponential(1.0),), speed=0.5)
        wl = Workload([CustomerClass("a", 0.3)])
        res = simulate(cluster, wl, horizon=HORIZON, seed=8)
        exact = MM1(0.3, 0.5)
        assert res.delays[0] == pytest.approx(exact.mean_sojourn, rel=0.05)


class TestLittlesLaw:
    def test_little_l_from_station_sojourn(self, basic_spec):
        # L = lambda * W measured through independent channels:
        # utilization (=L for the in-service part at c=1, rho) equals
        # lam * E[S].
        cluster = one_tier(basic_spec, (Exponential(2.0),))
        wl = Workload([CustomerClass("a", 1.0)])
        res = simulate(cluster, wl, horizon=HORIZON, seed=9)
        assert res.utilizations[0] == pytest.approx(1.0 * 0.5, abs=0.01)


class TestEnergyAccounting:
    def test_average_power_matches_analytic(self, basic_spec, three_tier_cluster, three_class_workload):
        from repro.core.energy import average_power

        res = simulate(three_tier_cluster, three_class_workload, horizon=3000.0, seed=10)
        analytic = average_power(three_tier_cluster, three_class_workload)
        assert res.average_power == pytest.approx(analytic, rel=0.02)

    def test_per_class_dynamic_energy(self, basic_spec, three_tier_cluster, three_class_workload):
        from repro.core.energy import per_class_energy_per_request

        res = simulate(three_tier_cluster, three_class_workload, horizon=3000.0, seed=11)
        analytic = per_class_energy_per_request(
            three_tier_cluster, three_class_workload, idle="none"
        )
        np.testing.assert_allclose(res.per_class_dynamic_energy, analytic, rtol=0.05)

    def test_energy_per_request_consistency(self, basic_spec, two_class_cluster, two_class_workload):
        res = simulate(two_class_cluster, two_class_workload, horizon=HORIZON / 4, seed=12)
        # energy/request * throughput == average power, by construction
        thr = res.n_completed.sum() / (res.horizon - res.warmup)
        assert res.energy_per_request * thr == pytest.approx(res.average_power, rel=1e-9)


class TestSimulatorGuards:
    def test_unstable_rejected(self, basic_spec):
        cluster = one_tier(basic_spec, (Exponential(1.0),))
        wl = Workload([CustomerClass("a", 1.5)])
        with pytest.raises(ModelValidationError):
            simulate(cluster, wl, horizon=100.0)

    def test_allow_unstable_flag(self, basic_spec):
        cluster = one_tier(basic_spec, (Exponential(1.0),))
        wl = Workload([CustomerClass("a", 1.5)])
        res = simulate(cluster, wl, horizon=200.0, allow_unstable=True)
        assert res.utilizations[0] > 0.9

    def test_class_count_mismatch(self, basic_spec, two_class_cluster):
        wl = Workload([CustomerClass("a", 0.5)])
        with pytest.raises(ModelValidationError):
            simulate(two_class_cluster, wl, horizon=100.0)

    def test_bad_horizon(self, two_class_cluster, two_class_workload):
        with pytest.raises(ModelValidationError):
            simulate(two_class_cluster, two_class_workload, horizon=0.0)

    def test_bad_warmup(self, two_class_cluster, two_class_workload):
        with pytest.raises(ModelValidationError):
            simulate(two_class_cluster, two_class_workload, horizon=10.0, warmup_fraction=0.95)

    def test_noninteger_visit_ratios_rejected(self, basic_spec):
        t = Tier("t", (Exponential(1.0),), basic_spec)
        cluster = ClusterModel([t], visit_ratios=np.array([[1.5]]))
        wl = Workload([CustomerClass("a", 0.3)])
        with pytest.raises(ModelValidationError):
            simulate(cluster, wl, horizon=100.0)

    def test_integer_visit_ratios_route(self, basic_spec):
        t = Tier("t", (Exponential(4.0),), basic_spec)
        cluster = ClusterModel([t], visit_ratios=np.array([[2.0]]))
        wl = Workload([CustomerClass("a", 0.3)])
        res = simulate(cluster, wl, horizon=5000.0, seed=13)
        # Each job visits twice: the measured visit count is ~2x jobs.
        visits = res.meta["station_completions"].sum()
        assert visits == pytest.approx(2 * res.n_completed.sum(), rel=0.02)


class TestReplications:
    def test_ci_positive_and_reasonable(self, two_class_cluster, two_class_workload):
        rep = simulate_replications(
            two_class_cluster, two_class_workload, horizon=3000.0, n_replications=4, seed=3
        )
        assert np.all(rep.delays_ci > 0)
        assert rep.n_replications == 4
        assert len(rep.replications) == 4

    def test_determinism(self, two_class_cluster, two_class_workload):
        a = simulate_replications(
            two_class_cluster, two_class_workload, horizon=1000.0, n_replications=2, seed=5
        )
        b = simulate_replications(
            two_class_cluster, two_class_workload, horizon=1000.0, n_replications=2, seed=5
        )
        np.testing.assert_array_equal(a.delays, b.delays)

    def test_different_seeds_differ(self, two_class_cluster, two_class_workload):
        a = simulate_replications(two_class_cluster, two_class_workload, 1000.0, 1, seed=5)
        b = simulate_replications(two_class_cluster, two_class_workload, 1000.0, 1, seed=6)
        assert not np.array_equal(a.delays, b.delays)

    def test_single_replication_nan_ci(self, two_class_cluster, two_class_workload):
        rep = simulate_replications(two_class_cluster, two_class_workload, 1000.0, 1, seed=5)
        assert np.all(np.isnan(rep.delays_ci))

    def test_bad_count(self, two_class_cluster, two_class_workload):
        with pytest.raises(ModelValidationError):
            simulate_replications(two_class_cluster, two_class_workload, 1000.0, 0)
