"""Tracer spans, point events, JSON-safety and the sink contract."""

import json

import numpy as np

from repro.obs.sinks import InMemorySink, JsonlSink
from repro.obs.trace import EVENT_SCHEMA_VERSION, Tracer, json_safe


def _tracer_with_sink():
    tracer = Tracer(enabled=True)
    sink = InMemorySink()
    tracer.sinks.append(sink)
    return tracer, sink


class TestSpans:
    def test_span_measures_and_emits(self):
        tracer, sink = _tracer_with_sink()
        with tracer.span("work", kind="demo") as sp:
            sum(range(1000))
        assert sp.wall_s >= 0.0 and sp.cpu_s >= 0.0
        (ev,) = sink.events
        assert ev["type"] == "span" and ev["name"] == "work"
        assert ev["v"] == EVENT_SCHEMA_VERSION
        assert ev["tags"] == {"kind": "demo"}
        assert ev["depth"] == 0

    def test_nesting_builds_tree_and_depths(self):
        tracer, sink = _tracer_with_sink()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["inner", "inner2"]
        depths = {e["name"]: e["depth"] for e in sink.events}
        assert depths == {"outer": 0, "inner": 1, "inner2": 1}

    def test_as_dict_nested(self):
        tracer, _ = _tracer_with_sink()
        with tracer.span("outer", a=1):
            with tracer.span("inner"):
                pass
        d = tracer.roots[0].as_dict()
        assert d["name"] == "outer" and d["tags"] == {"a": 1}
        assert d["children"][0]["name"] == "inner"
        assert json.dumps(d)  # manifest-embeddable

    def test_disabled_span_still_measures_but_records_nothing(self):
        tracer = Tracer(enabled=False)
        sink = InMemorySink()
        tracer.sinks.append(sink)
        with tracer.span("quiet") as sp:
            sum(range(1000))
        assert sp.wall_s >= 0.0
        assert tracer.roots == [] and sink.events == []

    def test_exception_still_closes_span(self):
        tracer, sink = _tracer_with_sink()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert [e["name"] for e in sink.events] == ["boom"]
        assert tracer._stack == []


class TestEvents:
    def test_event_schema(self):
        tracer, sink = _tracer_with_sink()
        tracer.event("tick", i=3, rate=1.5)
        (ev,) = sink.events
        assert ev["type"] == "event" and ev["name"] == "tick"
        assert ev["fields"] == {"i": 3, "rate": 1.5}
        assert ev["v"] == EVENT_SCHEMA_VERSION and ev["ts"] > 0

    def test_disabled_event_is_noop(self):
        tracer = Tracer(enabled=False)
        sink = InMemorySink()
        tracer.sinks.append(sink)
        tracer.event("tick", i=1)
        assert sink.events == []


class TestJsonSafe:
    def test_numpy_scalars_and_arrays(self):
        assert json_safe(np.int64(3)) == 3
        assert json_safe(np.float64(1.5)) == 1.5
        assert json_safe(np.bool_(True)) is True
        assert json_safe(np.array([1, 2])) == [1, 2]

    def test_containers_recursed(self):
        out = json_safe({"a": (np.int32(1), [np.float32(2.0)])})
        assert out == {"a": [1, [2.0]]}
        json.dumps(out)

    def test_unknown_objects_become_strings(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert json_safe(Weird()) == "<weird>"

    def test_nan_and_inf_floats_preserved(self):
        """Non-finite floats pass through as floats (Python's json
        round-trips them as NaN/Infinity literals byte-identically)."""
        import math

        out = json_safe({"nan": float("nan"), "inf": float("inf"), "ninf": float("-inf")})
        assert math.isnan(out["nan"])
        assert out["inf"] == float("inf") and out["ninf"] == float("-inf")
        text = json.dumps(out, sort_keys=True, separators=(",", ":"))
        assert json.dumps(json.loads(text), sort_keys=True, separators=(",", ":")) == text

    def test_nan_inside_numpy_array(self):
        import math

        out = json_safe(np.array([1.0, np.nan, np.inf]))
        assert out[0] == 1.0 and math.isnan(out[1]) and out[2] == float("inf")
        assert all(isinstance(v, float) for v in out)

    def test_structured_array_recursed(self):
        """Structured arrays list out as tuples whose elements must be
        coerced element-wise, not repr'd wholesale."""
        arr = np.array([(1, 2.5), (3, 4.5)], dtype=[("n", "i8"), ("x", "f8")])
        out = json_safe(arr)
        assert out == [[1, 2.5], [3, 4.5]]
        assert isinstance(out[0][0], int) and isinstance(out[0][1], float)
        json.dumps(out)

    def test_object_and_datetime_arrays_fall_back_to_strings(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        out = json_safe(np.array([Weird(), Weird()], dtype=object))
        assert out == ["<weird>", "<weird>"]
        out = json_safe(np.array(["2026-01-01"], dtype="datetime64[D]"))
        assert out == [str(out[0])] and json.dumps(out)

    def test_nested_mixed_containers_never_raise(self):
        arr = np.array([(0, np.nan)], dtype=[("a", "i4"), ("b", "f4")])
        value = {
            "deep": [arr, {"k": np.array([[1, 2], [3, 4]])}, (set([1]),)],
            7: np.float32(2.0),
        }
        out = json_safe(value)
        assert out["7"] == 2.0  # non-string keys coerced
        assert out["deep"][1]["k"] == [[1, 2], [3, 4]]
        json.dumps(out)


class TestJsonlSink:
    def test_round_trip_lossless(self, tmp_path):
        """Every emitted event parses back and re-serializes to the
        identical line (the schema round-trip contract)."""
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(enabled=True)
        tracer.sinks.append(sink)
        tracer.event("a", x=1, y=[1.5, 2.5], z="s")
        with tracer.span("b", tag=True):
            pass
        sink.finalize()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            parsed = json.loads(line)
            assert json.dumps(parsed, sort_keys=True, separators=(",", ":")) == line
            assert parsed["v"] == EVENT_SCHEMA_VERSION
            assert parsed["type"] in ("span", "event")

    def test_atomic_finalize(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit({"v": 1, "type": "event", "name": "x", "ts": 0.0, "fields": {}})
        assert not path.exists()  # still on the .tmp side
        final = sink.finalize()
        assert final == path and path.exists()
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_finalize_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "e.jsonl")
        sink.emit({"a": 1})
        sink.finalize()
        sink.finalize()  # second call is a no-op
        assert sink.n_events == 1

    def test_unserializable_event_dropped_not_raised(self, tmp_path):
        sink = JsonlSink(tmp_path / "e.jsonl")
        sink.emit({"bad": object()})
        sink.emit({"good": 1})
        sink.finalize()
        assert sink.n_dropped == 1 and sink.n_events == 1
