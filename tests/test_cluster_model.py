"""Tier and ClusterModel configuration tests."""

import numpy as np
import pytest

from repro.cluster import ClusterModel, Tier, uniform_speeds, proportional_speeds, utilization_capped_speeds
from repro.distributions import Exponential
from repro.exceptions import ModelValidationError


class TestTier:
    def test_service_times_scale_with_speed(self, basic_spec):
        t = Tier("t", (Exponential.from_mean(0.5),), basic_spec, speed=0.5)
        assert t.service_times()[0].mean == pytest.approx(1.0)

    def test_with_speed_validates_range(self, basic_spec):
        t = Tier("t", (Exponential(1.0),), basic_spec)
        with pytest.raises(ModelValidationError):
            t.with_speed(0.1)  # below min_speed 0.4
        assert t.with_speed(0.6).speed == 0.6

    def test_with_servers(self, basic_spec):
        t = Tier("t", (Exponential(1.0),), basic_spec, servers=2)
        assert t.with_servers(5).servers == 5
        with pytest.raises(ModelValidationError):
            t.with_servers(0)

    def test_work_rate(self, basic_spec):
        t = Tier("t", (Exponential.from_mean(0.5), Exponential.from_mean(0.25)), basic_spec)
        r = t.work_rate(np.array([2.0, 4.0]), np.array([1.0, 1.0]))
        assert r == pytest.approx(2.0 * 0.5 + 4.0 * 0.25)

    def test_cost(self, basic_spec):
        t = Tier("t", (Exponential(1.0),), basic_spec, servers=4)
        assert t.cost() == pytest.approx(4 * basic_spec.cost)

    def test_invalid_discipline(self, basic_spec):
        with pytest.raises(ModelValidationError):
            Tier("t", (Exponential(1.0),), basic_spec, discipline="random")

    def test_empty_demands(self, basic_spec):
        with pytest.raises(ModelValidationError):
            Tier("t", (), basic_spec)


class TestClusterModel:
    def test_speeds_and_counts_views(self, three_tier_cluster):
        np.testing.assert_allclose(three_tier_cluster.speeds, 1.0)
        np.testing.assert_array_equal(three_tier_cluster.server_counts, [2, 4, 3])

    def test_with_speeds_returns_copy(self, three_tier_cluster):
        new = three_tier_cluster.with_speeds([0.8, 0.9, 0.7])
        assert new is not three_tier_cluster
        np.testing.assert_allclose(three_tier_cluster.speeds, 1.0)
        np.testing.assert_allclose(new.speeds, [0.8, 0.9, 0.7])

    def test_with_servers_returns_copy(self, three_tier_cluster):
        new = three_tier_cluster.with_servers([3, 5, 4])
        np.testing.assert_array_equal(new.server_counts, [3, 5, 4])
        np.testing.assert_array_equal(three_tier_cluster.server_counts, [2, 4, 3])

    def test_wrong_length_rejected(self, three_tier_cluster):
        with pytest.raises(ModelValidationError):
            three_tier_cluster.with_speeds([1.0, 1.0])
        with pytest.raises(ModelValidationError):
            three_tier_cluster.with_servers([1])

    def test_utilizations(self, three_tier_cluster, three_class_workload):
        rho = three_tier_cluster.utilizations(three_class_workload.arrival_rates)
        # web: (4*.02+8*.025+12*.03)/2 = 0.32
        assert rho[0] == pytest.approx(0.32)
        assert three_tier_cluster.is_stable(three_class_workload.arrival_rates)

    def test_average_power_formula(self, three_tier_cluster, three_class_workload):
        lam = three_class_workload.arrival_rates
        p = three_tier_cluster.average_power(lam)
        manual = 0.0
        r = three_tier_cluster.work_rates(lam)
        for tier, ri in zip(three_tier_cluster.tiers, r):
            pm = tier.spec.power
            manual += tier.servers * pm.idle + ri * pm.kappa * tier.speed ** (pm.alpha - 1)
        assert p == pytest.approx(manual)

    def test_power_increases_with_speed(self, three_tier_cluster, three_class_workload):
        lam = three_class_workload.arrival_rates
        p_slow = three_tier_cluster.with_speeds([0.5] * 3).average_power(lam)
        p_fast = three_tier_cluster.average_power(lam)
        assert p_slow < p_fast

    def test_total_cost(self, three_tier_cluster, basic_spec):
        assert three_tier_cluster.total_cost() == pytest.approx((2 + 4 + 3) * basic_spec.cost)

    def test_duplicate_tier_names_rejected(self, basic_spec):
        t = Tier("dup", (Exponential(1.0),), basic_spec)
        with pytest.raises(ModelValidationError):
            ClusterModel([t, t])

    def test_mixed_class_counts_rejected(self, basic_spec):
        t1 = Tier("a", (Exponential(1.0),), basic_spec)
        t2 = Tier("b", (Exponential(1.0), Exponential(1.0)), basic_spec)
        with pytest.raises(ModelValidationError):
            ClusterModel([t1, t2])


class TestSpeedScalingPolicies:
    def test_uniform_speeds_clamped(self, three_tier_cluster):
        s = uniform_speeds(three_tier_cluster, 5.0)
        np.testing.assert_allclose(s, 1.0)
        s = uniform_speeds(three_tier_cluster, 0.1)
        np.testing.assert_allclose(s, 0.4)

    def test_proportional_speeds_target_headroom(self, three_tier_cluster, three_class_workload):
        s = proportional_speeds(three_tier_cluster, three_class_workload.arrival_rates, headroom=1.5)
        rho = three_tier_cluster.with_speeds(s).utilizations(three_class_workload.arrival_rates)
        # Where not clamped, utilization should be 1/1.5.
        unclamped = (s > 0.4 + 1e-9) & (s < 1.0 - 1e-9)
        np.testing.assert_allclose(rho[unclamped], 1.0 / 1.5, rtol=1e-9)

    def test_proportional_requires_headroom_above_one(self, three_tier_cluster, three_class_workload):
        with pytest.raises(ModelValidationError):
            proportional_speeds(three_tier_cluster, three_class_workload.arrival_rates, headroom=1.0)

    def test_utilization_capped_speeds(self, three_tier_cluster, three_class_workload):
        s = utilization_capped_speeds(
            three_tier_cluster, three_class_workload.arrival_rates, max_utilization=0.8
        )
        rho = three_tier_cluster.with_speeds(s).utilizations(three_class_workload.arrival_rates)
        assert np.all(rho <= 0.8 + 1e-9)

    def test_utilization_cap_infeasible_raises(self, three_tier_cluster, three_class_workload):
        heavy = three_class_workload.scaled(4.0)
        with pytest.raises(ModelValidationError):
            utilization_capped_speeds(three_tier_cluster, heavy.arrival_rates, max_utilization=0.5)
