"""Public-API integrity gates.

Every subpackage's ``__all__`` must resolve, every public item must
carry a docstring, and the top-level convenience surface must stay
importable — the contract the README and docs/API.md describe.
"""

import importlib
import inspect

import pytest

SUBPACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.cluster",
    "repro.core",
    "repro.distributions",
    "repro.experiments",
    "repro.optimize",
    "repro.queueing",
    "repro.simulation",
    "repro.workload",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__") or name == "repro.experiments"
    for item in getattr(module, "__all__", []):
        assert hasattr(module, item), f"{name}.__all__ lists missing {item!r}"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_public_items_have_docstrings(name):
    module = importlib.import_module(name)
    missing = []
    for item in getattr(module, "__all__", []):
        obj = getattr(module, item)
        if callable(obj) or inspect.isclass(obj):
            if not (inspect.getdoc(obj) or "").strip():
                missing.append(item)
    assert not missing, f"{name}: public items without docstrings: {missing}"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_module_docstrings_present(name):
    module = importlib.import_module(name)
    assert (module.__doc__ or "").strip(), f"{name} lacks a module docstring"


def test_public_classes_have_documented_methods():
    # Spot the most load-bearing classes: every public method documented.
    from repro import ClusterModel, ClusterPerformanceModel, Workload
    from repro.queueing import MM1, MMc, TandemNetwork
    from repro.simulation.simulator import SimulationResult

    for cls in (ClusterModel, ClusterPerformanceModel, Workload, MM1, MMc, TandemNetwork, SimulationResult):
        undocumented = [
            n
            for n, m in inspect.getmembers(cls, predicate=inspect.isfunction)
            if not n.startswith("_") and not (inspect.getdoc(m) or "").strip()
        ]
        assert not undocumented, f"{cls.__name__} has undocumented methods: {undocumented}"


def test_top_level_convenience_surface():
    import repro

    for item in repro.__all__:
        assert hasattr(repro, item)
    assert repro.__version__ == "1.0.0"


def test_exceptions_exported_and_documented():
    from repro import exceptions

    for name in (
        "ReproError",
        "ModelValidationError",
        "UnstableSystemError",
        "InfeasibleProblemError",
        "ConvergenceError",
        "SimulationError",
    ):
        exc = getattr(exceptions, name)
        assert (exc.__doc__ or "").strip()
