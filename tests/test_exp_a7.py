"""Shape tests for experiment A7 (online control comparison)."""

import numpy as np
import pytest

from repro.exceptions import ModelValidationError
from repro.experiments import exp_a7_online_control as a7

TINY = dict(
    horizon=120.0,
    plan_window=40.0,
    epoch_length=0.5,
    v_param=5e-4,
    v_sweep=(1e-4, 2e-3),
    n_starts=1,
)


@pytest.fixture(scope="module")
def result():
    return a7.run(**TINY)


class TestA7:
    def test_all_policies_on_both_scenarios(self, result):
        pairs = {(r[0], r[1]) for r in result.rows}
        assert pairs == {
            (scen, pol)
            for scen in ("diurnal", "flash-crowd")
            for pol in a7.POLICIES
        }

    def test_dpp_saves_energy_vs_max_speed(self, result):
        by_key = {(r[0], r[1]): r for r in result.rows}
        for scen in ("diurnal", "flash-crowd"):
            assert by_key[(scen, "dpp")][2] < by_key[(scen, "max-speed")][2]

    def test_frontier_trades_energy_for_delay(self, result):
        # Larger V -> less energy, more delay.
        vs = [row[0] for row in result.frontier]
        energies = [row[1] for row in result.frontier]
        delays = [row[2] for row in result.frontier]
        assert vs == sorted(vs)
        assert all(b < a for a, b in zip(energies, energies[1:]))
        assert all(b > a for a, b in zip(delays, delays[1:]))

    def test_render_includes_tables_plot_and_notes(self, result):
        text = a7.render(result)
        assert "A7" in text
        assert "frontier" in text
        assert "+---" in text  # the scatter axis
        assert "oracle" in text and "dpp" in text
        for note in result.notes:
            assert note in text

    def test_single_controller_restriction(self):
        r = a7.run(controller="dpp", v_sweep=(), **{k: v for k, v in TINY.items() if k != "v_sweep"})
        assert {row[1] for row in r.rows} == {"dpp"}
        assert r.frontier == []
        assert r.notes == []

    def test_unknown_controller_rejected(self):
        with pytest.raises(ModelValidationError):
            a7.run(controller="nope", **TINY)

    def test_energy_positive_and_finite(self, result):
        energies = np.array([r[2] for r in result.rows], dtype=float)
        assert np.all(np.isfinite(energies)) and np.all(energies > 0.0)
