"""Reporting/validation utility tests."""

import numpy as np
import pytest

from repro.analysis import (
    SweepSeries,
    ValidationReport,
    ValidationRow,
    ascii_table,
    format_value,
    relative_error,
)
from repro.exceptions import ModelValidationError


class TestFormatting:
    def test_format_value(self):
        assert format_value(1.23456789) == "1.235"
        assert format_value(float("nan")) == "-"
        assert format_value(7) == "7"
        assert format_value("abc") == "abc"

    def test_ascii_table_alignment(self):
        out = ascii_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # all lines equal width

    def test_ascii_table_title(self):
        out = ascii_table(["x"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_empty_rows(self):
        out = ascii_table(["col"], [])
        assert "col" in out


class TestSweepSeries:
    def test_roundtrip_csv(self):
        s = SweepSeries("f", "x", np.array([1.0, 2.0]), {"y": np.array([3.0, 4.0])})
        csv_text = s.to_csv()
        assert csv_text.splitlines()[0] == "x,y"
        assert "1.0,3.0" in csv_text

    def test_save_csv(self, tmp_path):
        s = SweepSeries("f", "x", np.array([1.0]), {"y": np.array([2.0])})
        path = tmp_path / "out.csv"
        s.save_csv(str(path))
        assert path.read_text().startswith("x,y")

    def test_add_column(self):
        s = SweepSeries("f", "x", np.array([1.0, 2.0]))
        s.add("z", [5.0, 6.0])
        assert "z" in s.columns

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelValidationError):
            SweepSeries("f", "x", np.array([1.0, 2.0]), {"y": np.array([1.0])})
        s = SweepSeries("f", "x", np.array([1.0, 2.0]))
        with pytest.raises(ModelValidationError):
            s.add("z", [1.0])

    def test_table_contains_everything(self):
        s = SweepSeries("fig", "load", np.array([0.5]), {"delay": np.array([1.25])})
        out = s.to_table()
        assert "fig" in out and "load" in out and "delay" in out and "1.25" in out


class TestValidation:
    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert np.isnan(relative_error(1.0, 0.0))
        assert np.isnan(relative_error(float("nan"), 1.0))

    def test_row_within_ci(self):
        row = ValidationRow("x", analytic=1.05, simulated=1.0, ci=0.1)
        assert row.within_ci
        assert not ValidationRow("x", 1.5, 1.0, 0.1).within_ci
        assert not ValidationRow("x", 1.0, 1.0).within_ci  # NaN CI

    def test_report_aggregates(self):
        rep = ValidationReport("t")
        rep.add("a", 1.0, 1.0)
        rep.add("b", 1.2, 1.0)
        assert rep.max_rel_error == pytest.approx(0.2)
        assert rep.mean_rel_error == pytest.approx(0.1)

    def test_report_table(self):
        rep = ValidationReport("title")
        rep.add("q", 2.0, 1.9, ci=0.05)
        out = rep.to_table()
        assert "title" in out and "rel.err" in out

    def test_empty_report_nan(self):
        rep = ValidationReport("t")
        assert np.isnan(rep.max_rel_error)
        assert np.isnan(rep.mean_rel_error)
