"""Continuation sweep engine tests.

Two layers: unit tests of :mod:`repro.optimize.sweep` against synthetic
solvers, and the warm-vs-cold equivalence contract on the real F3/F4
frontiers — identical frontier values (relative 1e-6, the solver's own
feasibility tolerance), bit-reproducible run-to-run and across worker
counts, with warm sweeps doing strictly less work on interior points.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.exceptions import InfeasibleProblemError, ModelValidationError
from repro.experiments import (
    exp_f3_delay_opt_tradeoff as f3,
    exp_f4_energy_opt_tradeoff as f4,
)
from repro.optimize.sweep import ContinuationSweep, SweepPoint, continuation_sweep, run_series


def _fake_result(value, warm_accepted=None):
    meta = {}
    if warm_accepted is not None:
        meta["warm_start"] = {"accepted": warm_accepted}
    return SimpleNamespace(
        x=np.array([value]), fun=float(value), meta=meta, nfev=3, nit=2, n_evaluations=5
    )


class TestContinuationSweepUnit:
    def test_hint_threading(self):
        hints = []

        def solve(value, hint):
            hints.append(None if hint is None else float(hint[0]))
            return _fake_result(value)

        sweep = continuation_sweep(solve, [1.0, 2.0, 3.0])
        assert hints == [None, 1.0, 2.0]
        assert sweep.values == [1.0, 2.0, 3.0]
        assert [p.warm for p in sweep.points] == [False, True, True]

    def test_cold_mode_never_hints(self):
        hints = []

        def solve(value, hint):
            hints.append(hint)
            return _fake_result(value)

        sweep = continuation_sweep(solve, [1.0, 2.0], warm_start=False)
        assert hints == [None, None]
        assert all(not p.warm for p in sweep.points)

    def test_failed_point_recorded_and_hint_carries_over(self):
        hints = []

        def solve(value, hint):
            hints.append(None if hint is None else float(hint[0]))
            if value == 2.0:
                raise InfeasibleProblemError("too tight")
            return _fake_result(value)

        sweep = continuation_sweep(solve, [1.0, 2.0, 3.0])
        assert sweep.n_solved == 2
        failed = sweep.points[1]
        assert failed.result is None
        assert isinstance(failed.error, InfeasibleProblemError)
        # Point 3 is seeded from point 1, skipping the failed point.
        assert hints == [None, 1.0, 1.0]

    def test_unexpected_exception_propagates(self):
        def solve(value, hint):
            raise ValueError("bug, not infeasibility")

        with pytest.raises(ValueError):
            continuation_sweep(solve, [1.0])

    def test_accepted_read_from_meta(self):
        def solve(value, hint):
            return _fake_result(value, warm_accepted=hint is not None)

        sweep = continuation_sweep(solve, [1.0, 2.0])
        assert [p.accepted for p in sweep.points] == [False, True]

    def test_column_fills_failures_with_nan(self):
        def solve(value, hint):
            if value > 1.5:
                raise InfeasibleProblemError("no")
            return _fake_result(value)

        sweep = continuation_sweep(solve, [1.0, 2.0])
        col = sweep.column(lambda r: r.fun)
        assert col[0] == 1.0 and np.isnan(col[1])

    def test_effort_totals(self):
        sweep = continuation_sweep(lambda v, h: _fake_result(v), [1.0, 2.0, 3.0])
        assert sweep.total_evaluations == 15
        assert sweep.total_nfev == 9
        assert sweep.total_wall_s >= 0.0

    def test_custom_hint_of(self):
        hints = []

        def solve(value, hint):
            hints.append(None if hint is None else float(hint[0]))
            return _fake_result(value)

        continuation_sweep(solve, [1.0, 2.0], hint_of=lambda r: r.x * 10.0)
        assert hints == [None, 10.0]

    def test_empty_grid(self):
        sweep = continuation_sweep(lambda v, h: _fake_result(v), [])
        assert isinstance(sweep, ContinuationSweep)
        assert sweep.points == [] and sweep.total_evaluations == 0


def _series_double(values):
    return np.asarray(values, dtype=float) * 2.0


def _series_square(values):
    return np.asarray(values, dtype=float) ** 2


class TestRunSeries:
    def test_serial_results_keyed_in_order(self):
        out = run_series(
            {
                "double": (_series_double, ([1.0, 2.0],)),
                "square": (_series_square, ([3.0],)),
            }
        )
        assert list(out) == ["double", "square"]
        np.testing.assert_array_equal(out["double"], [2.0, 4.0])
        np.testing.assert_array_equal(out["square"], [9.0])

    def test_parallel_matches_serial(self):
        tasks = {
            "double": (_series_double, ([1.0, 2.0, 3.0],)),
            "square": (_series_square, ([1.0, 2.0, 3.0],)),
        }
        serial = run_series(tasks, n_jobs=None)
        parallel = run_series(tasks, n_jobs=2)
        assert list(serial) == list(parallel)
        for name in serial:
            np.testing.assert_array_equal(serial[name], parallel[name])

    def test_closure_falls_back_to_serial(self):
        # A lambda cannot cross a process boundary; run_series must
        # still produce the result rather than crash.
        out = run_series({"only": (lambda: np.arange(3), ())}, n_jobs=2)
        np.testing.assert_array_equal(out["only"], [0, 1, 2])

    def test_empty_tasks_rejected(self):
        with pytest.raises(ModelValidationError):
            run_series({})


# The 6-point grid mirrors the bench frontier kernel: every interior
# warm start is accepted there, which the effort assertions rely on.
_GRID = dict(n_points=6, n_starts=3)


@pytest.fixture(scope="module")
def f3_pair():
    warm = f3.run(**_GRID)
    cold = f3.run(**_GRID, warm_start=False)
    return warm, cold


@pytest.fixture(scope="module")
def f4_pair():
    warm = f4.run(**_GRID)
    cold = f4.run(**_GRID, warm_start=False)
    return warm, cold


class TestWarmColdEquivalence:
    """The headline contract: continuation changes effort, not values."""

    def test_f3_frontier_identical(self, f3_pair):
        warm, cold = f3_pair
        for name in warm.series.columns:
            np.testing.assert_allclose(
                warm.series.columns[name], cold.series.columns[name], rtol=1e-6, err_msg=name
            )

    def test_f4_frontier_identical(self, f4_pair):
        warm, cold = f4_pair
        for name in warm.series.columns:
            np.testing.assert_allclose(
                warm.series.columns[name], cold.series.columns[name], rtol=1e-6, err_msg=name
            )

    def test_f3_warm_does_less_total_work(self, f3_pair):
        warm, cold = f3_pair
        assert warm.optimal_sweep.total_evaluations < cold.optimal_sweep.total_evaluations

    def test_f3_accepted_interior_points_strictly_cheaper(self, f3_pair):
        warm, cold = f3_pair
        accepted = [
            (w, c)
            for w, c in zip(warm.optimal_sweep.points, cold.optimal_sweep.points)
            if w.accepted
        ]
        assert accepted, "no warm start was accepted on the F3 grid"
        for w, c in accepted:
            assert w.n_evaluations < c.n_evaluations

    def test_f4_warm_does_less_total_work(self, f4_pair):
        warm, cold = f4_pair
        assert warm.optimal_sweep.total_evaluations < cold.optimal_sweep.total_evaluations

    def test_f3_deterministic_run_to_run(self, f3_pair):
        warm, _ = f3_pair
        again = f3.run(**_GRID)
        for name in warm.series.columns:
            np.testing.assert_array_equal(
                warm.series.columns[name], again.series.columns[name], err_msg=name
            )

    def test_f3_jobs_invariant(self, f3_pair):
        warm, _ = f3_pair
        fanned = f3.run(**_GRID, n_jobs=2)
        for name in warm.series.columns:
            np.testing.assert_array_equal(
                warm.series.columns[name], fanned.series.columns[name], err_msg=name
            )

    def test_f3_sweep_attached_and_warm_flagged(self, f3_pair):
        warm, cold = f3_pair
        assert all(isinstance(p, SweepPoint) for p in warm.optimal_sweep.points)
        assert not warm.optimal_sweep.points[0].warm
        assert all(p.warm for p in warm.optimal_sweep.points[1:])
        assert all(not p.warm for p in cold.optimal_sweep.points)
