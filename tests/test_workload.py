"""Customer classes, workloads and arrival processes."""

import numpy as np
import pytest

from repro.exceptions import ModelValidationError
from repro.workload import (
    BatchPoissonProcess,
    CustomerClass,
    MMPP2,
    PoissonProcess,
    Workload,
    scaled_workload,
    workload_from_rates,
)


class TestCustomerClass:
    def test_valid(self):
        c = CustomerClass("gold", 2.0, weight=3.0)
        assert c.arrival_rate == 2.0

    def test_with_rate(self):
        c = CustomerClass("gold", 2.0)
        assert c.with_rate(5.0).arrival_rate == 5.0
        assert c.arrival_rate == 2.0  # frozen original

    @pytest.mark.parametrize("rate", [0.0, -1.0, float("inf")])
    def test_bad_rate(self, rate):
        with pytest.raises(ModelValidationError):
            CustomerClass("x", rate)

    def test_bad_weight(self):
        with pytest.raises(ModelValidationError):
            CustomerClass("x", 1.0, weight=0.0)


class TestWorkload:
    def test_basic_properties(self):
        w = Workload([CustomerClass("a", 1.0), CustomerClass("b", 3.0)])
        assert w.total_rate == 4.0
        np.testing.assert_allclose(w.class_probabilities, [0.25, 0.75])
        assert w.names == ["a", "b"]

    def test_scaled_preserves_mix(self):
        w = workload_from_rates([1.0, 3.0]).scaled(2.0)
        assert w.total_rate == 8.0
        np.testing.assert_allclose(w.class_probabilities, [0.25, 0.75])

    def test_scaled_workload_to_target(self):
        w = scaled_workload(workload_from_rates([1.0, 3.0]), total_rate=10.0)
        assert w.total_rate == pytest.approx(10.0)

    def test_index_of(self):
        w = workload_from_rates([1.0, 2.0], names=["hi", "lo"])
        assert w.index_of("lo") == 1
        with pytest.raises(ModelValidationError):
            w.index_of("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelValidationError):
            Workload([CustomerClass("a", 1.0), CustomerClass("a", 2.0)])

    def test_empty_rejected(self):
        with pytest.raises(ModelValidationError):
            Workload([])

    def test_default_names(self):
        assert workload_from_rates([1.0, 1.0, 1.0]).names == ["gold", "silver", "bronze"]
        many = workload_from_rates([1.0] * 10)
        assert many.names[0] == "class1"

    def test_name_count_mismatch(self):
        with pytest.raises(ModelValidationError):
            workload_from_rates([1.0, 2.0], names=["only-one"])


class TestArrivalProcesses:
    def _measure_rate(self, proc, rng, n=40_000):
        t, count = 0.0, 0
        p = proc.fresh()
        for _ in range(n):
            gap, batch = p.next_arrival(rng)
            t += gap
            count += batch
        return count / t

    def test_poisson_rate(self, rng):
        proc = PoissonProcess(3.0)
        assert self._measure_rate(proc, rng) == pytest.approx(3.0, rel=0.05)

    def test_poisson_interarrival_scv_one(self, rng):
        p = PoissonProcess(2.0)
        gaps = np.array([p.next_arrival(rng)[0] for _ in range(20000)])
        scv = gaps.var() / gaps.mean() ** 2
        assert scv == pytest.approx(1.0, rel=0.1)

    def test_mmpp_long_run_rate(self, rng):
        proc = MMPP2(rate0=1.0, rate1=9.0, r01=0.5, r10=0.5)
        assert proc.rate == pytest.approx(5.0)
        assert self._measure_rate(proc, rng) == pytest.approx(5.0, rel=0.08)

    def test_mmpp_burstier_than_poisson(self, rng):
        p = MMPP2(rate0=0.5, rate1=10.0, r01=0.05, r10=0.05).fresh()
        gaps = np.array([p.next_arrival(rng)[0] for _ in range(40000)])
        scv = gaps.var() / gaps.mean() ** 2
        assert scv > 1.3  # markedly burstier than Poisson

    def test_batch_poisson_rate(self, rng):
        proc = BatchPoissonProcess(epoch_rate=2.0, p=0.5)
        assert proc.rate == pytest.approx(4.0)
        assert self._measure_rate(proc, rng) == pytest.approx(4.0, rel=0.08)

    def test_batch_sizes_geometric(self, rng):
        p = BatchPoissonProcess(epoch_rate=1.0, p=0.25).fresh()
        batches = np.array([p.next_arrival(rng)[1] for _ in range(20000)])
        assert batches.min() >= 1
        assert batches.mean() == pytest.approx(4.0, rel=0.05)

    def test_fresh_resets_state(self, rng):
        p = MMPP2(rate0=1.0, rate1=5.0, r01=1.0, r10=1.0)
        p.next_arrival(rng)
        q = p.fresh()
        assert q._state == 0 and q._state_time_left is None

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: PoissonProcess(0.0),
            lambda: MMPP2(0.0, 1.0, 1.0, 1.0),
            lambda: MMPP2(1.0, 1.0, -1.0, 1.0),
            lambda: BatchPoissonProcess(1.0, 0.0),
            lambda: BatchPoissonProcess(1.0, 1.5),
            lambda: BatchPoissonProcess(-1.0, 0.5),
        ],
    )
    def test_invalid(self, bad):
        with pytest.raises(ModelValidationError):
            bad()
