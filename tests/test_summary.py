"""Summary-report builder and the summary CLI command."""

import pytest

from repro.analysis import build_summary
from repro.cli import main
from repro.exceptions import ModelValidationError


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "T1_delay_accuracy.txt").write_text("T1 table body\n")
    (tmp_path / "F3.txt").write_text("F3 table body\n")
    return tmp_path


class TestBuildSummary:
    def test_includes_found_artifacts(self, results_dir):
        text = build_summary(str(results_dir))
        assert "T1 table body" in text
        assert "F3 table body" in text
        assert "2/" in text.splitlines()[-1]

    def test_marks_missing_experiments(self, results_dir):
        text = build_summary(str(results_dir))
        assert "(no artifact found)" in text
        assert "## A4" in text

    def test_registry_order(self, results_dir):
        text = build_summary(str(results_dir))
        assert text.index("## T1") < text.index("## F3") < text.index("## A4")

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(ModelValidationError):
            build_summary(str(tmp_path))

    def test_not_a_directory(self, tmp_path):
        with pytest.raises(ModelValidationError):
            build_summary(str(tmp_path / "nope"))


class TestSummaryCLI:
    def test_writes_file(self, results_dir, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert (
            main(["summary", "--results-dir", str(results_dir), "--out", str(out)]) == 0
        )
        assert out.read_text().startswith("# Reproduction evaluation report")

    def test_prints_to_stdout(self, results_dir, capsys):
        assert main(["summary", "--results-dir", str(results_dir)]) == 0
        assert "T1 table body" in capsys.readouterr().out
