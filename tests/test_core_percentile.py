"""Percentile-delay machinery tests."""

import numpy as np
import pytest

from repro.cluster import ClusterModel, Tier
from repro.core.percentile import (
    all_class_percentiles,
    class_delay_percentile,
    class_delay_survival,
    hypoexponential_survival,
    mg1_sojourn_variance,
    mg1_wait_moments,
)
from repro.distributions import Deterministic, Exponential, fit_two_moments
from repro.exceptions import ModelValidationError, UnstableSystemError
from repro.queueing import MM1
from repro.workload import workload_from_rates


class TestTakacsMoments:
    def test_mm1_wait_moments(self):
        # M/M/1 rho=0.6, mu=1: E[W]=1.5, E[W^2]=7.5 (known closed form
        # 2 rho / (mu^2 (1-rho)^2)).
        ew, ew2 = mg1_wait_moments(0.6, Exponential(1.0))
        assert ew == pytest.approx(1.5)
        assert ew2 == pytest.approx(7.5)

    def test_md1_wait_variance_below_mm1(self):
        var_d = mg1_sojourn_variance(0.6, Deterministic(1.0))
        var_m = mg1_sojourn_variance(0.6, Exponential(1.0))
        assert var_d < var_m

    def test_heavy_tail_infinite_second_moment(self):
        from repro.distributions import Pareto

        svc = Pareto(alpha=2.5, xm=0.2)  # third moment infinite
        _, ew2 = mg1_wait_moments(0.5, svc)
        assert np.isinf(ew2)

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            mg1_wait_moments(1.5, Exponential(1.0))

    def test_variance_nonnegative(self):
        for scv in (0.0, 0.5, 1.0, 3.0):
            v = mg1_sojourn_variance(0.5, fit_two_moments(1.0, scv))
            assert v >= 0.0


class TestHypoexponential:
    def test_single_phase_is_exponential(self):
        for t in (0.1, 1.0, 5.0):
            assert hypoexponential_survival(t, [2.0]) == pytest.approx(np.exp(-2.0 * t))

    def test_two_distinct_rates_closed_form(self):
        r1, r2 = 1.0, 3.0
        t = 0.7
        exact = (r2 * np.exp(-r1 * t) - r1 * np.exp(-r2 * t)) / (r2 - r1)
        assert hypoexponential_survival(t, [r1, r2]) == pytest.approx(exact, rel=1e-10)

    def test_equal_rates_erlang(self):
        # Two equal phases = Erlang-2: S(t) = (1 + rt) e^{-rt}. The
        # partial-fraction formula explodes here; expm must not.
        r, t = 2.0, 1.3
        exact = (1 + r * t) * np.exp(-r * t)
        assert hypoexponential_survival(t, [r, r]) == pytest.approx(exact, rel=1e-10)

    def test_boundaries(self):
        assert hypoexponential_survival(0.0, [1.0, 2.0]) == 1.0
        assert hypoexponential_survival(-1.0, [1.0]) == 1.0
        assert hypoexponential_survival(1e3, [1.0]) == pytest.approx(0.0, abs=1e-12)

    def test_monotone_decreasing(self):
        rates = [1.0, 2.5, 0.7]
        ts = np.linspace(0.0, 10.0, 30)
        vals = [hypoexponential_survival(t, rates) for t in ts]
        assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_validation(self):
        with pytest.raises(ModelValidationError):
            hypoexponential_survival(1.0, [])
        with pytest.raises(ModelValidationError):
            hypoexponential_survival(1.0, [0.0])
        with pytest.raises(ModelValidationError):
            hypoexponential_survival(1.0, [-2.0])


class TestClassPercentiles:
    @pytest.fixture
    def mm1_cluster(self, basic_spec):
        tier = Tier("t", (Exponential(1.0),), basic_spec, discipline="fcfs")
        return ClusterModel([tier]), workload_from_rates([0.6])

    def test_exact_for_single_mm1_tier(self, mm1_cluster):
        cluster, wl = mm1_cluster
        q = MM1(0.6, 1.0)
        for p in (0.5, 0.9, 0.99):
            approx = class_delay_percentile(cluster, wl, 0, p)
            assert approx == pytest.approx(q.sojourn_quantile(p), rel=1e-8)

    def test_survival_matches_percentile_inverse(self, mm1_cluster):
        cluster, wl = mm1_cluster
        t95 = class_delay_percentile(cluster, wl, 0, 0.95)
        assert class_delay_survival(cluster, wl, 0, t95) == pytest.approx(0.05, abs=1e-9)

    def test_all_classes_ordered(self, three_tier_cluster, three_class_workload):
        p90 = all_class_percentiles(three_tier_cluster, three_class_workload, 0.9)
        assert p90[0] < p90[1] < p90[2]

    def test_percentile_exceeds_mean(self, three_tier_cluster, three_class_workload):
        from repro.core.delay import end_to_end_delays

        means = end_to_end_delays(three_tier_cluster, three_class_workload)
        p90 = all_class_percentiles(three_tier_cluster, three_class_workload, 0.9)
        assert np.all(p90 > means)

    def test_monotone_in_level(self, three_tier_cluster, three_class_workload):
        p50 = all_class_percentiles(three_tier_cluster, three_class_workload, 0.5)
        p90 = all_class_percentiles(three_tier_cluster, three_class_workload, 0.9)
        p99 = all_class_percentiles(three_tier_cluster, three_class_workload, 0.99)
        assert np.all(p50 < p90) and np.all(p90 < p99)

    def test_bad_inputs(self, mm1_cluster):
        cluster, wl = mm1_cluster
        with pytest.raises(ModelValidationError):
            class_delay_percentile(cluster, wl, 0, 1.5)
        with pytest.raises(ModelValidationError):
            class_delay_percentile(cluster, wl, 3, 0.9)

    def test_fractional_visits_rejected(self, basic_spec):
        tier = Tier("t", (Exponential(1.0),), basic_spec)
        cluster = ClusterModel([tier], visit_ratios=np.array([[1.5]]))
        wl = workload_from_rates([0.3])
        with pytest.raises(ModelValidationError):
            class_delay_percentile(cluster, wl, 0, 0.9)


class TestSimulatedPercentiles:
    def test_empirical_matches_exact_mm1(self, basic_spec):
        from repro.simulation import simulate

        tier = Tier("t", (Exponential(1.0),), basic_spec, discipline="fcfs")
        cluster = ClusterModel([tier])
        wl = workload_from_rates([0.6])
        res = simulate(cluster, wl, horizon=50000.0, seed=5, collect_delay_samples=True)
        q = MM1(0.6, 1.0)
        for p in (0.5, 0.9, 0.95):
            assert res.delay_percentile(0, p) == pytest.approx(q.sojourn_quantile(p), rel=0.08)

    def test_samples_not_collected_raises(self, two_class_cluster, two_class_workload):
        from repro.simulation import simulate

        res = simulate(two_class_cluster, two_class_workload, horizon=500.0, seed=1)
        with pytest.raises(ModelValidationError):
            res.delay_percentile(0, 0.9)

    def test_replicated_percentiles(self, two_class_cluster, two_class_workload):
        from repro.simulation import simulate_replications

        rep = simulate_replications(
            two_class_cluster,
            two_class_workload,
            horizon=2000.0,
            n_replications=3,
            seed=9,
            collect_delay_samples=True,
        )
        means, cis = rep.delay_percentiles(0.9)
        assert means.shape == (2,)
        assert np.all(means > rep.delays)  # p90 above the mean
        assert np.all(cis > 0)
