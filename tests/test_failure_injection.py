"""Edge cases and failure injection across the stack.

These tests deliberately poke pathological configurations — empty
loads, near-saturation, extreme variability, degenerate epochs — and
assert the library fails loudly (typed exceptions) or degrades
gracefully (finite, sane numbers), never silently returning garbage.
"""

import numpy as np
import pytest

from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.core import end_to_end_delays, minimize_delay, minimize_energy
from repro.distributions import Exponential, Pareto, fit_two_moments
from repro.exceptions import (
    InfeasibleProblemError,
    ModelValidationError,
    ReproError,
    UnstableSystemError,
)
from repro.simulation import simulate
from repro.workload import BatchPoissonProcess, Workload, CustomerClass, workload_from_rates


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ModelValidationError, UnstableSystemError, InfeasibleProblemError):
            assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        # Callers using plain except ValueError keep working.
        assert issubclass(ModelValidationError, ValueError)
        assert issubclass(UnstableSystemError, ValueError)

    def test_unstable_carries_utilization(self):
        with pytest.raises(UnstableSystemError) as exc:
            from repro.queueing import MM1

            MM1(2.0, 1.0)
        assert exc.value.utilization == pytest.approx(2.0)


class TestNearSaturation:
    def test_analytic_delays_finite_at_rho_0999(self, basic_spec):
        tier = Tier("t", (Exponential(1.0),), basic_spec, discipline="fcfs")
        cluster = ClusterModel([tier])
        wl = workload_from_rates([0.999])
        t = end_to_end_delays(cluster, wl)
        assert np.isfinite(t[0]) and t[0] > 500.0

    def test_rho_one_raises_not_returns_garbage(self, basic_spec):
        tier = Tier("t", (Exponential(1.0),), basic_spec)
        wl = workload_from_rates([1.0])
        with pytest.raises(UnstableSystemError):
            end_to_end_delays(ClusterModel([tier]), wl)

    def test_simulation_near_saturation_runs(self, basic_spec):
        tier = Tier("t", (Exponential(1.0),), basic_spec, discipline="fcfs")
        cluster = ClusterModel([tier])
        wl = workload_from_rates([0.97])
        res = simulate(cluster, wl, horizon=2000.0, seed=1)
        assert res.n_completed[0] > 0
        assert np.isfinite(res.delays[0])


class TestExtremeVariability:
    def test_pareto_demands_heavy_tail(self, basic_spec):
        svc = Pareto(alpha=2.2, xm=0.1)  # scv ~ 8.3, third moment inf
        tier = Tier("t", (svc,), basic_spec, discipline="fcfs")
        cluster = ClusterModel([tier])
        wl = workload_from_rates([0.5 / svc.mean * 0.5])
        # Mean formulas need only two moments: finite answer.
        t = end_to_end_delays(cluster, wl)
        assert np.isfinite(t[0])
        # Simulation completes without incident.
        res = simulate(cluster, wl, horizon=3000.0, seed=2)
        assert res.n_completed[0] > 0

    def test_scv_100_priority_station(self, basic_spec):
        svc = fit_two_moments(0.5, 100.0)
        tier = Tier("t", (svc, svc), basic_spec, discipline="priority_np")
        cluster = ClusterModel([tier])
        wl = workload_from_rates([0.3, 0.3])
        t = end_to_end_delays(cluster, wl)
        assert t[0] < t[1] and np.all(np.isfinite(t))


class TestDegenerateInputs:
    def test_single_class_single_tier_minimal_system(self, basic_spec):
        tier = Tier("t", (Exponential(1.0),), basic_spec)
        cluster = ClusterModel([tier])
        wl = Workload([CustomerClass("only", 0.5)])
        assert end_to_end_delays(cluster, wl).shape == (1,)

    def test_tiny_rates(self, basic_spec):
        tier = Tier("t", (Exponential(1.0),), basic_spec)
        wl = workload_from_rates([1e-9])
        t = end_to_end_delays(ClusterModel([tier]), wl)
        # Near-zero load: delay collapses to the bare service time.
        assert t[0] == pytest.approx(1.0, rel=1e-6)

    def test_zero_warmup_simulation(self, two_class_cluster, two_class_workload):
        res = simulate(two_class_cluster, two_class_workload, horizon=500.0, seed=3, warmup_fraction=0.0)
        assert res.warmup == 0.0
        assert res.n_completed.sum() > 0

    def test_batch_arrivals_through_priority_station(self, basic_spec):
        tier = Tier("t", (Exponential(2.0), Exponential(2.0)), basic_spec, discipline="priority_np")
        cluster = ClusterModel([tier])
        wl = workload_from_rates([0.3, 0.3])
        batches = [BatchPoissonProcess(0.1, 0.34), BatchPoissonProcess(0.1, 0.34)]
        res = simulate(cluster, wl, horizon=4000.0, seed=4, arrival_processes=batches)
        # Batches inflate waits beyond the Poisson prediction but the
        # run must stay sane and priority-ordered.
        assert res.delays[0] < res.delays[1]
        assert np.all(np.isfinite(res.delays))

    def test_job_log_collection(self, two_class_cluster, two_class_workload):
        res = simulate(
            two_class_cluster, two_class_workload, horizon=500.0, seed=5, collect_job_log=True
        )
        log = res.job_log
        assert log is not None
        assert log.shape[0] == res.n_completed.sum()
        assert np.all(log["exit"] >= log["arrival"])
        # Log delays equal the tallied means.
        for k in range(2):
            mask = log["cls"] == k
            if mask.any():
                mean = float((log["exit"][mask] - log["arrival"][mask]).mean())
                assert mean == pytest.approx(res.delays[k], rel=1e-9)

    def test_job_log_absent_by_default(self, two_class_cluster, two_class_workload):
        res = simulate(two_class_cluster, two_class_workload, horizon=200.0, seed=6)
        assert res.job_log is None


class TestOptimizerRobustness:
    def test_p1_with_budget_exactly_at_minimum(self, three_tier_cluster, three_class_workload):
        from repro.core.opt_common import stability_speed_bounds

        box = stability_speed_bounds(three_tier_cluster, three_class_workload)
        lam = three_class_workload.arrival_rates
        p_min = three_tier_cluster.with_speeds([b[0] for b in box]).average_power(lam)
        res = minimize_delay(three_tier_cluster, three_class_workload, p_min * 1.0001)
        assert res.success

    def test_p2_with_bound_exactly_at_best(self, three_tier_cluster, three_class_workload):
        from repro.core import mean_end_to_end_delay

        best = mean_end_to_end_delay(three_tier_cluster, three_class_workload)
        res = minimize_energy(
            three_tier_cluster, three_class_workload, max_mean_delay=best * 1.0001
        )
        assert res.success
        np.testing.assert_allclose(res.x, 1.0, atol=1e-3)

    def test_heterogeneous_speed_ranges(self):
        # Tiers with different DVFS windows exercise per-tier bounds.
        pm = PowerModel(idle=20.0, kappa=60.0, alpha=3.0)
        specs = [
            ServerSpec(pm, min_speed=0.3, max_speed=0.8, cost=1.0),
            ServerSpec(pm, min_speed=0.6, max_speed=1.2, cost=1.0),
        ]
        tiers = [
            Tier("a", (Exponential(4.0),), specs[0], speed=0.8),
            Tier("b", (Exponential(4.0),), specs[1], speed=1.0),
        ]
        cluster = ClusterModel(tiers)
        wl = workload_from_rates([1.0])
        res = minimize_energy(cluster, wl, max_mean_delay=2.0)
        assert res.success
        assert 0.3 - 1e-9 <= res.x[0] <= 0.8 + 1e-9
        assert 0.6 - 1e-9 <= res.x[1] <= 1.2 + 1e-9
