"""Metric registry: instruments, snapshots, and the disabled path."""

import pytest

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    MetricsRegistry,
)


class TestEnabledInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("sim.events")
        c.inc()
        c.add(41)
        assert reg.counter("sim.events").value == 42

    def test_gauge_keeps_last(self):
        reg = MetricsRegistry(enabled=True)
        g = reg.gauge("queue")
        g.set(3)
        g.set(7)
        assert reg.gauge("queue").value == 7

    def test_histogram_summary(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("delay")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.min == 1.0 and h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_timer_is_histogram(self):
        reg = MetricsRegistry(enabled=True)
        t = reg.timer("solve.seconds")
        t.observe(0.5)
        assert reg.histogram("solve.seconds") is t

    def test_kind_collision_raises(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_sorted_and_typed(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("b").set(1.0)
        reg.counter("a").inc()
        snap = reg.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["a"] == {"kind": "counter", "value": 1}
        assert snap["b"]["kind"] == "gauge"

    def test_reset_drops_everything(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("a").add(5)
        reg.reset()
        assert reg.snapshot() == {}
        assert reg.counter("a").value == 0


class TestDisabledPath:
    """Telemetry off must cost (next to) nothing: shared null
    singletons, no allocation, no state."""

    def test_null_singletons_shared(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is reg.counter("b") is NULL_COUNTER
        assert reg.gauge("a") is NULL_GAUGE
        assert reg.histogram("a") is reg.timer("b") is NULL_HISTOGRAM

    def test_null_instruments_record_nothing(self):
        NULL_COUNTER.inc()
        NULL_COUNTER.add(10)
        NULL_GAUGE.set(5.0)
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value is None
        assert NULL_HISTOGRAM.count == 0

    def test_disabled_registry_registers_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a").add(3)
        assert reg.snapshot() == {}

    def test_disabled_accessors_allocate_nothing(self):
        """The hot-path contract: fetching an instrument while disabled
        returns a pre-existing object every single time."""
        reg = MetricsRegistry(enabled=False)
        handles = {id(reg.counter(f"c{i}")) for i in range(100)}
        handles |= {id(reg.gauge(f"g{i}")) for i in range(100)}
        handles |= {id(reg.histogram(f"h{i}")) for i in range(100)}
        assert handles == {id(NULL_COUNTER), id(NULL_GAUGE), id(NULL_HISTOGRAM)}

    def test_global_disabled_by_default(self):
        from repro import obs

        assert not obs.is_enabled()
        assert obs.counter("anything") is NULL_COUNTER
