"""Property-based tests on the cluster performance/energy model."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.core.delay import end_to_end_delays, mean_end_to_end_delay
from repro.core.energy import average_power, per_class_energy_per_request
from repro.distributions import fit_two_moments
from repro.workload import workload_from_rates

SPEC = ServerSpec(PowerModel(idle=20.0, kappa=60.0, alpha=3.0), min_speed=0.3, max_speed=1.0)


@st.composite
def cluster_and_workload(draw):
    """Random stable clusters (1-3 tiers, 1-3 classes) and workloads."""
    k = draw(st.integers(min_value=1, max_value=3))
    m = draw(st.integers(min_value=1, max_value=3))
    tiers = []
    for i in range(m):
        means = [draw(st.floats(min_value=0.01, max_value=0.2)) for _ in range(k)]
        scv = draw(st.floats(min_value=0.0, max_value=3.0))
        servers = draw(st.integers(min_value=1, max_value=4))
        speed = draw(st.floats(min_value=0.5, max_value=1.0))
        tiers.append(
            Tier(
                f"t{i}",
                tuple(fit_two_moments(mu, scv) for mu in means),
                SPEC,
                servers=servers,
                speed=speed,
            )
        )
    cluster = ClusterModel(tiers)
    rates = [draw(st.floats(min_value=0.1, max_value=3.0)) for _ in range(k)]
    workload = workload_from_rates(rates)
    # Keep only clearly stable configurations.
    assume(np.all(cluster.utilizations(workload.arrival_rates) < 0.9))
    return cluster, workload


class TestModelInvariants:
    @given(cw=cluster_and_workload())
    @settings(max_examples=80, deadline=None)
    def test_delays_positive_and_exceed_service_floor(self, cw):
        cluster, workload = cw
        t = end_to_end_delays(cluster, workload)
        assert np.all(t > 0.0)
        # Delay of class k is at least its total bare service time.
        for k in range(workload.num_classes):
            floor = sum(
                tier.demands[k].mean / tier.speed for tier in cluster.tiers
            )
            assert t[k] >= floor - 1e-9

    @given(cw=cluster_and_workload())
    @settings(max_examples=60, deadline=None)
    def test_priority_ordering_when_comparable(self, cw):
        cluster, workload = cw
        t = end_to_end_delays(cluster, workload)
        # Waits (delay minus own service floor) are ordered by priority.
        floors = np.array(
            [
                sum(tier.demands[k].mean / tier.speed for tier in cluster.tiers)
                for k in range(workload.num_classes)
            ]
        )
        waits = t - floors
        assert np.all(np.diff(waits) >= -1e-9)

    @given(cw=cluster_and_workload())
    @settings(max_examples=60, deadline=None)
    def test_mean_delay_between_class_extremes(self, cw):
        cluster, workload = cw
        t = end_to_end_delays(cluster, workload)
        mean = mean_end_to_end_delay(cluster, workload)
        assert t.min() - 1e-12 <= mean <= t.max() + 1e-12

    @given(cw=cluster_and_workload())
    @settings(max_examples=60, deadline=None)
    def test_speedup_helps_everyone(self, cw):
        cluster, workload = cw
        assume(np.all(cluster.speeds <= 0.9))
        faster = cluster.with_speeds(np.minimum(cluster.speeds * 1.1, 1.0))
        t_slow = end_to_end_delays(cluster, workload)
        t_fast = end_to_end_delays(faster, workload)
        assert np.all(t_fast <= t_slow + 1e-9)

    @given(cw=cluster_and_workload())
    @settings(max_examples=60, deadline=None)
    def test_power_exceeds_idle_floor(self, cw):
        cluster, workload = cw
        p = average_power(cluster, workload)
        idle = sum(t.servers * t.spec.power.idle for t in cluster.tiers)
        assert p > idle

    @given(cw=cluster_and_workload())
    @settings(max_examples=60, deadline=None)
    def test_energy_conservation_identity(self, cw):
        cluster, workload = cw
        for mode in ("equal", "work"):
            e = per_class_energy_per_request(cluster, workload, idle=mode)
            total = float(np.dot(workload.arrival_rates, e))
            assert total == pytest.approx(average_power(cluster, workload), rel=1e-9)

    @given(cw=cluster_and_workload())
    @settings(max_examples=40, deadline=None)
    def test_load_scaling_monotone(self, cw):
        cluster, workload = cw
        assume(np.all(cluster.utilizations(workload.arrival_rates) < 0.6))
        t1 = mean_end_to_end_delay(cluster, workload)
        t2 = mean_end_to_end_delay(cluster, workload.scaled(1.3))
        assert t2 >= t1 - 1e-12
