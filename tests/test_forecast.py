"""Forecaster tests (EWMA, seasonal naive, blend) on synthetic traces."""

import numpy as np
import pytest

from repro.core.forecast import (
    blended_forecast,
    ewma_forecast,
    forecast_error,
    seasonal_naive_forecast,
)
from repro.exceptions import ModelValidationError


@pytest.fixture
def two_day_history():
    """Two sinusoidal 'days' of 12 windows, 2 classes, second day 10%
    hotter."""
    t = np.arange(12)
    day = 5.0 + 3.0 * np.sin(2 * np.pi * t / 12)
    h = np.concatenate([day, day * 1.1])
    return np.stack([h, 2 * h], axis=1)


class TestEWMA:
    def test_constant_history_is_fixed_point(self):
        h = np.full((10, 2), 4.0)
        np.testing.assert_allclose(ewma_forecast(h), [4.0, 4.0])

    def test_alpha_one_returns_last(self, two_day_history):
        np.testing.assert_allclose(
            ewma_forecast(two_day_history, alpha=1.0), two_day_history[-1]
        )

    def test_margin_scales(self):
        h = np.full((5, 1), 2.0)
        assert ewma_forecast(h, margin=0.25)[0] == pytest.approx(2.5)

    def test_tracks_trend_with_lag(self):
        h = np.arange(1.0, 21.0)[:, None]  # rising ramp
        f = ewma_forecast(h, alpha=0.5)
        assert 15.0 < f[0] < 20.0  # behind the last value, above the mean

    def test_validation(self):
        with pytest.raises(ModelValidationError):
            ewma_forecast(np.empty((0, 1)))
        with pytest.raises(ModelValidationError):
            ewma_forecast(np.ones((3, 1)), alpha=0.0)
        with pytest.raises(ModelValidationError):
            ewma_forecast(np.ones((3, 1)), margin=-0.1)
        with pytest.raises(ModelValidationError):
            ewma_forecast(np.array([[1.0], [-2.0]]))


class TestSeasonalNaive:
    def test_repeats_last_period(self, two_day_history):
        f = seasonal_naive_forecast(two_day_history, period=12)
        np.testing.assert_allclose(f, two_day_history[-12:])

    def test_insufficient_history(self, two_day_history):
        with pytest.raises(ModelValidationError):
            seasonal_naive_forecast(two_day_history[:5], period=12)

    def test_margin(self, two_day_history):
        f = seasonal_naive_forecast(two_day_history, period=12, margin=0.2)
        np.testing.assert_allclose(f, two_day_history[-12:] * 1.2)


class TestBlendAndError:
    def test_blend_extremes(self, two_day_history):
        pure_seasonal = blended_forecast(two_day_history, 12, weight_seasonal=1.0)
        np.testing.assert_allclose(pure_seasonal, two_day_history[-12:])
        pure_level = blended_forecast(two_day_history, 12, weight_seasonal=0.0)
        assert np.ptp(pure_level[:, 0]) == pytest.approx(0.0)  # flat

    def test_seasonal_beats_ewma_on_diurnal_data(self, two_day_history):
        # Hold out the second day, forecast it from the first.
        history, actual = two_day_history[:12], two_day_history[12:]
        seasonal = seasonal_naive_forecast(history, period=12)
        level = ewma_forecast(history)
        err_seasonal = forecast_error(seasonal, actual)
        err_level = forecast_error(np.tile(level, (12, 1)), actual)
        assert err_seasonal < err_level

    def test_error_zero_for_perfect_forecast(self, two_day_history):
        assert forecast_error(two_day_history, two_day_history) == 0.0

    def test_error_shape_mismatch(self):
        with pytest.raises(ModelValidationError):
            forecast_error(np.ones((2, 1)), np.ones((3, 1)))

    def test_blend_weight_validation(self, two_day_history):
        with pytest.raises(ModelValidationError):
            blended_forecast(two_day_history, 12, weight_seasonal=1.5)

    def test_blend_rejects_negative_margin(self, two_day_history):
        # Regression: blended_forecast validated weight_seasonal but not
        # margin, so margin=-0.5 silently deflated the forecast that
        # ewma_forecast / seasonal_naive_forecast would reject.
        with pytest.raises(ModelValidationError):
            blended_forecast(two_day_history, 12, margin=-0.5)

    def test_blend_margin_scales_like_components(self, two_day_history):
        base = blended_forecast(two_day_history, 12)
        inflated = blended_forecast(two_day_history, 12, margin=0.25)
        np.testing.assert_allclose(inflated, base * 1.25)
