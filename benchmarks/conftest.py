"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's (reconstructed) tables
or figures: it times the full experiment pipeline with
pytest-benchmark, prints the rendered rows/series, and writes them to
``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can point at fresh
artifacts. Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _telemetry_from_env():
    """Honor ``REPRO_TELEMETRY=DIR``: run the whole benchmark session
    with telemetry enabled, writing the artifact to ``DIR``.

    CI uses this to exercise the instrumented path; unset (the default)
    the fixture does nothing and benchmarks time the un-instrumented
    code.
    """
    out_dir = os.environ.get("REPRO_TELEMETRY")
    if not out_dir:
        yield
        return
    from repro import obs

    with obs.telemetry_session(out_dir, command=["pytest", "benchmarks/"]):
        yield
    print(f"\n[telemetry written to {out_dir}]")


@pytest.fixture
def record():
    """Write (and echo) a rendered experiment table."""

    def _record(experiment_id: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
