"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's (reconstructed) tables
or figures: it times the full experiment pipeline with
pytest-benchmark, prints the rendered rows/series, and writes them to
``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can point at fresh
artifacts. Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record():
    """Write (and echo) a rendered experiment table."""

    def _record(experiment_id: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
