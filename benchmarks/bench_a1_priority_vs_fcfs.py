"""Benchmark A1 (ablation): priority model vs aggregate-FCFS model."""

from repro.experiments import exp_a1_priority_vs_fcfs as a1


def test_bench_a1_priority_vs_fcfs(benchmark, record):
    result = benchmark.pedantic(
        lambda: a1.run(horizon=2500.0, n_replications=4),
        rounds=1,
        iterations=1,
    )
    record("A1_priority_vs_fcfs", a1.render(result))
    # Reproduction criteria: the aggregate model overestimates gold and
    # underestimates bronze; the priority model stays accurate.
    for load in {row[0] for row in result.rows}:
        gold = [r for r in result.rows if r[0] == load and r[1] == "gold"][0]
        bronze = [r for r in result.rows if r[0] == load and r[1] == "bronze"][0]
        assert gold[4] > gold[2]
        assert bronze[4] < bronze[2]
    assert result.max_priority_error < 0.12
