"""Benchmark T2: analytic vs simulated power and energy."""

from repro.experiments import exp_t2_energy_accuracy as t2


def test_bench_t2_energy_accuracy(benchmark, record):
    result = benchmark.pedantic(
        lambda: t2.run(horizon=2500.0, n_replications=4),
        rounds=1,
        iterations=1,
    )
    record("T2_energy_accuracy", t2.render(result))
    assert result.max_rel_error < 0.10
