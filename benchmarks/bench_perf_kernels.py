"""Performance benchmarks of the library's hot kernels.

Unlike the experiment benchmarks (one-shot pipelines), these use
pytest-benchmark's repeated-round timing to track the cost of the
operations a user pays for most often: an analytic cluster evaluation,
one optimizer solve of each family, a simulation replication, and the
Erlang-C recurrence at scale.
"""

import numpy as np

from repro.baselines.exhaustive import exhaustive_cost_minimization
from repro.core import minimize_cost, minimize_delay, minimize_energy
from repro.core.batch_eval import BatchEvaluator
from repro.core.delay import end_to_end_delays
from repro.core.energy import average_power
from repro.experiments.common import canonical_cluster, canonical_sla, canonical_workload
from repro.queueing import erlang_c
from repro.simulation import simulate, simulate_replications


def test_perf_analytic_evaluation(benchmark):
    """One full analytic delay+power evaluation of the canonical cluster."""
    cluster, workload = canonical_cluster(), canonical_workload()

    def evaluate():
        return end_to_end_delays(cluster, workload), average_power(cluster, workload)

    delays, power = benchmark(evaluate)
    assert delays.shape == (3,) and power > 0


def test_perf_batch_evaluation_100(benchmark):
    """100-candidate batched delay+power evaluation in one call — the
    vectorized path the optimizers and the exhaustive baseline use."""
    cluster, workload = canonical_cluster(), canonical_workload()
    evaluator = BatchEvaluator(cluster, workload)
    speeds = np.random.default_rng(0).uniform(0.6, 1.0, size=(100, cluster.num_tiers))

    def evaluate():
        return evaluator.end_to_end_delays(speeds), evaluator.average_power(speeds)

    delays, power = benchmark(evaluate)
    assert delays.shape == (100, 3) and power.shape == (100,)


def test_perf_exhaustive_canonical_10(benchmark):
    """Exhaustive P3 certification on the canonical instance (10^3
    grid, vectorized feasibility + replayed prune)."""
    cluster, workload, sla = canonical_cluster(), canonical_workload(), canonical_sla()
    counts, cost, evals = benchmark(
        exhaustive_cost_minimization, cluster, workload, sla, 10
    )
    assert counts.tolist() == [1, 3, 2] and cost == 16.5 and evals == 47


def test_perf_erlang_c_500_servers(benchmark):
    """Erlang-C at 500 servers (the recurrence must stay O(c) and stable)."""
    result = benchmark(erlang_c, 500, 480.0)
    assert 0.0 < result < 1.0


def test_perf_p1_solve(benchmark):
    """One P1 solve (3 tiers, 3 classes, 3 starts)."""
    cluster, workload = canonical_cluster(), canonical_workload()
    budget = 0.9 * cluster.average_power(workload.arrival_rates)
    result = benchmark.pedantic(
        lambda: minimize_delay(cluster, workload, budget, n_starts=3),
        rounds=3,
        iterations=1,
    )
    assert result.success


def test_perf_p2b_solve(benchmark):
    """One P2b solve (per-class bounds)."""
    cluster, workload = canonical_cluster(), canonical_workload()
    bounds = end_to_end_delays(cluster, workload) * 1.3
    result = benchmark.pedantic(
        lambda: minimize_energy(cluster, workload, class_delay_bounds=bounds, n_starts=3),
        rounds=3,
        iterations=1,
    )
    assert result.success


def test_perf_p3_solve(benchmark):
    """One P3 solve (greedy + local search, speeds pinned)."""
    cluster, workload, sla = canonical_cluster(), canonical_workload(), canonical_sla()
    result = benchmark.pedantic(
        lambda: minimize_cost(cluster, workload, sla, optimize_speeds=False),
        rounds=3,
        iterations=1,
    )
    assert result.total_cost > 0


def test_perf_simulation_replication(benchmark):
    """One 500-time-unit replication of the canonical cluster
    (~12k jobs through 3 priority tiers)."""
    cluster, workload = canonical_cluster(), canonical_workload()
    result = benchmark.pedantic(
        lambda: simulate(cluster, workload, horizon=500.0, seed=99),
        rounds=3,
        iterations=1,
    )
    assert result.n_completed.sum() > 1000


def test_perf_parallel_replications(benchmark):
    """8 replications at horizon 500 through the parallel engine
    (n_jobs = all cores; bit-identical to serial by construction).

    On a multi-core machine this is the ISSUE's >= 2x wall-clock
    speedup check; on a single core it degenerates to serial + pool
    overhead, so the assertion is on correctness, not speed.
    """
    import os

    cluster, workload = canonical_cluster(), canonical_workload()
    result = benchmark.pedantic(
        lambda: simulate_replications(
            cluster, workload, horizon=500.0, n_replications=8, seed=99, n_jobs=-1
        ),
        rounds=1,
        iterations=1,
    )
    assert result.n_replications == 8
    expected_backend = "process" if (os.cpu_count() or 1) > 1 else "serial"
    assert result.meta["backend"] in (expected_backend, "process")


def test_perf_replication_cache_warm(benchmark, tmp_path):
    """Warm-cache replicated run: must return without simulating."""
    cluster, workload = canonical_cluster(), canonical_workload()
    kw = dict(horizon=500.0, n_replications=8, seed=99, cache_dir=str(tmp_path))
    cold = simulate_replications(cluster, workload, **kw)  # populate

    warm = benchmark.pedantic(
        lambda: simulate_replications(cluster, workload, **kw),
        rounds=3,
        iterations=1,
    )
    assert warm.meta["cache_hits"] == 8 and warm.meta["cache_misses"] == 0
    assert warm.mean_delay == cold.mean_delay


def test_perf_adaptive_precision_engine(benchmark):
    """Adaptive CV-stopping run on the small validation cluster: must
    certify the precision target well below the replication cap — a
    fallback to naive stopping (or a dead control variate) shows up
    here as the cap being exhausted, exactly the regression the gated
    ``adaptive_vs_fixed`` bench kernel guards in CI."""
    from repro.experiments.common import small_cluster, small_workload
    from repro.simulation import PrecisionTarget, simulate_replications_adaptive

    cluster, workload = small_cluster(), small_workload()
    target = PrecisionTarget(
        rel_ci={"mean_delay": 0.05, "average_power": 0.004},
        min_replications=3,
        max_replications=32,
        round_size=1,
        estimator="cv",
    )
    result = benchmark.pedantic(
        lambda: simulate_replications_adaptive(
            cluster, workload, horizon=500.0, target=target, seed=123
        ),
        rounds=1,
        iterations=1,
    )
    ad = result.meta["adaptive"]
    assert ad["target_met"]
    assert ad["n_simulated"] <= 8  # cap is 32; early stop is the point


def test_perf_crn_paired_comparison(benchmark):
    """One CRN-paired scenario comparison (NP vs PR discipline): the
    paired-t difference CI must beat the independent-streams CI on the
    headline metric, or the shared-seed contract broke."""
    from repro.simulation import Scenario, compare_scenarios

    workload = canonical_workload()
    comp = benchmark.pedantic(
        lambda: compare_scenarios(
            Scenario(canonical_cluster(discipline="priority_np"), workload, label="np"),
            Scenario(canonical_cluster(discipline="priority_pr"), workload, label="pr"),
            horizon=400.0,
            n_replications=5,
            seed=321,
        ),
        rounds=1,
        iterations=1,
    )
    headline = comp.metrics["mean_delay"]
    assert headline["paired"].halfwidth < headline["independent"].halfwidth
    assert headline["vr_factor"] > 1.0
