"""Benchmark A7 (ablation): online drift-plus-penalty control."""

from repro.experiments import exp_a7_online_control as a7


def test_bench_a7_online_control(benchmark, record):
    result = benchmark.pedantic(lambda: a7.run(), rounds=1, iterations=1)
    record("A7_online_control", a7.render(result))
    by_key = {(r[0], r[1]): r for r in result.rows}
    # Reproduction criteria: on the diurnal day the queue-driven
    # controller meets the delay bound without rate knowledge and lands
    # within 5% of the oracle plan's energy.
    diurnal_dpp = by_key[("diurnal", "dpp")]
    diurnal_oracle = by_key[("diurnal", "oracle")]
    assert diurnal_dpp[5] == "yes"
    assert diurnal_dpp[2] <= 1.05 * diurnal_oracle[2]
    # Under the unforecast flash crowd the forecast plan misses the
    # bound while the online controller still holds it.
    assert by_key[("flash-crowd", "dpp")][5] == "yes"
    assert by_key[("flash-crowd", "forecast")][5] == "NO"
    # The V sweep traces a monotone energy/delay frontier.
    energies = [row[1] for row in result.frontier]
    delays = [row[2] for row in result.frontier]
    assert all(b < a for a, b in zip(energies, energies[1:]))
    assert all(b > a for a, b in zip(delays, delays[1:]))
