"""Benchmark A2 (ablation): non-preemptive vs preemptive-resume."""

from repro.experiments import exp_a2_np_vs_pr as a2


def test_bench_a2_np_vs_pr(benchmark, record):
    result = benchmark.pedantic(
        lambda: a2.run(horizon=2500.0, n_replications=4),
        rounds=1,
        iterations=1,
    )
    record("A2_np_vs_pr", a2.render(result))
    # Reproduction criteria: preemption helps the top class; analytic
    # formulas track both disciplines.
    assert result.gold_improves_under_pr
    assert result.max_rel_error < 0.12
