"""Benchmark F8: dynamic vs static power management on a diurnal day."""

from repro.experiments import exp_f8_dynamic_power as f8


def test_bench_f8_dynamic_power(benchmark, record):
    result = benchmark.pedantic(lambda: f8.run(), rounds=1, iterations=1)
    record("F8_dynamic_power", f8.render(result))
    # Reproduction criteria: the dynamic controller is fully compliant,
    # saves real energy against the compliant static-peak policy, and
    # the aggressive static-mean policy violates the bound at peak.
    assert result.dynamic_fully_compliant
    assert result.dynamic_saves_vs_peak > 0.05
    assert result.static_mean_compliance < 1.0
