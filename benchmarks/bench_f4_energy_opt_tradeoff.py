"""Benchmark F4: P2a minimal power vs aggregate delay bound frontier."""

import numpy as np

from repro.experiments import exp_f4_energy_opt_tradeoff as f4


def test_bench_f4_energy_opt_tradeoff(benchmark, record):
    result = benchmark.pedantic(lambda: f4.run(n_points=8), rounds=1, iterations=1)
    record("F4_energy_opt_tradeoff", f4.render(result))
    opt = result.series.columns["optimal power (W)"]
    # Reproduction criteria: power non-increasing as the bound loosens;
    # optimizer no worse than the uniform baseline anywhere.
    assert np.all(np.diff(opt) <= 1e-6)
    assert result.optimal_dominates
