"""Benchmark F5: the energy price of per-class SLA guarantees."""

import numpy as np

from repro.experiments import exp_f5_perclass_vs_aggregate as f5


def test_bench_f5_perclass_vs_aggregate(benchmark, record):
    result = benchmark.pedantic(lambda: f5.run(), rounds=1, iterations=1)
    record("F5_perclass_vs_aggregate", f5.render(result))
    powers = result.series.columns["P2b power (W)"]
    # Reproduction criteria: per-class constraints never cheaper than
    # the aggregate constraint, and tight gold bounds cost extra power.
    assert result.per_class_at_least_aggregate
    finite = powers[np.isfinite(powers)]
    assert finite[-1] > finite.min() + 1e-6
