"""Benchmark A5 (ablation): decomposition error vs network depth."""

from repro.experiments import exp_a5_decomposition_depth as a5


def test_bench_a5_decomposition_depth(benchmark, record):
    result = benchmark.pedantic(
        lambda: a5.run(horizon=25000.0, n_replications=3),
        rounds=1,
        iterations=1,
    )
    record("A5_decomposition_depth", a5.render(result))
    # Reproduction criteria: depth-1 near-exact up to simulation noise
    # (Cobham is exact there); error grows with depth but stays below
    # ~20% even at depth 6 with SCV-2 demands — usable for the paper's
    # few-tier clusters, quantifiably degrading for deep stacks.
    assert result.worst_error_at_depth(1) < 0.08
    assert result.max_error < 0.22
