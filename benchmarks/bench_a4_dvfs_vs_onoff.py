"""Benchmark A4 (ablation): DVFS vs server on/off vs combined."""

import numpy as np

from repro.experiments import exp_a4_dvfs_vs_onoff as a4


def test_bench_a4_dvfs_vs_onoff(benchmark, record):
    result = benchmark.pedantic(lambda: a4.run(), rounds=1, iterations=1)
    record("A4_dvfs_vs_onoff", a4.render(result))
    # Reproduction criteria: the combined mechanism is never worse than
    # either alone, and actually beats pure DVFS somewhere (at loose
    # bounds it can switch whole servers off).
    assert result.combined_never_worse
    dvfs = result.series.columns["DVFS power (W)"]
    both = result.series.columns["combined power (W)"]
    ok = np.isfinite(dvfs) & np.isfinite(both)
    assert np.any(both[ok] < dvfs[ok] - 1.0)
