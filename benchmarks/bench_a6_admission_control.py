"""Benchmark A6 (ablation): admission control vs open queueing."""

from repro.experiments import exp_a6_admission_control as a6


def test_bench_a6_admission_control(benchmark, record):
    result = benchmark.pedantic(lambda: a6.run(), rounds=1, iterations=1)
    record("A6_admission_control", a6.render(result))
    # Reproduction criteria: the categorical crossover — the open queue
    # diverges beyond capacity while the loss design's accepted delay
    # is flat; simulated blocking tracks Erlang-B on both sides.
    assert result.queueing_diverges
    assert result.loss_delay_flat
    for row in result.sim_rows:
        assert abs(row[1] - row[2]) / row[1] < 0.06
        assert abs(row[4] - row[3]) / row[3] < 0.05
