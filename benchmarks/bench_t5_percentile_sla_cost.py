"""Benchmark T5: provisioning cost under percentile SLAs."""

import numpy as np

from repro.experiments import exp_t5_percentile_sla_cost as t5


def test_bench_t5_percentile_sla_cost(benchmark, record):
    result = benchmark.pedantic(lambda: t5.run(), rounds=1, iterations=1)
    record("T5_percentile_sla_cost", t5.render(result))
    costs = result.series.columns["cost with p95 bounds"]
    # Reproduction criteria: percentile guarantees never cheaper than
    # mean-only, with the premium appearing as the multiplier tightens
    # below the exponential-tail knee (~3x the mean).
    assert result.percentile_never_cheaper
    finite = costs[np.isfinite(costs)]
    assert finite[-1] > finite[0]  # tightest multiplier costs strictly more
