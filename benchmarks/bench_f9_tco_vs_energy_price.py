"""Benchmark F9: TCO-optimal allocation vs energy price."""

from repro.experiments import exp_f9_tco_vs_energy_price as f9


def test_bench_f9_tco_vs_energy_price(benchmark, record):
    result = benchmark.pedantic(lambda: f9.run(), rounds=1, iterations=1)
    record("F9_tco_vs_energy_price", f9.render(result))
    # Reproduction criteria: anchored at the P3 optimum at zero price;
    # hardware substitutes for energy as the price rises (servers up,
    # speeds down, power down somewhere along the sweep).
    assert result.anchored_at_p3
    assert result.servers_monotone_in_price
    power = result.series.columns["power (W)"]
    assert power[-1] < power[0]
