"""Benchmark T3: P3 minimum-cost allocation vs exhaustive & baselines."""

from repro.experiments import exp_t3_cost_allocation as t3


def test_bench_t3_cost_allocation(benchmark, record):
    result = benchmark.pedantic(lambda: t3.run(small_cap=8), rounds=1, iterations=1)
    record("T3_cost_allocation", t3.render(result))
    # Reproduction criteria: exhaustive certification on the small
    # instance and a feasible optimizer allocation no costlier than
    # any feasible baseline on the canonical instance.
    assert result.certified
    rows = {row[0]: row for row in result.rows}
    opt = rows["P3 optimizer"]
    assert opt[3]  # SLA met
    for name, row in rows.items():
        if name != "P3 optimizer" and row[3]:
            assert opt[2] <= row[2] + 1e-9, f"{name} beat the optimizer"
