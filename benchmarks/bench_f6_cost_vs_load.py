"""Benchmark F6: minimum provisioning cost vs offered load."""

import numpy as np

from repro.experiments import exp_f6_cost_vs_load as f6


def test_bench_f6_cost_vs_load(benchmark, record):
    result = benchmark(f6.run)
    record("F6_cost_vs_load", f6.render(result))
    cost = result.series.columns["P3 cost"]
    # Reproduction criteria: a non-decreasing cost staircase that never
    # exceeds the uniform-headroom baseline.
    assert np.all(np.diff(cost[np.isfinite(cost)]) >= 0)
    assert result.optimizer_never_costlier
