"""Benchmark T4: solver efficiency and optimality gaps."""

from repro.experiments import exp_t4_solver_efficiency as t4


def test_bench_t4_solver_efficiency(benchmark, record):
    result = benchmark.pedantic(lambda: t4.run(), rounds=1, iterations=1)
    record("T4_solver_efficiency", t4.render(result))
    # Reproduction criteria: zero optimality gap wherever exhaustive
    # search certifies, and sub-second P1/P2 solves ("efficient").
    assert result.all_gaps_zero
    assert result.p1_seconds < 5.0
    assert result.p2b_seconds < 10.0
