"""Benchmark T1: analytic vs simulated per-class end-to-end delay."""

from repro.experiments import exp_t1_delay_accuracy as t1


def test_bench_t1_delay_accuracy(benchmark, record):
    result = benchmark.pedantic(
        lambda: t1.run(horizon=2500.0, n_replications=4),
        rounds=1,
        iterations=1,
    )
    record("T1_delay_accuracy", t1.render(result))
    # Reproduction criterion: the analytic delays track simulation
    # within a few percent ("accurate").
    assert result.max_rel_error < 0.12
