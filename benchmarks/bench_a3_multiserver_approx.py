"""Benchmark A3 (ablation): multi-server priority approximation error."""

from repro.experiments import exp_a3_multiserver_approx as a3


def test_bench_a3_multiserver_approx(benchmark, record):
    result = benchmark.pedantic(
        lambda: a3.run(horizon=25000.0, n_replications=3),
        rounds=1,
        iterations=1,
    )
    record("A3_multiserver_approx", a3.render(result))
    # Reproduction criteria: near-exact agreement in the common-mu case
    # (the formula is exact there); bounded error for Bondi-Buzen.
    assert result.max_exact_error < 0.08
    assert result.max_approx_error < 0.25
