"""Benchmark F3: P1 optimal delay vs power budget frontier."""

import numpy as np

from repro.experiments import exp_f3_delay_opt_tradeoff as f3


def test_bench_f3_delay_opt_tradeoff(benchmark, record):
    result = benchmark.pedantic(lambda: f3.run(n_points=8), rounds=1, iterations=1)
    record("F3_delay_opt_tradeoff", f3.render(result))
    # Reproduction criteria: frontier decreasing in the budget and the
    # optimizer dominating both budget-matched baselines.
    opt = result.series.columns["optimal delay (s)"]
    assert np.all(np.diff(opt) <= 1e-9)
    assert result.optimal_dominates
