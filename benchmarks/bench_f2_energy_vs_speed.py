"""Benchmark F2: power / per-request energy / delay vs uniform speed."""

import numpy as np

from repro.experiments import exp_f2_energy_vs_speed as f2


def test_bench_f2_energy_vs_speed(benchmark, record):
    result = benchmark(f2.run)
    record("F2_energy_vs_speed", f2.render(result))
    for alpha, series in result.series_by_alpha.items():
        # Reproduction criteria: power strictly increasing, delay
        # strictly decreasing in speed — the trade-off exists at every
        # DVFS exponent.
        assert np.all(np.diff(series.columns["power (W)"]) > 0), alpha
        assert np.all(np.diff(series.columns["mean delay (s)"]) < 0), alpha
