"""Benchmark F1: per-class end-to-end delay vs offered load."""

import numpy as np

from repro.experiments import exp_f1_delay_vs_load as f1


def test_bench_f1_delay_vs_load(benchmark, record):
    result = benchmark(f1.run)
    record("F1_delay_vs_load", f1.render(result))
    cols = result.series.columns
    # Reproduction criteria: monotone growth; priority ordering; bronze
    # diverges first (its delay grows fastest near saturation).
    assert np.all(np.diff(cols["mean (s)"]) > 0)
    assert np.all(cols["T[gold] (s)"] < cols["T[bronze] (s)"])
    growth_gold = cols["T[gold] (s)"][-1] / cols["T[gold] (s)"][0]
    growth_bronze = cols["T[bronze] (s)"][-1] / cols["T[bronze] (s)"][0]
    assert growth_bronze > 3.0 * growth_gold
