"""Benchmark F7: percentile-delay approximation vs empirical percentiles."""

from repro.experiments import exp_f7_percentile_accuracy as f7


def test_bench_f7_percentile_accuracy(benchmark, record):
    result = benchmark.pedantic(
        lambda: f7.run(horizon=2500.0, n_replications=4),
        rounds=1,
        iterations=1,
    )
    record("F7_percentile_accuracy", f7.render(result))
    # Reproduction criteria: the hypoexponential tail approximation
    # tracks simulated percentiles within the expected band — tightest
    # for the gold class, within ~20% overall up to p95.
    assert result.gold_max_error < 0.15
    for level in (0.9, 0.95):
        assert result.max_error_at(level) < 0.20


def test_bench_f7b_method_comparison(benchmark, record):
    result = benchmark.pedantic(
        lambda: f7.run_fcfs(horizon=2500.0, n_replications=4),
        rounds=1,
        iterations=1,
    )
    record("F7b_percentile_methods", f7.render_fcfs(result))
    # Reproduction criteria: the exact M/PH/1 path dominates the
    # hypoexponential approximation wherever it applies; its residual
    # error is the tandem decomposition, not the tail shape.
    assert result.exact_beats_hypoexp
    assert result.max_exact_error < 0.15
