"""A7 — online drift-plus-penalty control vs. re-solved static optima.

The paper's P2a optimizer — and its model-predictive deployment in F8 —
needs the arrival-rate vector. This ablation asks what happens when the
controller *doesn't get one*: a drift-plus-penalty (DPP) rule watching
only queue lengths, against the planners, in trace-driven simulation.

Four policies replay the **same** arrival trace (common random
numbers), so every gap is a pure policy effect:

* **oracle** — :func:`repro.core.plan_speed_schedule` on the trace's
  *true* windowed rates (unrealizable upper bound on planning);
* **forecast** — the same planner fed a
  :func:`repro.core.blended_forecast` of surge-free history (what a
  deployed MPC controller actually has);
* **max-speed** — every tier at full speed (no power management);
* **dpp** — :class:`repro.control.DriftPlusPenaltyController`: per
  tier, minimize ``V·kappa·s^alpha − Q·s`` each half-second from queue
  counts alone.

Two scenarios stress the two failure axes of planning:

* **diurnal** — a smooth sinusoidal day. Planners shine (tomorrow
  looks like today); the question is how close queue-only DPP gets to
  the oracle's energy while meeting the SLA.
* **flash-crowd** — the same day with a rectangular surge absent from
  the forecast's history. The forecast plan under-provisions straight
  into the surge and violates the SLA; DPP sees the backlog and ramps.

A V-parameter sweep on the diurnal trace traces the controller's
power/delay frontier (the online analogue of F4's P2a curve), rendered
as an ASCII scatter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.tables import ascii_scatter, ascii_table
from repro.control import (
    DriftPlusPenaltyController,
    PlannedSpeedPolicy,
    StaticSpeedPolicy,
    run_controlled,
)
from repro.core.controller import plan_speed_schedule
from repro.core.forecast import blended_forecast
from repro.exceptions import ModelValidationError
from repro.experiments.common import CLASS_NAMES, canonical_cluster, canonical_workload
from repro.workload.timevarying import diurnal_trace, flash_crowd_trace

__all__ = ["A7Result", "run", "render"]

POLICIES = ("oracle", "forecast", "max-speed", "dpp")


@dataclass
class A7Result:
    """Per-scenario policy scorecards plus the DPP V-frontier."""

    max_mean_delay: float
    v_param: float
    rows: list[list[Any]] = field(default_factory=list)
    frontier: list[list[Any]] = field(default_factory=list)  # V, energy, delay
    notes: list[str] = field(default_factory=list)


def _policy_set(
    cluster,
    trace,
    history_rates: np.ndarray,
    plan_window: float,
    max_mean_delay: float,
    plan_margin: float,
    v_param: float,
    n_starts: int,
):
    """Build the four comparison policies for one evaluation trace."""
    starts, true_rates = trace.windowed_rates(plan_window)
    period = starts.size
    planned_bound = max_mean_delay * plan_margin

    oracle_plans = plan_speed_schedule(
        cluster, CLASS_NAMES, starts, true_rates, trace.horizon, planned_bound,
        n_starts=n_starts,
    )
    forecast_rates = blended_forecast(history_rates, period=period)
    forecast_plans = plan_speed_schedule(
        cluster, CLASS_NAMES, starts, forecast_rates, trace.horizon, planned_bound,
        n_starts=n_starts,
    )
    return {
        "oracle": PlannedSpeedPolicy(oracle_plans, name="oracle"),
        "forecast": PlannedSpeedPolicy(forecast_plans, name="forecast"),
        "max-speed": StaticSpeedPolicy(
            np.array([t.spec.max_speed for t in cluster.tiers]), name="max-speed"
        ),
        "dpp": DriftPlusPenaltyController(cluster, v_param),
    }


def run(
    horizon: float = 2400.0,
    plan_window: float = 100.0,
    epoch_length: float = 0.5,
    max_mean_delay: float = 0.35,
    v_param: float = 8e-4,
    v_sweep: tuple[float, ...] = (1e-5, 1e-4, 3e-4, 8e-4, 2e-3, 5e-3),
    trough: float = 0.4,
    peak: float = 1.3,
    surge_factor: float = 1.8,
    plan_margin: float = 0.8,
    n_starts: int = 1,
    seed: int = 11,
    trace_seed: int = 3,
    controller: str = "all",
) -> A7Result:
    """Run the online-control comparison.

    Parameters
    ----------
    horizon:
        One simulated "day" (the diurnal period equals the horizon).
    plan_window:
        Planning-epoch length for the oracle/forecast schedules.
    epoch_length:
        The online controller's decision period — three orders of
        magnitude finer than the planners' epochs, because queue
        observations are cheap and rate estimates are not.
    v_param:
        DPP's energy/backlog trade-off for the headline comparison.
    v_sweep:
        V values tracing the frontier on the diurnal trace.
    surge_factor:
        Flash-crowd multiplier on every class's rate over the surge
        window (10% of the day, starting at 30%).
    plan_margin:
        Planners solve at ``plan_margin * max_mean_delay``: the
        analytic optimum rides its constraint, so an unmargined plan
        coin-flips the simulated bound.
    controller:
        ``"all"`` or one of ``oracle|forecast|max-speed|dpp`` to run a
        single policy (the ``--controller`` CLI knob).
    """
    if controller != "all" and controller not in POLICIES:
        raise ModelValidationError(
            f"controller must be 'all' or one of {POLICIES}, got {controller!r}"
        )
    cluster = canonical_cluster()
    base = canonical_workload().arrival_rates
    selected = POLICIES if controller == "all" else (controller,)

    # Surge-free history: two independent "days" of the same diurnal
    # profile, windowed like the planning grid. Its sampling noise is
    # the forecast error; its lack of a surge is the forecast blind
    # spot.
    history = diurnal_trace(
        base, 2.0 * horizon, period=horizon, trough=trough, peak=peak,
        seed=trace_seed + 100, class_names=CLASS_NAMES,
    )
    _, history_rates = history.windowed_rates(plan_window)

    scenarios = {
        "diurnal": diurnal_trace(
            base, horizon, period=horizon, trough=trough, peak=peak,
            seed=trace_seed, class_names=CLASS_NAMES,
        ),
        "flash-crowd": flash_crowd_trace(
            base, horizon,
            surge_start=0.3 * horizon, surge_duration=0.1 * horizon,
            surge_factor=surge_factor,
            period=horizon, trough=trough, peak=peak,
            seed=trace_seed + 1, class_names=CLASS_NAMES,
        ),
    }

    result = A7Result(max_mean_delay=max_mean_delay, v_param=v_param)
    scores: dict[tuple[str, str], Any] = {}
    for scen_name, trace in scenarios.items():
        policies = _policy_set(
            cluster, trace, history_rates, plan_window, max_mean_delay,
            plan_margin, v_param, n_starts,
        )
        for pol_name in selected:
            score = run_controlled(
                cluster, trace, policies[pol_name], epoch_length,
                max_mean_delay, seed=seed,
            )
            scores[(scen_name, pol_name)] = score
            result.rows.append(
                [
                    scen_name,
                    pol_name,
                    score.total_energy,
                    score.average_power,
                    score.mean_delay,
                    "yes" if score.sla_met else "NO",
                ]
            )

    # Frontier: DPP's V-sweep on the diurnal trace.
    for v in v_sweep:
        dpp = DriftPlusPenaltyController(cluster, v)
        score = run_controlled(
            cluster, scenarios["diurnal"], dpp, epoch_length, max_mean_delay,
            seed=seed,
        )
        result.frontier.append([v, score.total_energy, score.mean_delay])

    if ("diurnal", "dpp") in scores and ("diurnal", "oracle") in scores:
        ratio = (
            scores[("diurnal", "dpp")].total_energy
            / scores[("diurnal", "oracle")].total_energy
        )
        result.notes.append(
            f"diurnal: dpp energy = {ratio:.3f} x oracle (no rate knowledge)"
        )
    if ("flash-crowd", "dpp") in scores and ("flash-crowd", "forecast") in scores:
        dpp_s, fc_s = scores[("flash-crowd", "dpp")], scores[("flash-crowd", "forecast")]
        result.notes.append(
            "flash-crowd: dpp "
            + ("meets" if dpp_s.sla_met else "misses")
            + " the bound, forecast plan "
            + ("meets" if fc_s.sla_met else "misses")
            + f" it (mean delays {dpp_s.mean_delay:.3f} vs {fc_s.mean_delay:.3f})"
        )
    return result


def render(result: A7Result) -> str:
    """Rendered scorecards, frontier table and ASCII frontier plot."""
    parts = [
        ascii_table(
            ["scenario", "policy", "energy", "avg power", "mean delay",
             f"delay<={result.max_mean_delay:g}"],
            result.rows,
            title=(
                "A7 -- online drift-plus-penalty control vs planned schedules "
                f"(headline V={result.v_param:g})"
            ),
        )
    ]
    if result.frontier:
        parts.append("")
        parts.append(
            ascii_table(
                ["V", "energy", "mean delay"],
                result.frontier,
                title="DPP power/delay frontier (diurnal trace)",
            )
        )
        parts.append("")
        parts.append(
            ascii_scatter(
                [r[2] for r in result.frontier],
                [r[1] for r in result.frontier],
                labels=[f"V={r[0]:g}" for r in result.frontier],
                title="frontier: energy vs mean delay (V rises left to right)",
                xlabel="mean delay",
                ylabel="energy",
            )
        )
    for note in result.notes:
        parts.append("")
        parts.append(note)
    return "\n".join(parts)
