"""F9 — total cost of ownership vs electricity price (P4 sweep).

Extension: sweep the energy price and solve P4 at each point, tracking
how the optimum shifts between "few fast servers" (hardware-dominated)
and "more slower servers" (energy-dominated).

Expected shape: total cost increasing and concave-ish in the price
(the optimizer keeps substituting hardware for energy); the server
count is non-decreasing and the mean speed non-increasing along the
sweep; at price 0 the allocation equals the P3 optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.series import SweepSeries
from repro.core.opt_cost import minimize_cost
from repro.core.opt_tco import minimize_tco
from repro.experiments.common import canonical_cluster, canonical_sla, canonical_workload

__all__ = ["F9Result", "run", "render"]


@dataclass
class F9Result:
    """The price sweep plus the zero-price anchor check."""

    series: SweepSeries
    p3_counts: np.ndarray
    zero_price_counts: np.ndarray

    @property
    def anchored_at_p3(self) -> bool:
        """At price 0, P4 deploys exactly the P3 counts."""
        return bool(np.array_equal(self.p3_counts, self.zero_price_counts))

    @property
    def servers_monotone_in_price(self) -> bool:
        """Total server count never decreases as energy gets pricier."""
        servers = self.series.columns["total servers"]
        return bool(np.all(np.diff(servers) >= 0))


def run(prices=(0.0, 0.005, 0.01, 0.02, 0.04, 0.08), load_factor: float = 1.2) -> F9Result:
    """Solve P4 along the energy-price sweep on the canonical cluster."""
    cluster = canonical_cluster()
    workload = canonical_workload(load_factor)
    sla = canonical_sla()

    p3 = minimize_cost(cluster, workload, sla, optimize_speeds=False)

    total, server_cost, energy_cost, servers, mean_speed, power = [], [], [], [], [], []
    zero_counts = None
    for price in prices:
        alloc = minimize_tco(cluster, workload, sla, energy_price=float(price))
        total.append(alloc.total_cost)
        server_cost.append(alloc.server_cost)
        energy_cost.append(alloc.energy_cost)
        servers.append(float(alloc.server_counts.sum()))
        mean_speed.append(float(alloc.speeds.mean()))
        power.append(alloc.average_power)
        if price == 0.0:
            zero_counts = alloc.server_counts

    series = SweepSeries(
        name="F9: TCO-optimal allocation vs energy price",
        x_label="energy price (cost/W)",
        x=np.asarray(prices, dtype=float),
        columns={
            "total cost": np.array(total),
            "server cost": np.array(server_cost),
            "energy cost": np.array(energy_cost),
            "total servers": np.array(servers),
            "mean speed": np.array(mean_speed),
            "power (W)": np.array(power),
        },
    )
    return F9Result(
        series=series,
        p3_counts=p3.server_counts,
        zero_price_counts=zero_counts if zero_counts is not None else p3.server_counts,
    )


def render(result: F9Result) -> str:
    """The sweep plus the anchor/monotonicity checks."""
    out = result.series.to_table()
    out += (
        f"\nzero-price P4 counts equal P3 counts: {result.anchored_at_p3}"
        f"\nserver count monotone in the energy price: {result.servers_monotone_in_price}"
    )
    return out
