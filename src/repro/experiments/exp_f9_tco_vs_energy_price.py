"""F9 — total cost of ownership vs electricity price (P4 sweep).

Extension: sweep the energy price and solve P4 at each point, tracking
how the optimum shifts between "few fast servers" (hardware-dominated)
and "more slower servers" (energy-dominated).

Every P4 solve is anchored by the *same* price-independent P3 problem,
so the sweep shares one feasibility memo and seeds every anchor with
the P3 optimum (``p3_counts_hint``): after the first point the anchor
re-solve costs zero fresh feasibility evaluations. The per-point hint
from :func:`repro.optimize.sweep.continuation_sweep` is deliberately
unused — seeding the anchor with the *previous price's* deployed
counts would change which problem the anchor solves.

Expected shape: total cost increasing and concave-ish in the price
(the optimizer keeps substituting hardware for energy); the server
count is non-decreasing and the mean speed non-increasing along the
sweep; at price 0 the allocation equals the P3 optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.series import SweepSeries
from repro.core.opt_cost import minimize_cost
from repro.core.opt_tco import minimize_tco
from repro.experiments.common import canonical_cluster, canonical_sla, canonical_workload
from repro.optimize.sweep import ContinuationSweep, continuation_sweep

__all__ = ["F9Result", "run", "render"]


@dataclass
class F9Result:
    """The price sweep plus the zero-price anchor check."""

    series: SweepSeries
    p3_counts: np.ndarray
    zero_price_counts: np.ndarray
    tco_sweep: ContinuationSweep | None = field(default=None, repr=False)

    @property
    def anchored_at_p3(self) -> bool:
        """At price 0, P4 deploys exactly the P3 counts."""
        return bool(np.array_equal(self.p3_counts, self.zero_price_counts))

    @property
    def servers_monotone_in_price(self) -> bool:
        """Total server count never decreases as energy gets pricier."""
        servers = self.series.columns["total servers"]
        return bool(np.all(np.diff(servers) >= 0))


def run(prices=(0.0, 0.005, 0.01, 0.02, 0.04, 0.08), load_factor: float = 1.2) -> F9Result:
    """Solve P4 along the energy-price sweep on the canonical cluster."""
    cluster = canonical_cluster()
    workload = canonical_workload(load_factor)
    sla = canonical_sla()

    # One (cluster, workload, sla) triple for the whole sweep: the P3
    # anchor and its feasibility memo are shared across every price.
    memo: dict[tuple[int, ...], tuple[bool, float]] = {}
    p3 = minimize_cost(
        cluster, workload, sla, optimize_speeds=False, feasibility_memo=memo
    )

    def solve(price: float, hint: np.ndarray | None):
        return minimize_tco(
            cluster,
            workload,
            sla,
            energy_price=float(price),
            p3_counts_hint=p3.server_counts,
            feasibility_memo=memo,
        )

    sweep = continuation_sweep(solve, np.asarray(prices, dtype=float), warm_start=False, label="f9.tco")

    zero_counts = None
    for point in sweep.points:
        if point.result is not None and float(point.value) == 0.0:
            zero_counts = point.result.server_counts
            break

    series = SweepSeries(
        name="F9: TCO-optimal allocation vs energy price",
        x_label="energy price (cost/W)",
        x=np.asarray(prices, dtype=float),
        columns={
            "total cost": sweep.column(lambda a: a.total_cost),
            "server cost": sweep.column(lambda a: a.server_cost),
            "energy cost": sweep.column(lambda a: a.energy_cost),
            "total servers": sweep.column(lambda a: float(a.server_counts.sum())),
            "mean speed": sweep.column(lambda a: float(a.speeds.mean())),
            "power (W)": sweep.column(lambda a: a.average_power),
        },
    )
    return F9Result(
        series=series,
        p3_counts=p3.server_counts,
        zero_price_counts=zero_counts if zero_counts is not None else p3.server_counts,
        tco_sweep=sweep,
    )


def render(result: F9Result) -> str:
    """The sweep plus the anchor/monotonicity checks."""
    out = result.series.to_table()
    out += (
        f"\nzero-price P4 counts equal P3 counts: {result.anchored_at_p3}"
        f"\nserver count monotone in the energy price: {result.servers_monotone_in_price}"
    )
    return out
