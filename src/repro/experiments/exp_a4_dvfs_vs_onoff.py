"""A4 — ablation: DVFS speed scaling vs server on/off vs both.

The paper manages power through speed scaling; the classic alternative
powers whole servers off. The two mechanisms attack different terms of
the tier power ``c·P_idle + R·κ·s^{α−1}``: on/off shrinks the idle
floor, DVFS shrinks the dynamic term. This ablation solves the same
P2a problem (min power s.t. a mean-delay bound) with each mechanism
and with their combination across a sweep of delay bounds.

The DVFS frontier runs by warm-start continuation
(:func:`repro.optimize.sweep.continuation_sweep`); the on/off and
combined mechanisms re-enumerate server counts per bound, so they stay
cold, and all three mechanisms run as independent series (``n_jobs``).

Expected shape: the combination is never worse than either mechanism
alone; DVFS wins where the dynamic term dominates (tight bounds force
servers on anyway), on/off wins at loose bounds where whole idle
servers can be shed; with the canonical idle/dynamic split the
combined curve hugs the better of the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.series import SweepSeries
from repro.baselines.onoff import min_power_onoff, min_power_onoff_with_dvfs
from repro.cluster.model import ClusterModel
from repro.core.opt_energy import minimize_energy
from repro.exceptions import InfeasibleProblemError
from repro.experiments.common import canonical_cluster, canonical_workload, stability_box_profile
from repro.optimize.sweep import ContinuationSweep, continuation_sweep, run_series
from repro.workload.classes import Workload

__all__ = ["A4Result", "run", "render"]


@dataclass
class A4Result:
    """Power of each mechanism along the delay-bound sweep."""

    series: SweepSeries
    dvfs_sweep: ContinuationSweep | None = field(default=None, repr=False)

    @property
    def combined_never_worse(self) -> bool:
        """Combined mechanism <= min(DVFS, on/off) everywhere (within
        solver tolerance)."""
        dvfs = self.series.columns["DVFS power (W)"]
        onoff = self.series.columns["on/off power (W)"]
        both = self.series.columns["combined power (W)"]
        best_single = np.fmin(dvfs, onoff)
        ok = np.isfinite(both) & np.isfinite(best_single)
        return bool(np.all(both[ok] <= best_single[ok] + 1.0))


def _dvfs_series(
    cluster: ClusterModel,
    workload: Workload,
    bounds: np.ndarray,
    n_starts: int,
    warm_start: bool,
) -> ContinuationSweep:
    """P2a at fixed counts (pure DVFS), warm-started along the bounds."""

    def solve(d: float, hint: np.ndarray | None):
        return minimize_energy(
            cluster, workload, max_mean_delay=float(d), n_starts=n_starts, x0_hint=hint
        )

    return continuation_sweep(solve, bounds, warm_start=warm_start, label="a4.dvfs")


def _onoff_series(
    cluster: ClusterModel, workload: Workload, bounds: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Server on/off at max speed: (power, active servers) per bound."""
    powers, servers = [], []
    for d in bounds:
        try:
            counts, p = min_power_onoff(cluster, workload, float(d))
            powers.append(p)
            servers.append(float(counts.sum()))
        except InfeasibleProblemError:
            powers.append(float("nan"))
            servers.append(float("nan"))
    return np.array(powers), np.array(servers)


def _combined_series(
    cluster: ClusterModel, workload: Workload, bounds: np.ndarray, n_starts: int
) -> np.ndarray:
    """On/off + DVFS combined: the count enumeration re-solves DVFS per
    candidate, so there is no single continuation path — stays cold."""
    out = []
    for d in bounds:
        try:
            _, _, p_both = min_power_onoff_with_dvfs(
                cluster, workload, float(d), n_starts=n_starts
            )
            out.append(p_both)
        except InfeasibleProblemError:
            out.append(float("nan"))
    return np.array(out)


def run(
    n_points: int = 6,
    load_factor: float = 1.0,
    n_starts: int = 3,
    warm_start: bool = True,
    n_jobs: int | None = None,
) -> A4Result:
    """Sweep mean-delay bounds; solve P2a by each mechanism."""
    cluster = canonical_cluster()
    workload = canonical_workload(load_factor)

    best = stability_box_profile(cluster, workload).best_mean_delay
    bounds = np.geomspace(best * 1.1, best * 6.0, n_points)

    series_out = run_series(
        {
            "dvfs": (_dvfs_series, (cluster, workload, bounds, n_starts, warm_start)),
            "onoff": (_onoff_series, (cluster, workload, bounds)),
            "combined": (_combined_series, (cluster, workload, bounds, n_starts)),
        },
        n_jobs=n_jobs,
    )
    sweep: ContinuationSweep = series_out["dvfs"]
    onoff_p, onoff_servers = series_out["onoff"]

    series = SweepSeries(
        name="A4: minimal power vs delay bound — DVFS vs server on/off vs combined",
        x_label="mean-delay bound (s)",
        x=bounds,
        columns={
            "DVFS power (W)": sweep.column(lambda r: r.meta["power"]),
            "on/off power (W)": onoff_p,
            "combined power (W)": series_out["combined"],
            "on/off active servers": onoff_servers,
        },
    )
    return A4Result(series=series, dvfs_sweep=sweep)


def render(result: A4Result) -> str:
    """The mechanism comparison plus the dominance check."""
    out = result.series.to_table()
    out += f"\ncombined never worse than either mechanism: {result.combined_never_worse}"
    return out
