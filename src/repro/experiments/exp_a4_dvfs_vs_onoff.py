"""A4 — ablation: DVFS speed scaling vs server on/off vs both.

The paper manages power through speed scaling; the classic alternative
powers whole servers off. The two mechanisms attack different terms of
the tier power ``c·P_idle + R·κ·s^{α−1}``: on/off shrinks the idle
floor, DVFS shrinks the dynamic term. This ablation solves the same
P2a problem (min power s.t. a mean-delay bound) with each mechanism
and with their combination across a sweep of delay bounds.

Expected shape: the combination is never worse than either mechanism
alone; DVFS wins where the dynamic term dominates (tight bounds force
servers on anyway), on/off wins at loose bounds where whole idle
servers can be shed; with the canonical idle/dynamic split the
combined curve hugs the better of the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.series import SweepSeries
from repro.baselines.onoff import min_power_onoff, min_power_onoff_with_dvfs
from repro.core.delay import mean_end_to_end_delay
from repro.core.opt_common import stability_speed_bounds
from repro.core.opt_energy import minimize_energy
from repro.exceptions import InfeasibleProblemError
from repro.experiments.common import canonical_cluster, canonical_workload

__all__ = ["A4Result", "run", "render"]


@dataclass
class A4Result:
    """Power of each mechanism along the delay-bound sweep."""

    series: SweepSeries

    @property
    def combined_never_worse(self) -> bool:
        """Combined mechanism <= min(DVFS, on/off) everywhere (within
        solver tolerance)."""
        dvfs = self.series.columns["DVFS power (W)"]
        onoff = self.series.columns["on/off power (W)"]
        both = self.series.columns["combined power (W)"]
        best_single = np.fmin(dvfs, onoff)
        ok = np.isfinite(both) & np.isfinite(best_single)
        return bool(np.all(both[ok] <= best_single[ok] + 1.0))


def run(n_points: int = 6, load_factor: float = 1.0, n_starts: int = 3) -> A4Result:
    """Sweep mean-delay bounds; solve P2a by each mechanism."""
    cluster = canonical_cluster()
    workload = canonical_workload(load_factor)

    box = stability_speed_bounds(cluster, workload)
    best = mean_end_to_end_delay(cluster.with_speeds([b[1] for b in box]), workload)
    bounds = np.geomspace(best * 1.1, best * 6.0, n_points)

    dvfs_p, onoff_p, both_p, onoff_servers = [], [], [], []
    for d in bounds:
        res = minimize_energy(cluster, workload, max_mean_delay=float(d), n_starts=n_starts)
        dvfs_p.append(float(res.meta["power"]))
        try:
            counts, p = min_power_onoff(cluster, workload, float(d))
            onoff_p.append(p)
            onoff_servers.append(float(counts.sum()))
        except InfeasibleProblemError:
            onoff_p.append(float("nan"))
            onoff_servers.append(float("nan"))
        try:
            _, _, p_both = min_power_onoff_with_dvfs(
                cluster, workload, float(d), n_starts=n_starts
            )
            both_p.append(p_both)
        except InfeasibleProblemError:
            both_p.append(float("nan"))

    series = SweepSeries(
        name="A4: minimal power vs delay bound — DVFS vs server on/off vs combined",
        x_label="mean-delay bound (s)",
        x=bounds,
        columns={
            "DVFS power (W)": np.array(dvfs_p),
            "on/off power (W)": np.array(onoff_p),
            "combined power (W)": np.array(both_p),
            "on/off active servers": np.array(onoff_servers),
        },
    )
    return A4Result(series=series)


def render(result: A4Result) -> str:
    """The mechanism comparison plus the dominance check."""
    out = result.series.to_table()
    out += f"\ncombined never worse than either mechanism: {result.combined_never_worse}"
    return out
