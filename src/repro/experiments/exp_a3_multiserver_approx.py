"""A3 — ablation: multi-server priority approximation error.

The delay model's one structural approximation is the multi-server
priority wait (exact only for common-rate exponential service, Bondi–
Buzen scaling otherwise). This experiment isolates a single
multi-class priority station, sweeps the server count at constant
per-server utilization, and measures the approximation against
simulation — for both the exact-case (common exponential) and the
approximate-case (class-dependent hyperexponential) demands.

Expected shape: near-zero error in the common-μ exact case at every
``c``; a few-percent error for the Bondi–Buzen case, largest at
mid-range ``c`` and high variability — the known accuracy profile of
the approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.tables import ascii_table
from repro.analysis.validation import relative_error
from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.core.delay import end_to_end_delays
from repro.distributions import Exponential, fit_two_moments
from repro.simulation import Scenario, compare_scenarios
from repro.workload import workload_from_rates

__all__ = ["A3Result", "run", "render"]

_SPEC = ServerSpec(PowerModel(idle=10.0, kappa=50.0, alpha=3.0), min_speed=0.5, max_speed=1.0)

_CASES = ("common-mu", "bondi-buzen")

#: Per-class CRN-paired deltas between the two demand cases.
PAIRED_METRICS = ("delay/hi", "delay/lo")


@dataclass
class A3Result:
    """Per-(case, c, class) error rows."""

    rows: list[list[Any]] = field(default_factory=list)
    # server count -> metric -> {"paired": VrEstimate, ...}: the
    # simulated variability penalty (bondi-buzen minus common-mu
    # delays at equal utilization), CRN-paired across the two cases.
    paired: dict[int, dict[str, dict[str, Any]]] = field(default_factory=dict)

    @property
    def max_exact_error(self) -> float:
        """Worst error in the common-μ (analytically exact) case."""
        errs = [r[6] for r in self.rows if r[0] == "common-mu"]
        return max(errs) if errs else float("nan")

    @property
    def max_approx_error(self) -> float:
        """Worst error in the Bondi–Buzen approximate case."""
        errs = [r[6] for r in self.rows if r[0] == "bondi-buzen"]
        return max(errs) if errs else float("nan")


def _station(case: str, c: int) -> ClusterModel:
    if case == "common-mu":
        demands = (Exponential(1.0), Exponential(1.0))
    else:  # class-dependent, high variability -> Bondi-Buzen path
        demands = (fit_two_moments(0.8, 2.5), fit_two_moments(1.3, 2.5))
    tier = Tier("station", demands, _SPEC, servers=c, speed=1.0, discipline="priority_np")
    return ClusterModel([tier])


def _scenario(case: str, c: int, per_server_rho: float) -> Scenario:
    cluster = _station(case, c)
    means = np.array([d.mean for d in cluster.tiers[0].demands])
    # lam proportions 1:2; rho = (lam . means) / c = per_server_rho
    props = np.array([1.0, 2.0])
    scale = per_server_rho * c / float(np.dot(props, means))
    workload = workload_from_rates((props * scale).tolist(), names=("hi", "lo"))
    return Scenario(cluster, workload, label=case)


def run(
    server_counts=(1, 2, 4, 8),
    per_server_rho: float = 0.7,
    horizon: float = 30000.0,
    n_replications: int = 3,
    seed: int = 55,
    n_jobs: int | None = None,
    cache_dir: str | None = None,
) -> A3Result:
    """Sweep server counts for both demand cases at constant
    utilization (rates split 1:2 between the classes).

    At each server count the two cases replicate under common random
    numbers (the arrival streams are the same standard draws, only
    scaled), so the simulated *variability penalty* — how much the
    hyperexponential demands hurt each class relative to the
    exponential baseline — carries a paired CI.
    ``n_jobs``/``cache_dir`` parallelize and memoize the replications
    without changing the numbers."""
    result = A3Result()
    case_rows: dict[str, list[list[Any]]] = {case: [] for case in _CASES}
    for c in server_counts:
        comp = compare_scenarios(
            _scenario(_CASES[1], c, per_server_rho),
            _scenario(_CASES[0], c, per_server_rho),
            horizon=horizon / c,
            n_replications=n_replications,
            metrics=PAIRED_METRICS,
            seed=seed,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
        )
        result.paired[c] = comp.metrics
        for case, sim in ((_CASES[0], comp.result_b), (_CASES[1], comp.result_a)):
            cluster = _station(case, c)
            workload = _scenario(case, c, per_server_rho).workload
            analytic = end_to_end_delays(cluster, workload)
            for k, name in enumerate(workload.names):
                case_rows[case].append(
                    [
                        case,
                        c,
                        name,
                        analytic[k],
                        sim.delays[k],
                        sim.delays_ci[k],
                        relative_error(analytic[k], sim.delays[k]),
                    ]
                )
    # Case-major row order (all common-mu rows, then all bondi-buzen),
    # exactly as the pre-CRN nested loop produced.
    for case in _CASES:
        result.rows.extend(case_rows[case])
    return result


def render(result: A3Result) -> str:
    """The error table plus per-case worst errors."""
    table = ascii_table(
        ["case", "c", "class", "analytic T (s)", "simulated T (s)", "95% CI", "rel.err"],
        result.rows,
        title="A3: multi-server priority approximation vs simulation",
    )
    parts = [table]
    if result.paired:
        paired_rows = [
            [
                c,
                metric.removeprefix("delay/"),
                row["paired"].value,
                row["paired"].halfwidth,
                f"{row['vr_factor']:.1f}x",
            ]
            for c, metrics in sorted(result.paired.items())
            for metric, row in metrics.items()
        ]
        parts.append(
            ascii_table(
                ["c", "class", "variability penalty (s)", "paired 95% CI", "CRN worth"],
                paired_rows,
                title="A3: simulated variability penalty (bondi-buzen - common-mu, CRN-paired)",
            )
        )
    parts.append(
        f"worst error, exact common-mu case: {result.max_exact_error:.3%}"
        + f"\nworst error, Bondi-Buzen case: {result.max_approx_error:.3%}"
    )
    return "\n".join(parts)
