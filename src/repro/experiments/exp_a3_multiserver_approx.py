"""A3 — ablation: multi-server priority approximation error.

The delay model's one structural approximation is the multi-server
priority wait (exact only for common-rate exponential service, Bondi–
Buzen scaling otherwise). This experiment isolates a single
multi-class priority station, sweeps the server count at constant
per-server utilization, and measures the approximation against
simulation — for both the exact-case (common exponential) and the
approximate-case (class-dependent hyperexponential) demands.

Expected shape: near-zero error in the common-μ exact case at every
``c``; a few-percent error for the Bondi–Buzen case, largest at
mid-range ``c`` and high variability — the known accuracy profile of
the approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.tables import ascii_table
from repro.analysis.validation import relative_error
from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.core.delay import end_to_end_delays
from repro.distributions import Exponential, fit_two_moments
from repro.simulation import simulate_replications
from repro.workload import workload_from_rates

__all__ = ["A3Result", "run", "render"]

_SPEC = ServerSpec(PowerModel(idle=10.0, kappa=50.0, alpha=3.0), min_speed=0.5, max_speed=1.0)


@dataclass
class A3Result:
    """Per-(case, c, class) error rows."""

    rows: list[list[Any]] = field(default_factory=list)

    @property
    def max_exact_error(self) -> float:
        """Worst error in the common-μ (analytically exact) case."""
        errs = [r[6] for r in self.rows if r[0] == "common-mu"]
        return max(errs) if errs else float("nan")

    @property
    def max_approx_error(self) -> float:
        """Worst error in the Bondi–Buzen approximate case."""
        errs = [r[6] for r in self.rows if r[0] == "bondi-buzen"]
        return max(errs) if errs else float("nan")


def _station(case: str, c: int) -> ClusterModel:
    if case == "common-mu":
        demands = (Exponential(1.0), Exponential(1.0))
    else:  # class-dependent, high variability -> Bondi-Buzen path
        demands = (fit_two_moments(0.8, 2.5), fit_two_moments(1.3, 2.5))
    tier = Tier("station", demands, _SPEC, servers=c, speed=1.0, discipline="priority_np")
    return ClusterModel([tier])


def run(
    server_counts=(1, 2, 4, 8),
    per_server_rho: float = 0.7,
    horizon: float = 30000.0,
    n_replications: int = 3,
    seed: int = 55,
    n_jobs: int | None = None,
    cache_dir: str | None = None,
) -> A3Result:
    """Sweep server counts for both demand cases at constant
    utilization (rates split 1:2 between the classes).
    ``n_jobs``/``cache_dir`` parallelize and memoize the replications
    without changing the numbers."""
    result = A3Result()
    for case in ("common-mu", "bondi-buzen"):
        for c in server_counts:
            cluster = _station(case, c)
            means = np.array([d.mean for d in cluster.tiers[0].demands])
            # lam proportions 1:2; rho = (lam . means) / c = per_server_rho
            props = np.array([1.0, 2.0])
            scale = per_server_rho * c / float(np.dot(props, means))
            workload = workload_from_rates((props * scale).tolist(), names=("hi", "lo"))
            analytic = end_to_end_delays(cluster, workload)
            sim = simulate_replications(
                cluster,
                workload,
                horizon=horizon / c,
                n_replications=n_replications,
                seed=seed,
                n_jobs=n_jobs,
                cache_dir=cache_dir,
            )
            for k, name in enumerate(workload.names):
                result.rows.append(
                    [
                        case,
                        c,
                        name,
                        analytic[k],
                        sim.delays[k],
                        sim.delays_ci[k],
                        relative_error(analytic[k], sim.delays[k]),
                    ]
                )
    return result


def render(result: A3Result) -> str:
    """The error table plus per-case worst errors."""
    table = ascii_table(
        ["case", "c", "class", "analytic T (s)", "simulated T (s)", "95% CI", "rel.err"],
        result.rows,
        title=f"A3: multi-server priority approximation vs simulation",
    )
    return (
        table
        + f"\nworst error, exact common-mu case: {result.max_exact_error:.3%}"
        + f"\nworst error, Bondi-Buzen case: {result.max_approx_error:.3%}"
    )
