"""T1 — analytic vs simulated per-class end-to-end delay.

The paper's headline validation ("the proposed approaches are ...
accurate"): for the canonical priority cluster at light, moderate and
heavy load, compare every class's analytic mean end-to-end delay
against independent-replication simulation.

Expected shape: relative errors of a few percent at light/moderate
load, growing (but staying modest) toward saturation where both the
tandem-decomposition approximation and simulation noise worsen.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.validation import ValidationReport
from repro.core.delay import end_to_end_delays
from repro.experiments.common import canonical_cluster, canonical_workload, replicated_simulation

__all__ = ["T1Result", "run", "render"]

DEFAULT_LOAD_FACTORS = (0.6, 1.0, 1.5)


@dataclass
class T1Result:
    """Reports keyed by load factor, plus the overall worst error."""

    reports: dict[float, ValidationReport]

    @property
    def max_rel_error(self) -> float:
        """Worst per-class delay error across all load points."""
        return max(r.max_rel_error for r in self.reports.values())


def run(
    load_factors=DEFAULT_LOAD_FACTORS,
    horizon: float = 4000.0,
    n_replications: int = 5,
    seed: int = 11,
    discipline: str = "priority_np",
    n_jobs: int | None = None,
    cache_dir: str | None = None,
    target_rel_ci: float | None = None,
    max_reps: int | None = None,
) -> T1Result:
    """Run the T1 validation at each load factor.

    ``n_jobs``/``cache_dir`` parallelize and memoize the replications
    (see :func:`repro.simulation.simulate_replications`); neither
    changes the numbers. ``target_rel_ci`` switches each load point to
    the adaptive engine: replicate until the mean-delay and
    average-power CI half-widths are within that relative tolerance
    (capped at ``max_reps``) instead of a fixed count.
    """
    cluster = canonical_cluster(discipline=discipline)
    reports: dict[float, ValidationReport] = {}
    for lf in load_factors:
        workload = canonical_workload(lf)
        analytic = end_to_end_delays(cluster, workload)
        sim = replicated_simulation(
            cluster,
            workload,
            horizon=horizon,
            n_replications=n_replications,
            seed=seed,
            target_rel_ci=target_rel_ci,
            max_reps=max_reps,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
        )
        report = ValidationReport(
            title=f"T1: per-class end-to-end delay, load factor {lf} "
            f"(busiest tier rho={max(cluster.utilizations(workload.arrival_rates)):.2f})"
        )
        for k, name in enumerate(workload.names):
            report.add(f"T[{name}] (s)", analytic[k], sim.delays[k], sim.delays_ci[k])
        report.add(
            "mean delay (s)",
            float((workload.arrival_rates * analytic).sum() / workload.total_rate),
            sim.mean_delay,
            sim.mean_delay_ci,
        )
        reports[lf] = report
    return T1Result(reports)


def render(result: T1Result) -> str:
    """All load-point tables plus the summary line."""
    parts = [r.to_table() for _, r in sorted(result.reports.items())]
    parts.append(f"worst relative error across T1: {result.max_rel_error:.3%}")
    return "\n\n".join(parts)
