"""Registry mapping experiment IDs to their driver modules.

One place the CLI, the benchmarks and the docs all agree on. Each
entry carries the kwargs for a *full* run (what the benchmarks use)
and a *quick* run (seconds, for smoke checks and the CLI default).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from types import ModuleType
from typing import Any

from repro import obs
from repro.exceptions import ModelValidationError
from repro.experiments import (
    exp_a1_priority_vs_fcfs,
    exp_a2_np_vs_pr,
    exp_a3_multiserver_approx,
    exp_a4_dvfs_vs_onoff,
    exp_a5_decomposition_depth,
    exp_a6_admission_control,
    exp_a7_online_control,
    exp_f1_delay_vs_load,
    exp_f2_energy_vs_speed,
    exp_f3_delay_opt_tradeoff,
    exp_f4_energy_opt_tradeoff,
    exp_f5_perclass_vs_aggregate,
    exp_f6_cost_vs_load,
    exp_f7_percentile_accuracy,
    exp_f8_dynamic_power,
    exp_f9_tco_vs_energy_price,
    exp_t1_delay_accuracy,
    exp_t2_energy_accuracy,
    exp_t3_cost_allocation,
    exp_t4_solver_efficiency,
    exp_t5_percentile_sla_cost,
)

__all__ = ["Experiment", "REGISTRY", "get_experiment", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One reconstructed table/figure."""

    id: str
    title: str
    module: ModuleType
    full_kwargs: dict[str, Any] = field(default_factory=dict)
    quick_kwargs: dict[str, Any] = field(default_factory=dict)

    def run(self, quick: bool = False, **overrides: Any):
        """Execute the driver with the registered parameters.

        ``overrides`` (e.g. ``n_jobs``, ``cache_dir`` from the CLI) are
        forwarded only to drivers whose ``run()`` accepts them —
        analytic-only experiments silently ignore engine knobs. ``None``
        values are dropped.
        """
        kwargs = dict(self.quick_kwargs if quick else self.full_kwargs)
        if overrides:
            accepted = inspect.signature(self.module.run).parameters
            kwargs.update(
                {k: v for k, v in overrides.items() if v is not None and k in accepted}
            )
        with obs.span("experiment.run", id=self.id, quick=quick) as sp:
            result = self.module.run(**kwargs)
        obs.event("experiment.done", id=self.id, quick=quick, wall_s=sp.wall_s)
        obs.timer("experiment.seconds").observe(sp.wall_s)
        return result

    def render(self, result) -> str:
        """Render a result produced by :meth:`run`."""
        return self.module.render(result)


_QUICK_SIM = dict(horizon=800.0, n_replications=2)

REGISTRY: dict[str, Experiment] = {
    e.id: e
    for e in [
        Experiment(
            "T1",
            "analytic vs simulated per-class end-to-end delay",
            exp_t1_delay_accuracy,
            full_kwargs=dict(horizon=2500.0, n_replications=4),
            quick_kwargs=dict(load_factors=(1.0,), **_QUICK_SIM),
        ),
        Experiment(
            "T2",
            "analytic vs simulated power and energy",
            exp_t2_energy_accuracy,
            full_kwargs=dict(horizon=2500.0, n_replications=4),
            quick_kwargs=dict(load_factors=(1.0,), **_QUICK_SIM),
        ),
        Experiment(
            "F1",
            "per-class delay vs offered load",
            exp_f1_delay_vs_load,
        ),
        Experiment(
            "F2",
            "power/energy/delay vs uniform speed (alpha sweep)",
            exp_f2_energy_vs_speed,
        ),
        Experiment(
            "F3",
            "P1 trade-off: optimal delay vs power budget",
            exp_f3_delay_opt_tradeoff,
            full_kwargs=dict(n_points=8),
            quick_kwargs=dict(n_points=4, n_starts=2),
        ),
        Experiment(
            "F4",
            "P2a trade-off: minimal power vs aggregate delay bound",
            exp_f4_energy_opt_tradeoff,
            full_kwargs=dict(n_points=8),
            quick_kwargs=dict(n_points=4, n_starts=2),
        ),
        Experiment(
            "F5",
            "P2b vs P2a: energy price of per-class guarantees",
            exp_f5_perclass_vs_aggregate,
            quick_kwargs=dict(ratios=(1.0, 2.0, 4.0), n_starts=2),
        ),
        Experiment(
            "T3",
            "P3 min-cost allocation vs exhaustive & baselines",
            exp_t3_cost_allocation,
            full_kwargs=dict(small_cap=8),
            quick_kwargs=dict(small_cap=6),
        ),
        Experiment(
            "F6",
            "P3 cost vs offered load",
            exp_f6_cost_vs_load,
        ),
        Experiment(
            "T4",
            "solver efficiency vs exhaustive search",
            exp_t4_solver_efficiency,
            quick_kwargs=dict(small_caps=(6,)),
        ),
        Experiment(
            "T5",
            "P3 cost under percentile SLAs",
            exp_t5_percentile_sla_cost,
            quick_kwargs=dict(multipliers=(3.0, 2.0)),
        ),
        Experiment(
            "F7",
            "percentile delays: approximation vs simulation",
            exp_f7_percentile_accuracy,
            full_kwargs=dict(horizon=2500.0, n_replications=4),
            quick_kwargs=dict(levels=(0.9,), **_QUICK_SIM),
        ),
        Experiment(
            "F8",
            "dynamic vs static power management (diurnal day)",
            exp_f8_dynamic_power,
            quick_kwargs=dict(n_epochs=8, n_starts=1),
        ),
        Experiment(
            "F9",
            "TCO-optimal allocation vs energy price",
            exp_f9_tco_vs_energy_price,
            quick_kwargs=dict(prices=(0.0, 0.04)),
        ),
        Experiment(
            "A1",
            "ablation: priority vs aggregate-FCFS model error",
            exp_a1_priority_vs_fcfs,
            full_kwargs=dict(horizon=2500.0, n_replications=4),
            quick_kwargs=dict(load_factors=(1.5,), **_QUICK_SIM),
        ),
        Experiment(
            "A2",
            "ablation: non-preemptive vs preemptive-resume",
            exp_a2_np_vs_pr,
            full_kwargs=dict(horizon=2500.0, n_replications=4),
            quick_kwargs=_QUICK_SIM,
        ),
        Experiment(
            "A3",
            "ablation: multi-server priority approximation",
            exp_a3_multiserver_approx,
            full_kwargs=dict(horizon=25000.0, n_replications=3),
            quick_kwargs=dict(server_counts=(1, 2), horizon=6000.0, n_replications=2),
        ),
        Experiment(
            "A4",
            "ablation: DVFS vs server on/off vs combined",
            exp_a4_dvfs_vs_onoff,
            quick_kwargs=dict(n_points=3, n_starts=2),
        ),
        Experiment(
            "A5",
            "ablation: decomposition error vs network depth",
            exp_a5_decomposition_depth,
            full_kwargs=dict(horizon=25000.0, n_replications=3),
            quick_kwargs=dict(depths=(1, 3), horizon=6000.0, n_replications=2),
        ),
        Experiment(
            "A6",
            "ablation: admission control vs open queueing under overload",
            exp_a6_admission_control,
            quick_kwargs=dict(offered_loads=(3.0, 6.0), horizon=2000.0),
        ),
        Experiment(
            "A7",
            "ablation: online drift-plus-penalty control vs planned schedules",
            exp_a7_online_control,
            quick_kwargs=dict(
                horizon=400.0,
                plan_window=50.0,
                v_param=5e-4,
                v_sweep=(1e-4, 5e-4, 2e-3),
            ),
        ),
    ]
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look an experiment up by (case-insensitive) ID."""
    key = experiment_id.upper()
    if key not in REGISTRY:
        raise ModelValidationError(
            f"unknown experiment {experiment_id!r}; have {sorted(REGISTRY)}"
        )
    return REGISTRY[key]


def run_experiment(
    experiment_id: str,
    quick: bool = False,
    n_jobs: int | None = None,
    cache_dir: str | None = None,
    target_rel_ci: float | None = None,
    max_reps: int | None = None,
    controller: str | None = None,
    v_param: float | None = None,
) -> str:
    """Run an experiment by ID and return its rendered table.

    ``n_jobs`` reaches the simulation-backed drivers (T1, T2, A1–A3,
    A5, F7) *and* the analytic sweep drivers (F3, F4, F5, F6, A4),
    which fan their independent series out over worker processes;
    ``cache_dir`` is simulation-only. ``target_rel_ci`` (with optional
    ``max_reps``) switches the adaptive-capable drivers (T1, T2, F7)
    to the precision-targeted replication engine. ``controller`` and
    ``v_param`` reach the online-control driver (A7): restrict the run
    to one policy and/or override the drift-plus-penalty trade-off.
    Other experiments ignore the knobs they don't take.
    """
    exp = get_experiment(experiment_id)
    return exp.render(
        exp.run(
            quick=quick,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
            target_rel_ci=target_rel_ci,
            max_reps=max_reps,
            controller=controller,
            v_param=v_param,
        )
    )
