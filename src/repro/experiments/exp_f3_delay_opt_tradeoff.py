"""F3 — P1 trade-off: optimal mean delay vs average power budget.

Sweeps the power budget from just above the minimum stable power to
the unconstrained maximum and solves P1 at each point, against two
baselines spending the same budget (uniform speed dial, load-
proportional speeds).

Expected shape: a convex decreasing frontier; the optimizer dominates
both baselines at every budget (equal only where the budget is so
large all speed caps bind), with the largest gains at tight budgets —
exactly where intelligent power management matters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.series import SweepSeries
from repro.baselines import proportional_speed_for_budget, uniform_speed_for_budget
from repro.core.delay import mean_end_to_end_delay
from repro.core.opt_delay import minimize_delay
from repro.experiments.common import canonical_cluster, canonical_workload

__all__ = ["F3Result", "run", "render"]


@dataclass
class F3Result:
    """The frontier series plus the budget endpoints used."""

    series: SweepSeries
    min_power: float
    max_power: float

    @property
    def optimal_dominates(self) -> bool:
        """True iff the optimizer is no worse than both baselines at
        every swept budget (up to solver tolerance)."""
        opt = self.series.columns["optimal delay (s)"]
        uni = self.series.columns["uniform delay (s)"]
        prop = self.series.columns["proportional delay (s)"]
        return bool(np.all(opt <= uni + 1e-6) and np.all(opt <= prop + 1e-6))


def run(n_points: int = 8, load_factor: float = 1.0, n_starts: int = 3) -> F3Result:
    """Solve P1 along a budget sweep on the canonical cluster."""
    cluster = canonical_cluster()
    workload = canonical_workload(load_factor)
    lam = workload.arrival_rates

    from repro.core.opt_common import stability_speed_bounds

    box = stability_speed_bounds(cluster, workload)
    p_min = cluster.with_speeds([b[0] for b in box]).average_power(lam)
    p_max = cluster.with_speeds([b[1] for b in box]).average_power(lam)
    budgets = np.linspace(p_min * 1.02, p_max, n_points)

    opt_delay, uni_delay, prop_delay, opt_power = [], [], [], []
    for budget in budgets:
        res = minimize_delay(cluster, workload, power_budget=float(budget), n_starts=n_starts)
        opt_delay.append(res.fun)
        opt_power.append(res.meta["power"])
        uni = uniform_speed_for_budget(cluster, workload, float(budget))
        uni_delay.append(mean_end_to_end_delay(cluster.with_speeds(uni), workload))
        prop = proportional_speed_for_budget(cluster, workload, float(budget))
        prop_delay.append(mean_end_to_end_delay(cluster.with_speeds(prop), workload))

    series = SweepSeries(
        name="F3: P1 optimal mean delay vs power budget",
        x_label="power budget (W)",
        x=budgets,
        columns={
            "optimal delay (s)": np.array(opt_delay),
            "uniform delay (s)": np.array(uni_delay),
            "proportional delay (s)": np.array(prop_delay),
            "power used (W)": np.array(opt_power),
        },
    )
    return F3Result(series=series, min_power=float(p_min), max_power=float(p_max))


def render(result: F3Result) -> str:
    """The frontier as a text table plus the dominance check."""
    out = result.series.to_table()
    out += (
        f"\nstable power range: [{result.min_power:.4g}, {result.max_power:.4g}] W"
        f"\noptimal dominates both baselines everywhere: {result.optimal_dominates}"
    )
    return out
