"""F3 — P1 trade-off: optimal mean delay vs average power budget.

Sweeps the power budget from just above the minimum stable power to
the unconstrained maximum and solves P1 at each point, against two
baselines spending the same budget (uniform speed dial, load-
proportional speeds).

The budget grid is solved by warm-start continuation
(:func:`repro.optimize.sweep.continuation_sweep`): each P1 solve is
seeded from the previous budget's optimum, with the batch-scored
multistart fallback keeping the frontier values identical to a cold
sweep. The optimizer series and the two baselines are independent and
can run in parallel worker processes (``n_jobs``).

Expected shape: a convex decreasing frontier; the optimizer dominates
both baselines at every budget (equal only where the budget is so
large all speed caps bind), with the largest gains at tight budgets —
exactly where intelligent power management matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.series import SweepSeries
from repro.baselines import proportional_speed_for_budget, uniform_speed_for_budget
from repro.cluster.model import ClusterModel
from repro.core.delay import mean_end_to_end_delay
from repro.core.opt_delay import minimize_delay
from repro.experiments.common import canonical_cluster, canonical_workload, stability_box_profile
from repro.optimize.sweep import ContinuationSweep, continuation_sweep, run_series
from repro.workload.classes import Workload

__all__ = ["F3Result", "run", "render"]


@dataclass
class F3Result:
    """The frontier series plus the budget endpoints used."""

    series: SweepSeries
    min_power: float
    max_power: float
    optimal_sweep: ContinuationSweep | None = field(default=None, repr=False)

    @property
    def optimal_dominates(self) -> bool:
        """True iff the optimizer is no worse than both baselines at
        every swept budget (up to solver tolerance)."""
        opt = self.series.columns["optimal delay (s)"]
        uni = self.series.columns["uniform delay (s)"]
        prop = self.series.columns["proportional delay (s)"]
        return bool(np.all(opt <= uni + 1e-6) and np.all(opt <= prop + 1e-6))


def _optimal_series(
    cluster: ClusterModel,
    workload: Workload,
    budgets: np.ndarray,
    n_starts: int,
    warm_start: bool,
) -> ContinuationSweep:
    """The P1 frontier, one continuation solve per budget."""

    def solve(budget: float, hint: np.ndarray | None):
        return minimize_delay(
            cluster, workload, power_budget=float(budget), n_starts=n_starts, x0_hint=hint
        )

    return continuation_sweep(solve, budgets, warm_start=warm_start, label="f3.optimal")


def _uniform_series(cluster: ClusterModel, workload: Workload, budgets: np.ndarray) -> np.ndarray:
    """Mean delay of the uniform-speed baseline at each budget."""
    out = []
    for budget in budgets:
        s = uniform_speed_for_budget(cluster, workload, float(budget))
        out.append(mean_end_to_end_delay(cluster.with_speeds(s), workload))
    return np.array(out)


def _proportional_series(
    cluster: ClusterModel, workload: Workload, budgets: np.ndarray
) -> np.ndarray:
    """Mean delay of the load-proportional baseline at each budget."""
    out = []
    for budget in budgets:
        s = proportional_speed_for_budget(cluster, workload, float(budget))
        out.append(mean_end_to_end_delay(cluster.with_speeds(s), workload))
    return np.array(out)


def run(
    n_points: int = 8,
    load_factor: float = 1.0,
    n_starts: int = 3,
    warm_start: bool = True,
    n_jobs: int | None = None,
) -> F3Result:
    """Solve P1 along a budget sweep on the canonical cluster.

    ``warm_start=False`` solves every budget cold (the comparison mode
    of the equivalence tests); ``n_jobs`` fans the optimizer and the
    two baseline series out over worker processes.
    """
    cluster = canonical_cluster()
    workload = canonical_workload(load_factor)

    profile = stability_box_profile(cluster, workload)
    budgets = np.linspace(profile.min_power * 1.02, profile.max_power, n_points)

    series_out = run_series(
        {
            "optimal": (_optimal_series, (cluster, workload, budgets, n_starts, warm_start)),
            "uniform": (_uniform_series, (cluster, workload, budgets)),
            "proportional": (_proportional_series, (cluster, workload, budgets)),
        },
        n_jobs=n_jobs,
    )
    sweep: ContinuationSweep = series_out["optimal"]

    series = SweepSeries(
        name="F3: P1 optimal mean delay vs power budget",
        x_label="power budget (W)",
        x=budgets,
        columns={
            "optimal delay (s)": sweep.column(lambda r: r.fun),
            "uniform delay (s)": series_out["uniform"],
            "proportional delay (s)": series_out["proportional"],
            "power used (W)": sweep.column(lambda r: r.meta["power"]),
        },
    )
    return F3Result(
        series=series,
        min_power=profile.min_power,
        max_power=profile.max_power,
        optimal_sweep=sweep,
    )


def render(result: F3Result) -> str:
    """The frontier as a text table plus the dominance check."""
    out = result.series.to_table()
    out += (
        f"\nstable power range: [{result.min_power:.4g}, {result.max_power:.4g}] W"
        f"\noptimal dominates both baselines everywhere: {result.optimal_dominates}"
    )
    if result.optimal_sweep is not None:
        out += (
            f"\nsolver effort: {result.optimal_sweep.total_evaluations} model evaluations "
            f"over {len(result.optimal_sweep.points)} points"
        )
    return out
