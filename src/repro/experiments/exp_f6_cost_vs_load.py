"""F6 — minimum provisioning cost vs offered load.

Sweeps the canonical mix's load factor and reports the P3 optimizer's
cost against the uniform-headroom baseline's cost, both meeting the
same SLA.

The P3 solves run as a continuation sweep
(:func:`repro.optimize.sweep.continuation_sweep`): each load's search
starts from the previous load's server counts, which the greedy phase
only has to grow — the monotone staircase makes adjacent optima nearly
identical. The feasibility memo is *not* shared across loads (it is
only valid for one workload), so each point's cache starts fresh.

Expected shape: both curves are staircases increasing with load; the
optimizer's sits at or below the baseline's at every load, with the
gap widest at moderate load where the priority structure lets the
optimizer provision the bottleneck tier precisely instead of
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.series import SweepSeries
from repro.cluster.model import ClusterModel
from repro.core.delay import end_to_end_delays
from repro.core.opt_cost import minimize_cost
from repro.core.sla import SLA
from repro.exceptions import UnstableSystemError
from repro.experiments.common import canonical_cluster, canonical_sla, canonical_workload
from repro.optimize.sweep import ContinuationSweep, continuation_sweep, run_series

__all__ = ["F6Result", "run", "render"]


@dataclass
class F6Result:
    """Cost-vs-load series."""

    series: SweepSeries
    optimal_sweep: ContinuationSweep | None = field(default=None, repr=False)

    @property
    def optimizer_never_costlier(self) -> bool:
        """Optimizer cost <= feasible-baseline cost at every load."""
        opt = self.series.columns["P3 cost"]
        base = self.series.columns["uniform-headroom cost"]
        ok = np.isfinite(opt) & np.isfinite(base)
        return bool(np.all(opt[ok] <= base[ok] + 1e-9))


def _optimal_series(
    cluster: ClusterModel, sla: SLA, load_factors: np.ndarray, warm_start: bool
) -> ContinuationSweep:
    """P3 along the load sweep, each point growing the previous counts."""

    def solve(lf: float, hint: np.ndarray | None):
        return minimize_cost(
            cluster,
            canonical_workload(float(lf)),
            sla,
            optimize_speeds=False,
            counts_hint=hint,
        )

    return continuation_sweep(solve, load_factors, warm_start=warm_start, label="f6.optimal")


def _baseline_series(cluster: ClusterModel, sla: SLA, load_factors: np.ndarray) -> np.ndarray:
    """Uniform-headroom baseline cost at each load factor."""
    return np.array(
        [
            _uniform_headroom_cost(cluster, canonical_workload(float(lf)), sla)
            for lf in load_factors
        ]
    )


def run(
    load_factors=None,
    tightness: float = 1.0,
    warm_start: bool = True,
    n_jobs: int | None = None,
) -> F6Result:
    """Solve P3 at each load factor; baseline = uniform 60% headroom,
    grown until SLA-feasible."""
    if load_factors is None:
        load_factors = np.linspace(0.5, 2.5, 7)
    grid = np.asarray(load_factors, dtype=float)
    cluster = canonical_cluster()
    sla = canonical_sla(tightness)

    series_out = run_series(
        {
            "optimal": (_optimal_series, (cluster, sla, grid, warm_start)),
            "baseline": (_baseline_series, (cluster, sla, grid)),
        },
        n_jobs=n_jobs,
    )
    sweep: ContinuationSweep = series_out["optimal"]

    series = SweepSeries(
        name="F6: minimum provisioning cost vs load factor",
        x_label="load factor",
        x=grid,
        columns={
            "P3 cost": sweep.column(lambda a: a.total_cost),
            "uniform-headroom cost": series_out["baseline"],
            "P3 total servers": sweep.column(lambda a: float(a.server_counts.sum())),
        },
    )
    return F6Result(series=series, optimal_sweep=sweep)


def _uniform_headroom_cost(cluster, workload, sla, cap: int = 256) -> float:
    """Uniform-utilization provisioning, headroom tightened until the
    SLA holds (the best a priority-blind uniform rule can do)."""
    at_max = cluster.with_speeds([t.spec.max_speed for t in cluster.tiers])
    bounds = sla.delay_bounds(workload)
    work = at_max.work_rates(workload.arrival_rates)
    for rho_target in np.linspace(0.9, 0.05, 35):
        counts = np.maximum(1, np.ceil(work / rho_target).astype(int))
        if counts.max() > cap:
            continue
        candidate = at_max.with_servers(counts)
        try:
            delays = end_to_end_delays(candidate, workload)
        except UnstableSystemError:
            continue
        if np.all(delays <= bounds):
            return candidate.total_cost()
    return float("nan")


def render(result: F6Result) -> str:
    """The sweep table plus the dominance check."""
    out = result.series.to_table()
    out += f"\nP3 never costlier than the uniform baseline: {result.optimizer_never_costlier}"
    if result.optimal_sweep is not None:
        out += (
            f"\nsolver effort: {result.optimal_sweep.total_evaluations} feasibility evaluations "
            f"over {len(result.optimal_sweep.points)} points"
        )
    return out
