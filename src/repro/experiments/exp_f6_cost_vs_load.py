"""F6 — minimum provisioning cost vs offered load.

Sweeps the canonical mix's load factor and reports the P3 optimizer's
cost against the uniform-headroom baseline's cost, both meeting the
same SLA.

Expected shape: both curves are staircases increasing with load; the
optimizer's sits at or below the baseline's at every load, with the
gap widest at moderate load where the priority structure lets the
optimizer provision the bottleneck tier precisely instead of
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.series import SweepSeries
from repro.core.delay import end_to_end_delays
from repro.core.opt_cost import minimize_cost
from repro.exceptions import InfeasibleProblemError, UnstableSystemError
from repro.experiments.common import canonical_cluster, canonical_sla, canonical_workload

__all__ = ["F6Result", "run", "render"]


@dataclass
class F6Result:
    """Cost-vs-load series."""

    series: SweepSeries

    @property
    def optimizer_never_costlier(self) -> bool:
        """Optimizer cost <= feasible-baseline cost at every load."""
        opt = self.series.columns["P3 cost"]
        base = self.series.columns["uniform-headroom cost"]
        ok = np.isfinite(opt) & np.isfinite(base)
        return bool(np.all(opt[ok] <= base[ok] + 1e-9))


def run(load_factors=None, tightness: float = 1.0) -> F6Result:
    """Solve P3 at each load factor; baseline = uniform 60% headroom,
    grown until SLA-feasible."""
    if load_factors is None:
        load_factors = np.linspace(0.5, 2.5, 7)
    cluster = canonical_cluster()
    sla = canonical_sla(tightness)

    opt_cost, base_cost, opt_counts = [], [], []
    for lf in load_factors:
        workload = canonical_workload(float(lf))
        try:
            alloc = minimize_cost(cluster, workload, sla, optimize_speeds=False)
            opt_cost.append(alloc.total_cost)
            opt_counts.append(alloc.server_counts.sum())
        except InfeasibleProblemError:
            opt_cost.append(float("nan"))
            opt_counts.append(np.nan)
        base_cost.append(_uniform_headroom_cost(cluster, workload, sla))

    series = SweepSeries(
        name="F6: minimum provisioning cost vs load factor",
        x_label="load factor",
        x=np.asarray(load_factors, dtype=float),
        columns={
            "P3 cost": np.array(opt_cost),
            "uniform-headroom cost": np.array(base_cost),
            "P3 total servers": np.array(opt_counts, dtype=float),
        },
    )
    return F6Result(series=series)


def _uniform_headroom_cost(cluster, workload, sla, cap: int = 256) -> float:
    """Uniform-utilization provisioning, headroom tightened until the
    SLA holds (the best a priority-blind uniform rule can do)."""
    at_max = cluster.with_speeds([t.spec.max_speed for t in cluster.tiers])
    bounds = sla.delay_bounds(workload)
    work = at_max.work_rates(workload.arrival_rates)
    for rho_target in np.linspace(0.9, 0.05, 35):
        counts = np.maximum(1, np.ceil(work / rho_target).astype(int))
        if counts.max() > cap:
            continue
        candidate = at_max.with_servers(counts)
        try:
            delays = end_to_end_delays(candidate, workload)
        except UnstableSystemError:
            continue
        if np.all(delays <= bounds):
            return candidate.total_cost()
    return float("nan")


def render(result: F6Result) -> str:
    """The sweep table plus the dominance check."""
    out = result.series.to_table()
    out += f"\nP3 never costlier than the uniform baseline: {result.optimizer_never_costlier}"
    return out
