"""T5 — provisioning cost under percentile SLAs vs mean-only SLAs.

Extension of P3: the same workload priced under (a) mean-delay
guarantees only and (b) the same mean guarantees plus a 95th-percentile
bound per class, for a sweep of percentile-bound multipliers (how many
times the mean bound the p95 bound allows).

Expected shape: percentile guarantees are never cheaper than mean-only
ones; the cost premium grows as the multiplier shrinks toward the
point where even generous allocations cannot squeeze the tail (for an
exponential tail the p95 sits at ln(20) ≈ 3× the mean, so multipliers
below ~3 start forcing real money).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.series import SweepSeries
from repro.core.opt_cost import minimize_cost
from repro.core.sla import SLA, ClassSLA
from repro.exceptions import InfeasibleProblemError
from repro.experiments.common import canonical_cluster, canonical_sla, canonical_workload

__all__ = ["T5Result", "run", "render"]


@dataclass
class T5Result:
    """Cost sweep over the percentile-bound multiplier."""

    series: SweepSeries
    mean_only_cost: float

    @property
    def percentile_never_cheaper(self) -> bool:
        """Percentile-constrained cost >= mean-only cost everywhere."""
        cost = self.series.columns["cost with p95 bounds"]
        finite = np.isfinite(cost)
        return bool(np.all(cost[finite] >= self.mean_only_cost - 1e-9))


def _sla_with_percentiles(base: SLA, multiplier: float, level: float = 0.95) -> SLA:
    return SLA(
        [
            ClassSLA(
                g.name,
                g.max_mean_delay,
                fee=g.fee,
                percentile=level,
                max_percentile_delay=g.max_mean_delay * multiplier,
            )
            for g in base.guarantees
        ]
    )


def run(
    multipliers=(4.0, 3.0, 2.5, 2.0, 1.6),
    load_factor: float = 1.2,
    tightness: float = 0.45,
) -> T5Result:
    """Solve P3 with and without p95 guarantees across multipliers.

    ``tightness`` shrinks the mean bounds so they actually bind at the
    optimum — with slack mean bounds the exponential-tail p95 sits
    comfortably inside any multiplier ≥ 1 and the sweep would be flat.
    """
    cluster = canonical_cluster()
    workload = canonical_workload(load_factor)
    base_sla = canonical_sla(tightness)

    mean_only = minimize_cost(cluster, workload, base_sla, optimize_speeds=False)

    costs, servers = [], []
    for mult in multipliers:
        sla = _sla_with_percentiles(base_sla, float(mult))
        try:
            alloc = minimize_cost(cluster, workload, sla, optimize_speeds=False)
            costs.append(alloc.total_cost)
            servers.append(float(alloc.server_counts.sum()))
        except InfeasibleProblemError:
            costs.append(float("nan"))
            servers.append(float("nan"))

    series = SweepSeries(
        name="T5: P3 cost with p95 guarantees vs percentile-bound multiplier",
        x_label="p95 bound / mean bound",
        x=np.asarray(multipliers, dtype=float),
        columns={
            "cost with p95 bounds": np.array(costs),
            "total servers": np.array(servers),
        },
    )
    return T5Result(series=series, mean_only_cost=float(mean_only.total_cost))


def render(result: T5Result) -> str:
    """The sweep plus the mean-only reference."""
    out = result.series.to_table()
    out += (
        f"\nmean-only P3 cost: {result.mean_only_cost:g}"
        f"\npercentile guarantees never cheaper: {result.percentile_never_cheaper}"
    )
    return out
