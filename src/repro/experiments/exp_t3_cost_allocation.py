"""T3 — P3 cost minimization vs exhaustive search and baselines.

Abstract claim 4: the minimum-cost allocation honoring every class's
priority SLA. On the small instance the greedy+local-search optimum is
certified against exhaustive enumeration; on the canonical instance it
is compared against two naive provisioning baselines:

* **uniform-headroom** — every tier provisioned to the same target
  utilization (the bound-agnostic rule of thumb);
* **aggregate-FCFS sizing** — provision using the single-class FCFS
  model (no priorities) until *it* predicts the SLA holds, then check
  against the true priority model.

Expected shape: optimizer cost == exhaustive cost on the small
instance; on the canonical instance the optimizer is at least as cheap
as the feasible baselines, and the aggregate-FCFS sizing either
overspends (it cannot see that gold's bound is easy under priority) or
silently violates the gold SLA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.tables import ascii_table
from repro.baselines.exhaustive import exhaustive_cost_minimization
from repro.baselines.single_class import aggregate_fcfs_delays
from repro.core.delay import end_to_end_delays
from repro.core.opt_cost import minimize_cost
from repro.core.sla import SLA
from repro.exceptions import UnstableSystemError
from repro.experiments.common import (
    canonical_cluster,
    canonical_sla,
    canonical_workload,
    small_cluster,
    small_sla,
    small_workload,
)

__all__ = ["T3Result", "run", "render"]


@dataclass
class T3Result:
    """Certification outcome and the baseline comparison rows."""

    small_optimal_counts: np.ndarray
    small_exhaustive_counts: np.ndarray
    small_optimal_cost: float
    small_exhaustive_cost: float
    rows: list[list[Any]] = field(default_factory=list)

    @property
    def certified(self) -> bool:
        """Greedy+local-search matched the exhaustive optimum cost."""
        return bool(abs(self.small_optimal_cost - self.small_exhaustive_cost) < 1e-9)


def _uniform_headroom_counts(cluster, workload, target_rho: float = 0.6) -> np.ndarray:
    work = cluster.work_rates(workload.arrival_rates)
    speeds = np.array([t.spec.max_speed for t in cluster.tiers])
    return np.maximum(1, np.ceil(work / (speeds * target_rho)).astype(int))


def _aggregate_fcfs_counts(cluster, workload, sla: SLA, cap: int = 64) -> np.ndarray:
    """Grow counts until the *aggregate FCFS* model predicts the SLA
    holds (the naive provisioner's stopping rule)."""
    bounds = sla.delay_bounds(workload)
    at_max = cluster.with_speeds([t.spec.max_speed for t in cluster.tiers])
    work = at_max.work_rates(workload.arrival_rates)
    counts = np.maximum(1, np.ceil(work / 0.98).astype(int))
    while True:
        candidate = at_max.with_servers(counts)
        try:
            predicted = aggregate_fcfs_delays(candidate, workload)
        except UnstableSystemError:
            predicted = np.full(workload.num_classes, np.inf)
        if np.all(predicted <= bounds):
            return counts
        # Add a server at the tier with the largest per-class sojourn
        # under the aggregate model.
        per_station = candidate.network()
        rho = candidate.utilizations(workload.arrival_rates)
        counts[int(np.argmax(rho))] += 1
        if counts.max() > cap:
            return counts


def run(tightness: float = 1.0, small_cap: int = 8) -> T3Result:
    """Certify on the small instance, compare baselines on the
    canonical one."""
    # --- certification ------------------------------------------------
    s_cluster, s_workload, s_sla = small_cluster(), small_workload(), small_sla(tightness)
    alloc_small = minimize_cost(s_cluster, s_workload, s_sla, max_servers_per_tier=small_cap)
    ex_counts, ex_cost, _ = exhaustive_cost_minimization(
        s_cluster, s_workload, s_sla, max_servers_per_tier=small_cap
    )

    # --- canonical comparison ------------------------------------------
    cluster, workload, sla = canonical_cluster(), canonical_workload(), canonical_sla(tightness)
    bounds = sla.delay_bounds(workload)
    at_max = cluster.with_speeds([t.spec.max_speed for t in cluster.tiers])

    rows: list[list[Any]] = []

    def add_row(label: str, counts: np.ndarray) -> None:
        candidate = at_max.with_servers(np.maximum(counts, 1))
        cost = candidate.total_cost()
        try:
            delays = end_to_end_delays(candidate, workload)
            feasible = bool(np.all(delays <= bounds + 1e-12))
            worst = float(np.max(delays / bounds))
        except UnstableSystemError:
            feasible, worst = False, float("inf")
        rows.append([label, list(map(int, counts)), cost, feasible, worst])

    alloc = minimize_cost(cluster, workload, sla)
    add_row("P3 optimizer", alloc.server_counts)
    add_row("uniform headroom (rho=0.6)", _uniform_headroom_counts(at_max, workload))
    add_row("aggregate-FCFS sizing", _aggregate_fcfs_counts(cluster, workload, sla))

    return T3Result(
        small_optimal_counts=alloc_small.server_counts,
        small_exhaustive_counts=np.asarray(ex_counts),
        small_optimal_cost=float(alloc_small.total_cost),
        small_exhaustive_cost=float(ex_cost),
        rows=rows,
    )


def render(result: T3Result) -> str:
    """Certification line plus the canonical comparison table."""
    head = (
        f"T3 small-instance certification: optimizer cost {result.small_optimal_cost:g} "
        f"(counts {result.small_optimal_counts.tolist()}), exhaustive "
        f"{result.small_exhaustive_cost:g} (counts {result.small_exhaustive_counts.tolist()}) "
        f"-> certified optimal: {result.certified}"
    )
    table = ascii_table(
        ["policy", "servers/tier", "cost", "SLA met", "worst T_k/D_k"],
        result.rows,
        title="T3: canonical-instance allocation comparison (at max speeds)",
    )
    return head + "\n\n" + table
