"""Canonical experiment configurations.

The paper's body (with its exact parameter tables) was unavailable —
see DESIGN.md — so every experiment runs on the canonical enterprise
cluster below, chosen to sit squarely in the regimes the abstract
discusses:

* **three tiers** (web front-end, application logic, database) with
  different demand magnitudes, variabilities, power curves and prices;
* **three priority classes** (gold > silver > bronze) with gold the
  smallest, most demanding fraction of traffic — the "customers
  willing to pay higher fees";
* moderate default load (busiest tier ≈ 52% utilized at full speed)
  so load sweeps reach saturation inside the plotted range;
* a cube-law power model with non-trivial idle draw, making both the
  delay/energy trade-off and the provisioning cost real.

A two-tier/two-class *small* instance keeps the exhaustive-search
certification and the unit tests fast.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.core.delay import mean_end_to_end_delay
from repro.core.opt_common import DEFAULT_RHO_CAP, stability_speed_bounds
from repro.core.sla import SLA, ClassSLA
from repro.distributions import fit_two_moments
from repro.workload import Workload, workload_from_rates

__all__ = [
    "canonical_cluster",
    "canonical_workload",
    "canonical_sla",
    "small_cluster",
    "small_workload",
    "small_sla",
    "stability_box_profile",
    "StabilityBoxProfile",
    "CLASS_NAMES",
    "replicated_simulation",
]

CLASS_NAMES = ("gold", "silver", "bronze")

# Per-tier hardware: (idle W, kappa W, alpha, min speed, cost/server).
_WEB_SPEC = ServerSpec(PowerModel(idle=30.0, kappa=60.0, alpha=3.0), min_speed=0.4, max_speed=1.0, cost=1.0, name="web-node")
_APP_SPEC = ServerSpec(PowerModel(idle=60.0, kappa=140.0, alpha=3.0), min_speed=0.4, max_speed=1.0, cost=2.5, name="app-node")
_DB_SPEC = ServerSpec(PowerModel(idle=50.0, kappa=120.0, alpha=3.0), min_speed=0.4, max_speed=1.0, cost=4.0, name="db-node")

# Mean service demands (work units ≈ seconds at speed 1) per
# (tier, class) and the demand SCVs per tier. The app tier carries the
# heaviest, most variable work — the classic enterprise bottleneck.
_DEMAND_MEANS = {
    "web": (0.015, 0.020, 0.025),
    "app": (0.060, 0.080, 0.100),
    "db": (0.040, 0.050, 0.060),
}
_DEMAND_SCVS = {"web": 1.0, "app": 2.0, "db": 1.5}

_BASE_RATES = (4.0, 8.0, 12.0)  # gold, silver, bronze requests/s


def canonical_cluster(
    discipline: str = "priority_np",
    servers: tuple[int, int, int] = (2, 4, 3),
    speeds: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> ClusterModel:
    """The 3-tier canonical cluster.

    Parameters
    ----------
    discipline:
        Scheduling at every tier (``"priority_np"`` is the paper's
        default SLA discipline).
    servers, speeds:
        Per-tier (web, app, db) configuration knobs.
    """
    specs = {"web": _WEB_SPEC, "app": _APP_SPEC, "db": _DB_SPEC}
    tiers = []
    for (name, means), c, s in zip(_DEMAND_MEANS.items(), servers, speeds):
        demands = tuple(fit_two_moments(m, _DEMAND_SCVS[name]) for m in means)
        tiers.append(
            Tier(name, demands, specs[name], servers=c, speed=s, discipline=discipline)
        )
    return ClusterModel(tiers)


def canonical_workload(load_factor: float = 1.0) -> Workload:
    """Gold/silver/bronze Poisson workload; ``load_factor`` scales all
    rates (1.0 → busiest tier ≈ 52% utilized at full speed; ≈ 1.9 →
    saturation)."""
    return workload_from_rates([r * load_factor for r in _BASE_RATES], names=CLASS_NAMES)


def canonical_sla(tightness: float = 1.0) -> SLA:
    """Per-class mean end-to-end delay guarantees, priced by priority.

    ``tightness`` scales the bounds (smaller = stricter). Defaults
    chosen so the canonical cluster meets them with modest headroom:
    the P3 experiments then have room to both shrink and grow the
    allocation.
    """
    return SLA(
        [
            ClassSLA("gold", 0.30 * tightness, fee=1.00),
            ClassSLA("silver", 0.60 * tightness, fee=0.40),
            ClassSLA("bronze", 1.20 * tightness, fee=0.10),
        ]
    )


def small_cluster(discipline: str = "priority_np") -> ClusterModel:
    """2-tier, 2-class instance for exhaustive certification and tests."""
    spec_a = ServerSpec(PowerModel(idle=40.0, kappa=100.0, alpha=3.0), min_speed=0.4, max_speed=1.0, cost=2.0, name="a-node")
    spec_b = ServerSpec(PowerModel(idle=50.0, kappa=120.0, alpha=3.0), min_speed=0.4, max_speed=1.0, cost=3.0, name="b-node")
    tiers = [
        Tier(
            "front",
            (fit_two_moments(0.05, 1.0), fit_two_moments(0.07, 1.0)),
            spec_a,
            servers=2,
            speed=1.0,
            discipline=discipline,
        ),
        Tier(
            "back",
            (fit_two_moments(0.08, 2.0), fit_two_moments(0.10, 2.0)),
            spec_b,
            servers=2,
            speed=1.0,
            discipline=discipline,
        ),
    ]
    return ClusterModel(tiers)


def small_workload(load_factor: float = 1.0) -> Workload:
    """2-class workload for the small instance."""
    return workload_from_rates([3.0 * load_factor, 6.0 * load_factor], names=("gold", "bronze"))


def small_sla(tightness: float = 1.0) -> SLA:
    """SLA for the small instance."""
    return SLA(
        [ClassSLA("gold", 0.40 * tightness, fee=1.0), ClassSLA("bronze", 1.00 * tightness, fee=0.2)]
    )


def replicated_simulation(
    cluster,
    workload,
    *,
    horizon: float,
    n_replications: int,
    seed: int,
    target_rel_ci: float | None = None,
    max_reps: int | None = None,
    **engine,
):
    """Replicated simulation, fixed-count or precision-targeted.

    The shared entry point of the simulation-backed validation
    experiments (T1/T2/F7): with ``target_rel_ci`` unset it is exactly
    :func:`repro.simulation.simulate_replications` with
    ``n_replications`` fixed replications; with it set, the adaptive
    engine replicates until the 95% CI half-widths of mean delay and
    average power are within ``target_rel_ci`` of their point values
    (control-variate stopping estimates), capped at ``max_reps``
    (default: four times the fixed count). ``n_replications`` then
    seeds the cap, not the count — the engine may use fewer or more.
    """
    from repro.simulation import (
        PrecisionTarget,
        simulate_replications,
        simulate_replications_adaptive,
    )

    if target_rel_ci is None:
        return simulate_replications(
            cluster,
            workload,
            horizon=horizon,
            n_replications=n_replications,
            seed=seed,
            **engine,
        )
    target = PrecisionTarget(
        rel_ci=target_rel_ci,
        min_replications=min(3, n_replications) if n_replications >= 2 else 2,
        max_replications=max_reps if max_reps is not None else max(4 * n_replications, 16),
        round_size=2,
        estimator="cv",
    )
    return simulate_replications_adaptive(
        cluster,
        workload,
        horizon=horizon,
        target=target,
        seed=seed,
        **engine,
    )


@dataclass(frozen=True)
class StabilityBoxProfile:
    """Endpoints of the stability speed box for one (cluster, workload).

    The sweep experiments all anchor their grids on the same four
    numbers: the average power and the mean delay at the slowest-stable
    and the fastest corner of the box. F3 sweeps budgets across
    ``[min_power, max_power]``, F4/A4 sweep delay bounds across
    ``[best_mean_delay, worst_mean_delay]``.
    """

    box: tuple[tuple[float, float], ...]
    min_power: float
    max_power: float
    best_mean_delay: float
    worst_mean_delay: float


def stability_box_profile(
    cluster: ClusterModel, workload: Workload, rho_cap: float = DEFAULT_RHO_CAP
) -> StabilityBoxProfile:
    """Compute the shared sweep endpoints from the stability speed box."""
    box = stability_speed_bounds(cluster, workload, rho_cap)
    lam = workload.arrival_rates
    slowest = cluster.with_speeds([b[0] for b in box])
    fastest = cluster.with_speeds([b[1] for b in box])
    return StabilityBoxProfile(
        box=tuple((float(lo), float(hi)) for lo, hi in box),
        min_power=float(slowest.average_power(lam)),
        max_power=float(fastest.average_power(lam)),
        best_mean_delay=float(mean_end_to_end_delay(fastest, workload)),
        worst_mean_delay=float(mean_end_to_end_delay(slowest, workload)),
    )
