"""F8 — dynamic power management on a diurnal load curve.

Extension: the paper's P2 solved once per epoch as the load follows a
24-hour cycle (sinusoidal mix of the canonical classes, trough 25% /
peak 160% of the nominal rates), against three static policies:

* **static-max** — all tiers at full speed all day (no power
  management);
* **static-peak** — one P2a solve at the *peak* load, held all day
  (conservative static management);
* **static-mean** — one P2a solve at the *average* load, held all day
  (aggressive static management).

Expected shape: static-max and static-peak meet the bound everywhere
but burn the most energy; static-mean saves energy but violates the
bound around the peak hours; the dynamic controller is fully compliant
at the lowest energy of the compliant policies — energy proportional
to the load curve rather than its peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.tables import ascii_table
from repro.core.controller import evaluate_schedule, plan_speed_schedule, static_plan
from repro.core.opt_energy import minimize_energy
from repro.exceptions import InfeasibleProblemError
from repro.experiments.common import canonical_cluster, canonical_workload

__all__ = ["F8Result", "run", "render", "diurnal_rates"]

DAY = 24.0  # hours, arbitrary epoch unit


def diurnal_rates(
    n_epochs: int = 24, trough: float = 0.25, peak: float = 1.6
) -> tuple[np.ndarray, np.ndarray]:
    """Per-epoch class rates on a sinusoidal day.

    Returns ``(epoch_starts, rates)`` with rates of shape
    ``(n_epochs, 3)`` scaling the canonical class mix.
    """
    starts = np.linspace(0.0, DAY, n_epochs, endpoint=False)
    base = canonical_workload().arrival_rates
    # Minimum at t=4h, maximum at t=16h.
    phase = 2.0 * np.pi * (starts - 16.0) / DAY
    factors = (peak + trough) / 2.0 + (peak - trough) / 2.0 * np.cos(phase)
    return starts, factors[:, None] * base[None, :]


@dataclass
class F8Result:
    """Per-policy energy/compliance rows."""

    rows: list[list[Any]] = field(default_factory=list)
    dynamic_energy: float = float("nan")
    static_peak_energy: float = float("nan")
    static_mean_compliance: float = float("nan")

    @property
    def dynamic_saves_vs_peak(self) -> float:
        """Relative energy saving of dynamic over static-peak."""
        return 1.0 - self.dynamic_energy / self.static_peak_energy

    @property
    def dynamic_fully_compliant(self) -> bool:
        """Dynamic policy met the bound in every epoch."""
        row = [r for r in self.rows if r[0] == "dynamic P2a"][0]
        return row[3] >= 1.0


def run(
    max_mean_delay: float = 0.35,
    n_epochs: int = 24,
    n_starts: int = 2,
    warm_start: bool = True,
) -> F8Result:
    """Run the four policies over one synthetic day.

    ``warm_start`` seeds each epoch's P2a solve with the previous
    epoch's speeds (continuation along the load curve); the schedule
    itself is unchanged by the solver's acceptance guard.
    """
    cluster = canonical_cluster()
    names = list(canonical_workload().names)
    starts, rates = diurnal_rates(n_epochs)

    result = F8Result()

    def add(policy: str, plans) -> None:
        rep = evaluate_schedule(plans)
        result.rows.append(
            [
                policy,
                round(rep.total_energy, 1),
                round(rep.average_power, 1),
                rep.compliance,
                round(rep.worst_mean_delay, 4),
            ]
        )

    # Dynamic controller.
    dynamic = plan_speed_schedule(
        cluster, names, starts, rates, DAY, max_mean_delay, n_starts=n_starts,
        warm_start=warm_start,
    )
    add("dynamic P2a", dynamic)
    result.dynamic_energy = evaluate_schedule(dynamic).total_energy

    # Static policies.
    max_speeds = np.array([t.spec.max_speed for t in cluster.tiers])
    add("static max speed", static_plan(cluster, names, starts, rates, DAY, max_mean_delay, max_speeds))

    def p2a_speeds_at(r: np.ndarray) -> np.ndarray:
        from repro.workload.classes import CustomerClass, Workload

        wl = Workload([CustomerClass(n, float(x)) for n, x in zip(names, r)])
        try:
            return minimize_energy(cluster, wl, max_mean_delay=max_mean_delay, n_starts=n_starts).x
        except InfeasibleProblemError:
            return max_speeds

    peak_idx = int(np.argmax(rates.sum(axis=1)))
    peak_plan = static_plan(
        cluster, names, starts, rates, DAY, max_mean_delay, p2a_speeds_at(rates[peak_idx])
    )
    add("static P2a @ peak", peak_plan)
    result.static_peak_energy = evaluate_schedule(peak_plan).total_energy

    mean_plan = static_plan(
        cluster, names, starts, rates, DAY, max_mean_delay, p2a_speeds_at(rates.mean(axis=0))
    )
    add("static P2a @ mean", mean_plan)
    result.static_mean_compliance = evaluate_schedule(mean_plan).compliance

    return result


def render(result: F8Result) -> str:
    """Policy comparison table plus the headline saving."""
    table = ascii_table(
        ["policy", "energy (Wh)", "avg power (W)", "compliance", "worst mean delay (s)"],
        result.rows,
        title="F8: dynamic vs static power management over a diurnal day "
        "(bound = aggregate mean delay)",
    )
    return (
        table
        + f"\ndynamic saves {result.dynamic_saves_vs_peak:.1%} energy vs static-peak"
        + f"\ndynamic fully compliant: {result.dynamic_fully_compliant}"
        + f"\nstatic-mean compliance: {result.static_mean_compliance:.0%} (violates at peak)"
    )
