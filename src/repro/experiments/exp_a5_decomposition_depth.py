"""A5 — ablation: tandem-decomposition error vs network depth.

The delay model's central approximation treats each priority tier as
an independent M/G/1-type station fed by Poisson arrivals. Departures
from a priority queue are *not* Poisson, and the distortion compounds
tier by tier — so the honest question is how fast the end-to-end error
grows with network depth. This ablation stacks 1..max_depth identical
priority tiers at fixed per-tier utilization and measures the analytic
end-to-end delay against simulation at each depth.

Expected shape: depth 1 is exact up to simulation noise (Cobham);
deeper stacks accumulate error with a consistent *sign* — the
decomposition underestimates, because high-variability departures feed
downstream tiers burstier-than-Poisson arrivals. At ρ = 0.6 and
SCV 2 the error stays single-digit percent through depth ~4 and
reaches the mid-teens by depth 6 — both the license for few-tier
clusters (the paper's setting) and the quantified caveat against
deep ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.tables import ascii_table
from repro.analysis.validation import relative_error
from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.core.delay import end_to_end_delays
from repro.distributions import fit_two_moments
from repro.simulation import simulate_replications
from repro.workload import workload_from_rates

__all__ = ["A5Result", "run", "render"]

_SPEC = ServerSpec(PowerModel(idle=10.0, kappa=50.0, alpha=3.0), min_speed=0.5, max_speed=1.0)


@dataclass
class A5Result:
    """Per-(depth, class) error rows."""

    rows: list[list[Any]] = field(default_factory=list)

    def worst_error_at_depth(self, depth: int) -> float:
        """Worst per-class error at one network depth."""
        errs = [r[5] for r in self.rows if r[0] == depth and np.isfinite(r[5])]
        return max(errs) if errs else float("nan")

    @property
    def max_error(self) -> float:
        """Worst error across the whole sweep."""
        return max(r[5] for r in self.rows if np.isfinite(r[5]))


def run(
    depths=(1, 2, 4, 6),
    per_tier_rho: float = 0.6,
    scv: float = 2.0,
    horizon: float = 20000.0,
    n_replications: int = 3,
    seed: int = 66,
    n_jobs: int | None = None,
    cache_dir: str | None = None,
) -> A5Result:
    """Stack identical 2-class priority tiers and measure the error.

    Per-tier demands: high-priority mean 0.6, low-priority mean 1.2
    work units at the given SCV; rates split so the tier utilization is
    ``per_tier_rho``.
    """
    means = np.array([0.6, 1.2])
    props = np.array([1.0, 1.0])
    scale = per_tier_rho / float(np.dot(props, means))
    rates = (props * scale).tolist()
    workload = workload_from_rates(rates, names=("hi", "lo"))

    result = A5Result()
    for depth in depths:
        tiers = [
            Tier(
                f"t{i}",
                tuple(fit_two_moments(m, scv) for m in means),
                _SPEC,
                discipline="priority_np",
            )
            for i in range(depth)
        ]
        cluster = ClusterModel(tiers)
        analytic = end_to_end_delays(cluster, workload)
        sim = simulate_replications(
            cluster,
            workload,
            horizon=horizon / depth,  # keep event counts comparable
            n_replications=n_replications,
            seed=seed,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
        )
        for k, name in enumerate(workload.names):
            result.rows.append(
                [
                    depth,
                    name,
                    analytic[k],
                    sim.delays[k],
                    sim.delays_ci[k],
                    relative_error(analytic[k], sim.delays[k]),
                ]
            )
    return result


def render(result: A5Result) -> str:
    """The depth sweep plus per-depth worst errors."""
    table = ascii_table(
        ["depth", "class", "analytic T (s)", "simulated T (s)", "95% CI", "rel.err"],
        result.rows,
        title="A5: tandem-decomposition error vs network depth (priority tiers, rho=0.6)",
    )
    depths = sorted({r[0] for r in result.rows})
    summary = "; ".join(
        f"depth {d}: worst {result.worst_error_at_depth(d):.1%}" for d in depths
    )
    return table + "\nworst error per depth: " + summary
