"""T4 — solver efficiency ("the proposed approaches are efficient").

Measures, on SLA instances of growing size, the P3 optimizer's wall
time, model-evaluation count and optimality gap against exhaustive
enumeration — and the wall time of one P1 and one P2b solve on the
canonical cluster for reference.

Expected shape: the greedy+local-search evaluation count grows roughly
linearly with the feasible allocation size while exhaustive enumeration
grows exponentially in tier count; the cost gap is zero wherever
exhaustive search is affordable. With the continuation cap sweep (the
default) later small-instance rows report near-zero *fresh*
evaluations: the shared feasibility memo already certified the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import obs
from repro.analysis.tables import ascii_table
from repro.baselines.exhaustive import exhaustive_cost_minimization
from repro.core.opt_cost import minimize_cost
from repro.core.opt_delay import minimize_delay
from repro.core.opt_energy import minimize_energy
from repro.experiments.common import (
    canonical_cluster,
    canonical_sla,
    canonical_workload,
    small_cluster,
    small_sla,
    small_workload,
)
from repro.optimize.sweep import continuation_sweep

__all__ = ["T4Result", "run", "render"]


@dataclass
class T4Result:
    """Comparison rows plus continuous-solver reference timings."""

    rows: list[list[Any]] = field(default_factory=list)
    p1_seconds: float = float("nan")
    p2b_seconds: float = float("nan")

    @property
    def all_gaps_zero(self) -> bool:
        """Optimizer matched exhaustive cost on every certified row."""
        return all(abs(row[6]) < 1e-9 for row in self.rows if np.isfinite(row[6]))


def run(small_caps=(6, 8, 10, 12), load_factor: float = 1.0, warm_start: bool = True) -> T4Result:
    """Time the P3 optimizer vs exhaustive search on growing boxes.

    The small-instance cap sweep is a continuation sweep: the cap only
    widens the search box for the *same* (cluster, workload, sla)
    triple, so the sweep shares one feasibility memo and seeds each cap
    with the previous cap's counts — later caps cost (near) zero fresh
    evaluations, which is exactly the efficiency headline the table
    reports. ``warm_start=False`` reproduces the old every-row-cold
    measurement. Rows are timed, so they always run serially.
    """
    result = T4Result()
    s_cluster, s_workload, s_sla = small_cluster(), small_workload(load_factor), small_sla()

    memo: dict[tuple[int, ...], tuple[bool, float]] = {}

    def solve_small(cap: int, hint: np.ndarray | None):
        return minimize_cost(
            s_cluster,
            s_workload,
            s_sla,
            max_servers_per_tier=int(cap),
            optimize_speeds=False,
            counts_hint=hint,
            feasibility_memo=memo if warm_start else None,
        )

    sweep = continuation_sweep(
        solve_small, [int(c) for c in small_caps], warm_start=warm_start, label="t4.small"
    )

    instances = [
        (f"small(2 tiers), cap={int(cap)}", s_cluster, s_workload, s_sla, int(cap), point)
        for cap, point in zip(small_caps, sweep.points)
    ]
    instances.append(
        (
            "canonical(3 tiers), cap=6",
            canonical_cluster(),
            canonical_workload(load_factor),
            canonical_sla(),
            6,
            None,
        )
    )
    for label, cl, wl, sla_i, cap, point in instances:
        if point is None:
            with obs.span("t4.p3_solve", instance=label) as t_opt:
                alloc = minimize_cost(
                    cl, wl, sla_i, max_servers_per_tier=cap, optimize_speeds=False
                )
            opt_ms = t_opt.wall_s * 1e3
        else:
            alloc = point.result
            opt_ms = point.wall_s * 1e3
        with obs.span("t4.exhaustive", instance=label) as t_ex:
            _, ex_cost, ex_evals = exhaustive_cost_minimization(
                cl, wl, sla_i, max_servers_per_tier=cap
            )
        result.rows.append(
            [
                label,
                alloc.n_evaluations,
                round(opt_ms, 3),
                f"{ex_evals} (of {cap ** cl.num_tiers})",
                round(t_ex.wall_s * 1e3, 3),
                alloc.total_cost,
                alloc.total_cost - ex_cost,
            ]
        )

    cluster, workload = canonical_cluster(), canonical_workload(load_factor)
    rep_power = cluster.average_power(workload.arrival_rates)
    with obs.span("t4.p1_solve") as t_p1:
        minimize_delay(cluster, workload, power_budget=rep_power * 0.9, n_starts=3)
    result.p1_seconds = t_p1.wall_s

    sla = canonical_sla()
    with obs.span("t4.p2b_solve") as t_p2b:
        minimize_energy(cluster, workload, sla=sla, n_starts=3)
    result.p2b_seconds = t_p2b.wall_s
    return result


def render(result: T4Result) -> str:
    """Efficiency table plus the continuous-solver timings."""
    table = ascii_table(
        [
            "instance",
            "P3 evals",
            "P3 ms",
            "exhaustive evals",
            "exhaustive ms",
            "P3 cost",
            "gap",
        ],
        result.rows,
        title="T4: P3 optimizer vs exhaustive enumeration",
    )
    return (
        table
        + f"\nall optimality gaps zero: {result.all_gaps_zero}"
        + f"\ncanonical P1 solve: {result.p1_seconds * 1e3:.1f} ms, "
        + f"P2b solve: {result.p2b_seconds * 1e3:.1f} ms"
    )
