"""A2 — ablation: non-preemptive vs preemptive-resume priority.

The paper's SLA discipline choice. Runs the canonical cluster under
both disciplines (analytic + simulation) and reports what preemption
buys the gold class and costs the bronze class.

Expected shape: preemption strictly improves gold's delay (it no
longer waits behind in-service bronze residuals) and worsens bronze's;
the analytic formulas track both disciplines within the T1 error band,
and total throughput-weighted delay stays comparable (work
conservation).

Both disciplines replicate under **common random numbers** (same
master seed), so the NP−PR differences are estimated with paired-t
intervals far tighter than the independent-streams intervals the same
replication budget would buy — the ``paired`` table quantifies exactly
how confident the "gold improves under preemption" claim is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.tables import ascii_table
from repro.analysis.validation import relative_error
from repro.core.delay import end_to_end_delays
from repro.experiments.common import CLASS_NAMES, canonical_cluster, canonical_workload
from repro.simulation import Scenario, compare_scenarios

__all__ = ["A2Result", "run", "render"]

#: Per-class delay differences plus the headline mean, all CRN-paired.
PAIRED_METRICS = tuple(f"delay/{name}" for name in CLASS_NAMES) + ("mean_delay",)


@dataclass
class A2Result:
    """Per-class rows under both disciplines, plus CRN-paired deltas."""

    rows: list[list[Any]] = field(default_factory=list)
    gold_improves_under_pr: bool = False
    max_rel_error: float = float("nan")
    # metric -> {"paired": VrEstimate, "independent": VrEstimate,
    # "correlation": float, "vr_factor": float} for the NP - PR deltas.
    paired: dict[str, dict[str, Any]] = field(default_factory=dict)


def run(
    load_factor: float = 1.2,
    horizon: float = 4000.0,
    n_replications: int = 5,
    seed: int = 44,
    n_jobs: int | None = None,
    cache_dir: str | None = None,
) -> A2Result:
    """Analytic + simulated per-class delays under NP and PR.

    Both disciplines share the master seed (CRN), and the NP−PR deltas
    are reported with paired-t intervals next to the independent-
    streams Welch intervals. ``n_jobs``/``cache_dir`` parallelize and
    memoize the replications without changing the numbers.
    """
    workload = canonical_workload(load_factor)
    result = A2Result()
    comp = compare_scenarios(
        Scenario(canonical_cluster(discipline="priority_np"), workload, label="priority_np"),
        Scenario(canonical_cluster(discipline="priority_pr"), workload, label="priority_pr"),
        horizon=horizon,
        n_replications=n_replications,
        metrics=PAIRED_METRICS,
        seed=seed,
        n_jobs=n_jobs,
        cache_dir=cache_dir,
    )
    sims: dict[str, np.ndarray] = {}
    errors = []
    for discipline, sim in (
        ("priority_np", comp.result_a),
        ("priority_pr", comp.result_b),
    ):
        analytic = end_to_end_delays(canonical_cluster(discipline=discipline), workload)
        sims[discipline] = sim.delays
        for k, name in enumerate(workload.names):
            err = relative_error(analytic[k], sim.delays[k])
            errors.append(err)
            result.rows.append(
                [discipline, name, analytic[k], sim.delays[k], sim.delays_ci[k], err]
            )
    result.gold_improves_under_pr = bool(
        sims["priority_pr"][0] < sims["priority_np"][0]
    )
    result.max_rel_error = float(np.nanmax(errors))
    result.paired = comp.metrics
    return result


def render(result: A2Result) -> str:
    """The discipline comparison table plus summary lines."""
    table = ascii_table(
        ["discipline", "class", "analytic T (s)", "simulated T (s)", "95% CI", "rel.err"],
        result.rows,
        title="A2: non-preemptive vs preemptive-resume priority",
    )
    parts = [table]
    if result.paired:
        paired_rows = [
            [
                metric,
                row["paired"].value,
                row["paired"].halfwidth,
                row["independent"].halfwidth,
                f"{row['correlation']:.3f}",
                f"{row['vr_factor']:.1f}x",
            ]
            for metric, row in result.paired.items()
        ]
        parts.append(
            ascii_table(
                ["metric", "NP - PR", "paired 95% CI", "indep 95% CI", "corr", "CRN worth"],
                paired_rows,
                title="A2: CRN-paired discipline differences",
            )
        )
    parts.append(
        f"gold delay improves under preemption: {result.gold_improves_under_pr}"
        + f"\nworst analytic error across both disciplines: {result.max_rel_error:.3%}"
    )
    return "\n".join(parts)
