"""A2 — ablation: non-preemptive vs preemptive-resume priority.

The paper's SLA discipline choice. Runs the canonical cluster under
both disciplines (analytic + simulation) and reports what preemption
buys the gold class and costs the bronze class.

Expected shape: preemption strictly improves gold's delay (it no
longer waits behind in-service bronze residuals) and worsens bronze's;
the analytic formulas track both disciplines within the T1 error band,
and total throughput-weighted delay stays comparable (work
conservation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.tables import ascii_table
from repro.analysis.validation import relative_error
from repro.core.delay import end_to_end_delays
from repro.experiments.common import canonical_cluster, canonical_workload
from repro.simulation import simulate_replications

__all__ = ["A2Result", "run", "render"]


@dataclass
class A2Result:
    """Per-class rows under both disciplines."""

    rows: list[list[Any]] = field(default_factory=list)
    gold_improves_under_pr: bool = False
    max_rel_error: float = float("nan")


def run(
    load_factor: float = 1.2,
    horizon: float = 4000.0,
    n_replications: int = 5,
    seed: int = 44,
    n_jobs: int | None = None,
    cache_dir: str | None = None,
) -> A2Result:
    """Analytic + simulated per-class delays under NP and PR.

    ``n_jobs``/``cache_dir`` parallelize and memoize the replications
    without changing the numbers.
    """
    workload = canonical_workload(load_factor)
    result = A2Result()
    sims: dict[str, np.ndarray] = {}
    analytics: dict[str, np.ndarray] = {}
    errors = []
    for discipline in ("priority_np", "priority_pr"):
        cluster = canonical_cluster(discipline=discipline)
        analytic = end_to_end_delays(cluster, workload)
        sim = simulate_replications(
            cluster,
            workload,
            horizon=horizon,
            n_replications=n_replications,
            seed=seed,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
        )
        sims[discipline] = sim.delays
        analytics[discipline] = analytic
        for k, name in enumerate(workload.names):
            err = relative_error(analytic[k], sim.delays[k])
            errors.append(err)
            result.rows.append(
                [discipline, name, analytic[k], sim.delays[k], sim.delays_ci[k], err]
            )
    result.gold_improves_under_pr = bool(
        sims["priority_pr"][0] < sims["priority_np"][0]
    )
    result.max_rel_error = float(np.nanmax(errors))
    return result


def render(result: A2Result) -> str:
    """The discipline comparison table plus summary lines."""
    table = ascii_table(
        ["discipline", "class", "analytic T (s)", "simulated T (s)", "95% CI", "rel.err"],
        result.rows,
        title="A2: non-preemptive vs preemptive-resume priority",
    )
    return (
        table
        + f"\ngold delay improves under preemption: {result.gold_improves_under_pr}"
        + f"\nworst analytic error across both disciplines: {result.max_rel_error:.3%}"
    )
