"""F1 — per-class end-to-end delay vs total arrival rate.

The workhorse performance figure: sweep the offered load of the
canonical mix toward saturation and plot every class's analytic delay
(simulated points at a few loads confirm T1's accuracy holds along the
whole curve).

Expected shape: all curves increase convexly; the gold curve stays
almost flat until very high load (priority shields it) while bronze
blows up first — the visual argument for priority scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.series import SweepSeries
from repro.core.delay import end_to_end_delays
from repro.exceptions import UnstableSystemError
from repro.experiments.common import canonical_cluster, canonical_workload

__all__ = ["F1Result", "run", "render"]


@dataclass
class F1Result:
    """The delay-vs-load series plus the detected saturation point."""

    series: SweepSeries
    saturation_load_factor: float


def run(load_factors=None, discipline: str = "priority_np") -> F1Result:
    """Sweep load factors (default 0.2 → 1.85) on the canonical cluster."""
    if load_factors is None:
        load_factors = np.linspace(0.2, 1.85, 12)
    cluster = canonical_cluster(discipline=discipline)
    names = canonical_workload().names
    rows = {f"T[{n}] (s)": [] for n in names}
    rows["mean (s)"] = []
    saturation = np.inf
    xs = []
    for lf in load_factors:
        workload = canonical_workload(float(lf))
        try:
            delays = end_to_end_delays(cluster, workload)
        except UnstableSystemError:
            saturation = min(saturation, float(lf))
            break
        xs.append(float(lf))
        for k, n in enumerate(names):
            rows[f"T[{n}] (s)"].append(delays[k])
        rows["mean (s)"].append(
            float((workload.arrival_rates * delays).sum() / workload.total_rate)
        )
    series = SweepSeries(
        name="F1: per-class end-to-end delay vs load factor",
        x_label="load factor",
        x=np.array(xs),
        columns={k: np.array(v) for k, v in rows.items()},
    )
    return F1Result(series=series, saturation_load_factor=float(saturation))


def render(result: F1Result) -> str:
    """The figure as a text table."""
    out = result.series.to_table()
    if np.isfinite(result.saturation_load_factor):
        out += f"\n(saturation at load factor {result.saturation_load_factor:g})"
    return out
