"""F7 — analytic percentile delays vs simulated empirical percentiles.

Extension beyond the paper's mean-delay guarantees: SLAs in the
author's related work are *percentile*-based, so the library ships the
classic hypoexponential tail approximation
(:mod:`repro.core.percentile`). This experiment measures it per class
and per level against empirical percentiles from replicated
simulation.

Expected shape: tight for the gold class (its per-tier sojourns are
closest to exponential under priority) and progressively optimistic —
underestimating — for lower classes at high percentiles, whose true
sojourn tails are heavier than exponential. Errors should stay within
~15% at p ≤ 0.95 for the canonical cluster; the experiment quantifies
exactly where the approximation can be trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.tables import ascii_table
from repro.analysis.validation import relative_error
from repro.core.percentile import all_class_percentiles
from repro.experiments.common import canonical_cluster, canonical_workload, replicated_simulation

__all__ = ["F7Result", "run", "render", "F7FCFSResult", "run_fcfs", "render_fcfs"]


@dataclass
class F7Result:
    """Per-(level, class) comparison rows."""

    rows: list[list[Any]] = field(default_factory=list)

    def max_error_at(self, level: float) -> float:
        """Worst relative error among classes at one percentile level."""
        errs = [r[6] for r in self.rows if r[0] == level and np.isfinite(r[6])]
        return max(errs) if errs else float("nan")

    @property
    def gold_max_error(self) -> float:
        """Worst error for the gold class across levels."""
        errs = [r[6] for r in self.rows if r[1] == "gold" and np.isfinite(r[6])]
        return max(errs) if errs else float("nan")


def run(
    levels=(0.5, 0.9, 0.95),
    load_factor: float = 1.2,
    horizon: float = 4000.0,
    n_replications: int = 5,
    seed: int = 77,
    n_jobs: int | None = None,
    cache_dir: str | None = None,
    target_rel_ci: float | None = None,
    max_reps: int | None = None,
) -> F7Result:
    """Compare analytic vs empirical percentiles on the canonical
    cluster. ``n_jobs``/``cache_dir`` parallelize and memoize the
    replications without changing the numbers;
    ``target_rel_ci``/``max_reps`` switch to the adaptive
    precision-targeted engine (the percentile estimates then ride on
    however many replications the headline-metric target needs)."""
    cluster = canonical_cluster()
    workload = canonical_workload(load_factor)
    sim = replicated_simulation(
        cluster,
        workload,
        horizon=horizon,
        n_replications=n_replications,
        seed=seed,
        target_rel_ci=target_rel_ci,
        max_reps=max_reps,
        collect_delay_samples=True,
        n_jobs=n_jobs,
        cache_dir=cache_dir,
    )
    result = F7Result()
    for level in levels:
        analytic = all_class_percentiles(cluster, workload, level)
        empirical, ci = sim.delay_percentiles(level)
        for k, name in enumerate(workload.names):
            result.rows.append(
                [
                    level,
                    name,
                    analytic[k],
                    empirical[k],
                    ci[k],
                    analytic[k] - empirical[k],
                    relative_error(analytic[k], empirical[k]),
                ]
            )
    return result


def render(result: F7Result) -> str:
    """Comparison table with per-level summaries."""
    table = ascii_table(
        ["level", "class", "analytic t_p (s)", "empirical t_p (s)", "95% CI", "bias", "rel.err"],
        result.rows,
        title="F7: percentile end-to-end delay — hypoexponential approximation vs simulation",
    )
    levels = sorted({r[0] for r in result.rows})
    summary = "; ".join(f"p={lv:g}: worst {result.max_error_at(lv):.1%}" for lv in levels)
    return table + "\nworst error per level: " + summary


@dataclass
class F7FCFSResult:
    """Method-comparison rows for the all-FCFS variant."""

    rows: list[list[Any]] = field(default_factory=list)

    @property
    def exact_beats_hypoexp(self) -> bool:
        """The exact-PH percentile is at least as close to simulation
        as the hypoexponential one on every row."""
        return all(abs(r[6]) <= abs(r[5]) + 1e-9 for r in self.rows)

    @property
    def max_exact_error(self) -> float:
        """Worst exact-PH relative error."""
        return max(abs(r[6]) for r in self.rows)


def run_fcfs(
    levels=(0.9, 0.95),
    load_factor: float = 1.2,
    horizon: float = 4000.0,
    n_replications: int = 4,
    seed: int = 78,
    n_jobs: int | None = None,
    cache_dir: str | None = None,
) -> F7FCFSResult:
    """Compare the two analytic percentile methods on the all-FCFS
    canonical variant, where the exact M/PH/1 path applies.

    All tiers run single-server FCFS (server counts folded into one
    fast server per tier so the exact path applies) — the point is the
    method gap, not the cluster realism.
    """
    base = canonical_cluster(discipline="fcfs")
    # One fast server per tier: same capacity, single-server FCFS.
    from repro.cluster import ClusterModel
    from dataclasses import replace as _replace

    tiers = []
    for t in base.tiers:
        demands = tuple(d.scaled(1.0 / t.servers) for d in t.demands)
        tiers.append(_replace(t, demands=demands, servers=1))
    cluster = ClusterModel(tiers)
    workload = canonical_workload(load_factor)

    from repro.core.percentile import class_delay_percentile, class_delay_percentile_ph
    from repro.simulation import simulate_replications

    sim = simulate_replications(
        cluster,
        workload,
        horizon=horizon,
        n_replications=n_replications,
        seed=seed,
        collect_delay_samples=True,
        n_jobs=n_jobs,
        cache_dir=cache_dir,
    )
    result = F7FCFSResult()
    for level in levels:
        empirical, _ = sim.delay_percentiles(level)
        for k, name in enumerate(workload.names):
            hypo = class_delay_percentile(cluster, workload, k, level)
            exact = class_delay_percentile_ph(cluster, workload, k, level)
            result.rows.append(
                [
                    level,
                    name,
                    hypo,
                    exact,
                    empirical[k],
                    relative_error(hypo, empirical[k]),
                    relative_error(exact, empirical[k]),
                ]
            )
    return result


def render_fcfs(result: F7FCFSResult) -> str:
    """The method-comparison table plus the dominance line."""
    table = ascii_table(
        ["level", "class", "hypoexp t_p", "exact-PH t_p", "empirical t_p", "hypo err", "PH err"],
        result.rows,
        title="F7b: percentile methods on the all-FCFS variant (exact M/PH/1 applies)",
    )
    return (
        table
        + f"\nexact-PH at least as accurate on every row: {result.exact_beats_hypoexp}"
        + f"\nworst exact-PH error: {result.max_exact_error:.2%}"
    )
