"""T2 — analytic vs simulated power and energy metrics.

Validates the energy half of abstract claim 1: average cluster power,
amortized energy per request, per-tier utilization and per-class
dynamic energy per request, all against simulation.

Expected shape: power/energy errors well under the delay errors
(power is a first-moment quantity, insensitive to queueing
correlations), per-class dynamic energy matching the
``κ s^{α−1} E[D]`` formula closely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.validation import ValidationReport
from repro.core.energy import average_power, energy_per_request, per_class_energy_per_request
from repro.experiments.common import canonical_cluster, canonical_workload, replicated_simulation

__all__ = ["T2Result", "run", "render"]


@dataclass
class T2Result:
    """One validation report per load factor."""

    reports: dict[float, ValidationReport]

    @property
    def max_rel_error(self) -> float:
        """Worst energy-metric error across all load points."""
        return max(r.max_rel_error for r in self.reports.values())


def run(
    load_factors=(0.6, 1.0, 1.5),
    horizon: float = 4000.0,
    n_replications: int = 5,
    seed: int = 22,
    speeds: tuple[float, float, float] = (0.9, 0.95, 0.85),
    n_jobs: int | None = None,
    cache_dir: str | None = None,
    target_rel_ci: float | None = None,
    max_reps: int | None = None,
) -> T2Result:
    """Run the T2 validation; non-trivial speeds so the DVFS power
    terms are actually exercised. ``n_jobs``/``cache_dir`` parallelize
    and memoize the replications without changing the numbers;
    ``target_rel_ci``/``max_reps`` switch to the adaptive
    precision-targeted engine."""
    cluster = canonical_cluster(speeds=speeds)
    reports: dict[float, ValidationReport] = {}
    for lf in load_factors:
        workload = canonical_workload(lf)
        sim = replicated_simulation(
            cluster,
            workload,
            horizon=horizon,
            n_replications=n_replications,
            seed=seed,
            target_rel_ci=target_rel_ci,
            max_reps=max_reps,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
        )
        report = ValidationReport(title=f"T2: power & energy, load factor {lf}")
        report.add(
            "average power (W)",
            average_power(cluster, workload),
            sim.average_power,
            sim.average_power_ci,
        )
        report.add(
            "energy/request (J)",
            energy_per_request(cluster, workload),
            sim.energy_per_request,
        )
        dyn = per_class_energy_per_request(cluster, workload, idle="none")
        for k, name in enumerate(workload.names):
            report.add(f"dyn energy/req[{name}] (J)", dyn[k], sim.per_class_dynamic_energy[k])
        rho = cluster.utilizations(workload.arrival_rates)
        for i, tier in enumerate(cluster.tiers):
            report.add(f"rho[{tier.name}]", float(rho[i]), float(sim.utilizations[i]))
        reports[lf] = report
    return T2Result(reports)


def render(result: T2Result) -> str:
    """All load-point tables plus the summary line."""
    parts = [r.to_table() for _, r in sorted(result.reports.items())]
    parts.append(f"worst relative error across T2: {result.max_rel_error:.3%}")
    return "\n\n".join(parts)
