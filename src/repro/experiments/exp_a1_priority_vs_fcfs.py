"""A1 — ablation: the priority model vs the aggregate-FCFS model.

Justifies the paper's whole premise: a provider modelling its
multi-class cluster *without* priorities mis-predicts per-class
delays. Both models are compared against the same priority-scheduled
simulation.

Expected shape: the priority model's per-class errors stay in the few-
percent band; the aggregate model *overestimates* the gold delay and
*underestimates* the bronze delay, with the distortion growing with
load and with the traffic skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.tables import ascii_table
from repro.analysis.validation import relative_error
from repro.baselines.single_class import aggregate_fcfs_delays
from repro.core.delay import end_to_end_delays
from repro.experiments.common import CLASS_NAMES, canonical_cluster, canonical_workload
from repro.simulation import Scenario, compare_scenarios

__all__ = ["A1Result", "run", "render"]

#: CRN-paired deltas between the priority and FCFS *simulations*.
PAIRED_METRICS = tuple(f"delay/{name}" for name in CLASS_NAMES)


@dataclass
class A1Result:
    """Per-(load, class) comparison rows."""

    rows: list[list[Any]] = field(default_factory=list)
    # load factor -> metric -> {"paired": VrEstimate, ...}: what the
    # *scheduler* (not the model) does to each class, simulated under
    # CRN so the per-class priority-vs-FCFS deltas carry paired CIs.
    paired: dict[float, dict[str, dict[str, Any]]] = field(default_factory=dict)

    @property
    def priority_model_wins(self) -> bool:
        """Priority-model error below aggregate-model error for every
        class at every load point."""
        return all(row[5] <= row[6] for row in self.rows)

    @property
    def max_priority_error(self) -> float:
        """Worst priority-model relative error."""
        return max(row[5] for row in self.rows)


def run(
    load_factors=(1.0, 1.5),
    horizon: float = 4000.0,
    n_replications: int = 5,
    seed: int = 33,
    n_jobs: int | None = None,
    cache_dir: str | None = None,
) -> A1Result:
    """Compare both analytic models to simulation at each load.

    Each load point also simulates the *FCFS-scheduled* cluster under
    common random numbers with the priority run, so the distortion the
    aggregate model hides (gold slower, bronze faster under FCFS) is
    measured directly with paired CIs. ``n_jobs``/``cache_dir``
    parallelize and memoize the replications without changing the
    numbers."""
    cluster = canonical_cluster(discipline="priority_np")
    result = A1Result()
    for lf in load_factors:
        workload = canonical_workload(lf)
        prio = end_to_end_delays(cluster, workload)
        fcfs = aggregate_fcfs_delays(cluster, workload)
        comp = compare_scenarios(
            Scenario(cluster, workload, label="priority_np"),
            Scenario(canonical_cluster(discipline="fcfs"), workload, label="fcfs"),
            horizon=horizon,
            n_replications=n_replications,
            metrics=PAIRED_METRICS,
            seed=seed,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
        )
        sim = comp.result_a
        result.paired[lf] = comp.metrics
        for k, name in enumerate(workload.names):
            result.rows.append(
                [
                    lf,
                    name,
                    sim.delays[k],
                    prio[k],
                    fcfs[k],
                    relative_error(prio[k], sim.delays[k]),
                    relative_error(fcfs[k], sim.delays[k]),
                ]
            )
    return result


def render(result: A1Result) -> str:
    """The comparison table plus the dominance summary."""
    table = ascii_table(
        [
            "load",
            "class",
            "simulated T (s)",
            "priority model",
            "aggregate model",
            "prio rel.err",
            "aggr rel.err",
        ],
        result.rows,
        title="A1: priority vs aggregate-FCFS modelling error (vs simulation)",
    )
    parts = [table]
    if result.paired:
        paired_rows = [
            [
                lf,
                metric.removeprefix("delay/"),
                row["paired"].value,
                row["paired"].halfwidth,
                f"{row['vr_factor']:.1f}x",
            ]
            for lf, metrics in sorted(result.paired.items())
            for metric, row in metrics.items()
        ]
        parts.append(
            ascii_table(
                ["load", "class", "priority - FCFS", "paired 95% CI", "CRN worth"],
                paired_rows,
                title="A1: simulated scheduler effect (CRN-paired)",
            )
        )
    parts.append(
        f"priority model more accurate for every row: {result.priority_model_wins}"
        + f"\nworst priority-model error: {result.max_priority_error:.3%}"
    )
    return "\n".join(parts)
