"""F4 — P2a trade-off: minimal average power vs aggregate delay bound.

The dual of F3: sweep the aggregate mean-delay bound from just above
the fastest achievable delay to a loose bound and solve P2a at each
point, against the uniform-speed baseline meeting the same bound.

Expected shape: a convex frontier — power explodes as the bound
tightens toward the zero-headroom delay, flattens to the minimum
stable power as it loosens; the optimizer saves the most energy at
moderate bounds, where per-tier intelligence has room to act.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.series import SweepSeries
from repro.baselines import uniform_speed_for_delay
from repro.core.delay import mean_end_to_end_delay
from repro.core.opt_common import stability_speed_bounds
from repro.core.opt_energy import minimize_energy
from repro.experiments.common import canonical_cluster, canonical_workload

__all__ = ["F4Result", "run", "render"]


@dataclass
class F4Result:
    """The frontier series and the feasible delay-bound range."""

    series: SweepSeries
    best_delay: float
    worst_delay: float

    @property
    def optimal_dominates(self) -> bool:
        """True iff the optimizer never uses more power than the
        uniform baseline (up to solver tolerance)."""
        opt = self.series.columns["optimal power (W)"]
        uni = self.series.columns["uniform power (W)"]
        return bool(np.all(opt <= uni + 1e-6))


def run(n_points: int = 8, load_factor: float = 1.0, n_starts: int = 3) -> F4Result:
    """Solve P2a along a delay-bound sweep on the canonical cluster."""
    cluster = canonical_cluster()
    workload = canonical_workload(load_factor)
    lam = workload.arrival_rates

    box = stability_speed_bounds(cluster, workload)
    best = mean_end_to_end_delay(cluster.with_speeds([b[1] for b in box]), workload)
    worst = mean_end_to_end_delay(cluster.with_speeds([b[0] for b in box]), workload)
    # Geometric spacing: the interesting (steep) part of the frontier
    # sits near the tight end, which linear spacing would under-sample.
    bounds = np.geomspace(best * 1.05, worst * 0.98, n_points)

    opt_power, uni_power, achieved = [], [], []
    for d in bounds:
        res = minimize_energy(cluster, workload, max_mean_delay=float(d), n_starts=n_starts)
        opt_power.append(res.meta["power"])
        achieved.append(
            mean_end_to_end_delay(res.meta["cluster"], workload)
        )
        uni = uniform_speed_for_delay(cluster, workload, float(d))
        uni_power.append(cluster.with_speeds(uni).average_power(lam))

    series = SweepSeries(
        name="F4: P2a minimal power vs aggregate delay bound",
        x_label="delay bound (s)",
        x=bounds,
        columns={
            "optimal power (W)": np.array(opt_power),
            "uniform power (W)": np.array(uni_power),
            "achieved delay (s)": np.array(achieved),
        },
    )
    return F4Result(series=series, best_delay=float(best), worst_delay=float(worst))


def render(result: F4Result) -> str:
    """The frontier as a text table plus the dominance check."""
    out = result.series.to_table()
    out += (
        f"\nfeasible mean-delay range: [{result.best_delay:.4g}, {result.worst_delay:.4g}] s"
        f"\noptimal power <= uniform baseline everywhere: {result.optimal_dominates}"
    )
    return out
