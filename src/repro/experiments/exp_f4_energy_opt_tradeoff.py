"""F4 — P2a trade-off: minimal average power vs aggregate delay bound.

The dual of F3: sweep the aggregate mean-delay bound from just above
the fastest achievable delay to a loose bound and solve P2a at each
point, against the uniform-speed baseline meeting the same bound.

Like F3 the sweep runs on the continuation engine
(:func:`repro.optimize.sweep.continuation_sweep`): each bound's solve
is warm-started from its neighbor, the baselines run as independent
series (``n_jobs``), and the frontier values are identical to a cold
sweep by the solver's acceptance guard.

Expected shape: a convex frontier — power explodes as the bound
tightens toward the zero-headroom delay, flattens to the minimum
stable power as it loosens; the optimizer saves the most energy at
moderate bounds, where per-tier intelligence has room to act.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.series import SweepSeries
from repro.baselines import uniform_speed_for_delay
from repro.cluster.model import ClusterModel
from repro.core.delay import mean_end_to_end_delay
from repro.core.opt_energy import minimize_energy
from repro.experiments.common import canonical_cluster, canonical_workload, stability_box_profile
from repro.optimize.sweep import ContinuationSweep, continuation_sweep, run_series
from repro.workload.classes import Workload

__all__ = ["F4Result", "run", "render"]


@dataclass
class F4Result:
    """The frontier series and the feasible delay-bound range."""

    series: SweepSeries
    best_delay: float
    worst_delay: float
    optimal_sweep: ContinuationSweep | None = field(default=None, repr=False)

    @property
    def optimal_dominates(self) -> bool:
        """True iff the optimizer never uses more power than the
        uniform baseline (up to solver tolerance)."""
        opt = self.series.columns["optimal power (W)"]
        uni = self.series.columns["uniform power (W)"]
        return bool(np.all(opt <= uni + 1e-6))


def _optimal_series(
    cluster: ClusterModel,
    workload: Workload,
    bounds: np.ndarray,
    n_starts: int,
    warm_start: bool,
) -> ContinuationSweep:
    """The P2a frontier, one continuation solve per delay bound."""

    def solve(bound: float, hint: np.ndarray | None):
        return minimize_energy(
            cluster, workload, max_mean_delay=float(bound), n_starts=n_starts, x0_hint=hint
        )

    return continuation_sweep(solve, bounds, warm_start=warm_start, label="f4.optimal")


def _uniform_series(cluster: ClusterModel, workload: Workload, bounds: np.ndarray) -> np.ndarray:
    """Power of the uniform-speed baseline meeting each bound."""
    lam = workload.arrival_rates
    out = []
    for d in bounds:
        s = uniform_speed_for_delay(cluster, workload, float(d))
        out.append(cluster.with_speeds(s).average_power(lam))
    return np.array(out)


def run(
    n_points: int = 8,
    load_factor: float = 1.0,
    n_starts: int = 3,
    warm_start: bool = True,
    n_jobs: int | None = None,
) -> F4Result:
    """Solve P2a along a delay-bound sweep on the canonical cluster."""
    cluster = canonical_cluster()
    workload = canonical_workload(load_factor)

    profile = stability_box_profile(cluster, workload)
    best, worst = profile.best_mean_delay, profile.worst_mean_delay
    # Geometric spacing: the interesting (steep) part of the frontier
    # sits near the tight end, which linear spacing would under-sample.
    bounds = np.geomspace(best * 1.05, worst * 0.98, n_points)

    series_out = run_series(
        {
            "optimal": (_optimal_series, (cluster, workload, bounds, n_starts, warm_start)),
            "uniform": (_uniform_series, (cluster, workload, bounds)),
        },
        n_jobs=n_jobs,
    )
    sweep: ContinuationSweep = series_out["optimal"]

    series = SweepSeries(
        name="F4: P2a minimal power vs aggregate delay bound",
        x_label="delay bound (s)",
        x=bounds,
        columns={
            "optimal power (W)": sweep.column(lambda r: r.meta["power"]),
            "uniform power (W)": series_out["uniform"],
            "achieved delay (s)": sweep.column(
                lambda r: mean_end_to_end_delay(r.meta["cluster"], workload)
            ),
        },
    )
    return F4Result(
        series=series,
        best_delay=best,
        worst_delay=worst,
        optimal_sweep=sweep,
    )


def render(result: F4Result) -> str:
    """The frontier as a text table plus the dominance check."""
    out = result.series.to_table()
    out += (
        f"\nfeasible mean-delay range: [{result.best_delay:.4g}, {result.worst_delay:.4g}] s"
        f"\noptimal power <= uniform baseline everywhere: {result.optimal_dominates}"
    )
    if result.optimal_sweep is not None:
        out += (
            f"\nsolver effort: {result.optimal_sweep.total_evaluations} model evaluations "
            f"over {len(result.optimal_sweep.points)} points"
        )
    return out
