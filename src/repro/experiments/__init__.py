"""Experiment drivers — one module per reconstructed table/figure.

Each module exposes a ``run(...)`` returning a structured result and a
``render(result) -> str`` producing the table the paper would print.
The benchmarks in ``benchmarks/`` and the records in EXPERIMENTS.md are
generated through exactly these entry points, so the numbers in the
docs are regenerable with one call.

Index (see DESIGN.md for the full mapping):

====  =======================================================
T1    analytic vs simulated per-class end-to-end delay
T2    analytic vs simulated power / energy
F1    per-class delay vs total arrival rate
F2    power & per-request energy vs tier speed
F3    P1 trade-off: optimal delay vs power budget
F4    P2a trade-off: minimal power vs aggregate delay bound
F5    P2b vs P2a: the energy price of per-class guarantees
T3    P3 cost minimization vs exhaustive & baselines
F6    P3 cost vs offered load
T4    solver efficiency vs exhaustive search
A1    ablation: priority model vs aggregate-FCFS model error
A2    ablation: non-preemptive vs preemptive-resume priority
A3    ablation: multi-server (Bondi–Buzen) approximation error
====  =======================================================
"""

from repro.experiments import common

__all__ = ["common"]
