"""A6 — ablation: admission control (loss) vs open queueing under overload.

A provider whose tier saturates has two very different failure modes:
an *open* queue lets the backlog — and every accepted customer's
delay — grow without bound, while an *admission-controlled* tier
(M/G/c/c, blocked calls cleared) rejects the overflow and keeps every
accepted request's delay at its bare service time. This ablation
sweeps the offered load across the capacity boundary and tabulates
both designs' delay, throughput and loss, with simulation spot-checks
on both sides of the boundary.

Expected shape: below capacity the queueing tier dominates (it serves
*everyone* with modest waits while the loss tier already rejects a few
percent); beyond capacity the comparison inverts categorically —
queueing delay diverges while the loss tier's accepted-delay stays
flat and its goodput saturates at ``c·μ``. The crossover *is* the
case for SLA-driven admission control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.tables import ascii_table
from repro.cluster import ClusterModel, PowerModel, ServerSpec, Tier
from repro.distributions import Exponential
from repro.exceptions import UnstableSystemError
from repro.queueing import MGcc, MMc, erlang_b
from repro.simulation import simulate
from repro.workload import workload_from_rates

__all__ = ["A6Result", "run", "render"]

_SPEC = ServerSpec(PowerModel(idle=10.0, kappa=50.0, alpha=3.0), min_speed=0.5, max_speed=1.0)


@dataclass
class A6Result:
    """Per-load comparison rows plus simulation spot checks."""

    rows: list[list[Any]] = field(default_factory=list)
    sim_rows: list[list[Any]] = field(default_factory=list)
    servers: int = 4

    @property
    def loss_delay_flat(self) -> bool:
        """Accepted-request delay of the loss design never grows."""
        delays = np.array([r[4] for r in self.rows])
        return bool(np.ptp(delays) <= 1e-9)

    @property
    def queueing_diverges(self) -> bool:
        """The open queue's delay is unbounded beyond capacity."""
        return any(np.isinf(r[1]) for r in self.rows)


def run(
    offered_loads=(2.0, 3.0, 3.8, 4.5, 6.0, 8.0),
    servers: int = 4,
    mu: float = 1.0,
    horizon: float = 8000.0,
    seed: int = 88,
) -> A6Result:
    """Sweep the offered load across the ``c·μ`` capacity boundary."""
    result = A6Result(servers=servers)
    service = Exponential(mu)
    capacity = servers * mu

    for a in offered_loads:
        lam = float(a)
        # Open M/M/c queue.
        try:
            queue_delay = MMc(lam, mu, servers).mean_sojourn
            queue_thr = lam
        except UnstableSystemError:
            queue_delay = float("inf")
            queue_thr = capacity  # saturated server never idles
        # Loss M/M/c/c.
        loss = MGcc(lam, service, servers)
        result.rows.append(
            [
                a,
                queue_delay,
                queue_thr,
                loss.blocking_probability,
                loss.mean_sojourn,
                loss.throughput,
            ]
        )

    # Simulation spot checks straddling the boundary.
    for a, seed_off in ((3.0, 0), (6.0, 1)):
        lam = float(a)
        tier = Tier("gate", (service,), _SPEC, servers=servers, discipline="loss")
        cluster = ClusterModel([tier])
        res = simulate(
            cluster, workload_from_rates([lam]), horizon=horizon, seed=seed + seed_off
        )
        blocked = res.meta["n_blocked"][0, 0]
        offered = res.meta["n_offered"][0, 0]
        result.sim_rows.append(
            [
                a,
                erlang_b(servers, lam / mu),
                blocked / offered,
                Exponential(mu).mean,
                float(res.delays[0]),
            ]
        )
    return result


def render(result: A6Result) -> str:
    """Analytic sweep plus the simulated spot checks."""
    table = ascii_table(
        [
            "offered a",
            "queue delay (s)",
            "queue thr",
            "loss blocking",
            "loss delay (s)",
            "loss goodput",
        ],
        result.rows,
        title=f"A6: open queue vs admission control (c={result.servers}, mu=1)",
    )
    sim_table = ascii_table(
        ["offered a", "Erlang-B", "simulated blocking", "E[S]", "simulated delay"],
        result.sim_rows,
        title="A6 simulation spot checks (loss tier)",
    )
    return (
        table
        + "\n\n"
        + sim_table
        + f"\nqueueing delay diverges beyond capacity: {result.queueing_diverges}"
        + f"\nloss-design accepted delay flat across the sweep: {result.loss_delay_flat}"
    )
