"""F5 — the energy price of per-class guarantees (P2b vs P2a).

Abstract claim 3 distinguishes delay constraints "for all class and
each class customer requests respectively". This experiment makes the
distinction quantitative: fix the *same* traffic and compare

* P2a with one aggregate bound ``D̄``, vs
* P2b with per-class bounds whose λ-weighted mean equals ``D̄`` but
  which force the gold class ``g`` times tighter than bronze,

sweeping the gold-tightness ratio ``g``.

Expected shape: at ``g = 1`` (per-class bounds proportional to what
the priority queues naturally deliver) P2b costs about the same as
P2a; as ``g`` grows, the gold constraint binds and the minimal power
rises — per-class SLAs are strictly more expensive to honor than an
aggregate target, which is why the provider charges gold customers a
premium.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.series import SweepSeries
from repro.cluster.model import ClusterModel
from repro.core.opt_energy import minimize_energy
from repro.experiments.common import canonical_cluster, canonical_workload
from repro.optimize.sweep import ContinuationSweep, continuation_sweep, run_series
from repro.workload.classes import Workload

__all__ = ["F5Result", "run", "render"]


@dataclass
class F5Result:
    """Sweep of the minimal power vs the gold-tightness ratio."""

    series: SweepSeries
    aggregate_power: float
    aggregate_bound: float
    perclass_sweep: ContinuationSweep | None = field(default=None, repr=False)

    @property
    def per_class_at_least_aggregate(self) -> bool:
        """Per-class constrained power is never below the aggregate-
        constrained power (the feasible set is smaller)."""
        pc = self.series.columns["P2b power (W)"]
        finite = np.isfinite(pc)
        return bool(np.all(pc[finite] >= self.aggregate_power - 1e-6))


def _class_bounds(workload: Workload, mean_bound: float, g: float) -> np.ndarray:
    """Per-class bounds at gold-tightness ``g``, λ-weighted to the
    aggregate ``mean_bound``."""
    lam = workload.arrival_rates
    shape = np.array([1.0 / g, 1.0 / np.sqrt(g), 1.0])
    scale = mean_bound * lam.sum() / float(np.dot(lam, shape))
    return shape * scale


def _perclass_series(
    cluster: ClusterModel,
    workload: Workload,
    ratios: np.ndarray,
    mean_bound: float,
    n_starts: int,
    warm_start: bool,
) -> ContinuationSweep:
    """The P2b power along the gold-tightness sweep, warm-started from
    the neighboring ratio's optimum."""

    def solve(g: float, hint: np.ndarray | None):
        return minimize_energy(
            cluster,
            workload,
            class_delay_bounds=_class_bounds(workload, mean_bound, float(g)),
            n_starts=n_starts,
            x0_hint=hint,
        )

    return continuation_sweep(solve, ratios, warm_start=warm_start, label="f5.perclass")


def _aggregate_reference(
    cluster: ClusterModel, workload: Workload, mean_bound: float, n_starts: int
) -> float:
    """P2a power at the same weighted-mean bound (the reference line)."""
    agg = minimize_energy(cluster, workload, max_mean_delay=mean_bound, n_starts=n_starts)
    return float(agg.meta["power"])


def run(
    ratios=(1.0, 1.5, 2.0, 3.0, 4.0),
    mean_bound: float = 0.45,
    load_factor: float = 1.0,
    n_starts: int = 3,
    warm_start: bool = True,
    n_jobs: int | None = None,
) -> F5Result:
    """Compare P2a vs P2b along the gold-tightness sweep.

    Per-class bounds at ratio ``g``: bronze gets ``b``, silver
    ``b/sqrt(g)``... precisely, bounds ``(b/g, b/sqrt(g), b)`` scaled so
    the λ-weighted mean equals ``mean_bound``. The P2b sweep runs by
    continuation; the P2a reference solve is an independent series.
    """
    cluster = canonical_cluster()
    workload = canonical_workload(load_factor)
    grid = np.asarray(ratios, dtype=float)

    series_out = run_series(
        {
            "perclass": (
                _perclass_series,
                (cluster, workload, grid, mean_bound, n_starts, warm_start),
            ),
            "aggregate": (_aggregate_reference, (cluster, workload, mean_bound, n_starts)),
        },
        n_jobs=n_jobs,
    )
    sweep: ContinuationSweep = series_out["perclass"]
    agg_power = series_out["aggregate"]

    gold_bounds = np.array([_class_bounds(workload, mean_bound, g)[0] for g in grid])
    bronze_bounds = np.array([_class_bounds(workload, mean_bound, g)[-1] for g in grid])

    series = SweepSeries(
        name=f"F5: P2b minimal power vs gold-tightness (aggregate bound {mean_bound:g}s)",
        x_label="gold tightness g",
        x=grid,
        columns={
            "P2b power (W)": sweep.column(lambda r: r.meta["power"]),
            "gold bound (s)": gold_bounds,
            "bronze bound (s)": bronze_bounds,
        },
    )
    return F5Result(
        series=series,
        aggregate_power=agg_power,
        aggregate_bound=mean_bound,
        perclass_sweep=sweep,
    )


def render(result: F5Result) -> str:
    """The sweep table plus the aggregate reference line."""
    out = result.series.to_table()
    out += (
        f"\nP2a power at the same weighted-mean bound: {result.aggregate_power:.4g} W"
        f"\nper-class power >= aggregate power everywhere: "
        f"{result.per_class_at_least_aggregate}"
    )
    return out
