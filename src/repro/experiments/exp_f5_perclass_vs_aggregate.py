"""F5 — the energy price of per-class guarantees (P2b vs P2a).

Abstract claim 3 distinguishes delay constraints "for all class and
each class customer requests respectively". This experiment makes the
distinction quantitative: fix the *same* traffic and compare

* P2a with one aggregate bound ``D̄``, vs
* P2b with per-class bounds whose λ-weighted mean equals ``D̄`` but
  which force the gold class ``g`` times tighter than bronze,

sweeping the gold-tightness ratio ``g``.

Expected shape: at ``g = 1`` (per-class bounds proportional to what
the priority queues naturally deliver) P2b costs about the same as
P2a; as ``g`` grows, the gold constraint binds and the minimal power
rises — per-class SLAs are strictly more expensive to honor than an
aggregate target, which is why the provider charges gold customers a
premium.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.series import SweepSeries
from repro.core.opt_energy import minimize_energy
from repro.exceptions import InfeasibleProblemError
from repro.experiments.common import canonical_cluster, canonical_workload

__all__ = ["F5Result", "run", "render"]


@dataclass
class F5Result:
    """Sweep of the minimal power vs the gold-tightness ratio."""

    series: SweepSeries
    aggregate_power: float
    aggregate_bound: float

    @property
    def per_class_at_least_aggregate(self) -> bool:
        """Per-class constrained power is never below the aggregate-
        constrained power (the feasible set is smaller)."""
        pc = self.series.columns["P2b power (W)"]
        finite = np.isfinite(pc)
        return bool(np.all(pc[finite] >= self.aggregate_power - 1e-6))


def run(
    ratios=(1.0, 1.5, 2.0, 3.0, 4.0),
    mean_bound: float = 0.45,
    load_factor: float = 1.0,
    n_starts: int = 3,
) -> F5Result:
    """Compare P2a vs P2b along the gold-tightness sweep.

    Per-class bounds at ratio ``g``: bronze gets ``b``, silver
    ``b/sqrt(g)``... precisely, bounds ``(b/g, b/sqrt(g), b)`` scaled so
    the λ-weighted mean equals ``mean_bound``.
    """
    cluster = canonical_cluster()
    workload = canonical_workload(load_factor)
    lam = workload.arrival_rates

    agg = minimize_energy(cluster, workload, max_mean_delay=mean_bound, n_starts=n_starts)
    agg_power = float(agg.meta["power"])

    powers, gold_bounds, bronze_bounds = [], [], []
    for g in ratios:
        shape = np.array([1.0 / g, 1.0 / np.sqrt(g), 1.0])
        scale = mean_bound * lam.sum() / float(np.dot(lam, shape))
        bounds = shape * scale
        try:
            res = minimize_energy(
                cluster, workload, class_delay_bounds=bounds, n_starts=n_starts
            )
            powers.append(float(res.meta["power"]))
        except InfeasibleProblemError:
            powers.append(float("nan"))
        gold_bounds.append(bounds[0])
        bronze_bounds.append(bounds[-1])

    series = SweepSeries(
        name=f"F5: P2b minimal power vs gold-tightness (aggregate bound {mean_bound:g}s)",
        x_label="gold tightness g",
        x=np.asarray(ratios, dtype=float),
        columns={
            "P2b power (W)": np.array(powers),
            "gold bound (s)": np.array(gold_bounds),
            "bronze bound (s)": np.array(bronze_bounds),
        },
    )
    return F5Result(series=series, aggregate_power=agg_power, aggregate_bound=mean_bound)


def render(result: F5Result) -> str:
    """The sweep table plus the aggregate reference line."""
    out = result.series.to_table()
    out += (
        f"\nP2a power at the same weighted-mean bound: {result.aggregate_power:.4g} W"
        f"\nper-class power >= aggregate power everywhere: "
        f"{result.per_class_at_least_aggregate}"
    )
    return out
