"""F2 — power, per-request energy and delay vs a uniform speed dial.

Sweeps one shared speed for all tiers and reports average power,
amortized energy per request and mean delay — the raw material of the
delay/energy trade-off that P1 and P2 then optimize, including an
``alpha`` sensitivity (cube-law vs quadratic DVFS).

Expected shape: power rises as ``s^{α−1}`` while delay falls like
``1/(s − ρ̂)`` — the two curves cross, and a provider picking a static
speed is choosing a point on this frontier blindly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.series import SweepSeries
from repro.cluster import ClusterModel
from repro.cluster.power import PowerModel
from repro.core.delay import mean_end_to_end_delay
from repro.core.energy import average_power, energy_per_request
from repro.exceptions import UnstableSystemError
from repro.experiments.common import canonical_cluster, canonical_workload

__all__ = ["F2Result", "run", "render"]


@dataclass
class F2Result:
    """One series per power exponent alpha."""

    series_by_alpha: dict[float, SweepSeries]


def _with_alpha(cluster: ClusterModel, alpha: float) -> ClusterModel:
    tiers = []
    for t in cluster.tiers:
        pm = t.spec.power
        spec = replace(t.spec, power=PowerModel(idle=pm.idle, kappa=pm.kappa, alpha=alpha))
        tiers.append(replace(t, spec=spec))
    return ClusterModel(tiers, cluster.visit_ratios)


def run(speeds=None, alphas=(2.0, 2.5, 3.0), load_factor: float = 1.0) -> F2Result:
    """Sweep a uniform speed at each DVFS exponent."""
    if speeds is None:
        speeds = np.linspace(0.55, 1.0, 10)
    workload = canonical_workload(load_factor)
    out: dict[float, SweepSeries] = {}
    for alpha in alphas:
        cluster = _with_alpha(canonical_cluster(), alpha)
        xs, power, epr, delay = [], [], [], []
        for s in speeds:
            candidate = cluster.with_speeds([float(s)] * cluster.num_tiers)
            try:
                d = mean_end_to_end_delay(candidate, workload)
            except UnstableSystemError:
                continue  # below the stable speed for this load
            xs.append(float(s))
            delay.append(d)
            power.append(average_power(candidate, workload))
            epr.append(energy_per_request(candidate, workload))
        out[alpha] = SweepSeries(
            name=f"F2: power/energy/delay vs uniform speed (alpha={alpha:g})",
            x_label="speed",
            x=np.array(xs),
            columns={
                "power (W)": np.array(power),
                "energy/req (J)": np.array(epr),
                "mean delay (s)": np.array(delay),
            },
        )
    return F2Result(series_by_alpha=out)


def render(result: F2Result) -> str:
    """All alpha series as text tables."""
    return "\n\n".join(s.to_table() for _, s in sorted(result.series_by_alpha.items()))
