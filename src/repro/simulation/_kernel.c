/* Compiled event-loop kernel for the discrete-event simulator.
 *
 * This file is compiled on demand by repro/simulation/compiled.py (gcc
 * or cc, linked against NumPy's libnpyrandom) and driven through
 * ctypes.  It reimplements the hot loop of
 * repro/simulation/simulator.py -- the (time, seq) event heap, the
 * array-backed SimStation state machine, the processor-sharing station
 * and the per-event statistics tallies -- in C, while drawing every
 * random variate through NumPy's own C distribution functions on the
 * *same* per-stream bit generators the pure-Python engine uses.
 *
 * Bit-identity contract: for any configuration this kernel accepts,
 * the produced metrics are bit-identical to the pure-Python engine
 * (enforced by tests/test_golden_sim_metrics.py and
 * tests/test_compiled_backend.py).  That is possible because
 *
 *  - the heap is ordered by the same unique (time, push-sequence) key,
 *    so pop order is a total order independent of heap internals;
 *  - every floating-point update (busy-time clipping, wait/sojourn
 *    sums, completion times, PS share decrements, DVFS remaining-work
 *    rescales) mirrors the Python expression shape and evaluation
 *    order exactly (IEEE doubles are deterministic);
 *  - service and arrival variates are drawn by the exact NumPy C
 *    functions (random_exponential, random_gamma, ziggurat
 *    standard-exponential, ...) on the stream's own bitgen_t, which
 *    consume the bit stream exactly as the Generator methods do; the
 *    block-sampling contract (tests/test_block_rng.py) makes one
 *    scalar draw per event equal to the Python engine's
 *    block-pregenerated draws;
 *  - streams the kernel cannot drive natively (antithetic coupled
 *    generators, whose inverse transforms go through np.log and are
 *    not bitwise libm log) are consumed through SK_PYBLOCK buffers: a
 *    Python refill callback pre-draws 4096 variates with the engine's
 *    own sampling code, so the value sequence is identical by
 *    construction;
 *  - distribution families without a native mapping fall back to a
 *    per-draw Python callback that performs the same scalar draw.
 *
 * Beyond the plain event loop the kernel models:
 *
 *  - DISC_PS processor-sharing stations (lazy remaining-time elapse,
 *    first-minimal completion pick, epoch-cancelled re-arm) mirroring
 *    repro/simulation/ps_station.py;
 *  - an epoch-boundary yield protocol for online speed control: at
 *    each scheduled boundary the kernel closes busy intervals,
 *    publishes per-tier queue counts and busy totals, flushes queue
 *    samples, and calls epoch_cb; when the callback reports new
 *    speeds (written into the shared speeds array) the kernel applies
 *    them with the engine's work-preserving remaining-time rescale
 *    and re-arms affected stations;
 *  - SK_TRACE arrivals replaying a recorded timestamp array without
 *    any RNG or callback round trip;
 *  - buffered per-tier queue-length sampling, batch-flushed through
 *    sample_cb at epoch boundaries and at the end of the run instead
 *    of hooking every sample into Python.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#include "numpy/random/bitgen.h"
#include "numpy/random/distributions.h"

#define EV_ARRIVAL 0
#define EV_COMPLETION 1

#define DISC_FCFS 0
#define DISC_PRIORITY_NP 1
#define DISC_PRIORITY_PR 2
#define DISC_LOSS 3
#define DISC_PS 4

#define SK_PYCALL 0
#define SK_DET 1
#define SK_EXPO 2
#define SK_GAMMA 3
#define SK_UNIFORM 4
#define SK_LOGNORMAL 5
#define SK_WEIBULL 6
#define SK_HYPER 7
#define SK_PYBLOCK 8
#define SK_TRACE 9

#define POST_MUL 0
#define POST_ADD 1

#define RC_OK 0
#define RC_NOMEM 1
#define RC_ABORT 2
#define RC_INVARIANT 3

typedef double (*service_cb_t)(int sampler_id);
typedef double (*arrival_cb_t)(int cls, long long *batch_out);
typedef long long (*refill_cb_t)(int block_id, double *buf, long long cap);
typedef int (*epoch_cb_t)(double t);
typedef int (*sample_cb_t)(const double *ts, const long long *vals, long long n_rows);

/* ---- descriptors passed from Python (layout mirrored in ctypes) ---- */

typedef struct {
    int kind;
    int n_branches;
    int n_post;
    int py_id;         /* callback id (PYCALL) or block id (PYBLOCK) */
    double p1;
    double p2;
    void *bg;          /* bitgen_t*, NULL for DET / PYCALL / PYBLOCK */
    double *cdf;       /* hyperexponential branch CDF */
    double *scales;    /* hyperexponential branch scales */
    int *post_op;      /* POST_MUL / POST_ADD, innermost last */
    double *post_val;
} SamplerDesc;

typedef struct {
    int servers;
    int discipline;
    int capacity;      /* -1 = unbounded */
} StationDesc;

typedef struct {
    int kind;          /* SK_PYCALL, SK_EXPO, SK_PYBLOCK or SK_TRACE */
    int py_id;         /* callback slot (PYCALL) or block id (PYBLOCK) */
    double scale;
    void *bg;
    const double *ts;  /* SK_TRACE: sorted arrival timestamps */
    long long n_ts;
    long long cursor;  /* SK_TRACE replay state (starts at 0) */
    double clock;      /* SK_TRACE replay state (starts at 0.0) */
} ArrivalDesc;

/* ------------------------------- deque ------------------------------ */

typedef struct {
    int *buf;
    int cap;
    int head;
    int len;
} dq_t;

static int dq_init(dq_t *q) {
    q->cap = 16;
    q->head = 0;
    q->len = 0;
    q->buf = (int *)malloc(sizeof(int) * q->cap);
    return q->buf == NULL;
}

static int dq_grow(dq_t *q) {
    int ncap = q->cap * 2;
    int *nbuf = (int *)malloc(sizeof(int) * ncap);
    if (nbuf == NULL) return 1;
    for (int i = 0; i < q->len; i++) nbuf[i] = q->buf[(q->head + i) % q->cap];
    free(q->buf);
    q->buf = nbuf;
    q->cap = ncap;
    q->head = 0;
    return 0;
}

static int dq_push_back(dq_t *q, int v) {
    if (q->len == q->cap && dq_grow(q)) return 1;
    q->buf[(q->head + q->len) % q->cap] = v;
    q->len++;
    return 0;
}

static int dq_push_front(dq_t *q, int v) {
    if (q->len == q->cap && dq_grow(q)) return 1;
    q->head = (q->head + q->cap - 1) % q->cap;
    q->buf[q->head] = v;
    q->len++;
    return 0;
}

static int dq_pop_front(dq_t *q) {
    int v = q->buf[q->head];
    q->head = (q->head + 1) % q->cap;
    q->len--;
    return v;
}

/* ------------------------------- heap ------------------------------- */

typedef struct {
    double t;
    long long seq;
    int kind;
    int a;
    long long b;
} ev_t;

typedef struct {
    ev_t *buf;
    long long cap;
    long long len;
} heap_t;

static int ev_less(const ev_t *x, const ev_t *y) {
    if (x->t != y->t) return x->t < y->t;
    return x->seq < y->seq;
}

static int heap_push(heap_t *h, double t, long long seq, int kind, int a, long long b) {
    if (h->len == h->cap) {
        long long ncap = h->cap * 2;
        ev_t *nbuf = (ev_t *)realloc(h->buf, sizeof(ev_t) * ncap);
        if (nbuf == NULL) return 1;
        h->buf = nbuf;
        h->cap = ncap;
    }
    long long i = h->len++;
    ev_t ev = {t, seq, kind, a, b};
    while (i > 0) {
        long long parent = (i - 1) / 2;
        if (!ev_less(&ev, &h->buf[parent])) break;
        h->buf[i] = h->buf[parent];
        i = parent;
    }
    h->buf[i] = ev;
    return 0;
}

static ev_t heap_pop(heap_t *h) {
    ev_t top = h->buf[0];
    ev_t last = h->buf[--h->len];
    long long i = 0;
    for (;;) {
        long long child = 2 * i + 1;
        if (child >= h->len) break;
        if (child + 1 < h->len && ev_less(&h->buf[child + 1], &h->buf[child])) child++;
        if (!ev_less(&h->buf[child], &last)) break;
        h->buf[i] = h->buf[child];
        i = child;
    }
    h->buf[i] = last;
    return top;
}

/* ----------------------------- job pool ----------------------------- */

typedef struct {
    long long jid;
    int cls;
    int hop;           /* itinerary index (fixed-route mode) */
    int cur;           /* current station */
    double arrival;
    double station_arrival;
    double remaining;  /* NaN = not yet sampled */
    double service_total;
} job_t;

typedef struct {
    job_t *pool;
    int cap;
    int used;          /* high-water mark */
    int *free_list;
    int free_cap;
    int free_len;
} jobpool_t;

static int jp_init(jobpool_t *jp) {
    jp->cap = 1024;
    jp->used = 0;
    jp->pool = (job_t *)malloc(sizeof(job_t) * jp->cap);
    jp->free_cap = 1024;
    jp->free_len = 0;
    jp->free_list = (int *)malloc(sizeof(int) * jp->free_cap);
    return jp->pool == NULL || jp->free_list == NULL;
}

static int jp_alloc(jobpool_t *jp) {
    if (jp->free_len > 0) return jp->free_list[--jp->free_len];
    if (jp->used == jp->cap) {
        int ncap = jp->cap * 2;
        job_t *np = (job_t *)realloc(jp->pool, sizeof(job_t) * ncap);
        if (np == NULL) return -1;
        jp->pool = np;
        jp->cap = ncap;
    }
    return jp->used++;
}

static int jp_release(jobpool_t *jp, int idx) {
    if (jp->free_len == jp->free_cap) {
        int ncap = jp->free_cap * 2;
        int *nf = (int *)realloc(jp->free_list, sizeof(int) * ncap);
        if (nf == NULL) return 1;
        jp->free_list = nf;
        jp->free_cap = ncap;
    }
    jp->free_list[jp->free_len++] = idx;
    return 0;
}

/* ------------------------- growable buffers ------------------------- */

typedef struct {
    double *buf;
    long long cap;
    long long len;
} dbuf_t;

static int dbuf_push(dbuf_t *b, double v) {
    if (b->len == b->cap) {
        long long ncap = b->cap ? b->cap * 2 : 256;
        double *nb = (double *)realloc(b->buf, sizeof(double) * ncap);
        if (nb == NULL) return 1;
        b->buf = nb;
        b->cap = ncap;
    }
    b->buf[b->len++] = v;
    return 0;
}

typedef struct {
    long long *buf;
    long long cap;
    long long len;
} llbuf_t;

static int llbuf_push(llbuf_t *b, long long v) {
    if (b->len == b->cap) {
        long long ncap = b->cap ? b->cap * 2 : 256;
        long long *nb = (long long *)realloc(b->buf, sizeof(long long) * ncap);
        if (nb == NULL) return 1;
        b->buf = nb;
        b->cap = ncap;
    }
    b->buf[b->len++] = v;
    return 0;
}

typedef struct {
    long long *jid;
    int *cls;
    double *arrival;
    double *exit_t;
    long long cap;
    long long len;
} logbuf_t;

static int logbuf_push(logbuf_t *b, long long jid, int cls, double arrival, double exit_t) {
    if (b->len == b->cap) {
        long long ncap = b->cap ? b->cap * 2 : 256;
        long long *nj = (long long *)realloc(b->jid, sizeof(long long) * ncap);
        int *nc = (int *)realloc(b->cls, sizeof(int) * ncap);
        double *na = (double *)realloc(b->arrival, sizeof(double) * ncap);
        double *ne = (double *)realloc(b->exit_t, sizeof(double) * ncap);
        if (nj) b->jid = nj;
        if (nc) b->cls = nc;
        if (na) b->arrival = na;
        if (ne) b->exit_t = ne;
        if (nj == NULL || nc == NULL || na == NULL || ne == NULL) return 1;
        b->cap = ncap;
    }
    b->jid[b->len] = jid;
    b->cls[b->len] = cls;
    b->arrival[b->len] = arrival;
    b->exit_t[b->len] = exit_t;
    b->len++;
    return 0;
}

/* ------------------------ python block buffers ----------------------- */

typedef struct {
    double *buf;
    long long cap;
    long long len;
    long long pos;
} blockbuf_t;

/* ------------------------------ station ----------------------------- */

typedef struct {
    int index;
    int n_servers;
    int discipline;
    int capacity;      /* -1 = none */
    int *srv_job;      /* job pool index or -1 */
    double *srv_busy_since;
    double *srv_completion;
    long long *srv_seq;
    int n_busy;
    long long start_counter;
    long long sched_epoch;
    double sched_time;
    dq_t fifo;
    dq_t *queues;      /* K queues for priority disciplines */
    double t0;
    double t1;
    double busy_total;
    double *class_busy; /* K, points into the caller's output array */
    /* processor-sharing pool (DISC_PS only) */
    int *ps_jobs;      /* job pool indices in arrival order */
    int ps_len;
    int ps_cap;
    double ps_last_t;
} station_t;

/* ------------------------------ context ----------------------------- */

typedef struct {
    int K;
    int M;
    double horizon;
    double warmup;
    SamplerDesc *samplers;   /* M*K, row-major by station */
    ArrivalDesc *arrivals;   /* K */
    int has_routing;
    int **routes;            /* K itineraries (fixed-route mode) */
    int *route_len;
    double **entry_cum;      /* K x M (routing mode) */
    double **trans_cum;      /* K x (M*M) row-major cumulative rows */
    void **routing_bg;       /* K bitgen_t* (routing mode) */
    int *routing_block;      /* K block ids (antithetic routing), or NULL */
    service_cb_t service_cb;
    arrival_cb_t arrival_cb;
    refill_cb_t refill_cb;
    volatile int *abort_flag;

    blockbuf_t *blocks;      /* n_blocks pre-drawn variate buffers */
    int n_blocks;

    /* dynamic speed control (epoch yield protocol) */
    int dynamic;
    double *cur_speed;       /* M, current per-tier speeds */
    double *speeds;          /* M, shared channel written by epoch_cb */
    long long *counts_out;   /* M*K queue counts published per epoch */
    double *busy_out;        /* M busy totals (the caller's output) */
    epoch_cb_t epoch_cb;

    /* buffered queue sampling */
    double sample_interval;
    double next_sample_t;
    sample_cb_t sample_cb;
    dbuf_t sample_ts;
    llbuf_t sample_vals;     /* per row: M populations then M busy */

    int *scratch_counts;     /* K ints for PS per-class busy accrual */

    station_t *stations;
    heap_t heap;
    jobpool_t jobs;
    long long next_seq;      /* next push sequence number (starts at 1) */

    /* epoch schedule (dynamic mode) */
    long long n_epochs;
    const double *epoch_times;

    /* outputs (all row-major [class][station] like the Python lists) */
    double *wait_sum;
    double *sojourn_sum;
    long long *visit_count;
    long long *n_blocked;
    long long *offered;
    long long *out_scalars;  /* jid, n_events, n_warmup_discarded, hit_horizon */
    dbuf_t *delay_buf;       /* K growable buffers */
    /* inline per-class delay accumulation (batch mode): the scalar
     * Welford recurrence on doubles, bitwise identical to
     * stats.Welford.add_batch replaying the same values. */
    int use_welford;
    long long *wf_n;         /* K */
    double *wf_mean;         /* K */
    double *wf_m2;           /* K */
    logbuf_t log;
    int collect_log;
    int oom;
} ctx_t;

/* Next value from a Python-refilled variate buffer.  The refill
 * callback fills the whole buffer with the engine's own sampling code
 * (block-sampling contract: one size-n block draw consumes the stream
 * exactly like n scalar draws), so handing the values out one at a
 * time is bit-identical to the Python engine's draw sequence. */
static double block_next(ctx_t *c, int id) {
    blockbuf_t *b = &c->blocks[id];
    if (b->pos >= b->len) {
        long long n = c->refill_cb(id, b->buf, b->cap);
        if (n <= 0 || n > b->cap) {
            *c->abort_flag = 1; /* refill raised (or misbehaved) */
            return 0.0;
        }
        b->len = n;
        b->pos = 0;
    }
    return b->buf[b->pos++];
}

static double draw_sampler(ctx_t *c, const SamplerDesc *sd) {
    double v;
    bitgen_t *bg = (bitgen_t *)sd->bg;
    switch (sd->kind) {
    case SK_DET:
        v = sd->p1;
        break;
    case SK_EXPO:
        v = random_exponential(bg, sd->p1);
        break;
    case SK_GAMMA:
        v = random_gamma(bg, sd->p1, sd->p2);
        break;
    case SK_UNIFORM:
        /* Generator.uniform(low, high): low + (high-low)*U.  p1=low,
         * p2=high-low (the range is computed once in Python so the
         * subtraction rounding matches the Generator path). */
        v = random_uniform(bg, sd->p1, sd->p2);
        break;
    case SK_LOGNORMAL:
        v = random_lognormal(bg, sd->p1, sd->p2);
        break;
    case SK_WEIBULL:
        /* Weibull.sample: lam * rng.weibull(k); p1=lam, p2=k. */
        v = sd->p1 * random_weibull(bg, sd->p2);
        break;
    case SK_HYPER: {
        /* Mirrors the scalar fast path in simulator._make_sampler:
         * branch by bisect_right on the CDF (count of entries <= u),
         * then scale * standard_exponential. */
        double u = random_standard_uniform(bg);
        int b = 0;
        while (b < sd->n_branches - 1 && sd->cdf[b] <= u) b++;
        v = sd->scales[b] * random_standard_exponential(bg);
        break;
    }
    case SK_PYBLOCK:
        v = block_next(c, sd->py_id);
        break;
    default: /* SK_PYCALL */
        v = c->service_cb(sd->py_id);
        break;
    }
    /* Scaled/Shifted wrappers: ops are stored outermost-first, applied
     * innermost-first (reverse order), matching the Python nesting
     * f_outer(f_inner(x)). */
    for (int i = sd->n_post - 1; i >= 0; i--) {
        if (sd->post_op[i] == POST_MUL) v = sd->post_val[i] * v;
        else v = v + sd->post_val[i];
    }
    return v;
}

/* One service draw for (station, class).  Under dynamic speed control
 * the sampler yields the *demand* (work at speed 1) and the division
 * by the current speed happens at pull time -- the same expression
 * simulator._make_dynamic_sampler evaluates. */
static double draw_service(ctx_t *c, station_t *st, int cls) {
    double v = draw_sampler(c, &c->samplers[st->index * c->K + cls]);
    if (c->dynamic) v = v / c->cur_speed[st->index];
    return v;
}

/* Next arrival gap for class k (batch defaults to 1). */
static double next_gap(ctx_t *c, int k, long long *batch) {
    ArrivalDesc *ad = &c->arrivals[k];
    *batch = 1;
    switch (ad->kind) {
    case SK_EXPO:
        return random_exponential((bitgen_t *)ad->bg, ad->scale);
    case SK_PYBLOCK:
        return block_next(c, ad->py_id);
    case SK_TRACE: {
        /* TraceArrivalProcess.next_arrival: silent (infinite gap) when
         * exhausted; gap clipped at zero with Python max(gap, 0.0)
         * semantics (which keeps -0.0: max returns the first maximal,
         * and so does skipping the branch below). */
        if (ad->cursor >= ad->n_ts) return INFINITY;
        double tt = ad->ts[ad->cursor++];
        double gap = tt - ad->clock;
        ad->clock = tt;
        if (gap < 0.0) gap = 0.0;
        return gap;
    }
    default: /* SK_PYCALL */
        return c->arrival_cb(k, batch);
    }
}

static int in_system_full(const station_t *st, int K) {
    int n = st->n_busy + st->fifo.len;
    if (st->queues != NULL)
        for (int k = 0; k < K; k++) n += st->queues[k].len;
    return n;
}

static void record_busy(station_t *st, int cls, double a, double b) {
    double lo = a > st->t0 ? a : st->t0;
    double hi = b < st->t1 ? b : st->t1;
    if (hi > lo) {
        double d = hi - lo;
        st->busy_total += d;
        st->class_busy[cls] += d;
    }
}

static int start_service(ctx_t *c, station_t *st, int jidx, int server_idx, double t) {
    job_t *j = &c->jobs.pool[jidx];
    double r = j->remaining;
    if (isnan(r)) {
        r = draw_service(c, st, j->cls);
        if (*c->abort_flag) return 1;
        j->remaining = r;
        j->service_total = r;
    }
    st->srv_job[server_idx] = jidx;
    st->srv_busy_since[server_idx] = t;
    st->srv_completion[server_idx] = t + r;
    st->start_counter++;
    st->srv_seq[server_idx] = st->start_counter;
    st->n_busy++;
    return 0;
}

static int resync(ctx_t *c, station_t *st) {
    st->sched_epoch++;
    double best = INFINITY;
    for (int i = 0; i < st->n_servers; i++)
        if (st->srv_job[i] >= 0 && st->srv_completion[i] < best) best = st->srv_completion[i];
    st->sched_time = best;
    if (best != INFINITY)
        return heap_push(&c->heap, best, c->next_seq++, EV_COMPLETION, st->index, st->sched_epoch);
    return 0;
}

/* ------------------------ processor sharing ------------------------- */

/* Mirror of PSStation._elapse: decrement every job's remaining time by
 * the elapsed share and accrue windowed busy time. */
static void ps_elapse(ctx_t *c, station_t *st, double t) {
    double dt = t - st->ps_last_t;
    if (dt > 0.0 && st->ps_len > 0) {
        int n = st->ps_len;
        int cap = st->n_servers;
        double rate = n <= cap ? 1.0 : (double)cap / (double)n;
        double lo = st->ps_last_t > st->t0 ? st->ps_last_t : st->t0;
        double hi = t < st->t1 ? t : st->t1;
        if (hi > lo) {
            double w = hi - lo;
            st->busy_total += w * (double)(n < cap ? n : cap);
            /* Per-class busy shares: one add per present class into a
             * distinct accumulator element, so the Python dict's
             * insertion order and this ascending-class order produce
             * identical floats. */
            int *counts = c->scratch_counts;
            for (int k = 0; k < c->K; k++) counts[k] = 0;
            for (int idx = 0; idx < n; idx++)
                counts[c->jobs.pool[st->ps_jobs[idx]].cls]++;
            for (int k = 0; k < c->K; k++)
                if (counts[k] > 0)
                    st->class_busy[k] += w * ((double)counts[k] * rate);
        }
        double dec = dt * rate;
        for (int idx = 0; idx < n; idx++) {
            job_t *j = &c->jobs.pool[st->ps_jobs[idx]];
            double r = j->remaining - dec;
            j->remaining = r > 0.0 ? r : 0.0;
        }
    }
    st->ps_last_t = t;
}

/* Mirror of PSStation._reschedule. */
static int ps_reschedule(ctx_t *c, station_t *st, double t) {
    st->sched_epoch++;
    if (st->ps_len > 0) {
        int n = st->ps_len;
        int cap = st->n_servers;
        double rate = n <= cap ? 1.0 : (double)cap / (double)n;
        double mn = c->jobs.pool[st->ps_jobs[0]].remaining;
        for (int idx = 1; idx < n; idx++) {
            double r = c->jobs.pool[st->ps_jobs[idx]].remaining;
            if (r < mn) mn = r;
        }
        double t_next = mn / rate;
        st->sched_time = t + t_next;
        return heap_push(&c->heap, t + t_next, c->next_seq++, EV_COMPLETION,
                         st->index, st->sched_epoch);
    }
    st->sched_time = INFINITY;
    return 0;
}

/* Mirror of PSStation.arrive (PS never rejects); 1 ok, -1 error. */
static int ps_arrive(ctx_t *c, station_t *st, double t, int jidx) {
    ps_elapse(c, st, t);
    job_t *j = &c->jobs.pool[jidx];
    j->station_arrival = t;
    double r = draw_service(c, st, j->cls);
    if (*c->abort_flag) return -1;
    j->remaining = r;
    j->service_total = r;
    if (st->ps_len == st->ps_cap) {
        int ncap = st->ps_cap * 2;
        int *nb = (int *)realloc(st->ps_jobs, sizeof(int) * ncap);
        if (nb == NULL) return -1;
        st->ps_jobs = nb;
        st->ps_cap = ncap;
    }
    st->ps_jobs[st->ps_len++] = jidx;
    if (ps_reschedule(c, st, t)) return -1;
    return 1;
}

/* Mirror of PSStation.complete (epoch staleness checked by the
 * caller); returns the finished job index, or -2 on error. */
static int ps_complete(ctx_t *c, station_t *st, double t) {
    ps_elapse(c, st, t);
    if (st->ps_len == 0) return -2;
    int best = 0;
    double br = c->jobs.pool[st->ps_jobs[0]].remaining;
    for (int idx = 1; idx < st->ps_len; idx++) {
        double r = c->jobs.pool[st->ps_jobs[idx]].remaining;
        if (r < br) { /* strict <: first minimal, like Python min() */
            br = r;
            best = idx;
        }
    }
    int jidx = st->ps_jobs[best];
    memmove(&st->ps_jobs[best], &st->ps_jobs[best + 1],
            sizeof(int) * (size_t)(st->ps_len - best - 1));
    st->ps_len--;
    if (ps_reschedule(c, st, t)) return -2;
    return jidx;
}

/* --------------------------- head-of-line --------------------------- */

/* Mirror of SimStation.arrive; returns 1 accepted, 0 rejected, -1 error. */
static int station_arrive(ctx_t *c, station_t *st, double t, int jidx) {
    if (st->discipline == DISC_PS) return ps_arrive(c, st, t, jidx);
    job_t *j = &c->jobs.pool[jidx];
    j->station_arrival = t;
    j->remaining = NAN;
    if (st->capacity >= 0 && in_system_full(st, c->K) >= st->capacity) return 0;
    if (st->n_busy < st->n_servers) {
        int idx = 0;
        while (st->srv_job[idx] >= 0) idx++;
        double r = draw_service(c, st, j->cls);
        if (*c->abort_flag) return -1;
        j->remaining = r;
        j->service_total = r;
        st->srv_job[idx] = jidx;
        st->srv_busy_since[idx] = t;
        double comp = t + r;
        st->srv_completion[idx] = comp;
        st->start_counter++;
        st->srv_seq[idx] = st->start_counter;
        st->n_busy++;
        if (comp < st->sched_time) {
            st->sched_epoch++;
            st->sched_time = comp;
            if (heap_push(&c->heap, comp, c->next_seq++, EV_COMPLETION, st->index, st->sched_epoch))
                return -1;
        }
        return 1;
    }
    if (st->discipline == DISC_LOSS) return 0;
    if (st->discipline == DISC_PRIORITY_PR) {
        int worst_idx = -1;
        int worst_cls = j->cls;
        for (int i = 0; i < st->n_servers; i++) {
            int ji = st->srv_job[i];
            if (ji >= 0 && c->jobs.pool[ji].cls > worst_cls) {
                worst_idx = i;
                worst_cls = c->jobs.pool[ji].cls;
            }
        }
        if (worst_idx >= 0) {
            int vidx = st->srv_job[worst_idx];
            job_t *victim = &c->jobs.pool[vidx];
            record_busy(st, victim->cls, st->srv_busy_since[worst_idx], t);
            double rem = st->srv_completion[worst_idx] - t;
            victim->remaining = rem > 0.0 ? rem : 0.0;
            st->srv_job[worst_idx] = -1;
            st->n_busy--;
            if (dq_push_front(&st->queues[victim->cls], vidx)) return -1;
            if (start_service(c, st, jidx, worst_idx, t)) return -1;
            if (resync(c, st)) return -1;
            return 1;
        }
    }
    if (st->discipline == DISC_FCFS) {
        if (dq_push_back(&st->fifo, jidx)) return -1;
    } else {
        if (dq_push_back(&st->queues[j->cls], jidx)) return -1;
    }
    return 1;
}

/* Mirror of SimStation.complete; returns the finished job index, or -2
 * on error.  The stale-epoch check happens in the caller. */
static int station_complete(ctx_t *c, station_t *st, double t) {
    int idx = -1;
    double best_t = INFINITY;
    long long best_seq = 0;
    double runner_up = INFINITY;
    for (int i = 0; i < st->n_servers; i++) {
        if (st->srv_job[i] >= 0) {
            double ci = st->srv_completion[i];
            if (idx < 0) {
                idx = i;
                best_t = ci;
                best_seq = st->srv_seq[i];
            } else if (ci < best_t || (ci == best_t && st->srv_seq[i] < best_seq)) {
                if (best_t < runner_up) runner_up = best_t;
                idx = i;
                best_t = ci;
                best_seq = st->srv_seq[i];
            } else if (ci < runner_up) {
                runner_up = ci;
            }
        }
    }
    if (idx < 0) return -2;
    int jidx = st->srv_job[idx];
    job_t *j = &c->jobs.pool[jidx];
    record_busy(st, j->cls, st->srv_busy_since[idx], t);
    st->srv_job[idx] = -1;
    st->n_busy--;
    int nxt = -1;
    if (st->discipline == DISC_FCFS) {
        if (st->fifo.len) nxt = dq_pop_front(&st->fifo);
    } else if (st->queues != NULL) {
        for (int k = 0; k < c->K; k++) {
            if (st->queues[k].len) {
                nxt = dq_pop_front(&st->queues[k]);
                break;
            }
        }
    }
    double new_min = runner_up;
    if (nxt >= 0) {
        if (start_service(c, st, nxt, idx, t)) return -2;
        if (st->srv_completion[idx] < new_min) new_min = st->srv_completion[idx];
    }
    st->sched_epoch++;
    st->sched_time = new_min;
    if (new_min != INFINITY) {
        if (heap_push(&c->heap, new_min, c->next_seq++, EV_COMPLETION, st->index, st->sched_epoch))
            return -2;
    }
    return jidx;
}

/* ------------------------ sampling & epochs ------------------------- */

/* Buffer one queue-length sample row (mirror of simulator._sample_queues
 * state reads; the telemetry emission is replayed by the flush). */
static int sample_queues_c(ctx_t *c, double t) {
    if (dbuf_push(&c->sample_ts, t)) return 1;
    for (int i = 0; i < c->M; i++) {
        station_t *st = &c->stations[i];
        long long n = (st->discipline == DISC_PS)
                          ? (long long)st->ps_len
                          : (long long)in_system_full(st, c->K);
        if (llbuf_push(&c->sample_vals, n)) return 1;
    }
    for (int i = 0; i < c->M; i++) {
        station_t *st = &c->stations[i];
        long long busy;
        if (st->discipline == DISC_PS)
            busy = st->ps_len < st->n_servers ? st->ps_len : st->n_servers;
        else
            busy = st->n_busy;
        if (llbuf_push(&c->sample_vals, busy)) return 1;
    }
    return 0;
}

static int flush_samples(ctx_t *c) {
    if (c->sample_cb == NULL || c->sample_ts.len == 0) return 0;
    int rc = c->sample_cb(c->sample_ts.buf, c->sample_vals.buf, c->sample_ts.len);
    c->sample_ts.len = 0;
    c->sample_vals.len = 0;
    if (rc < 0 || *c->abort_flag) return 1;
    return 0;
}

/* One epoch boundary: close busy intervals at tb (exactly like the
 * engine's _accrue_segments call to close_open_intervals), publish the
 * per-tier busy totals and queue counts, flush buffered samples, yield
 * to the Python controller, and -- when it reports new speeds -- apply
 * the engine's work-preserving remaining-time rescale.  Returns
 * non-zero on error (abort flag distinguishes callback exceptions). */
static int fire_epoch(ctx_t *c, double tb) {
    for (int i = 0; i < c->M; i++) {
        station_t *st = &c->stations[i];
        if (st->discipline == DISC_PS) {
            ps_elapse(c, st, tb);
        } else {
            for (int s = 0; s < st->n_servers; s++) {
                int ji = st->srv_job[s];
                if (ji >= 0) {
                    record_busy(st, c->jobs.pool[ji].cls, st->srv_busy_since[s], tb);
                    st->srv_busy_since[s] = tb;
                }
            }
        }
        c->busy_out[i] = st->busy_total;
        /* Queue counts in SimStation.class_counts order (servers, then
         * FIFO, then priority queues) -- integer adds, order-free. */
        long long *row = c->counts_out + (long long)i * c->K;
        for (int k = 0; k < c->K; k++) row[k] = 0;
        if (st->discipline == DISC_PS) {
            for (int idx = 0; idx < st->ps_len; idx++)
                row[c->jobs.pool[st->ps_jobs[idx]].cls]++;
        } else {
            for (int s = 0; s < st->n_servers; s++)
                if (st->srv_job[s] >= 0)
                    row[c->jobs.pool[st->srv_job[s]].cls]++;
            for (int q = 0; q < st->fifo.len; q++) {
                int ji = st->fifo.buf[(st->fifo.head + q) % st->fifo.cap];
                row[c->jobs.pool[ji].cls]++;
            }
            if (st->queues != NULL)
                for (int k = 0; k < c->K; k++)
                    for (int q = 0; q < st->queues[k].len; q++) {
                        dq_t *dq = &st->queues[k];
                        row[c->jobs.pool[dq->buf[(dq->head + q) % dq->cap]].cls]++;
                    }
        }
    }
    /* Samples recorded before this boundary reach the sink before the
     * epoch's own telemetry event, matching the engine's inline order. */
    if (flush_samples(c)) return 1;
    int decision = c->epoch_cb(tb);
    if (decision < 0 || *c->abort_flag) return 1;
    if (decision > 0) {
        /* The callback wrote the full clipped speed vector into the
         * shared array; apply SimStation.rescale_remaining per tier.
         * (PS tiers cannot occur here: dynamic+PS is rejected at
         * validation.)  ratio > 0 was checked on the Python side. */
        for (int i = 0; i < c->M; i++) {
            station_t *st = &c->stations[i];
            double s_new = c->speeds[i];
            double s_old = c->cur_speed[i];
            if (s_new != s_old) {
                double ratio = s_old / s_new;
                /* rescale_remaining early-returns on an exact 1.0 ratio
                 * (possible for distinct speeds only through rounding)
                 * without re-arming the station. */
                if (ratio != 1.0) {
                    int changed = 0;
                    for (int s = 0; s < st->n_servers; s++) {
                        int ji = st->srv_job[s];
                        if (ji >= 0) {
                            double rem = st->srv_completion[s] - tb;
                            if (rem > 0.0) {
                                double new_rem = rem * ratio;
                                st->srv_completion[s] = tb + new_rem;
                                c->jobs.pool[ji].service_total += new_rem - rem;
                                changed = 1;
                            }
                        }
                    }
                    if (changed && resync(c, st)) return 1;
                }
                c->cur_speed[i] = s_new;
            }
        }
    }
    return 0;
}

static void free_ctx(ctx_t *c) {
    if (c->stations != NULL) {
        for (int i = 0; i < c->M; i++) {
            station_t *st = &c->stations[i];
            free(st->srv_job);
            free(st->srv_busy_since);
            free(st->srv_completion);
            free(st->srv_seq);
            free(st->fifo.buf);
            free(st->ps_jobs);
            if (st->queues != NULL) {
                for (int k = 0; k < c->K; k++) free(st->queues[k].buf);
                free(st->queues);
            }
        }
        free(c->stations);
    }
    if (c->blocks != NULL) {
        for (int b = 0; b < c->n_blocks; b++) free(c->blocks[b].buf);
        free(c->blocks);
    }
    free(c->cur_speed);
    free(c->scratch_counts);
    free(c->sample_ts.buf);
    free(c->sample_vals.buf);
    free(c->heap.buf);
    free(c->jobs.pool);
    free(c->jobs.free_list);
    /* delay/log buffers are handed to the caller on success and freed
     * via k_free; on failure they are freed here */
}

void k_free(void *p) { free(p); }

/* ------------------- allocation / reset / core loop ------------------ */

/* One-time arena allocation: event heap, job pool, scratch, Python
 * block buffers and the per-station server arrays / queues / PS pools.
 * Station geometry comes from the descriptors and never changes across
 * the replications of a batch; ctx_reset() rewinds the mutable state
 * between runs without touching any of these allocations.  Returns
 * non-zero on OOM (free_ctx cleans up whatever was allocated). */
static int ctx_alloc(ctx_t *c, const StationDesc *station_desc,
                     int n_blocks, long long block_size) {
    c->heap.cap = 256;
    c->heap.buf = (ev_t *)malloc(sizeof(ev_t) * c->heap.cap);
    if (c->heap.buf == NULL || jp_init(&c->jobs)) return 1;

    c->scratch_counts = (int *)malloc(sizeof(int) * c->K);
    if (c->scratch_counts == NULL) return 1;

    c->n_blocks = n_blocks;
    if (n_blocks > 0) {
        c->blocks = (blockbuf_t *)calloc(n_blocks, sizeof(blockbuf_t));
        if (c->blocks == NULL) return 1;
        for (int b = 0; b < n_blocks; b++) {
            c->blocks[b].cap = block_size;
            c->blocks[b].buf = (double *)malloc(sizeof(double) * block_size);
            if (c->blocks[b].buf == NULL) return 1;
        }
    }

    c->stations = (station_t *)calloc(c->M, sizeof(station_t));
    if (c->stations == NULL) return 1;
    for (int i = 0; i < c->M; i++) {
        station_t *st = &c->stations[i];
        st->index = i;
        st->n_servers = station_desc[i].servers;
        st->discipline = station_desc[i].discipline;
        st->capacity = station_desc[i].capacity;
        st->srv_job = (int *)malloc(sizeof(int) * st->n_servers);
        st->srv_busy_since = (double *)calloc(st->n_servers, sizeof(double));
        st->srv_completion = (double *)calloc(st->n_servers, sizeof(double));
        st->srv_seq = (long long *)calloc(st->n_servers, sizeof(long long));
        if (st->srv_job == NULL || st->srv_busy_since == NULL ||
            st->srv_completion == NULL || st->srv_seq == NULL)
            return 1;
        if (dq_init(&st->fifo)) return 1;
        if (st->discipline == DISC_PS) {
            st->ps_cap = 16;
            st->ps_jobs = (int *)malloc(sizeof(int) * st->ps_cap);
            if (st->ps_jobs == NULL) return 1;
        } else if (st->discipline != DISC_FCFS) {
            st->queues = (dq_t *)calloc(c->K, sizeof(dq_t));
            if (st->queues == NULL) return 1;
            for (int k = 0; k < c->K; k++)
                if (dq_init(&st->queues[k])) return 1;
        }
    }
    return 0;
}

/* Rewind every piece of mutable state to time zero.  Callers point the
 * per-run outputs (class_busy, wait_sum, ..., wf_*) at the right
 * slices before run_core; allocations made by ctx_alloc are reused. */
static void ctx_reset(ctx_t *c) {
    c->next_seq = 1;
    c->heap.len = 0;
    c->jobs.used = 0;
    c->jobs.free_len = 0;
    for (int i = 0; i < c->M; i++) {
        station_t *st = &c->stations[i];
        for (int s = 0; s < st->n_servers; s++) {
            st->srv_job[s] = -1;
            st->srv_busy_since[s] = 0.0;
            st->srv_completion[s] = 0.0;
            st->srv_seq[s] = 0;
        }
        st->n_busy = 0;
        st->start_counter = 0;
        st->sched_epoch = 0;
        st->sched_time = INFINITY;
        st->fifo.head = 0;
        st->fifo.len = 0;
        if (st->queues != NULL)
            for (int k = 0; k < c->K; k++) {
                st->queues[k].head = 0;
                st->queues[k].len = 0;
            }
        st->ps_len = 0;
        st->ps_last_t = 0.0;
        st->t0 = c->warmup;
        st->t1 = c->horizon;
        st->busy_total = 0.0;
    }
    for (int b = 0; b < c->n_blocks; b++) {
        c->blocks[b].len = 0;
        c->blocks[b].pos = 0;
    }
}

/* Seed the initial arrivals, run the event loop to the horizon, flush
 * buffered samples, close open busy intervals and write the four out
 * scalars.  Identical control flow to the pre-batch monolith -- the
 * refactor only moved state into ctx_t so a batch can reuse it.  All
 * error paths leave buffers owned by the ctx (the caller frees). */
static int run_core(ctx_t *c) {
    double horizon = c->horizon;
    double warmup = c->warmup;
    int M = c->M;

    /* Seed initial arrivals (class order, like the Python setup). */
    long long jid = 0;
    for (int k = 0; k < c->K; k++) {
        long long batch;
        double gap = next_gap(c, k, &batch);
        if (*c->abort_flag) return RC_ABORT;
        if (heap_push(&c->heap, gap, c->next_seq++, EV_ARRIVAL, k, batch)) return RC_NOMEM;
    }

    long long n_warmup_discarded = 0;
    int hit_horizon = 0;
    long long epoch_idx = 0;
    double next_epoch = (c->dynamic && c->n_epochs > 0) ? c->epoch_times[0] : INFINITY;
    c->next_sample_t = c->sample_interval > 0.0 ? warmup : INFINITY;

    while (c->heap.len) {
        ev_t ev = heap_pop(&c->heap);
        double t = ev.t;
        if (t > horizon) {
            hit_horizon = 1;
            break;
        }
        if (t >= c->next_sample_t) {
            if (sample_queues_c(c, t)) return *c->abort_flag ? RC_ABORT : RC_NOMEM;
            while (c->next_sample_t <= t) c->next_sample_t += c->sample_interval;
        }
        if (t >= next_epoch) {
            /* Fire at the boundary's nominal time (no event lies in
             * (previous event, t), so the state is valid there); a
             * rescaled completion popped this iteration is caught by
             * the sched_epoch staleness check below. */
            while (next_epoch <= t) {
                if (fire_epoch(c, next_epoch))
                    return *c->abort_flag ? RC_ABORT : RC_NOMEM;
                epoch_idx++;
                next_epoch = epoch_idx < c->n_epochs ? c->epoch_times[epoch_idx] : INFINITY;
            }
        }
        if (ev.kind == EV_COMPLETION) {
            station_t *st = &c->stations[ev.a];
            if (ev.b != st->sched_epoch) continue; /* stale, re-armed */
            int jidx = (st->discipline == DISC_PS) ? ps_complete(c, st, t)
                                                   : station_complete(c, st, t);
            if (jidx == -2) return *c->abort_flag ? RC_ABORT : RC_INVARIANT;
            job_t *j = &c->jobs.pool[jidx];
            int counted = j->arrival >= warmup;
            int here = j->cur;
            int k = j->cls;
            if (counted) {
                double sj = t - j->station_arrival;
                long long cell = (long long)k * M + here;
                c->wait_sum[cell] += sj - j->service_total;
                c->sojourn_sum[cell] += sj;
                c->visit_count[cell] += 1;
            }
            int nxt_station;
            int continuing;
            if (c->has_routing) {
                double u;
                if (c->routing_block != NULL) {
                    u = block_next(c, c->routing_block[k]);
                    if (*c->abort_flag) return RC_ABORT;
                } else {
                    u = random_standard_uniform((bitgen_t *)c->routing_bg[k]);
                }
                const double *row = c->trans_cum[k] + (long long)here * M;
                int nxt = -1;
                if (u <= row[M - 1]) {
                    nxt = 0;
                    while (nxt < M && row[nxt] < u) nxt++;
                }
                continuing = nxt >= 0;
                nxt_station = nxt;
            } else {
                j->hop++;
                continuing = j->hop < c->route_len[k];
                nxt_station = continuing ? c->routes[k][j->hop] : -1;
            }
            if (continuing) {
                if (nxt_station < 0) nxt_station = M - 1; /* Python's [-1] indexing */
                j->cur = nxt_station;
                int accepted = station_arrive(c, &c->stations[nxt_station], t, jidx);
                if (accepted < 0) return *c->abort_flag ? RC_ABORT : RC_NOMEM;
                if (counted) {
                    c->offered[(long long)k * M + nxt_station] += 1;
                    if (!accepted) c->n_blocked[(long long)k * M + nxt_station] += 1;
                }
                if (!accepted && jp_release(&c->jobs, jidx)) return RC_NOMEM;
            } else if (counted) {
                if (c->use_welford) {
                    /* stats.Welford.add: n += 1; delta = x - mean;
                     * mean += delta / n; m2 += delta * (x - mean). */
                    double x = t - j->arrival;
                    long long n = ++c->wf_n[k];
                    double delta = x - c->wf_mean[k];
                    c->wf_mean[k] += delta / (double)n;
                    c->wf_m2[k] += delta * (x - c->wf_mean[k]);
                } else {
                    if (dbuf_push(&c->delay_buf[k], t - j->arrival)) return RC_NOMEM;
                }
                if (c->collect_log && logbuf_push(&c->log, j->jid, k, j->arrival, t))
                    return RC_NOMEM;
                if (jp_release(&c->jobs, jidx)) return RC_NOMEM;
            } else {
                n_warmup_discarded++;
                if (jp_release(&c->jobs, jidx)) return RC_NOMEM;
            }
        } else {
            int k = ev.a;
            for (long long i = 0; i < ev.b; i++) {
                jid++;
                int entry;
                int jidx = jp_alloc(&c->jobs);
                if (jidx < 0) return RC_NOMEM;
                job_t *j = &c->jobs.pool[jidx];
                if (c->has_routing) {
                    double u;
                    if (c->routing_block != NULL) {
                        u = block_next(c, c->routing_block[k]);
                        if (*c->abort_flag) return RC_ABORT;
                    } else {
                        u = random_standard_uniform((bitgen_t *)c->routing_bg[k]);
                    }
                    const double *cum = c->entry_cum[k];
                    entry = -1;
                    if (u <= cum[M - 1]) {
                        entry = 0;
                        while (entry < M && cum[entry] < u) entry++;
                    }
                    if (entry < 0) entry = M - 1; /* Python's [-1] indexing */
                } else {
                    entry = c->routes[k][0];
                }
                j->jid = jid;
                j->cls = k;
                j->hop = 0;
                j->cur = entry;
                j->arrival = t;
                j->station_arrival = t;
                j->remaining = NAN;
                j->service_total = 0.0;
                int accepted = station_arrive(c, &c->stations[entry], t, jidx);
                if (accepted < 0) return *c->abort_flag ? RC_ABORT : RC_NOMEM;
                if (t >= warmup) {
                    c->offered[(long long)k * M + entry] += 1;
                    if (!accepted) c->n_blocked[(long long)k * M + entry] += 1;
                }
                if (!accepted && jp_release(&c->jobs, jidx)) return RC_NOMEM;
            }
            long long batch;
            double gap = next_gap(c, k, &batch);
            if (*c->abort_flag) return RC_ABORT;
            if (heap_push(&c->heap, t + gap, c->next_seq++, EV_ARRIVAL, k, batch)) return RC_NOMEM;
        }
    }

    /* Samples buffered since the last epoch boundary (or the whole run
     * when no controller is attached) flush once, after the loop. */
    if (flush_samples(c)) return *c->abort_flag ? RC_ABORT : RC_NOMEM;

    /* close open busy intervals at the horizon (server order, like the
     * Python finalizer) */
    for (int i = 0; i < M; i++) {
        station_t *st = &c->stations[i];
        if (st->discipline == DISC_PS) {
            ps_elapse(c, st, horizon);
        } else {
            for (int s = 0; s < st->n_servers; s++) {
                int ji = st->srv_job[s];
                if (ji >= 0) {
                    record_busy(st, c->jobs.pool[ji].cls, st->srv_busy_since[s], horizon);
                    st->srv_busy_since[s] = horizon;
                }
            }
        }
        c->busy_out[i] = st->busy_total;
    }

    /* processed events = pushes - still-enqueued - the post-horizon pop */
    long long pushes = c->next_seq - 1;
    c->out_scalars[0] = jid;
    c->out_scalars[1] = pushes - c->heap.len - (hit_horizon ? 1 : 0);
    c->out_scalars[2] = n_warmup_discarded;
    c->out_scalars[3] = hit_horizon;
    return RC_OK;
}

int run_kernel(
    int K, int M, double horizon, double warmup,
    StationDesc *station_desc, SamplerDesc *samplers, ArrivalDesc *arrivals,
    int has_routing,
    void **routes_v, int *route_len,
    void **entry_cum_v, void **trans_cum_v, void **routing_bg,
    int *routing_block,
    refill_cb_t refill_cb, int n_blocks, long long block_size,
    int dynamic, long long n_epochs, const double *epoch_times,
    double *speeds, long long *counts_out, epoch_cb_t epoch_cb,
    double sample_interval, sample_cb_t sample_cb,
    int collect_log,
    service_cb_t service_cb, arrival_cb_t arrival_cb, int *abort_flag,
    double *wait_sum, double *sojourn_sum, long long *visit_count,
    long long *n_blocked, long long *offered,
    double *busy_total, double *class_busy,
    long long *out_scalars,
    void **delay_ptrs, long long *delay_counts,
    void **log_ptrs, long long *log_count)
{
    ctx_t c;
    memset(&c, 0, sizeof(c));
    c.K = K;
    c.M = M;
    c.horizon = horizon;
    c.warmup = warmup;
    c.samplers = samplers;
    c.arrivals = arrivals;
    c.has_routing = has_routing;
    c.routes = (int **)routes_v;
    c.route_len = route_len;
    c.entry_cum = (double **)entry_cum_v;
    c.trans_cum = (double **)trans_cum_v;
    c.routing_bg = routing_bg;
    c.routing_block = routing_block;
    c.service_cb = service_cb;
    c.arrival_cb = arrival_cb;
    c.refill_cb = refill_cb;
    c.abort_flag = abort_flag;
    c.dynamic = dynamic;
    c.n_epochs = n_epochs;
    c.epoch_times = epoch_times;
    c.speeds = speeds;
    c.counts_out = counts_out;
    c.busy_out = busy_total;
    c.epoch_cb = epoch_cb;
    c.sample_interval = sample_interval;
    c.sample_cb = sample_cb;
    c.wait_sum = wait_sum;
    c.sojourn_sum = sojourn_sum;
    c.visit_count = visit_count;
    c.n_blocked = n_blocked;
    c.offered = offered;
    c.out_scalars = out_scalars;
    c.collect_log = collect_log;

    int rc = RC_NOMEM;
    dbuf_t *delay_buf = (dbuf_t *)calloc(K, sizeof(dbuf_t));
    c.delay_buf = delay_buf;
    if (delay_buf == NULL) return RC_NOMEM;

    if (ctx_alloc(&c, station_desc, n_blocks, block_size)) goto fail;

    if (dynamic) {
        c.cur_speed = (double *)malloc(sizeof(double) * M);
        if (c.cur_speed == NULL) goto fail;
        for (int i = 0; i < M; i++) c.cur_speed[i] = speeds[i];
    }

    for (int i = 0; i < M; i++)
        c.stations[i].class_busy = class_busy + (long long)i * K;
    ctx_reset(&c);

    rc = run_core(&c);
    if (rc != RC_OK) goto fail;

    for (int k = 0; k < K; k++) {
        delay_ptrs[k] = delay_buf[k].buf; /* caller copies then k_free()s */
        delay_counts[k] = delay_buf[k].len;
    }
    log_ptrs[0] = c.log.jid;
    log_ptrs[1] = c.log.cls;
    log_ptrs[2] = c.log.arrival;
    log_ptrs[3] = c.log.exit_t;
    *log_count = c.log.len;

    free(delay_buf);
    free_ctx(&c);
    return RC_OK;

fail:
    if (delay_buf != NULL) {
        for (int k = 0; k < K; k++) free(delay_buf[k].buf);
        free(delay_buf);
    }
    free(c.log.jid);
    free(c.log.cls);
    free(c.log.arrival);
    free(c.log.exit_t);
    free_ctx(&c);
    return rc;
}

/* Batched entry point for fleet sweeps: run n_reps independent static
 * replications of one scenario back to back on a single arena.  Each
 * replication brings its own sampler/arrival descriptors (fresh
 * per-seed bit generator pointers) and its own output slices; the
 * event heap, job pool and station arrays are allocated once by
 * ctx_alloc and rewound by ctx_reset between runs, so the Python->C
 * boundary is crossed once per batch instead of once per replication.
 * End-to-end delays accumulate inline through the scalar Welford
 * recurrence (use_welford) -- the exact IEEE expression sequence
 * stats.Welford.add_batch replays -- so no per-job delay buffers cross
 * the boundary either.
 *
 * On failure the index of the failing replication goes to *fail_index
 * and its RC_* code is returned; outputs for replications before it
 * are complete and valid, and the caller may re-invoke with offset
 * arrays to resume at fail_index + 1.  Dynamic speed control, routing
 * matrices, Python block buffers, job logs and queue sampling are
 * unit-path features: batch callers fall back to run_kernel for those
 * (enforced on the Python side). */
int run_kernel_batch(
    int n_reps, int K, int M, double horizon, double warmup,
    StationDesc *station_desc,
    SamplerDesc *samplers,       /* n_reps blocks of M*K */
    ArrivalDesc *arrivals,       /* n_reps blocks of K */
    void **routes_v, int *route_len,
    service_cb_t service_cb, arrival_cb_t arrival_cb, int *abort_flag,
    double *wait_sum, double *sojourn_sum, long long *visit_count,
    long long *n_blocked, long long *offered,
    double *busy_total,          /* n_reps blocks of M */
    double *class_busy,          /* n_reps blocks of M*K */
    long long *out_scalars,      /* n_reps blocks of 4 */
    long long *wf_n, double *wf_mean, double *wf_m2, /* n_reps blocks of K */
    long long *fail_index)
{
    ctx_t c;
    memset(&c, 0, sizeof(c));
    c.K = K;
    c.M = M;
    c.horizon = horizon;
    c.warmup = warmup;
    c.routes = (int **)routes_v;
    c.route_len = route_len;
    c.service_cb = service_cb;
    c.arrival_cb = arrival_cb;
    c.abort_flag = abort_flag;
    c.use_welford = 1;
    *fail_index = -1;

    if (ctx_alloc(&c, station_desc, 0, 0)) {
        free_ctx(&c);
        return RC_NOMEM;
    }
    size_t km = (size_t)K * M;
    for (int b = 0; b < n_reps; b++) {
        c.samplers = samplers + (size_t)b * km;
        c.arrivals = arrivals + (size_t)b * K;
        c.wait_sum = wait_sum + (size_t)b * km;
        c.sojourn_sum = sojourn_sum + (size_t)b * km;
        c.visit_count = visit_count + (size_t)b * km;
        c.n_blocked = n_blocked + (size_t)b * km;
        c.offered = offered + (size_t)b * km;
        c.busy_out = busy_total + (size_t)b * M;
        c.out_scalars = out_scalars + (size_t)b * 4;
        c.wf_n = wf_n + (size_t)b * K;
        c.wf_mean = wf_mean + (size_t)b * K;
        c.wf_m2 = wf_m2 + (size_t)b * K;
        for (int i = 0; i < M; i++)
            c.stations[i].class_busy = class_busy + ((size_t)b * M + i) * K;
        ctx_reset(&c);
        int rc = run_core(&c);
        if (rc != RC_OK) {
            *fail_index = b;
            free_ctx(&c);
            return rc;
        }
    }
    free_ctx(&c);
    return RC_OK;
}
