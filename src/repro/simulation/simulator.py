"""The discrete-event simulation engine and its result record.

One :func:`simulate` call runs a single replication of a cluster +
workload for a fixed simulated horizon, discarding a warmup prefix,
and measures exactly the quantities the analytic model predicts:
per-class end-to-end delays, per-tier waits/sojourns, tier
utilizations, average power and per-class dynamic energy. Replication
management and confidence intervals live in
:mod:`repro.simulation.replications`.

The event core is built for single-core throughput while staying
bit-identical for a given seed:

* arrival gaps (Poisson), service variates (block-safe families) and
  routing uniforms are pregenerated in NumPy chunks through
  :class:`repro.simulation.rng.BlockCursor` — per-stream draw order is
  unchanged, so seeded results and common-random-numbers comparisons
  are preserved exactly;
* each station keeps a single next-completion heap entry instead of
  one per in-service job (see :mod:`repro.simulation.station`);
* per-event statistics go into plain Python accumulators (list-of-list
  sums, per-class delay buffers flushed through
  :meth:`repro.simulation.stats.Welford.add_batch`) instead of NumPy
  fancy indexing and per-sample Welford updates.
"""

from __future__ import annotations

import heapq
import os
import warnings
from bisect import bisect_right
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from itertools import chain, count
from typing import Any

import numpy as np

from repro import obs
from repro.cluster.model import ClusterModel
from repro.distributions.hyperexponential import HyperExponential
from repro.exceptions import ModelValidationError, WarmupDiscardWarning
from repro.simulation.job import Job
from repro.simulation.ps_station import PSStation
from repro.simulation.rng import AntitheticSeed, BlockCursor, RngStreams
from repro.simulation.station import SimStation
from repro.simulation.stats import Welford, confidence_halfwidth
from repro.workload.arrivals import ArrivalProcess, PoissonProcess
from repro.workload.classes import Workload

__all__ = ["SimulationResult", "simulate"]

_ARRIVAL = 0
_COMPLETION = 1


@dataclass
class SimulationResult:
    """Measured steady-state metrics of one simulation replication.

    All quantities are measured over the post-warmup window; a request
    contributes iff it *arrived* after warmup and completed before the
    horizon.
    """

    class_names: tuple[str, ...]
    n_completed: np.ndarray
    delays: np.ndarray
    delay_std: np.ndarray
    delay_ci: np.ndarray
    station_waits: np.ndarray
    station_sojourns: np.ndarray
    utilizations: np.ndarray
    average_power: float
    energy_per_request: float
    per_class_dynamic_energy: np.ndarray
    horizon: float
    warmup: float
    meta: dict[str, Any] = field(default_factory=dict)
    delay_samples: list[np.ndarray] | None = None
    job_log: np.ndarray | None = None

    def delay_percentile(self, k: int, p: float) -> float:
        """Empirical ``p``-percentile of class ``k``'s end-to-end delay.

        Requires the run to have been started with
        ``collect_delay_samples=True``.
        """
        if self.delay_samples is None:
            raise ModelValidationError(
                "per-job delay samples were not collected; pass "
                "collect_delay_samples=True to simulate()"
            )
        if not 0.0 < p < 1.0:
            raise ModelValidationError(f"percentile level must be in (0, 1), got {p}")
        samples = self.delay_samples[k]
        if samples.size == 0:
            return float("nan")
        return float(np.quantile(samples, p))

    @property
    def mean_delay(self) -> float:
        """Completion-weighted mean end-to-end delay over all classes."""
        n = self.n_completed.sum()
        if n == 0:
            return float("nan")
        return float(np.dot(self.n_completed, self.delays) / n)


def simulate(
    cluster: ClusterModel,
    workload: Workload,
    horizon: float,
    warmup_fraction: float = 0.1,
    seed: int | np.random.SeedSequence | AntitheticSeed = 0,
    arrival_processes: list[ArrivalProcess] | None = None,
    allow_unstable: bool = False,
    collect_delay_samples: bool = False,
    collect_job_log: bool = False,
    routing: list | None = None,
    epoch_times: Sequence[float] | None = None,
    epoch_controller: Callable[[float, np.ndarray, np.ndarray], np.ndarray | None] | None = None,
) -> SimulationResult:
    """Run one replication of the cluster under the workload.

    Parameters
    ----------
    cluster:
        The configuration to simulate. Visit ratios must be integers
        (a class visits tier ``i`` exactly ``v_{ik}`` consecutive
        times).
    workload:
        Multi-class workload; by default each class arrives Poisson at
        its declared rate.
    horizon:
        Simulated time to run for.
    warmup_fraction:
        Fraction of the horizon discarded as warmup, in ``[0, 0.9]``.
    seed:
        Master seed (or a SeedSequence from the replication manager,
        or an :class:`~repro.simulation.rng.AntitheticSeed` naming one
        member of an antithetic pair).
    arrival_processes:
        Optional per-class overrides (e.g. :class:`MMPP2` for the
        robustness experiments). Each is ``fresh()``-ed, so a template
        can be reused across replications.
    allow_unstable:
        By default a configuration whose analytic utilization reaches 1
        is rejected (the run would never reach steady state); set True
        to simulate it anyway (e.g. to *watch* the divergence).
    collect_delay_samples:
        Keep every counted job's end-to-end delay per class (memory:
        one float per completed request) so empirical percentiles can
        be read off the result.
    collect_job_log:
        Keep a structured record per counted job — fields ``jid``,
        ``cls``, ``arrival``, ``exit`` — exposed as
        ``result.job_log`` (a NumPy structured array) for downstream
        analysis and trace export.
    routing:
        Optional per-class :class:`repro.queueing.routing.ClassRouting`
        list. Each job then walks the Markov routing chain (entry
        station drawn from the entry distribution, each hop from the
        matrix) instead of the fixed tandem itinerary. The cluster's
        visit ratios must equal the routing's expected visits (so the
        analytic model being validated describes the same system).
    epoch_times:
        Strictly increasing decision instants for ``epoch_controller``.
        Must be given together with it.
    epoch_controller:
        Online speed controller called at each epoch boundary with
        ``(t, queue_counts, speeds)`` — ``queue_counts`` is the
        ``(num_tiers, num_classes)`` matrix of jobs in system (in
        service + waiting) and ``speeds`` the current per-tier speeds.
        Returns the new per-tier speed vector (clamped to each tier's
        DVFS range) or ``None`` to keep the current speeds. Speed
        changes apply mid-run with preserved *work*: the remaining time
        of every in-service job rescales by ``old_speed / new_speed``,
        and dynamic energy is accounted per constant-speed segment.
        Per-boundary records land in ``result.meta["epoch_trace"]``.
        Not supported with PS tiers. When no controller is attached the
        engine takes the exact static path (seeded runs stay
        bit-identical).

    Raises
    ------
    ModelValidationError
        On class-count mismatch, non-integer visit ratios, bad horizon,
        or (unless ``allow_unstable``) a saturated tier.
    """
    _validate_basic_inputs(cluster, workload, horizon, warmup_fraction)
    if (epoch_controller is None) != (epoch_times is None):
        raise ModelValidationError("epoch_times and epoch_controller must be provided together")
    dynamic_speed = epoch_controller is not None
    if dynamic_speed:
        epoch_schedule = np.asarray(epoch_times, dtype=float)
        if epoch_schedule.ndim != 1 or epoch_schedule.size == 0:
            raise ModelValidationError("epoch_times must be a non-empty 1-D sequence")
        if not np.all(np.isfinite(epoch_schedule)) or epoch_schedule[0] < 0.0:
            raise ModelValidationError("epoch times must be finite and non-negative")
        if np.any(np.diff(epoch_schedule) <= 0.0):
            raise ModelValidationError("epoch times must be strictly increasing")
        for tier in cluster.tiers:
            if tier.discipline == "ps":
                raise ModelValidationError(
                    f"tier {tier.name!r}: dynamic speed control does not support PS "
                    "tiers (their shared-rate completions cannot be rescaled mid-run)"
                )
    if not allow_unstable:
        _validate_stability(cluster, workload)

    # Backend dispatch: REPRO_SIM_BACKEND selects the C event-loop
    # kernel (repro.simulation.compiled), which produces bit-identical
    # results for every configuration it accepts — including epoch
    # controllers (Python decisions at kernel-yielded boundaries),
    # antithetic seeds (Python-refilled variate blocks), PS tiers and
    # telemetry queue sampling — and returns None to fall back to this
    # engine otherwise (unknown tier disciplines, kernel build failure).
    backend = _env_backend()
    if backend != "python":
        from repro.simulation import compiled as _compiled

        compiled_result = _compiled.maybe_simulate_compiled(
            backend,
            cluster,
            workload,
            horizon,
            warmup_fraction,
            seed,
            arrival_processes,
            collect_delay_samples,
            collect_job_log,
            routing,
            epoch_times,
            epoch_controller,
        )
        if compiled_result is not None:
            return compiled_result
    elif obs.TELEMETRY.enabled:
        # Attribute the run's engine in telemetry (the compiled selector
        # annotates its own resolution, including fallbacks).
        obs.TELEMETRY.annotate(sim_backend="python", sim_backend_requested="python")

    k_classes = workload.num_classes
    m_stations = cluster.num_tiers
    warmup = warmup_fraction * horizon

    with obs.span("sim.setup", classes=k_classes, stations=m_stations, horizon=horizon):
        streams = RngStreams(seed)
        if routing is None:
            routes = _build_routes(cluster)
            routing_tables = None
            routing_uniforms = None
        else:
            routes = None
            routing_tables = _build_routing_tables(cluster, routing)
            # One uniform per routing decision, block-pregenerated per
            # class stream (Generator.random is block-safe).
            routing_uniforms = [
                BlockCursor(streams.stream(f"routing/{k}"), _draw_uniform)
                for k in range(k_classes)
            ]

        if arrival_processes is None:
            arrivals: list[ArrivalProcess] = [
                PoissonProcess(c.arrival_rate) for c in workload.classes
            ]
        else:
            if len(arrival_processes) != k_classes:
                raise ModelValidationError(
                    f"expected {k_classes} arrival processes, got {len(arrival_processes)}"
                )
            arrivals = [p.fresh() for p in arrival_processes]
        arrival_pull = [
            _make_arrival_puller(proc, streams.stream(f"arrivals/{k}"))
            for k, proc in enumerate(arrivals)
        ]

        heap: list[tuple[float, int, int, int, int]] = []
        # One global push counter (C-level itertools.count) keeps the
        # heap's equal-time tie-break identical to push order. Stations
        # share the heap and counter and push their next-completion
        # entries directly (no callback indirection per re-arm).
        next_seq = count(1).__next__
        heappush = heapq.heappush

        stations: list[SimStation | PSStation] = []
        # Under dynamic speed control each station's speed lives in a
        # one-element mutable cell: samplers draw the *demand* (work at
        # speed 1) and divide by the cell at pull time, so a mid-run
        # speed change affects every subsequent draw without rebinding.
        speed_cells: list[list[float]] = []
        for i, tier in enumerate(cluster.tiers):
            samplers = []
            if dynamic_speed:
                cell = [float(tier.speed)]
                speed_cells.append(cell)
            for k in range(k_classes):
                rng = streams.stream(f"service/{i}/{k}")
                if dynamic_speed:
                    samplers.append(
                        _make_dynamic_sampler(_make_sampler(tier.demands[k], rng), cell)
                    )
                else:
                    dist = tier.demands[k].scaled(1.0 / tier.speed)
                    samplers.append(_make_sampler(dist, rng))
            if tier.discipline == "ps":
                if tier.capacity is not None:
                    raise ModelValidationError(
                        f"tier {tier.name!r}: finite buffers are not supported for PS tiers"
                    )
                st = PSStation(i, k_classes, tier.servers, samplers, heap, next_seq)
            else:
                st = SimStation(
                    i,
                    k_classes,
                    tier.servers,
                    tier.discipline,
                    samplers,
                    heap,
                    next_seq,
                    capacity=tier.capacity,
                )
            st.set_window(warmup, horizon)
            stations.append(st)

        # Statistics tallies. Plain Python list-of-lists beat NumPy
        # fancy indexing for single-cell updates by an order of
        # magnitude; each cell accumulates in the same order as before,
        # so the float sums are bit-identical.
        e2e = [Welford() for _ in range(k_classes)]
        delay_buf: list[list[float]] = [[] for _ in range(k_classes)]
        log_rows: list[tuple[int, int, float, float]] | None = [] if collect_job_log else None
        wait_sum = [[0.0] * m_stations for _ in range(k_classes)]
        sojourn_sum = [[0.0] * m_stations for _ in range(k_classes)]
        visit_count = [[0] * m_stations for _ in range(k_classes)]
        n_blocked = [[0] * m_stations for _ in range(k_classes)]
        offered = [[0] * m_stations for _ in range(k_classes)]
        # Per-class (wait, sojourn, count) row triples: one subscript in
        # the hot loop instead of three nested ones.
        stats_rows = [
            (wait_sum[k], sojourn_sum[k], visit_count[k]) for k in range(k_classes)
        ]

        # Per-class arrival context for the fixed-itinerary mode: the
        # route, the prebound entry-station arrive and the entry-row
        # counters, resolved once instead of per arrival.
        if routes is not None:
            entry_info = [
                (routes[k], stations[routes[k][0]].arrive, offered[k], n_blocked[k], routes[k][0])
                for k in range(k_classes)
            ]
        else:
            entry_info = None

        # Seed initial arrivals.
        jid = 0
        for k in range(k_classes):
            gap, batch = arrival_pull[k]()
            heappush(heap, (gap, next_seq(), _ARRIVAL, k, batch))

    # Optional per-tier queue sampling (telemetry detail flag). The
    # disabled path costs one float comparison per event: next_sample
    # is +inf, so the branch below never fires.
    tel = obs.TELEMETRY
    sample_interval = tel.queue_sample_interval if (tel.enabled and tel.sample_queues) else 0.0
    next_sample = warmup if sample_interval > 0.0 else float("inf")

    # Epoch-boundary controller hook. Mirrors the telemetry sampler
    # above: with no controller attached, next_epoch stays +inf and the
    # hook costs one float comparison per event.
    dyn_energy = 0.0
    per_class_dyn_energy = np.zeros(k_classes)
    if dynamic_speed:
        tier_power = [(t.spec.power.kappa, t.spec.power.alpha) for t in cluster.tiers]
        speed_bounds = [(t.spec.min_speed, t.spec.max_speed) for t in cluster.tiers]
        busy_mark = [0.0] * m_stations
        class_busy_mark = [[0.0] * k_classes for _ in range(m_stations)]
        epoch_trace: list[dict[str, Any]] = []
        epoch_idx = 0
        next_epoch = float(epoch_schedule[0])

        def _accrue_segments(tb: float) -> None:
            """Close every station's busy intervals at ``tb`` and bill
            the elapsed busy time at the segment's (current) speed."""
            nonlocal dyn_energy
            for i, st in enumerate(stations):
                st.close_open_intervals(tb)
                kappa, alpha = tier_power[i]
                p_dyn = kappa * speed_cells[i][0] ** alpha
                delta = st.busy_total - busy_mark[i]
                if delta > 0.0:
                    dyn_energy += p_dyn * delta
                    busy_mark[i] = st.busy_total
                cb = st.class_busy_totals
                mark = class_busy_mark[i]
                for k in range(k_classes):
                    dk = cb[k] - mark[k]
                    if dk > 0.0:
                        per_class_dyn_energy[k] += p_dyn * dk
                        mark[k] = cb[k]

        def _fire_epoch(tb: float) -> None:
            """One controller decision at boundary ``tb``: flush energy
            segments, observe queues, apply the returned speeds (work-
            preserving rescale of in-service jobs), record the trace."""
            _accrue_segments(tb)
            counts = np.array([st.class_counts() for st in stations], dtype=np.int64)
            speeds_now = np.array([c[0] for c in speed_cells])
            new_speeds = epoch_controller(tb, counts, speeds_now.copy())
            if new_speeds is not None:
                new_arr = np.asarray(new_speeds, dtype=float)
                if new_arr.shape != (m_stations,):
                    raise ModelValidationError(
                        f"epoch controller must return {m_stations} speeds, "
                        f"got shape {new_arr.shape}"
                    )
                for i, st in enumerate(stations):
                    lo, hi = speed_bounds[i]
                    s_new = min(max(float(new_arr[i]), lo), hi)
                    s_old = speed_cells[i][0]
                    if s_new != s_old:
                        st.rescale_remaining(tb, s_old / s_new)
                        speed_cells[i][0] = s_new
                        speeds_now[i] = s_new
            epoch_trace.append(
                {
                    "t": tb,
                    "queues": counts,
                    "speeds": speeds_now,
                    "dynamic_energy": dyn_energy,
                }
            )
            # Controller-trace telemetry: epochs are decision instants
            # (hundreds per run, never per-event), so emitting here
            # keeps the epoch trace ingestable from events.jsonl
            # without touching the hot loop. No-op while disabled.
            obs.event(
                "sim.epoch",
                epoch=len(epoch_trace) - 1,
                t=tb,
                queues=counts,
                speeds=speeds_now,
                dynamic_energy=dyn_energy,
            )
    else:
        next_epoch = float("inf")

    n_warmup_discarded = 0
    hit_horizon = False
    has_routing = routing_tables is not None
    heappop = heapq.heappop
    with obs.span("sim.event_loop", horizon=horizon):
        while heap:
            t, _, kind, a, b = heappop(heap)
            if t > horizon:
                hit_horizon = True
                break
            if t >= next_sample:
                _sample_queues(tel, t, stations)
                while next_sample <= t:
                    next_sample += sample_interval
            if t >= next_epoch:
                # Fire at the boundary's nominal time: no event lies in
                # (previous event, t), so the system state is valid
                # there, and a rescaled completion popped this iteration
                # is caught by the sched_epoch staleness check below.
                while next_epoch <= t:
                    _fire_epoch(next_epoch)
                    epoch_idx += 1
                    next_epoch = (
                        float(epoch_schedule[epoch_idx])
                        if epoch_idx < epoch_schedule.size
                        else float("inf")
                    )
            if kind:  # _COMPLETION
                st = stations[a]
                if b != st.sched_epoch:
                    continue  # stale event, re-armed since it was pushed
                job = st.complete(t, b)
                counted = job.arrival >= warmup
                route = job.route
                hop = job.hop
                here = route[hop]
                kcls = job.cls
                if counted:
                    sj = t - job.station_arrival
                    wrow, srow, crow = stats_rows[kcls]
                    wrow[here] += sj - job.service_total
                    srow[here] += sj
                    crow[here] += 1
                if has_routing:
                    nxt = _draw_from_cumulative(
                        routing_tables[kcls][1][here], routing_uniforms[kcls]()
                    )
                    if nxt >= 0:
                        route = route + (nxt,)
                        job.route = route
                hop += 1
                job.hop = hop
                if hop < len(route):
                    nxt_station = route[hop]
                    # Offered/blocked counters use the job-arrival window
                    # (``counted``), not the hop's event time: the simulated
                    # blocking probability must be measured over the same
                    # population as the delays it is compared against.
                    if counted:
                        offered[kcls][nxt_station] += 1
                        if not stations[nxt_station].arrive(t, job):
                            n_blocked[kcls][nxt_station] += 1
                    else:
                        stations[nxt_station].arrive(t, job)
                elif counted:
                    delay_buf[kcls].append(t - job.arrival)
                    if log_rows is not None:
                        log_rows.append((job.jid, kcls, job.arrival, t))
                else:
                    n_warmup_discarded += 1
            else:
                k = a
                # Blocking counters share the job-arrival measurement
                # window with the delay statistics (here t *is* the
                # job's arrival time).
                if entry_info is not None:
                    route, entry_arrive, off_row, blk_row, r0 = entry_info[k]
                    for _ in range(b):
                        jid += 1
                        job = Job(jid, k, t, route)
                        if t >= warmup:
                            off_row[r0] += 1
                            if not entry_arrive(t, job):
                                blk_row[r0] += 1
                        else:
                            entry_arrive(t, job)
                else:
                    for _ in range(b):
                        jid += 1
                        entry = _draw_from_cumulative(
                            routing_tables[k][0], routing_uniforms[k]()
                        )
                        job = Job(jid, k, t, (entry,))
                        if t >= warmup:
                            offered[k][entry] += 1
                            if not stations[entry].arrive(t, job):
                                n_blocked[k][entry] += 1
                        else:
                            stations[entry].arrive(t, job)
                gap, batch = arrival_pull[k]()
                heappush(heap, (t + gap, next_seq(), _ARRIVAL, k, batch))

    # Every pushed event was either processed, is still in the heap, or
    # is the single post-horizon pop that ended the loop — so the
    # processed-event count follows from the push counter without a
    # per-event increment in the hot loop.
    n_events = (next_seq() - 1) - len(heap) - (1 if hit_horizon else 0)

    with obs.span("sim.finalize"):
        for st in stations:
            st.close_open_intervals(horizon)
        # Flush the per-class delay buffers into the Welford
        # accumulators in one batched pass (bit-identical to per-event
        # adds; see Welford.add_batch).
        for k in range(k_classes):
            e2e[k].add_batch(delay_buf[k])

        window = horizon - warmup
        utilizations = np.array(
            [
                st.busy_total / (tier.servers * window)
                for st, tier in zip(stations, cluster.tiers)
            ]
        )

        # Power: idle floor plus measured dynamic draw.
        if dynamic_speed:
            # The horizon closes the last constant-speed segment (the
            # busy intervals were already flushed above); the energy is
            # the sum over segments of busy-time x kappa*s^alpha at that
            # segment's speed.
            _accrue_segments(horizon)
            dynamic_power = dyn_energy / window
            per_class_dyn_energy_rate = per_class_dyn_energy / window
        else:
            dynamic_power = 0.0
            per_class_dyn_energy_rate = np.zeros(k_classes)
            for st, tier in zip(stations, cluster.tiers):
                p_dyn = tier.spec.power.kappa * tier.speed**tier.spec.power.alpha
                dynamic_power += p_dyn * st.busy_total / window
                for k in range(k_classes):
                    per_class_dyn_energy_rate[k] += p_dyn * st.class_busy_totals[k] / window
        idle_power = float(sum(t.servers * t.spec.power.idle for t in cluster.tiers))
        average_power = idle_power + dynamic_power

        n_completed = np.array([w.n for w in e2e], dtype=np.int64)
        delays = np.array([w.mean for w in e2e])
        stds = np.array([w.std for w in e2e])
        cis = np.array([confidence_halfwidth(w.std, w.n) for w in e2e])

        # Per-class dynamic energy per completed request: measured energy
        # rate divided by the class's measured throughput.
        throughput = n_completed / window
        with np.errstate(divide="ignore", invalid="ignore"):
            per_class_dyn = np.where(
                throughput > 0, per_class_dyn_energy_rate / np.maximum(throughput, 1e-300), np.nan
            )
        total_throughput = float(throughput.sum())
        energy_per_request = (
            average_power / total_throughput if total_throughput > 0 else float("nan")
        )

        wait_sum_arr = np.array(wait_sum)
        sojourn_sum_arr = np.array(sojourn_sum)
        visit_count_arr = np.array(visit_count, dtype=np.int64)
        # A counted visit completes at the station exactly when it is
        # counted toward per-visit delay statistics, so the completion
        # matrix equals the visit-count matrix (kept as separate meta
        # arrays for API compatibility).
        station_completions = visit_count_arr.copy()
        with np.errstate(divide="ignore", invalid="ignore"):
            station_waits = np.where(
                visit_count_arr > 0, wait_sum_arr / np.maximum(visit_count_arr, 1), np.nan
            )
            station_sojourns = np.where(
                visit_count_arr > 0, sojourn_sum_arr / np.maximum(visit_count_arr, 1), np.nan
            )

    # Delay statistics on a thin post-warmup tail are noisy; surface it
    # both as a Python warning and as a structured telemetry event.
    n_counted_total = int(n_completed.sum())
    n_finished_total = n_counted_total + n_warmup_discarded
    if n_finished_total > 0 and n_warmup_discarded > 0.5 * n_finished_total:
        discard_fraction = n_warmup_discarded / n_finished_total
        warnings.warn(
            WarmupDiscardWarning(
                f"warmup window ({warmup:g} of horizon {horizon:g}) discarded "
                f"{n_warmup_discarded} of {n_finished_total} completed jobs "
                f"({discard_fraction:.0%}); delay statistics rest on only "
                f"{n_counted_total} jobs — lengthen the horizon or shrink "
                f"warmup_fraction"
            ),
            stacklevel=2,
        )
        obs.event(
            "sim.warmup_discard",
            warmup=warmup,
            horizon=horizon,
            n_discarded=n_warmup_discarded,
            n_counted=n_counted_total,
            discard_fraction=discard_fraction,
        )
    obs.counter("sim.events").add(n_events)
    obs.counter("sim.jobs_created").add(jid)
    obs.counter("sim.jobs_counted").add(n_counted_total)

    meta: dict[str, Any] = {
        "n_jobs_created": jid,
        "n_events": n_events,
        "n_warmup_discarded": n_warmup_discarded,
        "station_completions": station_completions,
        "n_blocked": np.array(n_blocked, dtype=np.int64),
        "n_offered": np.array(offered, dtype=np.int64),
    }
    if dynamic_speed:
        meta["epoch_trace"] = epoch_trace
        meta["final_speeds"] = np.array([c[0] for c in speed_cells])
        meta["dynamic_energy"] = float(dyn_energy)

    return SimulationResult(
        class_names=tuple(workload.names),
        n_completed=n_completed,
        delays=delays,
        delay_std=stds,
        delay_ci=cis,
        station_waits=station_waits,
        station_sojourns=station_sojourns,
        utilizations=utilizations,
        average_power=average_power,
        energy_per_request=energy_per_request,
        per_class_dynamic_energy=per_class_dyn,
        horizon=horizon,
        warmup=warmup,
        meta=meta,
        delay_samples=(
            [np.asarray(s) for s in delay_buf] if collect_delay_samples else None
        ),
        job_log=(
            np.array(
                log_rows,
                dtype=[("jid", np.int64), ("cls", np.int32), ("arrival", float), ("exit", float)],
            )
            if log_rows is not None
            else None
        ),
    )


def _env_backend() -> str:
    """The ``REPRO_SIM_BACKEND`` selector, validated.

    ``python`` (default) runs this engine; ``compiled`` requires the C
    kernel (warns once and falls back if unavailable); ``auto`` uses
    the kernel opportunistically and falls back silently.
    """
    raw = os.environ.get("REPRO_SIM_BACKEND")
    if raw is None:
        return "python"
    value = raw.strip().lower()
    if value not in ("python", "compiled", "auto"):
        raise ModelValidationError(
            f"REPRO_SIM_BACKEND must be one of ('python', 'compiled', 'auto'), "
            f"got {raw!r}"
        )
    return value


def _validate_basic_inputs(
    cluster: ClusterModel, workload: Workload, horizon: float, warmup_fraction: float
) -> None:
    """Shared input gate for :func:`simulate` and the batched fleet path."""
    if cluster.num_classes != workload.num_classes:
        raise ModelValidationError(
            f"cluster is parameterized for {cluster.num_classes} classes "
            f"but workload has {workload.num_classes}"
        )
    if horizon <= 0.0 or not np.isfinite(horizon):
        raise ModelValidationError(f"horizon must be positive and finite, got {horizon}")
    if not 0.0 <= warmup_fraction <= 0.9:
        raise ModelValidationError(f"warmup fraction must be in [0, 0.9], got {warmup_fraction}")


def _validate_stability(cluster: ClusterModel, workload: Workload) -> None:
    """Reject saturated open queueing tiers (``allow_unstable`` bypass).

    Loss and finite-buffer tiers cannot be unstable (nothing unbounded
    can accumulate); only open queueing tiers gate.
    """
    rho = cluster.utilizations(workload.arrival_rates)
    queueing = np.array(
        [t.discipline != "loss" and t.capacity is None for t in cluster.tiers]
    )
    if np.any(rho[queueing] >= 1.0):
        raise ModelValidationError(
            f"configuration is unstable (utilizations {np.round(rho, 4).tolist()}); "
            "pass allow_unstable=True to simulate it anyway"
        )


def _build_routes(cluster: ClusterModel) -> list[tuple[int, ...]]:
    """Per-class station itineraries from the (integer) visit ratios."""
    routes = []
    v = cluster.visit_ratios
    for k in range(cluster.num_classes):
        row = v[k]
        if not np.allclose(row, np.round(row)):
            raise ModelValidationError(
                f"the simulator needs integer visit ratios, got {row.tolist()} for class {k}"
            )
        route = tuple(
            chain.from_iterable([i] * int(round(vi)) for i, vi in enumerate(row))
        )
        if len(route) == 0:
            raise ModelValidationError(f"class {k} visits no station")
        routes.append(route)
    return routes


def _build_routing_tables(cluster: ClusterModel, routing: list) -> list[tuple]:
    """Per-class (entry_cumulative, per-station transition cumulative)
    lookup tables for the routing walk, validated against the cluster's
    visit ratios so the simulated system matches the analytic one."""
    from repro.queueing.routing import ClassRouting

    if len(routing) != cluster.num_classes:
        raise ModelValidationError(
            f"expected {cluster.num_classes} class routings, got {len(routing)}"
        )
    tables = []
    for k, cr in enumerate(routing):
        if not isinstance(cr, ClassRouting):
            raise ModelValidationError(
                f"routing[{k}] must be a ClassRouting, got {type(cr).__name__}"
            )
        if cr.num_stations != cluster.num_tiers:
            raise ModelValidationError(
                f"routing[{k}] covers {cr.num_stations} stations but the cluster has "
                f"{cluster.num_tiers} tiers"
            )
        if not np.allclose(cr.visit_ratios, cluster.visit_ratios[k], rtol=1e-6, atol=1e-9):
            raise ModelValidationError(
                f"routing[{k}]'s expected visits {cr.visit_ratios.tolist()} do not match "
                f"the cluster's visit ratios {cluster.visit_ratios[k].tolist()}; build the "
                "cluster with visit_ratio_matrix(...) from the same routing"
            )
        entry_cum = np.cumsum(cr.entry)
        trans_cum = [np.cumsum(cr.matrix[i]) for i in range(cr.num_stations)]
        tables.append((entry_cum, trans_cum))
    return tables


def _sample_queues(tel, t: float, stations: list) -> None:
    """Record per-tier population and busy-server counts at time ``t``.

    Only reached when telemetry is enabled with ``sample_queues=True``;
    works for both head-of-line stations (idle/busy server slots) and
    processor-sharing stations (one job list).
    """
    populations = []
    busy_counts = []
    for st in stations:
        if isinstance(st, PSStation):
            n = len(st.jobs)
            busy = min(n, st.capacity)
        else:
            n = st._in_system()
            busy = st.n_busy
        populations.append(n)
        busy_counts.append(busy)
        tel.metrics.gauge(f"sim.tier.{st.index}.population").set(n)
        tel.metrics.gauge(f"sim.tier.{st.index}.busy_servers").set(busy)
    tel.tracer.event("sim.queue_sample", t=t, population=populations, busy=busy_counts)


def _draw_uniform(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.random(n)


def _draw_from_cumulative(cum: np.ndarray, u: float) -> int:
    """Index drawn from a (sub)probability cumulative array; ``-1``
    when the uniform ``u`` falls in the residual (exit) mass."""
    if u > cum[-1]:
        return -1
    return int(cum.searchsorted(u, side="left"))


def _make_sampler(dist, rng):
    """Bind one (distribution, stream) pair into a zero-arg sampler.

    Families satisfying the block-sampling determinism contract
    (``dist.block_sampling_safe``) are drawn in pregenerated NumPy
    chunks through a :class:`~repro.simulation.rng.BlockCursor` —
    bit-identical values in the same order, at a fraction of the
    per-draw cost.

    HyperExponential — the paper's canonical high-variability demand,
    so the most common *unsafe* family — gets a closure that inlines
    its scalar draw: branch by :func:`bisect.bisect_right` on the
    Python-list CDF (same count-of-entries-<=-u semantics as
    ``ndarray.searchsorted(side="right")``, which itself emulates
    ``Generator.choice`` bit-exactly) followed by
    ``scale * standard_exponential()``. Identical bit-stream
    consumption and values, no method dispatch or NumPy scalar
    overhead per draw. Everything else keeps the generic scalar path.
    """
    if dist.block_sampling_safe:
        return BlockCursor(rng, dist.sample)
    if isinstance(dist, HyperExponential):
        cdf = dist._cdf.tolist()
        scales = dist._scales
        random = rng.random
        std_exp = rng.standard_exponential

        def sampler() -> float:
            return scales[bisect_right(cdf, random())] * std_exp()

        return sampler
    sample = dist.sample

    def generic_sampler() -> float:
        return float(sample(rng))

    return generic_sampler


def _make_dynamic_sampler(base, cell):
    """Service sampler under dynamic speed control.

    ``base`` draws the class's *demand* (work at speed 1); every pull
    divides by the station's current speed, read from the one-element
    ``cell`` that the epoch controller mutates on DVFS changes.
    """

    def sampler() -> float:
        return base() / cell[0]

    return sampler


def _make_arrival_puller(proc, rng):
    """Bind one (arrival process, stream) pair into a zero-arg puller
    returning ``(gap, batch_size)``.

    Plain Poisson processes — the overwhelmingly common case — draw
    their exponential gaps through a block cursor; stateful processes
    (MMPP, batch, renewal, NHPP) keep their scalar ``next_arrival``
    path, whose draw interleaving is not block-safe.
    """
    if type(proc) is PoissonProcess:
        scale = 1.0 / proc.rate

        def draw(r: np.random.Generator, n: int, _scale=scale) -> np.ndarray:
            return r.exponential(_scale, n)

        cursor = BlockCursor(rng, draw)

        def pull() -> tuple[float, int]:
            return cursor(), 1

        return pull

    def pull() -> tuple[float, int]:
        return proc.next_arrival(rng)

    return pull
