"""Split-stream random number management.

Every stochastic component of a simulation run (each class's arrival
process, each station×class service sampler) gets its *own*
:class:`numpy.random.Generator`, spawned from one master
:class:`numpy.random.SeedSequence`. This gives:

* reproducibility — a run is a pure function of its seed;
* common random numbers — changing one tier's speed does not perturb
  the arrival pattern, which slashes the variance of configuration
  comparisons;
* statistically independent replications — replication ``r`` spawns
  from child ``r`` of the master sequence.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelValidationError

__all__ = ["RngStreams"]


class RngStreams:
    """Named independent random streams under one master seed."""

    def __init__(self, seed: int | np.random.SeedSequence = 0):
        if isinstance(seed, np.random.SeedSequence):
            self._seq = seed
        else:
            if not isinstance(seed, (int, np.integer)) or seed < 0:
                raise ModelValidationError(f"seed must be a non-negative integer, got {seed}")
            self._seq = np.random.SeedSequence(int(seed))
        self._streams: dict[str, np.random.Generator] = {}
        # Deterministic per-name children: hash the name into a stable
        # spawn key so the same name always yields the same stream
        # regardless of request order. The parent's own spawn_key is
        # preserved so replication children stay independent.
        self._base_entropy = self._seq.entropy
        self._base_spawn_key = tuple(self._seq.spawn_key)

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use.

        The stream depends only on ``(master seed, name)``, not on the
        order streams are requested in — required for common random
        numbers across configurations that touch different components.
        """
        if name not in self._streams:
            # Stable 64-bit digest of the name mixed into the seed tree.
            digest = np.uint64(0xCBF29CE484222325)
            for ch in name.encode():
                digest = np.uint64((int(digest) ^ ch) * 0x100000001B3 % (1 << 64))
            child = np.random.SeedSequence(
                entropy=self._base_entropy,
                spawn_key=self._base_spawn_key + (int(digest),),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    @staticmethod
    def replication_seeds(master_seed: int, n: int) -> list[np.random.SeedSequence]:
        """``n`` independent seed sequences for replications."""
        if n < 1:
            raise ModelValidationError(f"need at least one replication, got {n}")
        return np.random.SeedSequence(master_seed).spawn(n)
