"""Split-stream random number management.

Every stochastic component of a simulation run (each class's arrival
process, each station×class service sampler) gets its *own*
:class:`numpy.random.Generator`, spawned from one master
:class:`numpy.random.SeedSequence`. This gives:

* reproducibility — a run is a pure function of its seed;
* common random numbers — changing one tier's speed does not perturb
  the arrival pattern, which slashes the variance of configuration
  comparisons;
* statistically independent replications — replication ``r`` spawns
  from child ``r`` of the master sequence.

The **CRN contract** (pinned by ``tests/test_vrt.py``): a stream's
values depend only on ``(master seed, stream name)``, never on the
order streams are requested in or on which other streams exist. The
simulator names streams by *role* — ``arrivals/{class}``,
``service/{tier}/{class}``, ``routing/{class}`` — so two scenarios
that differ in tier speeds, server counts or scheduling discipline
consume **aligned** arrival and service streams: the ``j``-th service
demand drawn for class ``k`` at tier ``i`` comes from the same
underlying variates in both scenarios (speed only rescales it, since
``Distribution.scaled`` multiplies the same draw). This is what makes
:func:`repro.simulation.adaptive.compare_scenarios` paired differences
legitimate and tight.

**Antithetic pairing**: :meth:`RngStreams.replication_seed_pairs`
yields ``(primary, mirror)`` :class:`AntitheticSeed` pairs that share
one bit stream per named stream. Both members draw their uniforms,
exponentials and hyperexponential branches by *inverse transform* from
that shared uniform sequence — the mirror member sees ``1 - U``
wherever the primary sees ``U`` — inducing the negative within-pair
correlation the antithetic estimator in
:mod:`repro.simulation.vrt` exploits. Families without a cheap inverse
CDF (gamma, lognormal, ...) fall back to an *independent* member-
specific stream: the coupling weakens but both members remain exact
draws, so the pair-mean estimator stays unbiased.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelValidationError

__all__ = [
    "RngStreams",
    "AntitheticSeed",
    "CoupledGenerator",
    "BlockCursor",
    "fnv1a64",
]

_U64_MASK = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

# Stream names repeat across every replication of every experiment, so
# the FNV digest of each name is computed once per process, not once
# per replication (satellite fix: the byte loop used to run on every
# first access of a stream).
_DIGEST_CACHE: dict[str, int] = {}


def fnv1a64(name: str) -> int:
    """Cached 64-bit FNV-1a digest of a stream name.

    Pure-integer arithmetic; bit-identical to the original
    ``np.uint64`` byte loop (both reduce modulo 2^64 after each
    multiply).
    """
    digest = _DIGEST_CACHE.get(name)
    if digest is None:
        digest = _FNV_OFFSET
        for ch in name.encode():
            digest = ((digest ^ ch) * _FNV_PRIME) & _U64_MASK
        _DIGEST_CACHE[name] = digest
    return digest


#: Largest double strictly below 1.0; mirrored uniforms are clipped
#: here so inverse-CDF table lookups (``bisect_right`` against a CDF
#: whose last entry is 1.0) can never run off the end.
_ONE_BELOW = float(np.nextafter(1.0, 0.0))
#: Smallest positive double; floor for ``-log`` arguments (caps an
#: exponential variate at ~744.4 instead of producing ``inf``).
_TINY = 5e-324


@dataclass(frozen=True)
class AntitheticSeed:
    """One member of an antithetic replication pair.

    Both members of a pair carry the *same* child
    :class:`~numpy.random.SeedSequence`; ``mirror`` selects whether the
    member consumes the shared uniform stream directly (``False``) or
    reflected as ``1 - U`` (``True``). Feed it to :class:`RngStreams`
    (and hence to ``simulate(..., seed=...)``) in place of a plain
    seed.
    """

    seq: np.random.SeedSequence
    mirror: bool


class CoupledGenerator:
    """Inverse-transform generator view over one shared uniform stream.

    Overrides exactly the families the simulator draws through
    invertible CDFs — ``random``, ``uniform``, ``standard_exponential``
    and ``exponential`` — deriving each variate from a uniform ``U`` of
    the shared stream (the mirror member sees ``1 - U``). Every other
    method is delegated via ``__getattr__`` to an *independent*
    fallback generator whose seed is salted with the member flag, so
    non-invertible families (gamma, lognormal, ...) stay exact and the
    two members are simply uncorrelated there rather than spuriously
    positively correlated through shared bits.

    Not bit-compatible with a plain ``Generator`` under the same seed —
    ziggurat exponentials consume a variable number of bits per draw —
    which is fine: antithetic runs are an opt-in estimator mode, never
    a drop-in replacement for the default engine.
    """

    __slots__ = ("_shared", "_fallback", "_mirror")

    def __init__(self, seq: np.random.SeedSequence, mirror: bool):
        self._shared = np.random.default_rng(seq)
        # Salted sibling seed: same entropy, spawn key extended with a
        # member-specific component no stream-name digest can collide
        # with (stream digests occupy the previous key position).
        fallback = np.random.SeedSequence(
            entropy=seq.entropy,
            spawn_key=tuple(seq.spawn_key) + (2 + int(mirror),),
        )
        self._fallback = np.random.default_rng(fallback)
        self._mirror = mirror

    def random(self, size=None):
        u = self._shared.random(size)
        if not self._mirror:
            return u
        if size is None:
            return min(1.0 - u, _ONE_BELOW)
        return np.minimum(1.0 - u, _ONE_BELOW)

    def uniform(self, low=0.0, high=1.0, size=None):
        return low + (high - low) * self.random(size)

    def standard_exponential(self, size=None):
        # -log(1 - V) with V the member's uniform: the primary consumes
        # U, the mirror 1-U, so the pair shares every branch decision
        # and their exponentials are antithetically coupled.
        w = 1.0 - self.random(size)
        if size is None:
            return -np.log(max(w, _TINY))
        return -np.log(np.maximum(w, _TINY))

    def exponential(self, scale=1.0, size=None):
        return scale * self.standard_exponential(size)

    def __getattr__(self, name):
        return getattr(self._fallback, name)


class RngStreams:
    """Named independent random streams under one master seed."""

    def __init__(self, seed: int | np.random.SeedSequence | AntitheticSeed = 0):
        self._mirror: bool | None = None
        if isinstance(seed, AntitheticSeed):
            self._seq = seed.seq
            self._mirror = seed.mirror
        elif isinstance(seed, np.random.SeedSequence):
            self._seq = seed
        else:
            if not isinstance(seed, (int, np.integer)) or seed < 0:
                raise ModelValidationError(f"seed must be a non-negative integer, got {seed}")
            self._seq = np.random.SeedSequence(int(seed))
        self._streams: dict[str, np.random.Generator | CoupledGenerator] = {}
        # Deterministic per-name children: hash the name into a stable
        # spawn key so the same name always yields the same stream
        # regardless of request order. The parent's own spawn_key is
        # preserved so replication children stay independent.
        self._base_entropy = self._seq.entropy
        self._base_spawn_key = tuple(self._seq.spawn_key)

    def stream(self, name: str) -> np.random.Generator | CoupledGenerator:
        """The generator for ``name``, created on first use.

        The stream depends only on ``(master seed, name)``, not on the
        order streams are requested in — required for common random
        numbers across configurations that touch different components.
        Under an :class:`AntitheticSeed` the stream is a
        :class:`CoupledGenerator` over the pair's shared child
        sequence for this name.
        """
        if name not in self._streams:
            # Stable 64-bit digest of the name mixed into the seed tree.
            child = np.random.SeedSequence(
                entropy=self._base_entropy,
                spawn_key=self._base_spawn_key + (fnv1a64(name),),
            )
            if self._mirror is None:
                self._streams[name] = np.random.default_rng(child)
            else:
                self._streams[name] = CoupledGenerator(child, self._mirror)
        return self._streams[name]

    @staticmethod
    def replication_seeds(master_seed: int, n: int) -> list[np.random.SeedSequence]:
        """``n`` independent seed sequences for replications."""
        if n < 1:
            raise ModelValidationError(f"need at least one replication, got {n}")
        return np.random.SeedSequence(master_seed).spawn(n)

    @staticmethod
    def replication_seed_pairs(
        master_seed: int, n_pairs: int
    ) -> list[tuple[AntitheticSeed, AntitheticSeed]]:
        """``n_pairs`` antithetic ``(primary, mirror)`` seed pairs.

        Pair ``j`` shares child ``j`` of the same spawn sequence
        :meth:`replication_seeds` uses, so the primary members of an
        antithetic run sample the same seed tree as a plain run of
        ``n_pairs`` replications.
        """
        children = RngStreams.replication_seeds(master_seed, n_pairs)
        return [(AntitheticSeed(c, False), AntitheticSeed(c, True)) for c in children]


class BlockCursor:
    """Refill-on-exhaustion cursor over block-pregenerated variates.

    Wraps one named stream's generator together with a vectorized draw
    function ``draw(rng, n) -> ndarray`` and hands the values out one
    scalar at a time. NumPy's ``Generator`` consumes its bit stream in
    exactly the same order for one ``size=n`` block draw as for ``n``
    successive scalar draws of the same family (the block-sampling
    determinism contract, pinned by ``tests/test_block_rng.py``), so a
    cursor-fed simulation is bit-identical to the scalar-draw engine it
    replaced — per-stream draw *order* is unchanged, which is what
    preserves :class:`RngStreams` reproducibility and common random
    numbers across configurations.

    The block is converted to a Python list once per refill so the hot
    path hands out cached ``float`` objects instead of paying NumPy
    scalar boxing on every event.
    """

    __slots__ = ("_rng", "_draw", "_it", "block_size")

    def __init__(
        self,
        rng: np.random.Generator,
        draw: Callable[[np.random.Generator, int], np.ndarray],
        block_size: int = 4096,
    ):
        if block_size < 1:
            raise ModelValidationError(f"block size must be >= 1, got {block_size}")
        self._rng = rng
        self._draw = draw
        self.block_size = block_size
        self._it = iter(())

    def __call__(self) -> float:
        # A list-iterator with a sentinel default is the cheapest
        # "next value or refill" primitive available in pure Python.
        v = next(self._it, None)
        if v is None:
            self._it = iter(self._draw(self._rng, self.block_size).tolist())
            v = next(self._it)
        return v
