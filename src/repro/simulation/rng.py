"""Split-stream random number management.

Every stochastic component of a simulation run (each class's arrival
process, each station×class service sampler) gets its *own*
:class:`numpy.random.Generator`, spawned from one master
:class:`numpy.random.SeedSequence`. This gives:

* reproducibility — a run is a pure function of its seed;
* common random numbers — changing one tier's speed does not perturb
  the arrival pattern, which slashes the variance of configuration
  comparisons;
* statistically independent replications — replication ``r`` spawns
  from child ``r`` of the master sequence.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.exceptions import ModelValidationError

__all__ = ["RngStreams", "BlockCursor", "fnv1a64"]

_U64_MASK = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

# Stream names repeat across every replication of every experiment, so
# the FNV digest of each name is computed once per process, not once
# per replication (satellite fix: the byte loop used to run on every
# first access of a stream).
_DIGEST_CACHE: dict[str, int] = {}


def fnv1a64(name: str) -> int:
    """Cached 64-bit FNV-1a digest of a stream name.

    Pure-integer arithmetic; bit-identical to the original
    ``np.uint64`` byte loop (both reduce modulo 2^64 after each
    multiply).
    """
    digest = _DIGEST_CACHE.get(name)
    if digest is None:
        digest = _FNV_OFFSET
        for ch in name.encode():
            digest = ((digest ^ ch) * _FNV_PRIME) & _U64_MASK
        _DIGEST_CACHE[name] = digest
    return digest


class RngStreams:
    """Named independent random streams under one master seed."""

    def __init__(self, seed: int | np.random.SeedSequence = 0):
        if isinstance(seed, np.random.SeedSequence):
            self._seq = seed
        else:
            if not isinstance(seed, (int, np.integer)) or seed < 0:
                raise ModelValidationError(f"seed must be a non-negative integer, got {seed}")
            self._seq = np.random.SeedSequence(int(seed))
        self._streams: dict[str, np.random.Generator] = {}
        # Deterministic per-name children: hash the name into a stable
        # spawn key so the same name always yields the same stream
        # regardless of request order. The parent's own spawn_key is
        # preserved so replication children stay independent.
        self._base_entropy = self._seq.entropy
        self._base_spawn_key = tuple(self._seq.spawn_key)

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use.

        The stream depends only on ``(master seed, name)``, not on the
        order streams are requested in — required for common random
        numbers across configurations that touch different components.
        """
        if name not in self._streams:
            # Stable 64-bit digest of the name mixed into the seed tree.
            child = np.random.SeedSequence(
                entropy=self._base_entropy,
                spawn_key=self._base_spawn_key + (fnv1a64(name),),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    @staticmethod
    def replication_seeds(master_seed: int, n: int) -> list[np.random.SeedSequence]:
        """``n`` independent seed sequences for replications."""
        if n < 1:
            raise ModelValidationError(f"need at least one replication, got {n}")
        return np.random.SeedSequence(master_seed).spawn(n)


class BlockCursor:
    """Refill-on-exhaustion cursor over block-pregenerated variates.

    Wraps one named stream's generator together with a vectorized draw
    function ``draw(rng, n) -> ndarray`` and hands the values out one
    scalar at a time. NumPy's ``Generator`` consumes its bit stream in
    exactly the same order for one ``size=n`` block draw as for ``n``
    successive scalar draws of the same family (the block-sampling
    determinism contract, pinned by ``tests/test_block_rng.py``), so a
    cursor-fed simulation is bit-identical to the scalar-draw engine it
    replaced — per-stream draw *order* is unchanged, which is what
    preserves :class:`RngStreams` reproducibility and common random
    numbers across configurations.

    The block is converted to a Python list once per refill so the hot
    path hands out cached ``float`` objects instead of paying NumPy
    scalar boxing on every event.
    """

    __slots__ = ("_rng", "_draw", "_it", "block_size")

    def __init__(
        self,
        rng: np.random.Generator,
        draw: Callable[[np.random.Generator, int], np.ndarray],
        block_size: int = 4096,
    ):
        if block_size < 1:
            raise ModelValidationError(f"block size must be >= 1, got {block_size}")
        self._rng = rng
        self._draw = draw
        self.block_size = block_size
        self._it = iter(())

    def __call__(self) -> float:
        # A list-iterator with a sentinel default is the cheapest
        # "next value or refill" primitive available in pure Python.
        v = next(self._it, None)
        if v is None:
            self._it = iter(self._draw(self._rng, self.block_size).tolist())
            v = next(self._it)
        return v
