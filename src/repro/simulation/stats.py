"""Online statistics for simulation output analysis."""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy import stats as sps

from repro.exceptions import ModelValidationError

__all__ = [
    "Welford",
    "confidence_halfwidth",
    "confidence_halfwidths",
    "BusyIntegrator",
    "batch_means_ci",
]


@lru_cache(maxsize=512)
def _t_quantile(n: int, level: float) -> float:
    """Student-t two-sided quantile for ``n`` observations.

    ``sps.t.ppf`` costs ~50µs per call and dominates ``_aggregate``
    for small replication counts; every half-width in a run shares a
    handful of ``(n, level)`` pairs, so the quantile is memoized.
    """
    return float(sps.t.ppf(0.5 + level / 2.0, df=n - 1))


class Welford:
    """Numerically stable online mean/variance (Welford's algorithm)."""

    __slots__ = ("n", "_mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        """Accumulate one observation."""
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)

    def add_batch(self, xs) -> None:
        """Accumulate a buffer of observations.

        Replays the scalar recurrence over local variables (one
        attribute load/store per *batch* instead of per sample), so the
        result is bit-identical to calling :meth:`add` on each element
        in order — Welford's update is sequential and order-sensitive,
        which rules out a closed-form vectorized merge here.
        """
        n = self.n
        mean = self._mean
        m2 = self._m2
        for x in xs:
            n += 1
            delta = x - mean
            mean += delta / n
            m2 += delta * (x - mean)
        self.n = n
        self._mean = mean
        self._m2 = m2

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._mean if self.n else float("nan")

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN for fewer than 2 points)."""
        return self._m2 / (self.n - 1) if self.n > 1 else float("nan")

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return float(np.sqrt(self.variance)) if self.n > 1 else float("nan")

    def merge(self, other: "Welford") -> "Welford":
        """Combine two accumulators (Chan's parallel update)."""
        out = Welford()
        out.n = self.n + other.n
        if out.n == 0:
            return out
        delta = other._mean - self._mean
        out._mean = self._mean + delta * other.n / out.n
        out._m2 = self._m2 + other._m2 + delta**2 * self.n * other.n / out.n
        return out


def confidence_halfwidth(std: float, n: int, level: float = 0.95) -> float:
    """Half-width of a Student-t confidence interval for a mean.

    Returns NaN when fewer than two observations exist.
    """
    if not 0.0 < level < 1.0:
        raise ModelValidationError(f"confidence level must be in (0, 1), got {level}")
    if n < 2 or not np.isfinite(std):
        return float("nan")
    return float(_t_quantile(int(n), float(level)) * std / np.sqrt(n))


def confidence_halfwidths(stds: np.ndarray, n: int, level: float = 0.95) -> np.ndarray:
    """Vectorized :func:`confidence_halfwidth` over an array of stds.

    All entries share one sample count ``n``, so a single memoized
    t-quantile scales the whole array; non-finite stds propagate to
    NaN half-widths exactly as in the scalar version.
    """
    if not 0.0 < level < 1.0:
        raise ModelValidationError(f"confidence level must be in (0, 1), got {level}")
    stds = np.asarray(stds, dtype=float)
    if n < 2:
        return np.full(stds.shape, np.nan)
    out = _t_quantile(int(n), float(level)) * stds / np.sqrt(n)
    return np.where(np.isfinite(stds), out, np.nan)


def batch_means_ci(
    samples: np.ndarray, n_batches: int = 20, level: float = 0.95
) -> tuple[float, float]:
    """Batch-means confidence interval for the mean of an
    autocorrelated series (single long run).

    Consecutive sojourn times from one simulation run are positively
    correlated, so the naive iid CI is too narrow. Batch means — split
    the series into ``n_batches`` contiguous batches and treat the
    batch averages as approximately independent — is the standard
    single-run alternative to independent replications.

    Returns
    -------
    (mean, halfwidth)
        The overall sample mean and the Student-t half-width over the
        batch means (NaN when there are too few samples for two full
        batches).
    """
    x = np.asarray(samples, dtype=float)
    if x.ndim != 1:
        raise ModelValidationError("samples must be a 1-D series")
    if n_batches < 2:
        raise ModelValidationError(f"need at least 2 batches, got {n_batches}")
    mean = float(x.mean()) if x.size else float("nan")
    batch_size = x.size // n_batches
    if batch_size < 1:
        return mean, float("nan")
    trimmed = x[: batch_size * n_batches]
    means = trimmed.reshape(n_batches, batch_size).mean(axis=1)
    std = float(np.std(means, ddof=1))
    return mean, confidence_halfwidth(std, n_batches, level)


class BusyIntegrator:
    """Integrates busy-server time over a measurement window.

    Each ``add(a, b)`` records that one server was busy on ``[a, b]``;
    the interval is clipped to the window ``[t0, t1]`` so warmup work
    never pollutes the estimate. Division by ``capacity × (t1 - t0)``
    gives the utilization; multiplication by a power draw gives energy.
    """

    __slots__ = ("t0", "t1", "total")

    def __init__(self, t0: float, t1: float):
        if t1 <= t0:
            raise ModelValidationError(f"measurement window must have t1 > t0, got [{t0}, {t1}]")
        self.t0 = t0
        self.t1 = t1
        self.total = 0.0

    def add(self, a: float, b: float) -> None:
        """Record a busy interval ``[a, b]`` (clipped to the window)."""
        lo = max(a, self.t0)
        hi = min(b, self.t1)
        if hi > lo:
            self.total += hi - lo

    def add_weighted(self, a: float, b: float, weight: float) -> None:
        """Record ``weight`` servers busy on ``[a, b]`` (clipped).

        Processor-sharing stations use fractional weights: with ``n``
        jobs sharing ``c`` servers, ``min(n, c)`` server-equivalents
        are busy.
        """
        lo = max(a, self.t0)
        hi = min(b, self.t1)
        if hi > lo:
            self.total += (hi - lo) * weight

    @property
    def window(self) -> float:
        """Window length ``t1 - t0``."""
        return self.t1 - self.t0

    def utilization(self, capacity: int) -> float:
        """Mean fraction of ``capacity`` servers busy in the window."""
        return self.total / (capacity * self.window)
