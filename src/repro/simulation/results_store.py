"""Columnar result store for fleet-scale sweeps.

A fleet run produces thousands of small, homogeneous metric rows — one
per (scenario × replication) unit. Pickling a full
:class:`~repro.simulation.simulator.SimulationResult` per unit (the
pre-fleet pattern) costs two orders of magnitude more disk and makes
cross-scenario queries a deserialization crawl. :class:`FleetStore`
replaces that with one directory holding a ``manifest.json`` plus a
sequence of immutable columnar *row groups*:

* **Parquet** row groups when ``pyarrow`` is importable — the format
  the issue asks for, readable by any Arrow-ecosystem tool; or
* **npz** row groups (one compressed NumPy array per column) as the
  zero-dependency fallback, bit-identical in content.

The write side streams: :meth:`FleetStore.append` buffers rows and
:meth:`FleetStore.flush` seals a row group to disk, so a 10k-unit
sweep never holds more than one group of rows in memory and a crash
loses at most the open buffer. The manifest is finalized atomically
(tmp + ``os.replace``) on :meth:`FleetStore.close`.

The read side is the query API the ``obs`` ingester and dashboard use:
:meth:`FleetStore.read` materializes selected columns across all row
groups as NumPy arrays, :meth:`FleetStore.aggregate` folds them into
per-group means/stds without the caller touching files, and
:meth:`FleetStore.scenario_table` joins those aggregates with the
scenario labels recorded in the manifest.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from repro.exceptions import ModelValidationError

__all__ = ["FleetStore", "parquet_available"]

MANIFEST_FILENAME = "manifest.json"
_FORMAT_VERSION = 1

#: Columns stored as 64-bit integers; everything else is float64.
_INT_COLUMNS = frozenset({"unit", "scenario", "replication", "n_events", "n_completed"})


def parquet_available() -> bool:
    """Whether the Parquet backend (``pyarrow``) is importable."""
    try:
        import pyarrow.parquet  # noqa: F401
    except Exception:
        return False
    return True


def _column_dtype(name: str) -> np.dtype:
    return np.dtype(np.int64 if name in _INT_COLUMNS else np.float64)


class FleetStore:
    """Columnar (scenario × replication) result store on disk.

    Use :meth:`create` to open a writer and :meth:`open` to read a
    finished (or partially flushed) store. A store is a directory::

        <path>/
          manifest.json          # columns, row groups, scenario labels
          rows-00000.parquet     # or rows-00000.npz without pyarrow
          rows-00001.parquet
          ...

    All rows share one rectangular schema (fixed per-class / per-station
    column counts), which is what makes the columnar layout possible;
    :meth:`append` rejects rows whose keys deviate from it.
    """

    def __init__(self) -> None:  # use create()/open()
        self.path: Path
        self.columns: tuple[str, ...] = ()
        self.fmt: str = "npz"
        self.meta: dict[str, Any] = {}
        self._groups: list[dict[str, Any]] = []
        # Write buffer: ordered segments of ("rows", list[tuple]) from
        # append() and ("cols", {name: array}) from append_columns(),
        # merged at flush() in arrival order.
        self._segments: list[tuple[str, Any]] = []
        self._buffered_rows = 0
        self._rows_per_group = 4096
        self._writable = False
        self._closed = False

    # -- writer ------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        columns: Iterable[str],
        *,
        meta: Mapping[str, Any] | None = None,
        rows_per_group: int = 4096,
        fmt: str | None = None,
    ) -> "FleetStore":
        """Open a fresh store for writing.

        Parameters
        ----------
        path:
            Directory to create (must not already hold a manifest).
        columns:
            Ordered column names; every appended row must provide
            exactly these keys.
        meta:
            JSON-serializable run metadata (scenario labels, seed,
            horizon, ...) carried in the manifest.
        rows_per_group:
            Buffered rows per sealed row-group file.
        fmt:
            ``"parquet"`` or ``"npz"``; default picks Parquet when
            ``pyarrow`` is importable, npz otherwise.
        """
        store = cls()
        store.path = Path(path)
        store.path.mkdir(parents=True, exist_ok=True)
        if (store.path / MANIFEST_FILENAME).exists():
            raise ModelValidationError(
                f"refusing to overwrite existing fleet store at {store.path}"
            )
        store.columns = tuple(columns)
        if len(set(store.columns)) != len(store.columns):
            raise ModelValidationError(f"duplicate column names: {store.columns}")
        if fmt is None:
            fmt = "parquet" if parquet_available() else "npz"
        if fmt not in ("parquet", "npz"):
            raise ModelValidationError(f"unknown fleet store format {fmt!r}")
        store.fmt = fmt
        store.meta = dict(meta or {})
        store._rows_per_group = max(1, int(rows_per_group))
        store._writable = True
        return store

    def append(self, row: Mapping[str, Any]) -> None:
        """Buffer one row; seals a row group when the buffer fills."""
        self._check_writable()
        if set(row) != set(self.columns):
            missing = set(self.columns) - set(row)
            extra = set(row) - set(self.columns)
            raise ModelValidationError(
                f"row keys do not match store schema "
                f"(missing {sorted(missing)}, unexpected {sorted(extra)})"
            )
        if self._segments and self._segments[-1][0] == "rows":
            self._segments[-1][1].append(tuple(row[c] for c in self.columns))
        else:
            self._segments.append(("rows", [tuple(row[c] for c in self.columns)]))
        self._buffered_rows += 1
        if self._buffered_rows >= self._rows_per_group:
            self.flush()

    def append_rows(self, rows: Iterable[Mapping[str, Any]]) -> None:
        for row in rows:
            self.append(row)

    def append_columns(self, arrays: Mapping[str, np.ndarray]) -> None:
        """Buffer a block of rows already in columnar form.

        ``arrays`` must provide exactly the store's columns, all the
        same length; each is coerced to the schema dtype. This is the
        zero-copy ingest path the fleet runner's shared-memory
        transport feeds — a block goes into the buffer as one segment,
        never exploded into per-row tuples.
        """
        self._check_writable()
        if set(arrays) != set(self.columns):
            missing = set(self.columns) - set(arrays)
            extra = set(arrays) - set(self.columns)
            raise ModelValidationError(
                f"column block does not match store schema "
                f"(missing {sorted(missing)}, unexpected {sorted(extra)})"
            )
        block = {
            name: np.asarray(arrays[name], dtype=_column_dtype(name))
            for name in self.columns
        }
        lengths = {name: arr.shape for name, arr in block.items()}
        sizes = {shape[0] for shape in lengths.values() if len(shape) == 1}
        if any(len(shape) != 1 for shape in lengths.values()) or len(sizes) > 1:
            raise ModelValidationError(
                f"column block arrays must be 1-D and equal-length, got "
                f"{ {n: s for n, s in lengths.items()} }"
            )
        n = next(iter(sizes)) if sizes else 0
        if n == 0:
            return
        self._segments.append(("cols", block))
        self._buffered_rows += n
        if self._buffered_rows >= self._rows_per_group:
            self.flush()

    def flush(self) -> None:
        """Seal the buffered rows into an immutable row-group file."""
        self._check_writable()
        if not self._buffered_rows:
            return
        pieces: dict[str, list[np.ndarray]] = {n: [] for n in self.columns}
        for kind, payload in self._segments:
            if kind == "rows":
                for i, name in enumerate(self.columns):
                    pieces[name].append(
                        np.array([r[i] for r in payload], dtype=_column_dtype(name))
                    )
            else:
                for name in self.columns:
                    pieces[name].append(payload[name])
        arrays = {
            name: parts[0] if len(parts) == 1 else np.concatenate(parts)
            for name, parts in pieces.items()
        }
        index = len(self._groups)
        ext = "parquet" if self.fmt == "parquet" else "npz"
        filename = f"rows-{index:05d}.{ext}"
        target = self.path / filename
        if self.fmt == "parquet":
            import pyarrow as pa
            import pyarrow.parquet as pq

            table = pa.table({name: pa.array(arrays[name]) for name in self.columns})
            pq.write_table(table, target)
        else:
            # np.savez_compressed appends ".npz" unless present; target
            # already carries it.
            with open(target, "wb") as fh:
                np.savez_compressed(fh, **arrays)
        self._groups.append({"file": filename, "n_rows": self._buffered_rows})
        self._segments = []
        self._buffered_rows = 0
        self._write_manifest()

    def close(self, extra_meta: Mapping[str, Any] | None = None) -> None:
        """Flush the open buffer and finalize the manifest."""
        if self._closed or not self._writable:
            self._closed = True
            return
        self.flush()
        if extra_meta:
            self.meta.update(extra_meta)
        self._write_manifest(final=True)
        self._closed = True
        self._writable = False

    def __enter__(self) -> "FleetStore":
        return self

    def __exit__(self, *exc: object) -> None:
        if self._writable:
            self.close()

    def _check_writable(self) -> None:
        if not self._writable or self._closed:
            raise ModelValidationError("fleet store is not open for writing")

    def _write_manifest(self, final: bool = False) -> None:
        manifest = {
            "format_version": _FORMAT_VERSION,
            "kind": "fleet_store",
            "fmt": self.fmt,
            "columns": list(self.columns),
            "row_groups": self._groups,
            "n_rows": int(sum(g["n_rows"] for g in self._groups)),
            "final": bool(final),
            "meta": self.meta,
        }
        tmp = self.path / (MANIFEST_FILENAME + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.path / MANIFEST_FILENAME)

    # -- reader ------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path) -> "FleetStore":
        """Open an existing store for querying."""
        store = cls()
        store.path = Path(path)
        manifest_path = store.path / MANIFEST_FILENAME
        if store.path.is_file():  # accept .../manifest.json directly
            manifest_path = store.path
            store.path = store.path.parent
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"no fleet store manifest at {manifest_path}"
            )
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("kind") != "fleet_store":
            raise ModelValidationError(f"{manifest_path} is not a fleet store manifest")
        store.columns = tuple(manifest["columns"])
        store.fmt = manifest["fmt"]
        store.meta = manifest.get("meta", {})
        store._groups = list(manifest.get("row_groups", []))
        return store

    @property
    def n_rows(self) -> int:
        return int(sum(g["n_rows"] for g in self._groups)) + self._buffered_rows

    @property
    def final(self) -> bool:
        """Whether the writer finalized the store (``close`` ran)."""
        manifest_path = self.path / MANIFEST_FILENAME
        if not manifest_path.exists():
            return False
        return bool(json.loads(manifest_path.read_text()).get("final"))

    def read(self, columns: Iterable[str] | None = None) -> dict[str, np.ndarray]:
        """All rows of the selected ``columns``, concatenated in unit order.

        Returns a mapping ``column -> 1-D array``; with no row groups,
        arrays are empty with the schema dtype.
        """
        names = tuple(columns) if columns is not None else self.columns
        unknown = set(names) - set(self.columns)
        if unknown:
            raise ModelValidationError(
                f"unknown columns {sorted(unknown)}; store has {list(self.columns)}"
            )
        parts: dict[str, list[np.ndarray]] = {n: [] for n in names}
        for group in self._iter_groups(names):
            for n in names:
                parts[n].append(group[n])
        return {
            n: (
                np.concatenate(parts[n])
                if parts[n]
                else np.empty(0, dtype=_column_dtype(n))
            )
            for n in names
        }

    def _iter_groups(self, names: tuple[str, ...]):
        """Yield the selected columns one row group at a time.

        The streaming substrate under :meth:`read` and
        :meth:`aggregate`: only one group's arrays are resident at
        once, so folding a huge store never materializes it.
        """
        for group in self._groups:
            target = self.path / group["file"]
            if self.fmt == "parquet":
                import pyarrow.parquet as pq

                table = pq.read_table(target, columns=list(names))
                yield {n: table.column(n).to_numpy(zero_copy_only=False) for n in names}
            else:
                with np.load(target) as npz:
                    yield {n: npz[n] for n in names}

    def aggregate(
        self,
        by: str = "scenario",
        metrics: Iterable[str] | None = None,
    ) -> dict[int, dict[str, Any]]:
        """Per-group summary: mean/std/min/max of each metric column.

        Streams: row groups are folded one at a time into per-group
        accumulators (count/mean/M2 merged by Chan's parallel update,
        running min/max), so aggregating a store of any size holds at
        most one row group in memory.

        Parameters
        ----------
        by:
            Integer grouping column (default: ``scenario``).
        metrics:
            Metric columns to fold; default: every float column.

        Returns ``{group_value: {"n": count, "<metric>": {mean, std,
        min, max}}}`` with ``std`` the ddof=1 sample deviation (NaN
        below two rows).
        """
        if metrics is None:
            metrics = [c for c in self.columns if c not in _INT_COLUMNS]
        metrics = list(metrics)
        unknown = set([by, *metrics]) - set(self.columns)
        if unknown:
            raise ModelValidationError(
                f"unknown columns {sorted(unknown)}; store has {list(self.columns)}"
            )
        # value -> metric -> [n, mean, m2, min, max]
        acc: dict[int, dict[str, list[float]]] = {}
        counts: dict[int, int] = {}
        for data in self._iter_groups((by, *metrics)):
            keys = data[by]
            for value in np.unique(keys):
                mask = keys == value
                key = int(value)
                counts[key] = counts.get(key, 0) + int(mask.sum())
                stats = acc.setdefault(
                    key,
                    {m: [0, 0.0, 0.0, float("inf"), float("-inf")] for m in metrics},
                )
                for m in metrics:
                    col = data[m][mask]
                    nb = col.size
                    if nb == 0:
                        continue
                    mb = float(col.mean())
                    st = stats[m]
                    na, ma, m2a = st[0], st[1], st[2]
                    n = na + nb
                    delta = mb - ma
                    st[0] = n
                    st[1] = ma + delta * nb / n
                    st[2] = m2a + float(((col - mb) ** 2).sum()) + delta * delta * na * nb / n
                    st[3] = min(st[3], float(col.min()))
                    st[4] = max(st[4], float(col.max()))
        out: dict[int, dict[str, Any]] = {}
        for key in sorted(acc):
            rec: dict[str, Any] = {"n": counts[key]}
            for m in metrics:
                n, mean, m2, lo, hi = acc[key][m]
                rec[m] = {
                    "mean": mean if n else float("nan"),
                    "std": float(np.sqrt(m2 / (n - 1))) if n > 1 else float("nan"),
                    "min": lo,
                    "max": hi,
                }
            out[key] = rec
        return out

    def scenario_table(
        self, metrics: Iterable[str] | None = None
    ) -> list[dict[str, Any]]:
        """Aggregates joined with the manifest's scenario labels.

        One dict per scenario, ordered by scenario id:
        ``{"scenario": id, "label": ..., "params": {...}, "n": ...,
        "<metric>": {mean, std, min, max}, ...}``.
        """
        labels = {
            int(s["scenario"]): s for s in self.meta.get("scenarios", [])
        }
        rows = []
        for sid, rec in sorted(self.aggregate(metrics=metrics).items()):
            info = labels.get(sid, {})
            rows.append(
                {
                    "scenario": sid,
                    "label": info.get("label", str(sid)),
                    "params": info.get("params", {}),
                    **rec,
                }
            )
        return rows
