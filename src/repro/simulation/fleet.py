"""Fleet-scale sweep runner: thousands of (scenario × replication) units.

The replication engine in :mod:`repro.simulation.replications` is
shaped for *one* scenario at a time; a policy-evaluation grid in the
style of Neely's trace-driven studies is thousands of independent
units spanning many scenarios, where static per-scenario chunking
leaves workers idle whenever scenarios have unequal cost (higher load
⇒ more events ⇒ slower units). :func:`run_fleet` shards the flat unit
index space across worker processes through a **shared index queue**
(work stealing: each worker pulls the next unit the moment it goes
idle), runs one :func:`~repro.simulation.simulator.simulate` call per
unit, and streams one compact metric row per unit back to the parent,
which appends it to a columnar :class:`~repro.simulation.results_store.FleetStore`
— no per-run pickles, one queryable artifact per sweep.

Determinism is scheduling-independent: unit ``(s, r)`` always runs
under ``SeedSequence(master_seed, spawn_key=(s, r))``, computed inside
the worker from the indices alone, so the stored rows are bit-identical
for any worker count or steal order (rows are written in completion
order; the ``unit`` column recovers the canonical order).

Progress rides the existing telemetry seam: a throttled ``fleet.unit``
event plus a terminal ``fleet.done`` event flow through the global
tracer, land in ``progress.jsonl`` when the run is under
``--telemetry``, and surface in ``repro status``.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro import obs
from repro.exceptions import ModelValidationError
from repro.simulation.parallel import resolve_n_jobs
from repro.simulation.results_store import FleetStore

__all__ = ["FleetScenario", "FleetSummary", "run_fleet", "fleet_columns"]


@dataclass(frozen=True)
class FleetScenario:
    """One cell of a sweep grid: a cluster + workload + horizon.

    ``params`` carries the grid coordinates (e.g. ``{"load_factor":
    0.9}``) into the store manifest so queries can join metric rows
    back to what was swept.
    """

    label: str
    cluster: Any
    workload: Any
    horizon: float
    warmup_fraction: float = 0.1
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class FleetSummary:
    """What :func:`run_fleet` returns: the sweep's vital signs."""

    store_path: str
    n_scenarios: int
    n_replications: int
    n_units: int
    n_done: int
    n_failed: int
    n_workers: int
    wall_time_s: float
    units_per_sec: float


def fleet_columns(n_classes: int) -> tuple[str, ...]:
    """The store schema for a fleet over ``n_classes``-class scenarios."""
    return (
        "unit",
        "scenario",
        "replication",
        "n_events",
        "n_completed",
        "mean_delay",
        *(f"delay_c{k}" for k in range(n_classes)),
        "average_power",
        "energy_per_request",
        "wall_s",
    )


def _unit_seed(master_seed: int, scenario: int, replication: int) -> np.random.SeedSequence:
    """The deterministic per-unit seed, computable from indices alone."""
    return np.random.SeedSequence(master_seed, spawn_key=(scenario, replication))


def _run_unit(
    scenarios: list[FleetScenario],
    master_seed: int,
    unit: int,
    n_replications: int,
) -> dict[str, Any]:
    """Simulate one unit and distill it into a store row."""
    from repro.simulation.simulator import simulate

    sid, rep = divmod(unit, n_replications)
    sc = scenarios[sid]
    start = time.perf_counter()
    res = simulate(
        sc.cluster,
        sc.workload,
        horizon=sc.horizon,
        warmup_fraction=sc.warmup_fraction,
        seed=_unit_seed(master_seed, sid, rep),
    )
    wall = time.perf_counter() - start
    row: dict[str, Any] = {
        "unit": unit,
        "scenario": sid,
        "replication": rep,
        "n_events": int(res.meta.get("n_events", 0)),
        "n_completed": int(res.n_completed.sum()),
        "mean_delay": float(res.mean_delay),
        "average_power": float(res.average_power),
        "energy_per_request": float(res.energy_per_request),
        "wall_s": wall,
    }
    for k in range(len(res.class_names)):
        row[f"delay_c{k}"] = float(res.delays[k])
    return row


def _fleet_worker(
    task_queue: Any,
    result_queue: Any,
    scenarios: list[FleetScenario],
    master_seed: int,
    n_replications: int,
    backend: str | None,
) -> None:
    """Worker loop: steal unit indices until the queue hands a sentinel.

    Runs in a child process; pulls from the shared queue so fast
    workers automatically absorb slow scenarios' units. Warms the
    compiled kernel once per process (build/load is cached) before the
    first unit so its one-time cost never lands inside a unit timing.
    """
    if backend is not None:
        os.environ["REPRO_SIM_BACKEND"] = backend
    if os.environ.get("REPRO_SIM_BACKEND", "python") != "python":
        from repro.simulation.compiled import warm_kernel

        warm_kernel()
    while True:
        unit = task_queue.get()
        if unit is None:
            return
        try:
            row = _run_unit(scenarios, master_seed, unit, n_replications)
        except Exception as exc:  # report, keep stealing
            result_queue.put(("error", unit, f"{type(exc).__name__}: {exc}"))
        else:
            result_queue.put(("row", unit, row))


def run_fleet(
    scenarios: list[FleetScenario],
    n_replications: int,
    out: str | os.PathLike,
    *,
    seed: int = 0,
    n_jobs: int | None = None,
    backend: str | None = None,
    rows_per_group: int = 4096,
    store_format: str | None = None,
    progress: Callable[[int, int, int], None] | None = None,
    progress_every: float = 0.5,
) -> FleetSummary:
    """Run a (scenario × replication) sweep into one columnar store.

    Parameters
    ----------
    scenarios:
        The sweep grid. All scenarios must share one class structure
        (same class names) — the store schema is rectangular.
    n_replications:
        Independent replications per scenario; unit ``u`` maps to
        ``(scenario, replication) = divmod(u, n_replications)``.
    out:
        Directory the :class:`FleetStore` is created in (must not
        already hold a store).
    seed:
        Master seed; unit seeds are ``SeedSequence(seed,
        spawn_key=(scenario, replication))`` regardless of scheduling.
    n_jobs:
        Worker processes (``None``/``1`` serial, ``-1`` all cores),
        same convention as the replication engine.
    backend:
        Simulation backend for the workers (``python`` / ``compiled``
        / ``auto``); default inherits ``REPRO_SIM_BACKEND``.
    progress:
        Optional ``progress(n_done, n_failed, n_units)`` callback,
        invoked at most every ``progress_every`` seconds plus once at
        the end.

    Returns a :class:`FleetSummary`; the rows live in the store at
    ``out``.
    """
    if not scenarios:
        raise ModelValidationError("run_fleet needs at least one scenario")
    if n_replications < 1:
        raise ModelValidationError(
            f"need at least one replication per scenario, got {n_replications}"
        )
    class_names = tuple(scenarios[0].workload.names)
    for sc in scenarios[1:]:
        if tuple(sc.workload.names) != class_names:
            raise ModelValidationError(
                "fleet scenarios must share one class structure "
                f"({sc.label!r} has {tuple(sc.workload.names)}, "
                f"expected {class_names})"
            )
    n_units = len(scenarios) * n_replications
    n_workers = resolve_n_jobs(n_jobs)
    columns = fleet_columns(len(class_names))
    store = FleetStore.create(
        out,
        columns,
        meta={
            "seed": seed,
            "n_replications": n_replications,
            "class_names": list(class_names),
            "backend": backend or os.environ.get("REPRO_SIM_BACKEND", "python"),
            "scenarios": [
                {
                    "scenario": i,
                    "label": sc.label,
                    "horizon": sc.horizon,
                    "warmup_fraction": sc.warmup_fraction,
                    "params": dict(sc.params),
                }
                for i, sc in enumerate(scenarios)
            ],
        },
        rows_per_group=rows_per_group,
        fmt=store_format,
    )

    start = time.perf_counter()
    n_done = 0
    n_failed = 0
    failures: list[tuple[int, str]] = []
    last_report = 0.0

    def report(force: bool = False) -> None:
        nonlocal last_report
        now = time.perf_counter()
        if not force and now - last_report < progress_every:
            return
        last_report = now
        obs.event(
            "fleet.unit",
            n_done=n_done,
            n_failed=n_failed,
            n_total=n_units,
            units_per_sec=n_done / max(now - start, 1e-9),
        )
        if progress is not None:
            progress(n_done, n_failed, n_units)

    with obs.span("fleet.run", n_units=n_units, n_workers=n_workers):
        try:
            if n_workers == 1:
                prev_backend = os.environ.get("REPRO_SIM_BACKEND")
                if backend is not None:
                    os.environ["REPRO_SIM_BACKEND"] = backend
                try:
                    for unit in range(n_units):
                        try:
                            row = _run_unit(scenarios, seed, unit, n_replications)
                        except Exception as exc:
                            n_failed += 1
                            failures.append((unit, f"{type(exc).__name__}: {exc}"))
                        else:
                            store.append(row)
                            n_done += 1
                        report()
                finally:
                    if backend is not None:
                        if prev_backend is None:
                            os.environ.pop("REPRO_SIM_BACKEND", None)
                        else:
                            os.environ["REPRO_SIM_BACKEND"] = prev_backend
            else:
                n_done, n_failed, failures = _run_fleet_pool(
                    scenarios,
                    seed,
                    n_replications,
                    n_units,
                    n_workers,
                    backend,
                    store,
                    report,
                )
        finally:
            wall = time.perf_counter() - start
            store.close(
                extra_meta={
                    "n_done": n_done,
                    "n_failed": n_failed,
                    "failures": failures[:32],
                    "n_workers": n_workers,
                    "wall_time_s": wall,
                }
            )
    report(force=True)
    obs.event(
        "fleet.done",
        n_done=n_done,
        n_failed=n_failed,
        n_total=n_units,
        wall_s=wall,
    )
    obs.counter("fleet.units").add(n_done)
    return FleetSummary(
        store_path=str(store.path),
        n_scenarios=len(scenarios),
        n_replications=n_replications,
        n_units=n_units,
        n_done=n_done,
        n_failed=n_failed,
        n_workers=n_workers,
        wall_time_s=wall,
        units_per_sec=n_done / max(wall, 1e-9),
    )


def _run_fleet_pool(
    scenarios: list[FleetScenario],
    seed: int,
    n_replications: int,
    n_units: int,
    n_workers: int,
    backend: str | None,
    store: FleetStore,
    report: Callable[..., None],
) -> tuple[int, int, list[tuple[int, str]]]:
    """The multi-process path: shared index queue + result stream.

    The task queue is loaded with every unit index up front (small:
    one int each) followed by one ``None`` sentinel per worker; the
    parent then drains the result queue, appending rows as they
    arrive. A worker that dies mid-unit is detected by liveness checks
    on the drain loop so the parent cannot hang on a lost unit.
    """
    import multiprocessing as mp

    ctx = mp.get_context()
    task_queue: Any = ctx.Queue()
    result_queue: Any = ctx.Queue()
    for unit in range(n_units):
        task_queue.put(unit)
    for _ in range(n_workers):
        task_queue.put(None)
    workers = [
        ctx.Process(
            target=_fleet_worker,
            args=(task_queue, result_queue, scenarios, seed, n_replications, backend),
            daemon=True,
        )
        for _ in range(n_workers)
    ]
    for w in workers:
        w.start()

    n_done = 0
    n_failed = 0
    failures: list[tuple[int, str]] = []
    received = 0
    try:
        while received < n_units:
            try:
                kind, unit, payload = result_queue.get(timeout=1.0)
            except queue_mod.Empty:
                if not any(w.is_alive() for w in workers):
                    # All workers gone with units outstanding: crashed
                    # mid-unit (OOM/kill). Report what's missing.
                    missing = n_units - received
                    failures.append((-1, f"{missing} unit(s) lost to dead workers"))
                    n_failed += missing
                    break
                continue
            received += 1
            if kind == "row":
                store.append(payload)
                n_done += 1
            else:
                n_failed += 1
                failures.append((unit, payload))
            report()
    finally:
        for w in workers:
            w.join(timeout=5.0)
        for w in workers:
            if w.is_alive():
                w.terminate()
    return n_done, n_failed, failures
