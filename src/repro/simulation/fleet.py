"""Fleet-scale sweep runner: thousands of (scenario × replication) units.

The replication engine in :mod:`repro.simulation.replications` is
shaped for *one* scenario at a time; a policy-evaluation grid in the
style of Neely's trace-driven studies is thousands of independent
units spanning many scenarios, where static per-scenario chunking
leaves workers idle whenever scenarios have unequal cost (higher load
⇒ more events ⇒ slower units). :func:`run_fleet` shards the flat unit
index space across worker processes through a **shared chunk queue**
(work stealing: each worker pulls the next chunk the moment it goes
idle), runs each chunk's replications through one batched
:func:`~repro.simulation.compiled.maybe_simulate_fleet_batch` kernel
call (falling back to unit-at-a-time
:func:`~repro.simulation.simulator.simulate` when the batch path does
not apply), and writes the result rows columnar into a
:class:`~repro.simulation.results_store.FleetStore` — no per-run
pickles, one queryable artifact per sweep.

Three layers keep the path batch-native end to end:

* **Chunked dispatch** — work units travel as ``(scenario, rep0,
  count)`` chunks (never crossing a scenario boundary), auto-sized
  from the grid shape and worker count or pinned with ``batch_size``;
  the simulation backend is resolved once in :func:`run_fleet` and
  threaded explicitly to every worker instead of re-read from the
  environment per unit.
* **Batched kernel dispatch** — a chunk of B replications of one
  scenario is a single C call: kernel state, station arrays and RNG
  arenas are allocated once and reset between replications, with the
  per-unit ``SeedSequence(seed, spawn_key=(scenario, replication))``
  streams preserved so every row is bit-identical to the
  unit-at-a-time path for any chunk size, worker count or steal order.
* **Zero-copy result transport** — pool workers write finished rows
  straight into one preallocated ``multiprocessing.shared_memory``
  segment (one dtype-correct column block per store column, indexed
  by absolute unit id); the result queue carries only small control
  messages (chunk handoff + failures), drained in batches, and the
  parent slices row groups out of the shared block without pickling a
  single row dict.

Determinism is scheduling-independent: unit ``(s, r)`` always runs
under ``SeedSequence(master_seed, spawn_key=(s, r))``, computed inside
the worker from the indices alone, so the stored rows are bit-identical
for any worker count, chunk size or steal order (rows are written in
completion order; the ``unit`` column recovers the canonical order).

Progress rides the existing telemetry seam: a throttled ``fleet.unit``
event plus a terminal ``fleet.done`` event flow through the global
tracer, land in ``progress.jsonl`` when the run is under
``--telemetry``, and surface in ``repro status``.
"""

from __future__ import annotations

import math
import os
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro import obs
from repro.exceptions import ModelValidationError
from repro.simulation.compiled import resolve_backend
from repro.simulation.parallel import resolve_n_jobs
from repro.simulation.results_store import FleetStore, _column_dtype

__all__ = ["FleetScenario", "FleetSummary", "run_fleet", "fleet_columns"]

#: Largest replication chunk a single kernel call runs; beyond this the
#: per-call amortization is flat while failure blast radius and latency
#: to first result keep growing.
_MAX_BATCH = 64


@dataclass(frozen=True)
class FleetScenario:
    """One cell of a sweep grid: a cluster + workload + horizon.

    ``params`` carries the grid coordinates (e.g. ``{"load_factor":
    0.9}``) into the store manifest so queries can join metric rows
    back to what was swept.
    """

    label: str
    cluster: Any
    workload: Any
    horizon: float
    warmup_fraction: float = 0.1
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class FleetSummary:
    """What :func:`run_fleet` returns: the sweep's vital signs."""

    store_path: str
    n_scenarios: int
    n_replications: int
    n_units: int
    n_done: int
    n_failed: int
    n_workers: int
    wall_time_s: float
    units_per_sec: float


def fleet_columns(n_classes: int) -> tuple[str, ...]:
    """The store schema for a fleet over ``n_classes``-class scenarios."""
    return (
        "unit",
        "scenario",
        "replication",
        "n_events",
        "n_completed",
        "mean_delay",
        *(f"delay_c{k}" for k in range(n_classes)),
        "average_power",
        "energy_per_request",
        "wall_s",
    )


def _unit_seed(master_seed: int, scenario: int, replication: int) -> np.random.SeedSequence:
    """The deterministic per-unit seed, computable from indices alone."""
    return np.random.SeedSequence(master_seed, spawn_key=(scenario, replication))


def _resolve_batch_size(
    batch_size: int | str, n_replications: int, n_units: int, n_workers: int
) -> int:
    """Pin or auto-size the replication chunk.

    Auto sizing balances two pressures: big chunks amortize the
    per-call kernel setup (the point of batching), while the pool needs
    enough chunks in flight that work stealing can still level uneven
    scenario costs — so the parallel path caps chunks at roughly eight
    per worker across the whole grid.
    """
    if batch_size == "auto":
        if n_workers == 1:
            return max(1, min(n_replications, _MAX_BATCH))
        return max(1, min(n_replications, _MAX_BATCH, math.ceil(n_units / (n_workers * 8))))
    if not isinstance(batch_size, int) or isinstance(batch_size, bool) or batch_size < 1:
        raise ModelValidationError(
            f"batch_size must be a positive integer or 'auto', got {batch_size!r}"
        )
    return min(batch_size, n_replications)


def _chunk_plan(
    n_scenarios: int, n_replications: int, batch: int
) -> list[tuple[int, int, int]]:
    """Split the unit grid into ``(scenario, rep0, count)`` chunks.

    Chunks never cross a scenario boundary (a batched kernel call runs
    one scenario), so the last chunk of each scenario may be short.
    """
    chunks: list[tuple[int, int, int]] = []
    for sid in range(n_scenarios):
        rep0 = 0
        while rep0 < n_replications:
            count = min(batch, n_replications - rep0)
            chunks.append((sid, rep0, count))
            rep0 += count
    return chunks


def _run_unit(
    scenarios: list[FleetScenario],
    master_seed: int,
    unit: int,
    n_replications: int,
) -> dict[str, Any]:
    """Simulate one unit and distill it into a store row."""
    from repro.simulation.simulator import simulate

    sid, rep = divmod(unit, n_replications)
    sc = scenarios[sid]
    start = time.perf_counter()
    res = simulate(
        sc.cluster,
        sc.workload,
        horizon=sc.horizon,
        warmup_fraction=sc.warmup_fraction,
        seed=_unit_seed(master_seed, sid, rep),
    )
    wall = time.perf_counter() - start
    row: dict[str, Any] = {
        "unit": unit,
        "scenario": sid,
        "replication": rep,
        "n_events": int(res.meta.get("n_events", 0)),
        "n_completed": int(res.n_completed.sum()),
        "mean_delay": float(res.mean_delay),
        "average_power": float(res.average_power),
        "energy_per_request": float(res.energy_per_request),
        "wall_s": wall,
    }
    for k in range(len(res.class_names)):
        row[f"delay_c{k}"] = float(res.delays[k])
    return row


def _run_chunk(
    scenarios: list[FleetScenario],
    master_seed: int,
    n_replications: int,
    sid: int,
    rep0: int,
    count: int,
    backend: str,
) -> tuple[list[int], dict[str, np.ndarray], list[tuple[int, str]]]:
    """Run one chunk of replications of one scenario.

    Tries the batched compiled path first (one kernel call for the
    whole chunk); falls back to unit-at-a-time :func:`simulate` when
    batching does not apply (python backend, single-unit chunk, kernel
    unavailable, or telemetry queue sampling on). Either way the rows
    are bit-identical.

    Returns ``(ok_units, columns, failures)``: the absolute unit ids
    that succeeded, their rows as schema-dtyped column arrays (row i =
    ``ok_units[i]``), and ``(unit, "ExcType: message")`` failure pairs.
    """
    sc = scenarios[sid]
    n_classes = len(tuple(sc.workload.names))
    base_unit = sid * n_replications + rep0
    rows: list[dict[str, Any] | None] = [None] * count
    failures: list[tuple[int, str]] = []
    batched = False
    if backend != "python" and count > 1:
        from repro.simulation.compiled import maybe_simulate_fleet_batch

        seeds = [_unit_seed(master_seed, sid, rep0 + j) for j in range(count)]
        start = time.perf_counter()
        try:
            res = maybe_simulate_fleet_batch(
                backend, sc.cluster, sc.workload, sc.horizon, sc.warmup_fraction, seeds
            )
        except Exception as exc:
            # Scenario-level rejection (validation, instability): every
            # unit of the chunk fails with the message the unit path
            # would have raised per unit.
            msg = f"{type(exc).__name__}: {exc}"
            return [], {}, [(base_unit + j, msg) for j in range(count)]
        if res is not None:
            brows, bfailures = res
            wall = (time.perf_counter() - start) / count
            for j, metrics in enumerate(brows):
                if metrics is None:
                    continue
                rows[j] = {
                    "unit": base_unit + j,
                    "scenario": sid,
                    "replication": rep0 + j,
                    "wall_s": wall,
                    **metrics,
                }
            failures = [(base_unit + j, msg) for j, msg in bfailures]
            batched = True
    if not batched:
        for j in range(count):
            unit = base_unit + j
            try:
                rows[j] = _run_unit(scenarios, master_seed, unit, n_replications)
            except Exception as exc:
                failures.append((unit, f"{type(exc).__name__}: {exc}"))
    ok = [j for j in range(count) if rows[j] is not None]
    columns = fleet_columns(n_classes)
    cols = {
        c: np.array([rows[j][c] for j in ok], dtype=_column_dtype(c)) for c in columns
    }
    return [base_unit + j for j in ok], cols, failures


def _shm_views(
    buf: memoryview, columns: tuple[str, ...], n_units: int
) -> dict[str, np.ndarray]:
    """Per-column views into the shared result block.

    Column ``j`` owns bytes ``[j*n_units*8, (j+1)*n_units*8)`` — every
    store dtype is 8 bytes wide, so one flat segment of
    ``n_columns * n_units * 8`` bytes holds the whole sweep, indexed by
    absolute unit id.
    """
    return {
        c: np.ndarray(
            (n_units,), dtype=_column_dtype(c), buffer=buf, offset=j * n_units * 8
        )
        for j, c in enumerate(columns)
    }


def _fleet_worker(
    task_queue: Any,
    result_queue: Any,
    scenarios: list[FleetScenario],
    master_seed: int,
    n_replications: int,
    backend: str,
    shm_name: str,
    n_units: int,
) -> None:
    """Worker loop: steal chunks until the queue hands a sentinel.

    Runs in a child process; pulls from the shared queue so fast
    workers automatically absorb slow scenarios' chunks. The backend
    is pinned once (resolved by the parent — never re-read from the
    environment per unit) and the compiled kernel is warmed once per
    process before the first chunk so its one-time cost never lands
    inside a unit timing. Finished rows go straight into the shared
    result block at their absolute unit index; only the control tuple
    ``("chunk", sid, rep0, count, failures)`` rides the queue.
    """
    from multiprocessing import shared_memory

    os.environ["REPRO_SIM_BACKEND"] = backend
    if backend != "python":
        from repro.simulation.compiled import warm_kernel

        warm_kernel()
    columns = fleet_columns(len(tuple(scenarios[0].workload.names)))
    shm = shared_memory.SharedMemory(name=shm_name)
    views = _shm_views(shm.buf, columns, n_units)
    try:
        while True:
            chunk = task_queue.get()
            if chunk is None:
                return
            sid, rep0, count = chunk
            try:
                ok_units, cols, failures = _run_chunk(
                    scenarios, master_seed, n_replications, sid, rep0, count, backend
                )
            except Exception as exc:  # defensive: the whole chunk is lost
                ok_units, cols = [], {}
                msg = f"{type(exc).__name__}: {exc}"
                base = sid * n_replications + rep0
                failures = [(base + j, msg) for j in range(count)]
            if ok_units:
                idx = np.asarray(ok_units, dtype=np.intp)
                for c in columns:
                    views[c][idx] = cols[c]
            result_queue.put(("chunk", sid, rep0, count, failures))
    finally:
        del views
        shm.close()


def run_fleet(
    scenarios: list[FleetScenario],
    n_replications: int,
    out: str | os.PathLike,
    *,
    seed: int = 0,
    n_jobs: int | None = None,
    backend: str | None = None,
    batch_size: int | str = "auto",
    rows_per_group: int = 4096,
    store_format: str | None = None,
    progress: Callable[[int, int, int], None] | None = None,
    progress_every: float = 0.5,
) -> FleetSummary:
    """Run a (scenario × replication) sweep into one columnar store.

    Parameters
    ----------
    scenarios:
        The sweep grid. All scenarios must share one class structure
        (same class names) — the store schema is rectangular.
    n_replications:
        Independent replications per scenario; unit ``u`` maps to
        ``(scenario, replication) = divmod(u, n_replications)``.
    out:
        Directory the :class:`FleetStore` is created in (must not
        already hold a store).
    seed:
        Master seed; unit seeds are ``SeedSequence(seed,
        spawn_key=(scenario, replication))`` regardless of scheduling.
    n_jobs:
        Worker processes (``None``/``1`` serial, ``-1`` all cores),
        same convention as the replication engine.
    backend:
        Simulation backend for the workers (``python`` / ``compiled``
        / ``auto``); default inherits ``REPRO_SIM_BACKEND``. Resolved
        once here and threaded explicitly.
    batch_size:
        Replications per kernel call / work-stealing chunk (chunks
        never cross a scenario boundary). ``"auto"`` (default) sizes
        from the grid shape and worker count; any positive int pins
        it. Rows are bit-identical for every value.
    progress:
        Optional ``progress(n_done, n_failed, n_units)`` callback,
        invoked at most every ``progress_every`` seconds plus once at
        the end.

    Returns a :class:`FleetSummary`; the rows live in the store at
    ``out``.
    """
    if not scenarios:
        raise ModelValidationError("run_fleet needs at least one scenario")
    if n_replications < 1:
        raise ModelValidationError(
            f"need at least one replication per scenario, got {n_replications}"
        )
    class_names = tuple(scenarios[0].workload.names)
    for sc in scenarios[1:]:
        if tuple(sc.workload.names) != class_names:
            raise ModelValidationError(
                "fleet scenarios must share one class structure "
                f"({sc.label!r} has {tuple(sc.workload.names)}, "
                f"expected {class_names})"
            )
    resolved_backend = resolve_backend(
        backend if backend is not None else os.environ.get("REPRO_SIM_BACKEND")
    )
    n_units = len(scenarios) * n_replications
    n_workers = resolve_n_jobs(n_jobs)
    batch = _resolve_batch_size(batch_size, n_replications, n_units, n_workers)
    chunks = _chunk_plan(len(scenarios), n_replications, batch)
    columns = fleet_columns(len(class_names))
    store = FleetStore.create(
        out,
        columns,
        meta={
            "seed": seed,
            "n_replications": n_replications,
            "class_names": list(class_names),
            "backend": resolved_backend,
            "batch_size": batch,
            "transport": "inline" if n_workers == 1 else "shared_memory",
            "scenarios": [
                {
                    "scenario": i,
                    "label": sc.label,
                    "horizon": sc.horizon,
                    "warmup_fraction": sc.warmup_fraction,
                    "params": dict(sc.params),
                }
                for i, sc in enumerate(scenarios)
            ],
        },
        rows_per_group=rows_per_group,
        fmt=store_format,
    )

    start = time.perf_counter()
    n_done = 0
    n_failed = 0
    failures: list[tuple[int, str]] = []
    last_report = 0.0

    def report(force: bool = False) -> None:
        nonlocal last_report
        now = time.perf_counter()
        if not force and now - last_report < progress_every:
            return
        last_report = now
        obs.event(
            "fleet.unit",
            n_done=n_done,
            n_failed=n_failed,
            n_total=n_units,
            units_per_sec=n_done / max(now - start, 1e-9),
        )
        if progress is not None:
            progress(n_done, n_failed, n_units)

    with obs.span(
        "fleet.run", n_units=n_units, n_workers=n_workers, batch_size=batch
    ):
        try:
            if n_workers == 1:
                prev_backend = os.environ.get("REPRO_SIM_BACKEND")
                os.environ["REPRO_SIM_BACKEND"] = resolved_backend
                try:
                    for sid, rep0, count in chunks:
                        ok_units, cols, chunk_failures = _run_chunk(
                            scenarios,
                            seed,
                            n_replications,
                            sid,
                            rep0,
                            count,
                            resolved_backend,
                        )
                        if ok_units:
                            store.append_columns(cols)
                            n_done += len(ok_units)
                        n_failed += len(chunk_failures)
                        failures.extend(chunk_failures)
                        report()
                finally:
                    if prev_backend is None:
                        os.environ.pop("REPRO_SIM_BACKEND", None)
                    else:
                        os.environ["REPRO_SIM_BACKEND"] = prev_backend
            else:
                n_done, n_failed, failures = _run_fleet_pool(
                    scenarios,
                    seed,
                    n_replications,
                    n_units,
                    n_workers,
                    resolved_backend,
                    chunks,
                    store,
                    report,
                )
        finally:
            wall = time.perf_counter() - start
            store.close(
                extra_meta={
                    "n_done": n_done,
                    "n_failed": n_failed,
                    "failures": failures[:32],
                    "n_workers": n_workers,
                    "wall_time_s": wall,
                }
            )
    report(force=True)
    obs.event(
        "fleet.done",
        n_done=n_done,
        n_failed=n_failed,
        n_total=n_units,
        wall_s=wall,
    )
    obs.counter("fleet.units").add(n_done)
    return FleetSummary(
        store_path=str(store.path),
        n_scenarios=len(scenarios),
        n_replications=n_replications,
        n_units=n_units,
        n_done=n_done,
        n_failed=n_failed,
        n_workers=n_workers,
        wall_time_s=wall,
        units_per_sec=n_done / max(wall, 1e-9),
    )


def _run_fleet_pool(
    scenarios: list[FleetScenario],
    seed: int,
    n_replications: int,
    n_units: int,
    n_workers: int,
    backend: str,
    chunks: list[tuple[int, int, int]],
    store: FleetStore,
    report: Callable[..., None],
) -> tuple[int, int, list[tuple[int, str]]]:
    """The multi-process path: shared chunk queue + shared result block.

    The task queue is loaded with every chunk up front (small: three
    ints each) followed by one ``None`` sentinel per worker. Result
    rows never ride the queue — workers write them into one
    ``SharedMemory`` segment holding a dtype-correct block per store
    column, indexed by absolute unit id; the queue only carries
    ``("chunk", sid, rep0, count, failures)`` control tuples, which the
    parent drains in batches (one blocking ``get`` then ``get_nowait``
    until empty) and turns into zero-copy column slices appended to the
    store. A worker that dies mid-chunk is detected by liveness checks
    on the drain loop so the parent cannot hang on a lost chunk.
    """
    import multiprocessing as mp
    from multiprocessing import shared_memory

    ctx = mp.get_context()
    columns = store.columns
    shm = shared_memory.SharedMemory(
        create=True, size=max(len(columns) * n_units * 8, 8)
    )
    task_queue: Any = ctx.Queue()
    result_queue: Any = ctx.Queue()
    for chunk in chunks:
        task_queue.put(chunk)
    for _ in range(n_workers):
        task_queue.put(None)
    workers = [
        ctx.Process(
            target=_fleet_worker,
            args=(
                task_queue,
                result_queue,
                scenarios,
                seed,
                n_replications,
                backend,
                shm.name,
                n_units,
            ),
            daemon=True,
        )
        for _ in range(n_workers)
    ]
    for w in workers:
        w.start()

    n_done = 0
    n_failed = 0
    failures: list[tuple[int, str]] = []
    received_units = 0
    views = _shm_views(shm.buf, columns, n_units)
    try:
        while received_units < n_units:
            try:
                messages = [result_queue.get(timeout=1.0)]
            except queue_mod.Empty:
                if not any(w.is_alive() for w in workers):
                    # All workers gone with chunks outstanding: crashed
                    # mid-chunk (OOM/kill). Report what's missing.
                    missing = n_units - received_units
                    failures.append((-1, f"{missing} unit(s) lost to dead workers"))
                    n_failed += missing
                    break
                continue
            while True:  # batch-drain whatever else already arrived
                try:
                    messages.append(result_queue.get_nowait())
                except queue_mod.Empty:
                    break
            for _kind, sid, rep0, count, chunk_failures in messages:
                received_units += count
                base = sid * n_replications + rep0
                failed_units = {u for u, _ in chunk_failures}
                ok = [base + j for j in range(count) if base + j not in failed_units]
                if ok:
                    idx = np.asarray(ok, dtype=np.intp)
                    store.append_columns({c: views[c][idx].copy() for c in columns})
                    n_done += len(ok)
                n_failed += len(chunk_failures)
                failures.extend(chunk_failures)
            report()
    finally:
        for w in workers:
            w.join(timeout=5.0)
        for w in workers:
            if w.is_alive():
                w.terminate()
        del views
        shm.close()
        shm.unlink()
    return n_done, n_failed, failures
