"""A simulated multi-server station with FCFS or priority scheduling.

The station owns its waiting queues and server slots; the engine owns
the clock and the event heap. Preemption is implemented with *epoch
counters*: every (server, job) start schedules a completion event
stamped with the server's current epoch, and preempting the server
bumps the epoch so the stale completion is ignored when popped —
O(1) cancellation without touching the heap.

Scheduling semantics:

* ``fcfs``        — single queue, arrival order across classes.
* ``priority_np`` — one queue per class; a freed server takes the head
  of the highest non-empty class; jobs in service are never disturbed.
* ``priority_pr`` — as above, plus an arrival that finds all servers
  busy preempts the lowest-priority running job if strictly lower than
  itself; the victim resumes later with its remaining service time
  (preemptive-resume).
* ``loss``        — no waiting room (M/G/c/c): an arrival finding every
  server busy is rejected outright (``arrive`` returns ``False``) and
  leaves the system — blocked calls cleared.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.exceptions import SimulationError
from repro.simulation.job import Job
from repro.simulation.stats import BusyIntegrator

__all__ = ["SimStation"]

# Engine callback signature: schedule(time, station_index, server_index, epoch)
ScheduleFn = Callable[[float, int, int, int], None]


class _Server:
    __slots__ = ("job", "epoch", "busy_since", "completion_time")

    def __init__(self) -> None:
        self.job: Job | None = None
        self.epoch = 0
        self.busy_since = 0.0
        self.completion_time = 0.0


class SimStation:
    """Simulation state of one tier.

    Parameters
    ----------
    index:
        Station index (used in completion events).
    num_classes:
        Number of customer classes.
    servers:
        Number of parallel servers.
    discipline:
        ``"fcfs"``, ``"priority_np"`` or ``"priority_pr"``.
    samplers:
        Per-class callables returning a fresh service time.
    schedule:
        Engine callback to schedule a completion event.
    """

    def __init__(
        self,
        index: int,
        num_classes: int,
        servers: int,
        discipline: str,
        samplers: list[Callable[[], float]],
        schedule: ScheduleFn,
        capacity: int | None = None,
    ):
        self.index = index
        self.discipline = discipline
        self.samplers = samplers
        self.schedule = schedule
        self.capacity = capacity
        self.servers = [_Server() for _ in range(servers)]
        if discipline == "fcfs":
            self.fifo: deque[Job] = deque()
            self.queues: list[deque[Job]] = []
        else:
            self.fifo = deque()
            self.queues = [deque() for _ in range(num_classes)]
        # Statistics, filled in by the engine before the run starts.
        self.busy: BusyIntegrator | None = None
        self.class_busy: list[BusyIntegrator] | None = None

    # ------------------------------------------------------------------
    def arrive(self, t: float, job: Job) -> bool:
        """A job arrives at the station.

        Returns ``False`` iff the station is a loss system and rejected
        the job (every other outcome accepts it).
        """
        job.station_arrival = t
        job.remaining = None
        if self.capacity is not None and self._in_system() >= self.capacity:
            return False  # finite buffer full
        idle = self._find_idle()
        if idle is not None:
            self._start(t, job, idle)
            return True
        if self.discipline == "loss":
            return False  # blocked call cleared
        if self.discipline == "priority_pr":
            victim_idx = self._preemption_victim(job.cls)
            if victim_idx is not None:
                self._preempt(t, victim_idx)
                self._start(t, job, victim_idx)
                return True
        if self.discipline == "fcfs":
            self.fifo.append(job)
        else:
            self.queues[job.cls].append(job)
        return True

    def complete(self, t: float, server_idx: int, epoch: int) -> Job | None:
        """Handle a completion event; returns the finished job, or
        ``None`` if the event was stale (its server was preempted)."""
        server = self.servers[server_idx]
        if epoch != server.epoch:
            return None  # cancelled by a preemption
        job = server.job
        if job is None:  # pragma: no cover - engine invariant
            raise SimulationError(f"completion on idle server {server_idx} at station {self.index}")
        self._record_busy(job.cls, server.busy_since, t)
        server.job = None
        server.epoch += 1
        nxt = self._next_job()
        if nxt is not None:
            self._start(t, nxt, server_idx)
        return job

    # ------------------------------------------------------------------
    def _in_system(self) -> int:
        """Jobs in service plus waiting (the finite-buffer occupancy)."""
        busy = sum(1 for s in self.servers if s.job is not None)
        waiting = len(self.fifo) + sum(len(q) for q in self.queues)
        return busy + waiting

    def _find_idle(self) -> int | None:
        for i, s in enumerate(self.servers):
            if s.job is None:
                return i
        return None

    def _preemption_victim(self, arriving_cls: int) -> int | None:
        """Server running the lowest-priority job strictly below the
        arriving class, or None."""
        worst_idx, worst_cls = None, arriving_cls
        for i, s in enumerate(self.servers):
            if s.job is not None and s.job.cls > worst_cls:
                worst_idx, worst_cls = i, s.job.cls
        return worst_idx

    def _preempt(self, t: float, server_idx: int) -> None:
        server = self.servers[server_idx]
        victim = server.job
        assert victim is not None
        self._record_busy(victim.cls, server.busy_since, t)
        victim.remaining = max(server.completion_time - t, 0.0)
        server.job = None
        server.epoch += 1  # cancels the victim's scheduled completion
        # The victim resumes ahead of queued same-class jobs (it arrived
        # earlier than all of them, by FCFS-within-class).
        self.queues[victim.cls].appendleft(victim)

    def _start(self, t: float, job: Job, server_idx: int) -> None:
        server = self.servers[server_idx]
        if job.remaining is None:
            job.remaining = float(self.samplers[job.cls]())
            job.service_total = job.remaining
        server.job = job
        server.busy_since = t
        server.completion_time = t + job.remaining
        self.schedule(server.completion_time, self.index, server_idx, server.epoch)

    def _next_job(self) -> Job | None:
        if self.discipline == "fcfs":
            return self.fifo.popleft() if self.fifo else None
        for q in self.queues:  # highest priority first
            if q:
                return q.popleft()
        return None

    def _record_busy(self, cls: int, a: float, b: float) -> None:
        if self.busy is not None:
            self.busy.add(a, b)
        if self.class_busy is not None:
            self.class_busy[cls].add(a, b)

    def close_open_intervals(self, t: float) -> None:
        """At the end of the run, account for servers still busy."""
        for s in self.servers:
            if s.job is not None:
                self._record_busy(s.job.cls, s.busy_since, t)
                s.busy_since = t  # idempotent if called twice
