"""A simulated multi-server station with FCFS or priority scheduling.

The station owns its waiting queues and server slots; the engine owns
the clock and the event heap. The station keeps **one** live heap entry
— its next completion — instead of one entry per in-service job:
server bookkeeping lives in parallel lists (job, busy-since,
completion-time, start-sequence per slot) and any state change that
moves the station's earliest completion re-arms the single entry by
bumping ``sched_epoch``, so the stale entry is ignored when popped —
O(1) cancellation without touching the heap, and a heap whose size is
bounded by the number of *stations*, not the number of busy servers.

Within a station, simultaneous completions (possible with
deterministic service) are resolved by ``srv_seq`` — the order the
services *started* — which reproduces the push-order tie-break of the
one-entry-per-job engine this replaced, keeping seeded runs
bit-identical.

Scheduling semantics:

* ``fcfs``        — single queue, arrival order across classes.
* ``priority_np`` — one queue per class; a freed server takes the head
  of the highest non-empty class; jobs in service are never disturbed.
* ``priority_pr`` — as above, plus an arrival that finds all servers
  busy preempts the lowest-priority running job if strictly lower than
  itself; the victim resumes later with its remaining service time
  (preemptive-resume).
* ``loss``        — no waiting room (M/G/c/c): an arrival finding every
  server busy is rejected outright (``arrive`` returns ``False``) and
  leaves the system — blocked calls cleared.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from heapq import heappush

from repro.exceptions import SimulationError
from repro.simulation.job import Job

__all__ = ["SimStation", "COMPLETION"]

#: Event-kind tag of the completion entries stations push onto the
#: engine's heap: ``(time, seq, COMPLETION, station_index, epoch)``.
COMPLETION = 1

_INF = float("inf")


class SimStation:
    """Simulation state of one tier.

    Parameters
    ----------
    index:
        Station index (used in completion events).
    num_classes:
        Number of customer classes.
    servers:
        Number of parallel servers.
    discipline:
        ``"fcfs"``, ``"priority_np"``, ``"priority_pr"`` or ``"loss"``.
    samplers:
        Per-class callables returning a fresh service time (a Python
        ``float``).
    heap:
        The engine's event heap; the station pushes its next-completion
        entries ``(time, seq, COMPLETION, index, epoch)`` directly
        (inlining the push shaves one Python call off every re-arm).
    next_seq:
        Shared push counter for the heap's equal-time tie-break.
    """

    __slots__ = (
        "index",
        "discipline",
        "samplers",
        "heap",
        "next_seq",
        "capacity",
        "srv_job",
        "srv_busy_since",
        "srv_completion",
        "srv_seq",
        "n_servers",
        "n_busy",
        "_start_counter",
        "sched_epoch",
        "sched_time",
        "fifo",
        "queues",
        "t0",
        "t1",
        "busy_total",
        "class_busy_totals",
    )

    def __init__(
        self,
        index: int,
        num_classes: int,
        servers: int,
        discipline: str,
        samplers: list[Callable[[], float]],
        heap: list,
        next_seq: Callable[[], int],
        capacity: int | None = None,
    ):
        self.index = index
        self.discipline = discipline
        self.samplers = samplers
        self.heap = heap
        self.next_seq = next_seq
        self.capacity = capacity
        # Array-backed server slots (parallel lists, indexed by server).
        self.srv_job: list[Job | None] = [None] * servers
        self.srv_busy_since: list[float] = [0.0] * servers
        self.srv_completion: list[float] = [0.0] * servers
        self.srv_seq: list[int] = [0] * servers
        self.n_servers = servers
        self.n_busy = 0
        self._start_counter = 0
        # The single live next-completion entry: (sched_time, sched_epoch).
        self.sched_epoch = 0
        self.sched_time = _INF
        if discipline == "fcfs":
            self.fifo: deque[Job] = deque()
            self.queues: list[deque[Job]] = []
        else:
            self.fifo = deque()
            self.queues = [deque() for _ in range(num_classes)]
        # Windowed busy-time accumulation (set_window narrows it to the
        # post-warmup measurement window before the run starts).
        self.t0 = 0.0
        self.t1 = _INF
        self.busy_total = 0.0
        self.class_busy_totals = [0.0] * num_classes

    def set_window(self, t0: float, t1: float) -> None:
        """Clip busy-time accounting to ``[t0, t1]`` (the post-warmup
        measurement window)."""
        if t1 <= t0:
            raise SimulationError(f"measurement window must have t1 > t0, got [{t0}, {t1}]")
        self.t0 = t0
        self.t1 = t1

    # ------------------------------------------------------------------
    def arrive(self, t: float, job: Job) -> bool:
        """A job arrives at the station.

        Returns ``False`` iff the station is a loss system and rejected
        the job (every other outcome accepts it).
        """
        job.station_arrival = t
        job.remaining = None
        if self.capacity is not None and self._in_system() >= self.capacity:
            return False  # finite buffer full
        if self.n_busy < self.n_servers:
            # Inlined _start on the lowest-index idle server (the
            # arriving job's remaining is always None here, so the
            # service sample is drawn unconditionally).
            idx = self.srv_job.index(None)
            r = self.samplers[job.cls]()
            job.remaining = r
            job.service_total = r
            self.srv_job[idx] = job
            self.srv_busy_since[idx] = t
            c = t + r
            self.srv_completion[idx] = c
            self._start_counter += 1
            self.srv_seq[idx] = self._start_counter
            self.n_busy += 1
            if c < self.sched_time:
                epoch = self.sched_epoch + 1
                self.sched_epoch = epoch
                self.sched_time = c
                heappush(self.heap, (c, self.next_seq(), COMPLETION, self.index, epoch))
            return True
        if self.discipline == "loss":
            return False  # blocked call cleared
        if self.discipline == "priority_pr":
            victim_idx = self._preemption_victim(job.cls)
            if victim_idx is not None:
                self._preempt(t, victim_idx)
                self._start(t, job, victim_idx)
                # Preemption may have cancelled the completion the live
                # entry pointed at — always re-arm from scratch.
                self._resync()
                return True
        if self.discipline == "fcfs":
            self.fifo.append(job)
        else:
            self.queues[job.cls].append(job)
        return True

    def complete(self, t: float, epoch: int) -> Job | None:
        """Handle the station's next-completion event; returns the
        finished job, or ``None`` if the event was stale (re-armed by a
        preemption or an earlier-finishing start since it was pushed)."""
        if epoch != self.sched_epoch:
            return None  # cancelled
        # One pass finds the completing server — earliest completion,
        # ties broken by start order (matching the old per-job heap's
        # push-order ties) — and the runner-up time, which becomes the
        # re-armed entry without a second scan.
        srv_job = self.srv_job
        srv_completion = self.srv_completion
        srv_seq = self.srv_seq
        idx = -1
        best_t = _INF
        best_seq = 0
        runner_up = _INF
        for i, j in enumerate(srv_job):
            if j is not None:
                ci = srv_completion[i]
                if idx < 0:
                    idx = i
                    best_t = ci
                    best_seq = srv_seq[i]
                elif ci < best_t or (ci == best_t and srv_seq[i] < best_seq):
                    if best_t < runner_up:
                        runner_up = best_t
                    idx = i
                    best_t = ci
                    best_seq = srv_seq[i]
                elif ci < runner_up:
                    runner_up = ci
        if idx < 0:  # pragma: no cover - engine invariant
            raise SimulationError(f"completion with no busy server at station {self.index}")
        job = srv_job[idx]
        # Inlined _record_busy (same clip-then-add arithmetic).
        a = self.srv_busy_since[idx]
        lo = a if a > self.t0 else self.t0
        hi = t if t < self.t1 else self.t1
        if hi > lo:
            d = hi - lo
            self.busy_total += d
            self.class_busy_totals[job.cls] += d
        srv_job[idx] = None
        self.n_busy -= 1
        # Inlined dispatch of the next queued job onto the freed server.
        nxt = None
        if self.discipline == "fcfs":
            if self.fifo:
                nxt = self.fifo.popleft()
        else:
            for q in self.queues:  # highest priority first
                if q:
                    nxt = q.popleft()
                    break
        new_min = runner_up
        if nxt is not None:
            r = nxt.remaining
            if r is None:
                r = self.samplers[nxt.cls]()
                nxt.remaining = r
                nxt.service_total = r
            srv_job[idx] = nxt
            self.srv_busy_since[idx] = t
            c = t + r
            srv_completion[idx] = c
            self._start_counter += 1
            srv_seq[idx] = self._start_counter
            self.n_busy += 1
            if c < new_min:
                new_min = c
        epoch = self.sched_epoch + 1
        self.sched_epoch = epoch
        self.sched_time = new_min
        if new_min != _INF:
            heappush(self.heap, (new_min, self.next_seq(), COMPLETION, self.index, epoch))
        return job

    # ------------------------------------------------------------------
    # observation / control hooks (epoch controllers)
    # ------------------------------------------------------------------
    def class_counts(self) -> list[int]:
        """Per-class jobs in the station (in service + waiting).

        The queue-length observation an online controller feeds on;
        called at epoch boundaries only, never in the event hot path.
        """
        counts = [0] * len(self.class_busy_totals)
        for j in self.srv_job:
            if j is not None:
                counts[j.cls] += 1
        for j in self.fifo:
            counts[j.cls] += 1
        for q in self.queues:
            for j in q:
                counts[j.cls] += 1
        return counts

    def rescale_remaining(self, t: float, ratio: float) -> None:
        """Apply a DVFS speed change at time ``t`` to in-service jobs.

        ``ratio = old_speed / new_speed``: the work remaining on each
        busy server is invariant, so its remaining *time* scales by the
        ratio. ``service_total`` is adjusted by the same delta so it
        keeps measuring the actual time the job spends in service.
        Re-arms the next-completion entry (the old one goes stale).
        """
        if ratio == 1.0:
            return
        if ratio <= 0.0:
            raise SimulationError(f"speed rescale ratio must be positive, got {ratio}")
        changed = False
        for i, j in enumerate(self.srv_job):
            if j is not None:
                rem = self.srv_completion[i] - t
                if rem > 0.0:
                    new_rem = rem * ratio
                    self.srv_completion[i] = t + new_rem
                    j.service_total += new_rem - rem
                    changed = True
        if changed:
            self._resync()

    def _in_system(self) -> int:
        """Jobs in service plus waiting (the finite-buffer occupancy)."""
        return self.n_busy + len(self.fifo) + sum(len(q) for q in self.queues)

    def _preemption_victim(self, arriving_cls: int) -> int | None:
        """Server running the lowest-priority job strictly below the
        arriving class, or None."""
        worst_idx, worst_cls = None, arriving_cls
        for i, j in enumerate(self.srv_job):
            if j is not None and j.cls > worst_cls:
                worst_idx, worst_cls = i, j.cls
        return worst_idx

    def _preempt(self, t: float, server_idx: int) -> None:
        victim = self.srv_job[server_idx]
        assert victim is not None
        self._record_busy(victim.cls, self.srv_busy_since[server_idx], t)
        victim.remaining = max(self.srv_completion[server_idx] - t, 0.0)
        self.srv_job[server_idx] = None
        self.n_busy -= 1
        # The victim resumes ahead of queued same-class jobs (it arrived
        # earlier than all of them, by FCFS-within-class).
        self.queues[victim.cls].appendleft(victim)

    def _start(self, t: float, job: Job, server_idx: int) -> None:
        r = job.remaining
        if r is None:
            r = self.samplers[job.cls]()
            job.remaining = r
            job.service_total = r
        self.srv_job[server_idx] = job
        self.srv_busy_since[server_idx] = t
        self.srv_completion[server_idx] = t + r
        self._start_counter += 1
        self.srv_seq[server_idx] = self._start_counter
        self.n_busy += 1

    def _resync(self) -> None:
        """Re-arm the next-completion entry from current server state."""
        self.sched_epoch += 1
        best = _INF
        srv_completion = self.srv_completion
        for i, j in enumerate(self.srv_job):
            if j is not None and srv_completion[i] < best:
                best = srv_completion[i]
        self.sched_time = best
        if best != _INF:
            heappush(self.heap, (best, self.next_seq(), COMPLETION, self.index, self.sched_epoch))

    def _next_job(self) -> Job | None:
        if self.discipline == "fcfs":
            return self.fifo.popleft() if self.fifo else None
        for q in self.queues:  # highest priority first
            if q:
                return q.popleft()
        return None

    def _record_busy(self, cls: int, a: float, b: float) -> None:
        # Inline, windowed busy-time accumulation (identical clip-then-
        # add arithmetic to the BusyIntegrator pair it replaced, at one
        # method call instead of two per service interval).
        lo = a if a > self.t0 else self.t0
        hi = b if b < self.t1 else self.t1
        if hi > lo:
            d = hi - lo
            self.busy_total += d
            self.class_busy_totals[cls] += d

    def close_open_intervals(self, t: float) -> None:
        """At the end of the run, account for servers still busy."""
        for i, j in enumerate(self.srv_job):
            if j is not None:
                self._record_busy(j.cls, self.srv_busy_since[i], t)
                self.srv_busy_since[i] = t  # idempotent if called twice
