"""Independent replications and across-replication confidence intervals.

Within-run confidence intervals understate the truth because
consecutive sojourn times are autocorrelated; the statistically honest
estimate averages *independent replications*, each with its own RNG
tree. :func:`simulate_replications` is what the validation experiments
(T1/T2, A2, A3, F7) call.

The replication engine is parallel and cached:

* ``n_jobs`` fans replications out over a process pool
  (:mod:`repro.simulation.parallel`). Every replication's RNG tree
  still comes from the same ``RngStreams.replication_seeds``
  SeedSequence child, and aggregation is ordered by replication index,
  so the numbers are **bit-identical for any worker count**.
* ``cache_dir`` memoizes per-replication results on disk
  (:mod:`repro.simulation.cache`), keyed by a content hash of the full
  configuration; re-running a suite skips already-computed work.
* ``progress`` receives one observability record per finished
  replication (wall time, events/sec, cache status); the same records
  land on ``ReplicatedResult.meta["replications"]``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro import obs
from repro.cluster.model import ClusterModel
from repro.exceptions import ModelValidationError
from repro.simulation.cache import (
    CacheUnsupportedError,
    SimulationCache,
    simulation_fingerprint,
)
from repro.simulation.parallel import (
    PoolSession,
    ProcessPoolBackend,
    ReplicationTiming,
    SerialBackend,
    SerialSession,
    get_backend,
    payload_is_picklable,
)
from repro.simulation.rng import RngStreams
from repro.simulation.simulator import SimulationResult, simulate
from repro.simulation.stats import confidence_halfwidth, confidence_halfwidths
from repro.workload.arrivals import ArrivalProcess
from repro.workload.classes import Workload

__all__ = [
    "ReplicatedResult",
    "simulate_replications",
    # re-exported lazily from the adaptive layer (module __getattr__)
    "simulate_replications_adaptive",
    "compare_scenarios",
]

_ADAPTIVE_NAMES = ("simulate_replications_adaptive", "compare_scenarios")


def __getattr__(name: str):
    # Lazy re-export: the adaptive engine imports this module's runner
    # machinery, so a top-level import here would be circular. PEP 562
    # resolution is import-order safe and costs nothing until used.
    if name in _ADAPTIVE_NAMES:
        from repro.simulation import adaptive

        return getattr(adaptive, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class ReplicatedResult:
    """Across-replication means and 95% CIs of the simulated metrics.

    ``delays`` etc. are means over replications; the matching ``*_ci``
    fields are Student-t half-widths with ``n_replications - 1``
    degrees of freedom. ``meta`` carries engine observability (per
    replication: wall time, events/sec, cached flag; plus backend name,
    worker count and cache hit/miss totals) and is **excluded** from
    the bit-identical reproducibility guarantee — timings obviously
    vary run to run.
    """

    class_names: tuple[str, ...]
    n_replications: int
    delays: np.ndarray
    delays_ci: np.ndarray
    mean_delay: float
    mean_delay_ci: float
    utilizations: np.ndarray
    average_power: float
    average_power_ci: float
    energy_per_request: float
    per_class_dynamic_energy: np.ndarray
    station_sojourns: np.ndarray
    station_waits: np.ndarray
    replications: list[SimulationResult]
    meta: dict[str, Any] = field(default_factory=dict)

    def delay_percentiles(
        self, p: float, with_counts: bool = False
    ) -> tuple[np.ndarray, ...]:
        """Across-replication mean and CI of the per-class empirical
        ``p``-percentile delay (requires ``collect_delay_samples=True``).

        A replication in which a class completed zero jobs yields a NaN
        percentile for that class; such replications are *excluded*
        per class rather than poisoning the mean/CI: the mean is the
        ``nanmean`` over replications and the CI uses the effective
        (finite) replication count per class. Classes with fewer than
        two finite replications get a NaN CI.

        Parameters
        ----------
        p:
            Percentile level in ``(0, 1)``.
        with_counts:
            When True, also return the per-class effective replication
            count, i.e. ``(means, cis, counts)``.
        """
        per_rep = np.array(
            [
                [r.delay_percentile(k, p) for k in range(len(self.class_names))]
                for r in self.replications
            ]
        )
        finite = np.isfinite(per_rep)
        counts = finite.sum(axis=0)
        # Nan-aware column means/stds in one pass: masked entries enter
        # the sums as exact additive zeros, so each column's mean and
        # ddof=1 deviation sum match the compacted per-column
        # computation bit for bit at these replication counts.
        sums = np.where(finite, per_rep, 0.0).sum(axis=0)
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        dev2 = np.where(finite, np.square(per_rep - means), 0.0).sum(axis=0)
        cis = np.full(per_rep.shape[1], np.nan)
        # The t-quantile depends on each column's *effective* count, so
        # columns are grouped by count (few distinct values) rather
        # than sharing one quantile.
        for c in np.unique(counts):
            if c >= 2:
                mask = counts == c
                stds = np.sqrt(dev2[mask] / (c - 1))
                cis[mask] = confidence_halfwidths(stds, int(c))
        if with_counts:
            return means, cis, counts
        return means, cis


def _aggregate(
    runs: list[SimulationResult], n_replications: int, meta: dict[str, Any]
) -> ReplicatedResult:
    """Fold per-replication results into across-replication statistics.

    Pure function of the *ordered* run list — the source of the
    any-worker-count reproducibility guarantee.
    """
    delays = np.stack([r.delays for r in runs])
    means = np.array([r.mean_delay for r in runs])
    powers = np.array([r.average_power for r in runs])

    def ci_over_reps(samples: np.ndarray) -> np.ndarray:
        # One vectorized std over the replication axis (every column
        # shares the same count, hence one memoized t-quantile) instead
        # of a Python lambda per column through apply_along_axis.
        if n_replications < 2:
            return np.full(samples.shape[1:], np.nan)
        return confidence_halfwidths(np.std(samples, axis=0, ddof=1), n_replications)

    return ReplicatedResult(
        class_names=runs[0].class_names,
        n_replications=n_replications,
        delays=delays.mean(axis=0),
        delays_ci=ci_over_reps(delays),
        mean_delay=float(means.mean()),
        mean_delay_ci=float(
            confidence_halfwidth(float(np.std(means, ddof=1)), n_replications)
        )
        if n_replications > 1
        else float("nan"),
        utilizations=np.stack([r.utilizations for r in runs]).mean(axis=0),
        average_power=float(powers.mean()),
        average_power_ci=float(
            confidence_halfwidth(float(np.std(powers, ddof=1)), n_replications)
        )
        if n_replications > 1
        else float("nan"),
        energy_per_request=float(np.mean([r.energy_per_request for r in runs])),
        per_class_dynamic_energy=np.stack(
            [r.per_class_dynamic_energy for r in runs]
        ).mean(axis=0),
        station_sojourns=np.stack([r.station_sojourns for r in runs]).mean(axis=0),
        station_waits=np.stack([r.station_waits for r in runs]).mean(axis=0),
        replications=runs,
        meta=meta,
    )


def simulate_replications(
    cluster: ClusterModel,
    workload: Workload,
    horizon: float,
    n_replications: int = 5,
    warmup_fraction: float = 0.1,
    seed: int = 0,
    arrival_processes: list[ArrivalProcess] | None = None,
    collect_delay_samples: bool = False,
    *,
    routing: list | None = None,
    allow_unstable: bool = False,
    collect_job_log: bool = False,
    n_jobs: int | None = None,
    cache_dir: str | SimulationCache | None = None,
    progress: Callable[[ReplicationTiming, int, int], None] | None = None,
) -> ReplicatedResult:
    """Run ``n_replications`` independent replications and aggregate.

    Every replication draws its RNG tree from an independent child of
    the master seed, so the across-replication CI is statistically
    valid. All per-run :func:`simulate` options (``routing``,
    ``allow_unstable``, ``collect_job_log``, ...) are forwarded to
    every replication.

    Parameters
    ----------
    n_jobs:
        Worker processes: ``None``/``1`` serial (default), ``-1`` all
        cores, ``k > 1`` a pool of ``k``. Results are bit-identical for
        any value; only wall-clock changes.
    cache_dir:
        Directory (or a :class:`SimulationCache`) memoizing finished
        replications on disk by a content hash of the configuration.
        A warm cache returns without running the simulator at all.
        Configurations that cannot be fingerprinted (e.g. closure-based
        arrival-rate functions) silently bypass the cache
        (``meta["cache"] == "unsupported"``).
    progress:
        Callback invoked once per finished replication (in completion
        order) with ``(timing_record, n_done, n_total)``.
    """
    with obs.span(
        "sim.replications",
        n_replications=n_replications,
        horizon=horizon,
        n_jobs=n_jobs,
        cache=cache_dir is not None,
    ):
        return _simulate_replications(
            cluster,
            workload,
            horizon,
            n_replications,
            warmup_fraction,
            seed,
            arrival_processes,
            collect_delay_samples,
            routing=routing,
            allow_unstable=allow_unstable,
            collect_job_log=collect_job_log,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
            progress=progress,
        )


def _resolve_cache(cache_dir: str | SimulationCache | None) -> SimulationCache | None:
    if cache_dir is None:
        return None
    if isinstance(cache_dir, SimulationCache):
        return cache_dir
    return SimulationCache(cache_dir)


class _ReplicationRunner:
    """Cache-aware incremental dispatcher for one replication family.

    Owns the seed list, the on-disk cache pass, payload construction
    and backend dispatch for a fixed configuration. The fixed-count
    engine asks for every index at once; the adaptive engine
    (:mod:`repro.simulation.adaptive`) calls :meth:`ensure` round by
    round against one live worker session (use the runner as a context
    manager so the session is torn down).

    ``results`` is keyed by replication index; aggregation over an
    *ordered prefix* of it is what makes the numbers independent of
    worker count, completion order and round size.
    """

    def __init__(
        self,
        sim_kwargs_common: dict[str, Any],
        seeds: list,
        *,
        cache: SimulationCache | None = None,
        n_jobs: int | None = None,
        progress: Callable[[ReplicationTiming, int, int], None] | None = None,
    ):
        self.sim_kwargs = sim_kwargs_common
        self.seeds = seeds
        self.cache = cache
        self.progress = progress
        self.results: dict[int, SimulationResult] = {}
        self.timings: list[ReplicationTiming] = []
        self.cache_state = "disabled" if cache is None else "enabled"
        self._fingerprints: dict[int, str] = {}
        self._backend = get_backend(n_jobs)
        self._session: SerialSession | PoolSession | None = None
        self._session_used = False  # survives __exit__, unlike _session
        self._n_done = 0

    def __enter__(self) -> "_ReplicationRunner":
        return self

    def __exit__(self, *exc) -> None:
        if self._session is not None:
            self._session.__exit__()
            self._session = None

    def _notify(self, timing: ReplicationTiming) -> None:
        self._n_done += 1
        self.timings.append(timing)
        obs.event(
            "sim.replication",
            index=timing.index,
            wall_s=timing.wall_time_s,
            n_events=timing.n_events,
            events_per_sec=timing.events_per_sec,
            cached=timing.cached,
            n_done=self._n_done,
            n_total=len(self.seeds),
        )
        if self.progress is not None:
            self.progress(timing, self._n_done, len(self.seeds))

    def _fingerprint(self, index: int) -> str | None:
        """The cache fingerprint for one index, or ``None`` when the
        configuration cannot be fingerprinted (cache bypassed)."""
        if self.cache is None or self.cache_state.startswith("unsupported"):
            return None
        fp = self._fingerprints.get(index)
        if fp is None:
            kw = self.sim_kwargs
            try:
                fp = simulation_fingerprint(
                    kw["cluster"],
                    kw["workload"],
                    kw["horizon"],
                    kw["warmup_fraction"],
                    self.seeds[index],
                    arrival_processes=kw["arrival_processes"],
                    routing=kw["routing"],
                    allow_unstable=kw["allow_unstable"],
                    collect_delay_samples=kw["collect_delay_samples"],
                    collect_job_log=kw["collect_job_log"],
                )
            except CacheUnsupportedError:
                # Fingerprints differ per index only in the seed child,
                # so one failure means every index fails.
                self._fingerprints.clear()
                self.cache_state = "unsupported" + self.cache_state.removeprefix("enabled")
                return None
            self._fingerprints[index] = fp
        return fp

    def ensure(self, indices) -> None:
        """Make ``results[i]`` available for every ``i`` in ``indices``.

        Cache pass first (hits are notified with a zero-cost timing
        record), then one backend round for whatever is left.
        """
        needed = [i for i in indices if i not in self.results]
        if self.cache is not None:
            for i in needed:
                fp = self._fingerprint(i)
                if fp is None:
                    break
                hit = self.cache.load(fp)
                if hit is not None:
                    self.results[i] = hit
                    self._notify(
                        ReplicationTiming(index=i, wall_time_s=0.0, n_events=0, cached=True)
                    )
        payloads = [
            (i, {**self.sim_kwargs, "seed": self.seeds[i]})
            for i in needed
            if i not in self.results
        ]
        if not payloads:
            return
        if self._session is None:
            backend = self._backend
            if not isinstance(backend, SerialBackend) and not payload_is_picklable(payloads[0]):
                self._backend = backend = SerialBackend()
                self.cache_state += "+serial-fallback"
            if isinstance(backend, ProcessPoolBackend):
                # Right-size the pool to the work that could still
                # possibly arrive in this session.
                remaining = len(self.seeds) - len(self.results)
                backend = ProcessPoolBackend(min(backend.n_workers, max(remaining, 1)))
            self._backend = backend
            self._session = backend.session().__enter__()
            self._session_used = True

        def on_done(index: int, result: SimulationResult, wall: float) -> None:
            self.results[index] = result
            fp = self._fingerprints.get(index)
            if self.cache is not None and fp is not None:
                self.cache.store(fp, result)
            self._notify(
                ReplicationTiming(
                    index=index,
                    wall_time_s=wall,
                    n_events=int(result.meta.get("n_events", 0)),
                )
            )

        self._session.run(payloads, on_done)

    def runs(self, n: int) -> list[SimulationResult]:
        """The ordered result prefix ``[0, n)`` (every index must exist)."""
        return [self.results[i] for i in range(n)]

    def meta(self, wall_time_s: float, **extra: Any) -> dict[str, Any]:
        """Engine observability dict for ``ReplicatedResult.meta``."""
        timings = sorted(self.timings, key=lambda rec: rec.index)
        cache_hits = sum(1 for rec in timings if rec.cached)
        # Misses count only replications the cache was actually
        # consulted for — an unfingerprintable configuration bypasses
        # the cache entirely, so it has no misses.
        cache_misses = sum(
            1 for rec in timings if not rec.cached and rec.index in self._fingerprints
        )
        obs.counter("sim.cache.hits").add(cache_hits)
        obs.counter("sim.cache.misses").add(cache_misses)
        # Process-pool workers run un-traced (the registry lives in the
        # parent), so their event totals are recorded here from the
        # counts that traveled back with each result.
        used = self._session_used
        if used and not isinstance(self._backend, SerialBackend):
            obs.counter("sim.events").add(sum(rec.n_events for rec in timings if not rec.cached))
        return {
            "backend": self._backend.name if used else "cache",
            "n_jobs": getattr(self._backend, "n_workers", 1) if used else 0,
            "cache": self.cache_state,
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "wall_time_s": wall_time_s,
            "replications": [rec.as_dict() for rec in timings],
            **extra,
        }


def _sim_kwargs_common(
    cluster: ClusterModel,
    workload: Workload,
    horizon: float,
    warmup_fraction: float,
    arrival_processes: list[ArrivalProcess] | None,
    collect_delay_samples: bool,
    routing: list | None,
    allow_unstable: bool,
    collect_job_log: bool,
) -> dict[str, Any]:
    return dict(
        cluster=cluster,
        workload=workload,
        horizon=horizon,
        warmup_fraction=warmup_fraction,
        arrival_processes=arrival_processes,
        collect_delay_samples=collect_delay_samples,
        routing=routing,
        allow_unstable=allow_unstable,
        collect_job_log=collect_job_log,
    )


def _simulate_replications(
    cluster: ClusterModel,
    workload: Workload,
    horizon: float,
    n_replications: int = 5,
    warmup_fraction: float = 0.1,
    seed: int = 0,
    arrival_processes: list[ArrivalProcess] | None = None,
    collect_delay_samples: bool = False,
    *,
    routing: list | None = None,
    allow_unstable: bool = False,
    collect_job_log: bool = False,
    n_jobs: int | None = None,
    cache_dir: str | SimulationCache | None = None,
    progress: Callable[[ReplicationTiming, int, int], None] | None = None,
) -> ReplicatedResult:
    if n_replications < 1:
        raise ModelValidationError(f"need at least one replication, got {n_replications}")
    t_start = time.perf_counter()
    runner = _ReplicationRunner(
        _sim_kwargs_common(
            cluster,
            workload,
            horizon,
            warmup_fraction,
            arrival_processes,
            collect_delay_samples,
            routing,
            allow_unstable,
            collect_job_log,
        ),
        RngStreams.replication_seeds(seed, n_replications),
        cache=_resolve_cache(cache_dir),
        n_jobs=n_jobs,
        progress=progress,
    )
    with runner:
        runner.ensure(range(n_replications))
    meta = runner.meta(time.perf_counter() - t_start)
    return _aggregate(runner.runs(n_replications), n_replications, meta)
