"""Independent replications and across-replication confidence intervals.

Within-run confidence intervals understate the truth because
consecutive sojourn times are autocorrelated; the statistically honest
estimate averages *independent replications*, each with its own RNG
tree. :func:`simulate_replications` is what the validation experiments
(T1/T2, A2, A3, F7) call.

The replication engine is parallel and cached:

* ``n_jobs`` fans replications out over a process pool
  (:mod:`repro.simulation.parallel`). Every replication's RNG tree
  still comes from the same ``RngStreams.replication_seeds``
  SeedSequence child, and aggregation is ordered by replication index,
  so the numbers are **bit-identical for any worker count**.
* ``cache_dir`` memoizes per-replication results on disk
  (:mod:`repro.simulation.cache`), keyed by a content hash of the full
  configuration; re-running a suite skips already-computed work.
* ``progress`` receives one observability record per finished
  replication (wall time, events/sec, cache status); the same records
  land on ``ReplicatedResult.meta["replications"]``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro import obs
from repro.cluster.model import ClusterModel
from repro.exceptions import ModelValidationError
from repro.simulation.cache import (
    CacheUnsupportedError,
    SimulationCache,
    simulation_fingerprint,
)
from repro.simulation.parallel import (
    ReplicationTiming,
    SerialBackend,
    get_backend,
    payload_is_picklable,
)
from repro.simulation.rng import RngStreams
from repro.simulation.simulator import SimulationResult, simulate
from repro.simulation.stats import confidence_halfwidth
from repro.workload.arrivals import ArrivalProcess
from repro.workload.classes import Workload

__all__ = ["ReplicatedResult", "simulate_replications"]


@dataclass
class ReplicatedResult:
    """Across-replication means and 95% CIs of the simulated metrics.

    ``delays`` etc. are means over replications; the matching ``*_ci``
    fields are Student-t half-widths with ``n_replications - 1``
    degrees of freedom. ``meta`` carries engine observability (per
    replication: wall time, events/sec, cached flag; plus backend name,
    worker count and cache hit/miss totals) and is **excluded** from
    the bit-identical reproducibility guarantee — timings obviously
    vary run to run.
    """

    class_names: tuple[str, ...]
    n_replications: int
    delays: np.ndarray
    delays_ci: np.ndarray
    mean_delay: float
    mean_delay_ci: float
    utilizations: np.ndarray
    average_power: float
    average_power_ci: float
    energy_per_request: float
    per_class_dynamic_energy: np.ndarray
    station_sojourns: np.ndarray
    station_waits: np.ndarray
    replications: list[SimulationResult]
    meta: dict[str, Any] = field(default_factory=dict)

    def delay_percentiles(
        self, p: float, with_counts: bool = False
    ) -> tuple[np.ndarray, ...]:
        """Across-replication mean and CI of the per-class empirical
        ``p``-percentile delay (requires ``collect_delay_samples=True``).

        A replication in which a class completed zero jobs yields a NaN
        percentile for that class; such replications are *excluded*
        per class rather than poisoning the mean/CI: the mean is the
        ``nanmean`` over replications and the CI uses the effective
        (finite) replication count per class. Classes with fewer than
        two finite replications get a NaN CI.

        Parameters
        ----------
        p:
            Percentile level in ``(0, 1)``.
        with_counts:
            When True, also return the per-class effective replication
            count, i.e. ``(means, cis, counts)``.
        """
        per_rep = np.array(
            [
                [r.delay_percentile(k, p) for k in range(len(self.class_names))]
                for r in self.replications
            ]
        )
        counts = np.sum(np.isfinite(per_rep), axis=0)
        means = np.full(per_rep.shape[1], np.nan)
        cis = np.full(per_rep.shape[1], np.nan)
        for k in range(per_rep.shape[1]):
            finite = per_rep[np.isfinite(per_rep[:, k]), k]
            if finite.size > 0:
                means[k] = float(finite.mean())
            if finite.size >= 2:
                cis[k] = confidence_halfwidth(float(np.std(finite, ddof=1)), finite.size)
        if with_counts:
            return means, cis, counts
        return means, cis


def _aggregate(
    runs: list[SimulationResult], n_replications: int, meta: dict[str, Any]
) -> ReplicatedResult:
    """Fold per-replication results into across-replication statistics.

    Pure function of the *ordered* run list — the source of the
    any-worker-count reproducibility guarantee.
    """
    delays = np.stack([r.delays for r in runs])
    means = np.array([r.mean_delay for r in runs])
    powers = np.array([r.average_power for r in runs])

    def ci_over_reps(samples: np.ndarray) -> np.ndarray:
        if n_replications < 2:
            return np.full(samples.shape[1:], np.nan)
        return np.apply_along_axis(
            lambda col: confidence_halfwidth(float(np.std(col, ddof=1)), n_replications), 0, samples
        )

    return ReplicatedResult(
        class_names=runs[0].class_names,
        n_replications=n_replications,
        delays=delays.mean(axis=0),
        delays_ci=ci_over_reps(delays),
        mean_delay=float(means.mean()),
        mean_delay_ci=float(
            confidence_halfwidth(float(np.std(means, ddof=1)), n_replications)
        )
        if n_replications > 1
        else float("nan"),
        utilizations=np.stack([r.utilizations for r in runs]).mean(axis=0),
        average_power=float(powers.mean()),
        average_power_ci=float(
            confidence_halfwidth(float(np.std(powers, ddof=1)), n_replications)
        )
        if n_replications > 1
        else float("nan"),
        energy_per_request=float(np.mean([r.energy_per_request for r in runs])),
        per_class_dynamic_energy=np.stack(
            [r.per_class_dynamic_energy for r in runs]
        ).mean(axis=0),
        station_sojourns=np.stack([r.station_sojourns for r in runs]).mean(axis=0),
        station_waits=np.stack([r.station_waits for r in runs]).mean(axis=0),
        replications=runs,
        meta=meta,
    )


def simulate_replications(
    cluster: ClusterModel,
    workload: Workload,
    horizon: float,
    n_replications: int = 5,
    warmup_fraction: float = 0.1,
    seed: int = 0,
    arrival_processes: list[ArrivalProcess] | None = None,
    collect_delay_samples: bool = False,
    *,
    routing: list | None = None,
    allow_unstable: bool = False,
    collect_job_log: bool = False,
    n_jobs: int | None = None,
    cache_dir: str | SimulationCache | None = None,
    progress: Callable[[ReplicationTiming, int, int], None] | None = None,
) -> ReplicatedResult:
    """Run ``n_replications`` independent replications and aggregate.

    Every replication draws its RNG tree from an independent child of
    the master seed, so the across-replication CI is statistically
    valid. All per-run :func:`simulate` options (``routing``,
    ``allow_unstable``, ``collect_job_log``, ...) are forwarded to
    every replication.

    Parameters
    ----------
    n_jobs:
        Worker processes: ``None``/``1`` serial (default), ``-1`` all
        cores, ``k > 1`` a pool of ``k``. Results are bit-identical for
        any value; only wall-clock changes.
    cache_dir:
        Directory (or a :class:`SimulationCache`) memoizing finished
        replications on disk by a content hash of the configuration.
        A warm cache returns without running the simulator at all.
        Configurations that cannot be fingerprinted (e.g. closure-based
        arrival-rate functions) silently bypass the cache
        (``meta["cache"] == "unsupported"``).
    progress:
        Callback invoked once per finished replication (in completion
        order) with ``(timing_record, n_done, n_total)``.
    """
    with obs.span(
        "sim.replications",
        n_replications=n_replications,
        horizon=horizon,
        n_jobs=n_jobs,
        cache=cache_dir is not None,
    ):
        return _simulate_replications(
            cluster,
            workload,
            horizon,
            n_replications,
            warmup_fraction,
            seed,
            arrival_processes,
            collect_delay_samples,
            routing=routing,
            allow_unstable=allow_unstable,
            collect_job_log=collect_job_log,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
            progress=progress,
        )


def _simulate_replications(
    cluster: ClusterModel,
    workload: Workload,
    horizon: float,
    n_replications: int = 5,
    warmup_fraction: float = 0.1,
    seed: int = 0,
    arrival_processes: list[ArrivalProcess] | None = None,
    collect_delay_samples: bool = False,
    *,
    routing: list | None = None,
    allow_unstable: bool = False,
    collect_job_log: bool = False,
    n_jobs: int | None = None,
    cache_dir: str | SimulationCache | None = None,
    progress: Callable[[ReplicationTiming, int, int], None] | None = None,
) -> ReplicatedResult:
    if n_replications < 1:
        raise ModelValidationError(f"need at least one replication, got {n_replications}")
    t_start = time.perf_counter()
    seeds = RngStreams.replication_seeds(seed, n_replications)

    cache: SimulationCache | None
    if cache_dir is None:
        cache = None
    elif isinstance(cache_dir, SimulationCache):
        cache = cache_dir
    else:
        cache = SimulationCache(cache_dir)

    sim_kwargs_common: dict[str, Any] = dict(
        cluster=cluster,
        workload=workload,
        horizon=horizon,
        warmup_fraction=warmup_fraction,
        arrival_processes=arrival_processes,
        collect_delay_samples=collect_delay_samples,
        routing=routing,
        allow_unstable=allow_unstable,
        collect_job_log=collect_job_log,
    )

    timings: list[ReplicationTiming] = []
    n_done = 0
    n_total = n_replications

    def _notify(timing: ReplicationTiming) -> None:
        nonlocal n_done
        n_done += 1
        timings.append(timing)
        obs.event(
            "sim.replication",
            index=timing.index,
            wall_s=timing.wall_time_s,
            n_events=timing.n_events,
            events_per_sec=timing.events_per_sec,
            cached=timing.cached,
        )
        if progress is not None:
            progress(timing, n_done, n_total)

    # Cache pass: resolve what is already on disk. Fingerprints differ
    # per replication only in the seed child.
    results: dict[int, SimulationResult] = {}
    fingerprints: dict[int, str] = {}
    cache_state = "disabled"
    if cache is not None:
        cache_state = "enabled"
        try:
            for i, s in enumerate(seeds):
                fingerprints[i] = simulation_fingerprint(
                    cluster,
                    workload,
                    horizon,
                    warmup_fraction,
                    s,
                    arrival_processes=arrival_processes,
                    routing=routing,
                    allow_unstable=allow_unstable,
                    collect_delay_samples=collect_delay_samples,
                    collect_job_log=collect_job_log,
                )
        except CacheUnsupportedError:
            fingerprints.clear()
            cache_state = "unsupported"
        for i, fp in fingerprints.items():
            hit = cache.load(fp)
            if hit is not None:
                results[i] = hit
                _notify(ReplicationTiming(index=i, wall_time_s=0.0, n_events=0, cached=True))

    # Simulation pass: whatever the cache did not supply.
    payloads = [
        (i, {**sim_kwargs_common, "seed": seeds[i]})
        for i in range(n_replications)
        if i not in results
    ]
    if payloads:
        backend = get_backend(n_jobs)
        if not isinstance(backend, SerialBackend) and not payload_is_picklable(payloads[0]):
            backend = SerialBackend()
            cache_state += "+serial-fallback"

        def on_done(index: int, result: SimulationResult, wall: float) -> None:
            results[index] = result
            if cache is not None and index in fingerprints:
                cache.store(fingerprints[index], result)
            _notify(
                ReplicationTiming(
                    index=index,
                    wall_time_s=wall,
                    n_events=int(result.meta.get("n_events", 0)),
                )
            )

        backend.run(payloads, on_done)
    else:
        backend = None

    runs = [results[i] for i in range(n_replications)]
    timings.sort(key=lambda rec: rec.index)
    cache_hits = sum(1 for rec in timings if rec.cached)
    cache_misses = len(payloads) if cache is not None else 0
    obs.counter("sim.cache.hits").add(cache_hits)
    obs.counter("sim.cache.misses").add(cache_misses)
    # Process-pool workers run un-traced (the registry lives in the
    # parent), so their event totals are recorded here from the counts
    # that traveled back with each result.
    if backend is not None and not isinstance(backend, SerialBackend):
        obs.counter("sim.events").add(sum(rec.n_events for rec in timings if not rec.cached))
    meta = {
        "backend": backend.name if backend is not None else "cache",
        "n_jobs": getattr(backend, "n_workers", 1) if backend is not None else 0,
        "cache": cache_state,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "wall_time_s": time.perf_counter() - t_start,
        "replications": [rec.as_dict() for rec in timings],
    }
    return _aggregate(runs, n_replications, meta)
