"""Independent replications and across-replication confidence intervals.

Within-run confidence intervals understate the truth because
consecutive sojourn times are autocorrelated; the statistically honest
estimate averages *independent replications*, each with its own RNG
tree. :func:`simulate_replications` is what the validation experiments
(T1/T2, A2, A3) call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.model import ClusterModel
from repro.exceptions import ModelValidationError
from repro.simulation.rng import RngStreams
from repro.simulation.simulator import SimulationResult, simulate
from repro.simulation.stats import confidence_halfwidth
from repro.workload.arrivals import ArrivalProcess
from repro.workload.classes import Workload

__all__ = ["ReplicatedResult", "simulate_replications"]


@dataclass
class ReplicatedResult:
    """Across-replication means and 95% CIs of the simulated metrics.

    ``delays`` etc. are means over replications; the matching ``*_ci``
    fields are Student-t half-widths with ``n_replications - 1``
    degrees of freedom.
    """

    class_names: tuple[str, ...]
    n_replications: int
    delays: np.ndarray
    delays_ci: np.ndarray
    mean_delay: float
    mean_delay_ci: float
    utilizations: np.ndarray
    average_power: float
    average_power_ci: float
    energy_per_request: float
    per_class_dynamic_energy: np.ndarray
    station_sojourns: np.ndarray
    station_waits: np.ndarray
    replications: list[SimulationResult]

    def delay_percentiles(self, p: float) -> tuple[np.ndarray, np.ndarray]:
        """Across-replication mean and CI of the per-class empirical
        ``p``-percentile delay (requires ``collect_delay_samples=True``)."""
        per_rep = np.array(
            [
                [r.delay_percentile(k, p) for k in range(len(self.class_names))]
                for r in self.replications
            ]
        )
        means = per_rep.mean(axis=0)
        if self.n_replications < 2:
            return means, np.full_like(means, np.nan)
        cis = np.array(
            [
                confidence_halfwidth(float(np.std(per_rep[:, k], ddof=1)), self.n_replications)
                for k in range(per_rep.shape[1])
            ]
        )
        return means, cis


def simulate_replications(
    cluster: ClusterModel,
    workload: Workload,
    horizon: float,
    n_replications: int = 5,
    warmup_fraction: float = 0.1,
    seed: int = 0,
    arrival_processes: list[ArrivalProcess] | None = None,
    collect_delay_samples: bool = False,
) -> ReplicatedResult:
    """Run ``n_replications`` independent replications and aggregate.

    Every replication draws its RNG tree from an independent child of
    the master seed, so the across-replication CI is statistically
    valid.
    """
    if n_replications < 1:
        raise ModelValidationError(f"need at least one replication, got {n_replications}")
    seeds = RngStreams.replication_seeds(seed, n_replications)
    runs = [
        simulate(
            cluster,
            workload,
            horizon,
            warmup_fraction=warmup_fraction,
            seed=s,
            arrival_processes=arrival_processes,
            collect_delay_samples=collect_delay_samples,
        )
        for s in seeds
    ]

    delays = np.stack([r.delays for r in runs])
    means = np.array([r.mean_delay for r in runs])
    powers = np.array([r.average_power for r in runs])

    def ci_over_reps(samples: np.ndarray) -> np.ndarray:
        if n_replications < 2:
            return np.full(samples.shape[1:], np.nan)
        return np.apply_along_axis(
            lambda col: confidence_halfwidth(float(np.std(col, ddof=1)), n_replications), 0, samples
        )

    return ReplicatedResult(
        class_names=runs[0].class_names,
        n_replications=n_replications,
        delays=delays.mean(axis=0),
        delays_ci=ci_over_reps(delays),
        mean_delay=float(means.mean()),
        mean_delay_ci=float(
            confidence_halfwidth(float(np.std(means, ddof=1)), n_replications)
        )
        if n_replications > 1
        else float("nan"),
        utilizations=np.stack([r.utilizations for r in runs]).mean(axis=0),
        average_power=float(powers.mean()),
        average_power_ci=float(
            confidence_halfwidth(float(np.std(powers, ddof=1)), n_replications)
        )
        if n_replications > 1
        else float("nan"),
        energy_per_request=float(np.mean([r.energy_per_request for r in runs])),
        per_class_dynamic_energy=np.stack(
            [r.per_class_dynamic_energy for r in runs]
        ).mean(axis=0),
        station_sojourns=np.stack([r.station_sojourns for r in runs]).mean(axis=0),
        station_waits=np.stack([r.station_waits for r in runs]).mean(axis=0),
        replications=runs,
    )
