"""Variance-reduction estimators for simulation output analysis.

Three classical techniques, each packaged as an estimator producing a
:class:`VrEstimate` (point value + Student-t half-width + method tag):

* **Antithetic pairs** — :func:`antithetic_estimate` averages the two
  members of each negatively-correlated replication pair (produced by
  :meth:`repro.simulation.rng.RngStreams.replication_seed_pairs`) into
  one iid unit; with within-pair correlation ``r < 0`` the pair-mean
  variance is ``(1 + r)/2`` of a single replication's.
* **Control variates** — :func:`control_variate_estimate` corrects the
  simulated metric with a correlated control whose true mean is known
  *analytically* (the paper's M/G/1 model supplies it through
  :class:`repro.core.batch_eval.BatchEvaluator`):
  ``z_j = y_j - beta(c_j - mu_C)``. The optimal coefficient
  ``beta = Cov(y,c)/Var(c)`` is estimated **jackknife-style** — each
  pseudo-value uses the leave-one-out coefficient ``beta_{-j}`` — which
  removes the O(1/n) plug-in bias of estimating ``beta`` from the same
  sample it corrects.
* **CRN-paired differences** — :func:`paired_difference` gives the
  paired-t interval for a difference of two scenarios simulated under
  common random numbers (the :class:`~repro.simulation.rng.RngStreams`
  CRN contract aligns their streams replication by replication);
  :func:`independent_difference` is the Welch two-sample interval the
  pairing is measured against.

All estimators are pure functions of their input arrays — the engines
in :mod:`repro.simulation.adaptive` and
:mod:`repro.simulation.replications` own where the numbers come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import stats as sps

from repro.exceptions import ModelValidationError
from repro.simulation.stats import confidence_halfwidth

__all__ = [
    "VrEstimate",
    "naive_estimate",
    "antithetic_estimate",
    "control_variate_estimate",
    "jackknife_cv_coefficients",
    "paired_difference",
    "independent_difference",
    "variance_reduction_factor",
]


@dataclass(frozen=True)
class VrEstimate:
    """A point estimate with its Student-t confidence half-width.

    ``n_units`` is the number of iid units the interval is built on —
    replications for ``naive``/``cv``, *pairs* for ``antithetic``,
    differences for ``crn-paired``. ``beta`` carries the full-sample
    control-variate coefficient for the ``cv`` method.
    """

    value: float
    halfwidth: float
    n_units: int
    method: str
    level: float = 0.95
    beta: float | None = None

    @property
    def rel_halfwidth(self) -> float:
        """Half-width relative to the point value's magnitude.

        Infinite when the half-width is undefined (fewer than two
        units) or the value is zero with a nonzero half-width — both
        mean "precision target not demonstrably met".
        """
        if not np.isfinite(self.halfwidth):
            return float("inf")
        denom = abs(self.value)
        if denom == 0.0:
            return 0.0 if self.halfwidth == 0.0 else float("inf")
        return self.halfwidth / denom

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view for telemetry and ``meta`` records."""
        return {
            "value": self.value,
            "halfwidth": self.halfwidth,
            "rel_halfwidth": self.rel_halfwidth,
            "n_units": self.n_units,
            "method": self.method,
            "level": self.level,
            "beta": self.beta,
        }


def _as_1d(values, name: str) -> np.ndarray:
    x = np.asarray(values, dtype=float)
    if x.ndim != 1:
        raise ModelValidationError(f"{name} must be a 1-D array, got shape {x.shape}")
    return x


def _t_estimate(
    values: np.ndarray, method: str, level: float, beta: float | None = None
) -> VrEstimate:
    n = values.size
    value = float(values.mean()) if n else float("nan")
    hw = (
        confidence_halfwidth(float(np.std(values, ddof=1)), n, level)
        if n >= 2
        else float("nan")
    )
    return VrEstimate(value=value, halfwidth=hw, n_units=n, method=method, level=level, beta=beta)


def naive_estimate(values, level: float = 0.95) -> VrEstimate:
    """Plain mean and t-interval over iid replications."""
    return _t_estimate(_as_1d(values, "values"), "naive", level)


def antithetic_estimate(primary, mirror, level: float = 0.95) -> VrEstimate:
    """Mean and t-interval over antithetic pair means.

    ``primary[j]`` and ``mirror[j]`` must come from the two members of
    antithetic pair ``j``; the iid unit is the pair mean
    ``(primary[j] + mirror[j]) / 2``.
    """
    a = _as_1d(primary, "primary")
    b = _as_1d(mirror, "mirror")
    if a.size != b.size:
        raise ModelValidationError(
            f"antithetic members must pair up, got {a.size} primaries and {b.size} mirrors"
        )
    return _t_estimate((a + b) / 2.0, "antithetic", level)


def jackknife_cv_coefficients(values, controls) -> np.ndarray:
    """Leave-one-out control-variate coefficients ``beta_{-j}``.

    ``beta_{-j} = Cov_{-j}(y, c) / Var_{-j}(c)`` computed for every
    ``j`` in one vectorized pass over the sufficient sums (no O(n^2)
    re-fit). A leave-one-out sample with (numerically) constant
    control gets ``beta_{-j} = 0`` — no correction rather than a blown
    ratio.
    """
    y = _as_1d(values, "values")
    c = _as_1d(controls, "controls")
    if y.size != c.size:
        raise ModelValidationError(
            f"values and controls must align, got {y.size} vs {c.size}"
        )
    n = y.size
    if n < 3:
        raise ModelValidationError(f"jackknife needs at least 3 observations, got {n}")
    n1 = n - 1
    mc = (c.sum() - c) / n1
    my = (y.sum() - y) / n1
    # Sum_{i != j} c_i y_i - n1 * mean_c * mean_y  (and likewise c^2).
    s_cy = (c * y).sum() - c * y - n1 * mc * my
    s_cc = (c * c).sum() - c * c - n1 * mc * mc
    scale = float(np.max(np.abs(s_cc))) or 1.0
    with np.errstate(divide="ignore", invalid="ignore"):
        betas = np.where(np.abs(s_cc) > 1e-14 * scale, s_cy / s_cc, 0.0)
    return betas


def control_variate_estimate(
    values, controls, control_mean: float, level: float = 0.95
) -> VrEstimate:
    """Control-variate corrected mean with jackknife pseudo-values.

    ``values[j]`` is the simulated metric of replication ``j``,
    ``controls[j]`` a correlated quantity from the *same* replication,
    and ``control_mean`` the control's exact (analytic) expectation.
    Each pseudo-value ``z_j = y_j - beta_{-j} (c_j - control_mean)``
    uses the coefficient fitted *without* replication ``j``, so the
    corrected mean is unbiased to O(1/n^2); the interval is the plain
    t-interval over the pseudo-values. Fewer than 3 observations fall
    back to the naive estimator (no coefficient can be cross-fitted).
    """
    y = _as_1d(values, "values")
    c = _as_1d(controls, "controls")
    if y.size != c.size:
        raise ModelValidationError(
            f"values and controls must align, got {y.size} vs {c.size}"
        )
    if not np.isfinite(control_mean):
        raise ModelValidationError(f"control mean must be finite, got {control_mean}")
    if y.size < 3:
        return naive_estimate(y, level)
    betas = jackknife_cv_coefficients(y, c)
    z = y - betas * (c - control_mean)
    # Full-sample coefficient, reported for telemetry only.
    dc = c - c.mean()
    denom = float(dc @ dc)
    beta_full = float(dc @ (y - y.mean()) / denom) if denom > 0.0 else 0.0
    return _t_estimate(z, "cv", level, beta=beta_full)


def paired_difference(values_a, values_b, level: float = 0.95) -> VrEstimate:
    """Paired-t interval for ``mean(A) - mean(B)`` under CRN.

    Replication ``j`` of both scenarios must share seed child ``j``
    (the default when both calls use the same master seed); the iid
    unit is the per-replication difference, whose variance shrinks by
    ``2 Cov(A_j, B_j)`` relative to independent sampling.
    """
    a = _as_1d(values_a, "values_a")
    b = _as_1d(values_b, "values_b")
    if a.size != b.size:
        raise ModelValidationError(
            f"paired scenarios need equal replication counts, got {a.size} vs {b.size}"
        )
    return _t_estimate(a - b, "crn-paired", level)


def independent_difference(values_a, values_b, level: float = 0.95) -> VrEstimate:
    """Welch two-sample interval for ``mean(A) - mean(B)``.

    The no-pairing baseline :func:`paired_difference` is compared
    against; uses the Welch–Satterthwaite degrees of freedom.
    """
    a = _as_1d(values_a, "values_a")
    b = _as_1d(values_b, "values_b")
    value = float(a.mean() - b.mean()) if a.size and b.size else float("nan")
    n_units = min(a.size, b.size)
    if a.size < 2 or b.size < 2:
        return VrEstimate(value, float("nan"), n_units, "independent", level)
    va = float(np.var(a, ddof=1)) / a.size
    vb = float(np.var(b, ddof=1)) / b.size
    se = float(np.sqrt(va + vb))
    if se == 0.0:
        return VrEstimate(value, 0.0, n_units, "independent", level)
    df = (va + vb) ** 2 / (va**2 / (a.size - 1) + vb**2 / (b.size - 1))
    hw = float(sps.t.ppf(0.5 + level / 2.0, df=df) * se)
    return VrEstimate(value, hw, n_units, "independent", level)


def variance_reduction_factor(baseline: VrEstimate, reduced: VrEstimate) -> float:
    """How many naive replications one variance-reduced unit is worth.

    The squared half-width ratio ``(hw_baseline / hw_reduced)^2`` —
    e.g. 4.0 means the reduced estimator needs ~4x fewer units for the
    same interval. NaN when either half-width is unusable.
    """
    if (
        not np.isfinite(baseline.halfwidth)
        or not np.isfinite(reduced.halfwidth)
        or reduced.halfwidth <= 0.0
    ):
        return float("nan")
    return float((baseline.halfwidth / reduced.halfwidth) ** 2)
