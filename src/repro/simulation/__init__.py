"""Discrete-event simulator for priority-type clusters.

Built from scratch (binary-heap event list, split-stream RNG,
preemptive/non-preemptive multi-server priority stations, tandem
routing, energy metering, warmup-aware statistics) to validate every
analytic quantity in :mod:`repro.core` — the methodology the paper uses
to demonstrate its approaches are "efficient and accurate".

High-level entry points:

* :func:`simulate` — one replication of a cluster + workload.
* :func:`simulate_replications` — independent replications with
  aggregate means and confidence intervals; ``n_jobs`` parallelizes
  over a process pool and ``cache_dir`` memoizes finished replications
  on disk (results bit-identical either way).
* :func:`simulate_replications_adaptive` — the same engine under a
  sequential stopping rule: replicate in rounds until a
  :class:`PrecisionTarget` (relative CI half-widths per metric) is met.
* :func:`compare_scenarios` — two scenarios under common random
  numbers with paired-t difference intervals.
* :func:`run_fleet` — fleet-scale (scenario × replication) sweeps
  through a work-stealing process pool into a columnar
  :class:`FleetStore`.
* :class:`SimulationCache` — the content-addressed replication cache.
"""

from repro.simulation.rng import AntitheticSeed, BlockCursor, CoupledGenerator, RngStreams
from repro.simulation.stats import Welford, batch_means_ci, confidence_halfwidth
from repro.simulation.simulator import SimulationResult, simulate
from repro.simulation.cache import CacheUnsupportedError, SimulationCache, simulation_fingerprint
from repro.simulation.parallel import (
    ProcessPoolBackend,
    ReplicationTiming,
    SerialBackend,
    resolve_n_jobs,
)
from repro.simulation.replications import ReplicatedResult, simulate_replications
from repro.simulation.vrt import (
    VrEstimate,
    antithetic_estimate,
    control_variate_estimate,
    independent_difference,
    jackknife_cv_coefficients,
    naive_estimate,
    paired_difference,
    variance_reduction_factor,
)
from repro.simulation.adaptive import (
    PrecisionTarget,
    Scenario,
    ScenarioComparison,
    compare_scenarios,
    simulate_replications_adaptive,
)
from repro.simulation.fleet import FleetScenario, FleetSummary, fleet_columns, run_fleet
from repro.simulation.results_store import FleetStore, parquet_available

__all__ = [
    "AntitheticSeed",
    "BlockCursor",
    "CoupledGenerator",
    "RngStreams",
    "Welford",
    "confidence_halfwidth",
    "batch_means_ci",
    "SimulationResult",
    "simulate",
    "ReplicatedResult",
    "simulate_replications",
    "simulate_replications_adaptive",
    "PrecisionTarget",
    "Scenario",
    "ScenarioComparison",
    "compare_scenarios",
    "VrEstimate",
    "naive_estimate",
    "antithetic_estimate",
    "control_variate_estimate",
    "jackknife_cv_coefficients",
    "paired_difference",
    "independent_difference",
    "variance_reduction_factor",
    "SimulationCache",
    "CacheUnsupportedError",
    "simulation_fingerprint",
    "ReplicationTiming",
    "SerialBackend",
    "ProcessPoolBackend",
    "resolve_n_jobs",
    "FleetScenario",
    "FleetSummary",
    "FleetStore",
    "fleet_columns",
    "run_fleet",
    "parquet_available",
]
