"""Pluggable execution backends for independent replications.

The replication manager (:mod:`repro.simulation.replications`) needs to
run ``n`` statistically independent :func:`repro.simulation.simulator.simulate`
calls. Each call is a pure function of its
:class:`numpy.random.SeedSequence`, so the calls can execute anywhere —
in-process, across a process pool, eventually across machines — without
changing the numbers. This module owns that "anywhere": a tiny backend
protocol with two implementations,

* :class:`SerialBackend` — a plain in-process loop (zero overhead, the
  default), and
* :class:`ProcessPoolBackend` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out for multi-core machines.

Both return results **indexed by replication number**, so aggregation
downstream is bit-identical regardless of worker count or completion
order. Per-replication wall time and event throughput are measured
inside the worker and travel back with the result.

Both backends also expose :meth:`~SerialBackend.session` for
**incremental dispatch**: the adaptive engine
(:mod:`repro.simulation.adaptive`) submits one *round* of payloads,
collects it, decides whether the precision target is met, and submits
the next round — all against one live worker pool instead of paying
process start-up per round.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import ModelValidationError
from repro.simulation.simulator import SimulationResult, simulate

__all__ = [
    "ReplicationTiming",
    "SerialBackend",
    "ProcessPoolBackend",
    "SerialSession",
    "PoolSession",
    "resolve_n_jobs",
    "get_backend",
    "payload_is_picklable",
]


@dataclass
class ReplicationTiming:
    """Observability record for one replication.

    ``events_per_sec`` is the simulator's event-loop throughput
    (``meta["n_events"] / wall_time_s``); ``cached`` marks results that
    were loaded from the on-disk cache instead of being simulated.
    """

    index: int
    wall_time_s: float
    n_events: int
    cached: bool = False

    @property
    def events_per_sec(self) -> float:
        """Event-loop throughput of this replication (0 when cached)."""
        if self.wall_time_s <= 0.0 or self.cached:
            return 0.0
        return self.n_events / self.wall_time_s

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view for ``ReplicatedResult.meta``."""
        return {
            "index": self.index,
            "wall_time_s": self.wall_time_s,
            "n_events": self.n_events,
            "events_per_sec": self.events_per_sec,
            "cached": self.cached,
        }


def _run_one(payload: tuple[int, dict[str, Any]]) -> tuple[int, SimulationResult, float]:
    """Worker entry point: run one replication, timed.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can
    pickle it; ``payload`` is ``(replication_index, simulate_kwargs)``.
    """
    index, kwargs = payload
    t0 = time.perf_counter()
    result = simulate(**kwargs)
    return index, result, time.perf_counter() - t0


def _warm_worker(backend: str | None = None, warned: tuple[str, ...] = ()) -> None:
    """Process-pool initializer: pay per-process warm-up once, up front.

    A fresh worker's first replication otherwise absorbs every one-time
    cost inside its timed window: importing the distribution and
    statistics modules, priming the Student-t quantile memo the CI
    math uses, and — when ``REPRO_SIM_BACKEND`` selects the compiled
    backend — building/loading the C kernel shared object. This is
    pure warm-up: it instantiates no generators and draws no random
    numbers, so replication results are bit-identical with and without
    it (``tests/test_compiled_backend.py`` holds it to that).

    ``backend`` pins ``REPRO_SIM_BACKEND`` in the worker explicitly so
    the selection survives spawn-based start methods that do not
    inherit the parent's mutated environment.

    ``warned`` seeds the worker's :class:`CompiledFallbackWarning`
    dedup memory with the fallback reasons the parent process already
    surfaced, so a pool does not re-emit one warning per worker for a
    condition the user has already been told about (once per *pool*,
    not once per worker).
    """
    if backend is not None:
        os.environ["REPRO_SIM_BACKEND"] = backend
    import repro.distributions  # noqa: F401  (sampler classes)
    import repro.simulation.stats  # noqa: F401  (Welford / CI math)

    if warned:
        from repro.simulation import compiled

        compiled._warned.update(warned)
    if os.environ.get("REPRO_SIM_BACKEND", "python") != "python":
        from repro.simulation.compiled import warm_kernel

        warm_kernel()


def _warned_snapshot() -> tuple[str, ...]:
    """The parent's already-surfaced fallback reasons, for worker
    inheritance — without forcing the compiled module to import."""
    compiled = sys.modules.get("repro.simulation.compiled")
    if compiled is None:
        return ()
    return tuple(sorted(compiled._warned))


def payload_is_picklable(payload: Any) -> bool:
    """Whether a replication payload can cross a process boundary.

    Custom arrival processes built on closures (e.g.
    :class:`repro.workload.arrivals.NonHomogeneousPoisson` with a
    lambda rate function) cannot be pickled; the replication manager
    falls back to the serial backend for those instead of crashing.
    """
    try:
        pickle.dumps(payload)
        return True
    except Exception:
        return False


class SerialSession:
    """Incremental-dispatch session over the in-process loop.

    Context manager; :meth:`run` may be called any number of times.
    """

    def __enter__(self) -> "SerialSession":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def run(
        self,
        payloads: list[tuple[int, dict[str, Any]]],
        on_done: Callable[[int, SimulationResult, float], None] | None = None,
    ) -> dict[int, tuple[SimulationResult, float]]:
        """Execute one round of payloads; returns ``{index: (result, wall_s)}``."""
        out: dict[int, tuple[SimulationResult, float]] = {}
        for payload in payloads:
            index, result, wall = _run_one(payload)
            out[index] = (result, wall)
            if on_done is not None:
                on_done(index, result, wall)
        return out


class PoolSession:
    """Incremental-dispatch session over one live process pool.

    The executor is created lazily on the first non-empty round and
    reused by every subsequent :meth:`run` call, so a multi-round
    adaptive run pays worker start-up once, not per round. With
    ``warm_start`` (the default) each worker runs :func:`_warm_worker`
    on start-up, so one-time import/kernel-build costs never land
    inside a replication's timed window; results are identical either
    way.
    """

    def __init__(self, n_workers: int, warm_start: bool = True):
        self.n_workers = n_workers
        self.warm_start = warm_start
        self._pool: ProcessPoolExecutor | None = None

    def __enter__(self) -> "PoolSession":
        return self

    def __exit__(self, *exc) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def run(
        self,
        payloads: list[tuple[int, dict[str, Any]]],
        on_done: Callable[[int, SimulationResult, float], None] | None = None,
    ) -> dict[int, tuple[SimulationResult, float]]:
        """Execute one round of payloads; returns ``{index: (result, wall_s)}``.

        Blocks until the whole round finishes — the adaptive stopping
        decision needs the round's results before choosing whether to
        submit another.
        """
        out: dict[int, tuple[SimulationResult, float]] = {}
        if not payloads:
            return out
        if self._pool is None:
            if self.warm_start:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    initializer=_warm_worker,
                    initargs=(
                        os.environ.get("REPRO_SIM_BACKEND"),
                        _warned_snapshot(),
                    ),
                )
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
        pending = {self._pool.submit(_run_one, p) for p in payloads}
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                index, result, wall = fut.result()
                out[index] = (result, wall)
                if on_done is not None:
                    on_done(index, result, wall)
        return out


class SerialBackend:
    """Run replications one after another in the calling process."""

    name = "serial"

    def run(
        self,
        payloads: list[tuple[int, dict[str, Any]]],
        on_done: Callable[[int, SimulationResult, float], None] | None = None,
    ) -> dict[int, tuple[SimulationResult, float]]:
        """Execute every payload; returns ``{index: (result, wall_s)}``."""
        return SerialSession().run(payloads, on_done)

    def session(self) -> SerialSession:
        """A (trivial) incremental-dispatch session."""
        return SerialSession()


class ProcessPoolBackend:
    """Fan replications out over a :class:`ProcessPoolExecutor`.

    Results are keyed by replication index, so callers aggregate in a
    deterministic order no matter which worker finishes first.
    """

    name = "process"

    def __init__(self, n_workers: int, warm_start: bool = True):
        if n_workers < 1:
            raise ModelValidationError(f"need at least one worker, got {n_workers}")
        self.n_workers = n_workers
        self.warm_start = warm_start

    def run(
        self,
        payloads: list[tuple[int, dict[str, Any]]],
        on_done: Callable[[int, SimulationResult, float], None] | None = None,
    ) -> dict[int, tuple[SimulationResult, float]]:
        """Execute every payload; returns ``{index: (result, wall_s)}``."""
        # One-shot runs know the payload count up front, so the pool is
        # right-sized; a session cannot and always uses n_workers.
        with PoolSession(
            min(self.n_workers, max(len(payloads), 1)), warm_start=self.warm_start
        ) as session:
            return session.run(payloads, on_done)

    def session(self) -> PoolSession:
        """An incremental-dispatch session with a persistent pool."""
        return PoolSession(self.n_workers, warm_start=self.warm_start)


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request into a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` (or ``0``) means "all
    cores"; anything else is taken literally.
    """
    if n_jobs is None:
        return 1
    if int(n_jobs) != n_jobs:
        raise ModelValidationError(f"n_jobs must be an integer, got {n_jobs}")
    n_jobs = int(n_jobs)
    if n_jobs in (0, -1):
        return os.cpu_count() or 1
    if n_jobs < -1:
        raise ModelValidationError(f"n_jobs must be >= -1, got {n_jobs}")
    return n_jobs


def get_backend(n_jobs: int | None) -> SerialBackend | ProcessPoolBackend:
    """The backend matching a normalized ``n_jobs`` request."""
    n = resolve_n_jobs(n_jobs)
    if n <= 1:
        return SerialBackend()
    return ProcessPoolBackend(n)
