"""The job (customer request) flowing through the simulated cluster."""

from __future__ import annotations

__all__ = ["Job"]


class Job:
    """One request of one customer class.

    Attributes
    ----------
    jid:
        Unique sequence number (also the FCFS tie-breaker).
    cls:
        Class index, 0 = highest priority.
    arrival:
        Time the request entered the cluster.
    route:
        Tuple of station indices to visit, in order.
    hop:
        Index into ``route`` of the current station.
    station_arrival:
        Time the job arrived at its current station.
    remaining:
        Remaining service time at the current station; ``None`` until
        service first starts (sampled lazily), then counted down across
        preemptions (preemptive-resume semantics).
    service_total:
        The full sampled service time at the current station (for
        wait = sojourn − service accounting).
    """

    __slots__ = (
        "jid",
        "cls",
        "arrival",
        "route",
        "hop",
        "station_arrival",
        "remaining",
        "service_total",
    )

    def __init__(self, jid: int, cls: int, arrival: float, route: tuple[int, ...]):
        self.jid = jid
        self.cls = cls
        self.arrival = arrival
        self.route = route
        self.hop = 0
        self.station_arrival = arrival
        self.remaining: float | None = None
        self.service_total = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job(jid={self.jid}, cls={self.cls}, hop={self.hop}/{len(self.route)})"
