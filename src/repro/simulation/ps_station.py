"""Simulated egalitarian processor-sharing station.

All jobs present share the station's total capacity equally: with
``n`` jobs on ``c`` speed-``s`` servers, each job progresses at rate
``s · min(1, c/n)`` (service times are sampled at speed ``s`` already,
so the internal rate is ``min(1, c/n)``).

Event handling is exact, not quantum-based: the station keeps each
job's remaining service time, elapses all of them lazily on every
event, and schedules only the *next* completion. Any arrival or
completion changes every job's finish time, so the previously
scheduled completion is cancelled by bumping the station's epoch —
the same O(1) cancellation trick the priority station uses for
re-arming its next-completion entry.
"""

from __future__ import annotations

from collections.abc import Callable
from heapq import heappush

from repro.exceptions import SimulationError
from repro.simulation.job import Job
from repro.simulation.station import COMPLETION

__all__ = ["PSStation"]


class PSStation:
    """Processor-sharing counterpart of
    :class:`repro.simulation.station.SimStation` (same engine-facing
    interface: ``arrive``, ``complete``, ``set_window``,
    ``close_open_intervals``)."""

    __slots__ = (
        "index",
        "capacity",
        "samplers",
        "heap",
        "next_seq",
        "jobs",
        "sched_epoch",
        "last_t",
        "t0",
        "t1",
        "busy_total",
        "class_busy_totals",
    )

    def __init__(
        self,
        index: int,
        num_classes: int,
        servers: int,
        samplers: list[Callable[[], float]],
        heap: list,
        next_seq: Callable[[], int],
    ):
        self.index = index
        self.capacity = servers
        self.samplers = samplers
        self.heap = heap
        self.next_seq = next_seq
        self.jobs: list[Job] = []
        self.sched_epoch = 0
        self.last_t = 0.0
        # Windowed busy-time accumulation (see SimStation.set_window).
        self.t0 = 0.0
        self.t1 = float("inf")
        self.busy_total = 0.0
        self.class_busy_totals = [0.0] * num_classes

    def set_window(self, t0: float, t1: float) -> None:
        """Clip busy-time accounting to ``[t0, t1]``."""
        if t1 <= t0:
            raise SimulationError(f"measurement window must have t1 > t0, got [{t0}, {t1}]")
        self.t0 = t0
        self.t1 = t1

    # -- engine interface -------------------------------------------------
    def arrive(self, t: float, job: Job) -> bool:
        """A job joins the sharing pool (PS never rejects)."""
        self._elapse(t)
        job.station_arrival = t
        job.remaining = self.samplers[job.cls]()
        job.service_total = job.remaining
        self.jobs.append(job)
        self._reschedule(t)
        return True

    def complete(self, t: float, epoch: int) -> Job | None:
        """Handle the scheduled next-completion event (stale events,
        cancelled by later arrivals, return ``None``)."""
        if epoch != self.sched_epoch:
            return None
        self._elapse(t)
        if not self.jobs:  # pragma: no cover - engine invariant
            raise SimulationError(f"PS completion with no jobs at station {self.index}")
        jobs = self.jobs
        idx = min(range(len(jobs)), key=lambda i: jobs[i].remaining)
        job = jobs.pop(idx)
        self._reschedule(t)
        return job

    def close_open_intervals(self, t: float) -> None:
        """Account busy time of jobs still in the pool at the horizon."""
        self._elapse(t)

    # -- internals ---------------------------------------------------------
    def _rate(self) -> float:
        """Per-job progress rate: min(1, c/n)."""
        n = len(self.jobs)
        return 1.0 if n <= self.capacity else self.capacity / n

    def _elapse(self, t: float) -> None:
        dt = t - self.last_t
        if dt > 0.0 and self.jobs:
            n = len(self.jobs)
            cap = self.capacity
            rate = 1.0 if n <= cap else cap / n
            # Inline windowed accumulation — identical clip-then-add
            # arithmetic to the BusyIntegrator calls it replaced.
            lo = self.last_t if self.last_t > self.t0 else self.t0
            hi = t if t < self.t1 else self.t1
            if hi > lo:
                w = hi - lo
                self.busy_total += w * (n if n < cap else cap)
                counts: dict[int, int] = {}
                for job in self.jobs:
                    counts[job.cls] = counts.get(job.cls, 0) + 1
                class_busy_totals = self.class_busy_totals
                for cls, n_k in counts.items():
                    class_busy_totals[cls] += w * (n_k * rate)
            dec = dt * rate
            for job in self.jobs:
                r = job.remaining - dec
                job.remaining = r if r > 0.0 else 0.0
        self.last_t = t

    def _reschedule(self, t: float) -> None:
        self.sched_epoch += 1
        if self.jobs:
            rate = self._rate()
            t_next = min(job.remaining for job in self.jobs) / rate
            heappush(
                self.heap,
                (t + t_next, self.next_seq(), COMPLETION, self.index, self.sched_epoch),
            )
