"""Simulated egalitarian processor-sharing station.

All jobs present share the station's total capacity equally: with
``n`` jobs on ``c`` speed-``s`` servers, each job progresses at rate
``s · min(1, c/n)`` (service times are sampled at speed ``s`` already,
so the internal rate is ``min(1, c/n)``).

Event handling is exact, not quantum-based: the station keeps each
job's remaining service time, elapses all of them lazily on every
event, and schedules only the *next* completion. Any arrival or
completion changes every job's finish time, so the previously
scheduled completion is cancelled by bumping the station's epoch —
the same O(1) cancellation trick the priority station uses for
preemption.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import SimulationError
from repro.simulation.job import Job
from repro.simulation.stats import BusyIntegrator

__all__ = ["PSStation"]

ScheduleFn = Callable[[float, int, int, int], None]


class PSStation:
    """Processor-sharing counterpart of
    :class:`repro.simulation.station.SimStation` (same engine-facing
    interface: ``arrive``, ``complete``, ``close_open_intervals``)."""

    def __init__(
        self,
        index: int,
        num_classes: int,
        servers: int,
        samplers: list[Callable[[], float]],
        schedule: ScheduleFn,
    ):
        self.index = index
        self.capacity = servers
        self.samplers = samplers
        self.schedule = schedule
        self.jobs: list[Job] = []
        self.epoch = 0
        self.last_t = 0.0
        # Statistics, attached by the engine before the run starts.
        self.busy: BusyIntegrator | None = None
        self.class_busy: list[BusyIntegrator] | None = None

    # -- engine interface -------------------------------------------------
    def arrive(self, t: float, job: Job) -> bool:
        """A job joins the sharing pool (PS never rejects)."""
        self._elapse(t)
        job.station_arrival = t
        job.remaining = float(self.samplers[job.cls]())
        job.service_total = job.remaining
        self.jobs.append(job)
        self._reschedule(t)
        return True

    def complete(self, t: float, server_idx: int, epoch: int) -> Job | None:
        """Handle the scheduled next-completion event (stale events,
        cancelled by later arrivals, return ``None``)."""
        if epoch != self.epoch:
            return None
        self._elapse(t)
        if not self.jobs:  # pragma: no cover - engine invariant
            raise SimulationError(f"PS completion with no jobs at station {self.index}")
        idx = min(range(len(self.jobs)), key=lambda i: self.jobs[i].remaining)
        job = self.jobs.pop(idx)
        self._reschedule(t)
        return job

    def close_open_intervals(self, t: float) -> None:
        """Account busy time of jobs still in the pool at the horizon."""
        self._elapse(t)

    # -- internals ---------------------------------------------------------
    def _rate(self) -> float:
        """Per-job progress rate: min(1, c/n)."""
        n = len(self.jobs)
        return 1.0 if n <= self.capacity else self.capacity / n

    def _elapse(self, t: float) -> None:
        dt = t - self.last_t
        if dt > 0.0 and self.jobs:
            n = len(self.jobs)
            rate = self._rate()
            if self.busy is not None:
                self.busy.add_weighted(self.last_t, t, min(n, self.capacity))
            if self.class_busy is not None:
                counts: dict[int, int] = {}
                for job in self.jobs:
                    counts[job.cls] = counts.get(job.cls, 0) + 1
                for cls, n_k in counts.items():
                    self.class_busy[cls].add_weighted(self.last_t, t, n_k * rate)
            dec = dt * rate
            for job in self.jobs:
                job.remaining = max(job.remaining - dec, 0.0)
        self.last_t = t

    def _reschedule(self, t: float) -> None:
        self.epoch += 1
        if self.jobs:
            rate = self._rate()
            t_next = min(job.remaining for job in self.jobs) / rate
            self.schedule(t + t_next, self.index, 0, self.epoch)
