"""Content-addressed on-disk cache for simulation replications.

A replication is a pure function of ``(cluster, workload, horizon,
warmup_fraction, seed, options)``, so its result can be memoized: the
cache key is a SHA-256 hash of a *canonical JSON fingerprint* of those
inputs, and the value is the pickled
:class:`repro.simulation.simulator.SimulationResult`. Re-running an
experiment suite or benchmark then skips every already-computed
replication — per-replication granularity means even *partially*
overlapping sweeps (same cluster, more replications) reuse work.

Design points:

* **Stable keys.** The fingerprint walks model objects (tiers,
  distributions, arrival processes, routings) down to primitives and
  serializes with ``json.dumps(sort_keys=True)`` — no ``repr`` memory
  addresses, no pickle-protocol drift. Two structurally equal
  configurations built independently hash identically.
* **Conservative misses over false hits.** Objects the fingerprint
  cannot canonicalize (e.g. closure-based rate functions) raise
  :class:`CacheUnsupportedError`; the caller skips the cache for that
  run. Distinct types with equal parameters get distinct keys.
* **Corruption-safe.** Entries store the full fingerprint next to the
  result; a hash collision, truncated file, or unpicklable payload is
  treated as a miss and recomputed (then overwritten atomically via
  ``os.replace``).

Layout: ``<cache_dir>/<key[:2]>/<key>.pkl`` (fan-out over 256 shard
directories keeps any one directory small for big sweeps).
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pickle
import types
from pathlib import Path
from typing import Any

import numpy as np

from repro.simulation.simulator import SimulationResult

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheUnsupportedError",
    "SimulationCache",
    "simulation_fingerprint",
]

# Bump when the simulator's output semantics change so stale entries
# computed by an older engine can never be returned as fresh.
CACHE_FORMAT_VERSION = 1


class CacheUnsupportedError(TypeError):
    """Raised when an input cannot be canonically fingerprinted.

    Callers treat this as "run uncached", never as an error in the
    simulation itself.
    """


def _jsonable(obj: Any) -> Any:
    """Recursively reduce a model object to JSON-serializable primitives.

    Handles the library's configuration vocabulary (dataclasses, plain
    parameter objects, NumPy scalars/arrays, containers). Unknown
    callables and file handles raise :class:`CacheUnsupportedError`.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() round-trips doubles exactly; json.dumps uses it too.
        return obj
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": list(obj.shape), "data": obj.ravel().tolist()}
    if isinstance(obj, np.random.SeedSequence):
        entropy = obj.entropy
        return {
            "__seed__": _jsonable(entropy),
            "spawn_key": [int(k) for k in obj.spawn_key],
            "pool_size": int(obj.pool_size),
        }
    if isinstance(obj, (list, tuple)):
        return [_jsonable(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(
        obj,
        (
            types.FunctionType,
            types.LambdaType,
            types.MethodType,
            types.BuiltinFunctionType,
            functools.partial,
        ),
    ):
        # A function's identity cannot be hashed stably (its repr holds
        # a memory address and its code can change without renaming).
        raise CacheUnsupportedError(f"cannot fingerprint callable {obj!r}")
    # Model objects: type identity + instance state, recursively. The
    # type name disambiguates e.g. a Gamma from a Weibull with equal
    # moments; the state captures every parameter.
    state = getattr(obj, "__dict__", None)
    if state is None:
        raise CacheUnsupportedError(
            f"cannot fingerprint {type(obj).__name__!r} (no __dict__); "
            "run with the cache disabled"
        )
    if any(callable(v) for v in state.values()):
        raise CacheUnsupportedError(
            f"{type(obj).__name__} holds a callable attribute; its identity "
            "cannot be hashed stably — run with the cache disabled"
        )
    return {
        "__type__": f"{type(obj).__module__}.{type(obj).__qualname__}",
        "state": {k: _jsonable(v) for k, v in state.items()},
    }


def simulation_fingerprint(
    cluster,
    workload,
    horizon: float,
    warmup_fraction: float,
    seed,
    *,
    arrival_processes=None,
    routing=None,
    allow_unstable: bool = False,
    collect_delay_samples: bool = False,
    collect_job_log: bool = False,
) -> str:
    """Canonical JSON string identifying one replication's inputs.

    Raises
    ------
    CacheUnsupportedError
        If any input cannot be reduced to stable primitives.
    """
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "cluster": _jsonable(cluster),
        "workload": _jsonable(workload),
        "horizon": float(horizon),
        "warmup_fraction": float(warmup_fraction),
        "seed": _jsonable(seed),
        "arrival_processes": _jsonable(arrival_processes),
        "routing": _jsonable(routing),
        "allow_unstable": bool(allow_unstable),
        "collect_delay_samples": bool(collect_delay_samples),
        "collect_job_log": bool(collect_job_log),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class SimulationCache:
    """Content-addressed store of :class:`SimulationResult` objects.

    Examples
    --------
    >>> import tempfile
    >>> cache = SimulationCache(tempfile.mkdtemp())
    >>> cache.hits, cache.misses
    (0, 0)
    """

    def __init__(self, cache_dir: str | Path):
        self.root = Path(cache_dir)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(fingerprint: str) -> str:
        """SHA-256 hex key of a canonical fingerprint string."""
        return hashlib.sha256(fingerprint.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def load(self, fingerprint: str) -> SimulationResult | None:
        """The cached result for ``fingerprint``, or ``None`` on miss.

        A corrupted, truncated, or fingerprint-mismatched entry counts
        as a miss (the caller recomputes and overwrites it).
        """
        path = self._path(self.key_for(fingerprint))
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("fingerprint") != fingerprint
            or not isinstance(entry.get("result"), SimulationResult)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def store(self, fingerprint: str, result: SimulationResult) -> None:
        """Persist a result atomically under its fingerprint's key."""
        key = self.key_for(fingerprint)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump({"fingerprint": fingerprint, "result": result}, fh)
        os.replace(tmp, path)

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        for p in self.root.glob("*/*.pkl"):
            p.unlink(missing_ok=True)
            n += 1
        return n
