"""Adaptive precision-targeted replication engine.

The validation experiments used to burn a *fixed* replication count per
scenario regardless of the precision actually achieved. This module
replaces that with a sequential stopping rule: run replications in
rounds through the incremental-dispatch backend sessions
(:mod:`repro.simulation.parallel`), after each round compute per-metric
relative confidence half-widths with a variance-reduced estimator
(:mod:`repro.simulation.vrt`), and stop as soon as a
:class:`PrecisionTarget` is met — or a hard ``max_replications`` cap is
hit.

**Reproducibility contract.** The engine pre-commits to the ordered
``RngStreams.replication_seeds`` sequence of the cap and always
aggregates the *smallest satisfying prefix* of it: after any round it
scans prefix lengths ``n = min_replications .. n_done`` in order and
stops at the first ``n`` whose estimates meet every target. Because the
scan starts from the beginning each round, the chosen ``n`` — and hence
every exported aggregate — is invariant to the round size, the worker
count (``n_jobs``) and completion order. Exported aggregates are the
plain prefix means of :func:`repro.simulation.replications._aggregate`
(bit-identical to a fixed-count run of ``n`` replications at the same
seed); the variance-reduced estimates only decide *when to stop* and
are reported in ``meta["adaptive"]``.

**Estimators.** ``estimator="cv"`` (default) corrects each target
metric with a control variate whose mean is known *analytically* from
the paper's M/G/1 model (:class:`repro.core.batch_eval.BatchEvaluator`):
simulated average power controls the delay metrics, simulated mean
utilization controls the power metric. ``"antithetic"`` simulates
:meth:`~repro.simulation.rng.RngStreams.replication_seed_pairs` pairs
and treats pair means as the iid unit. ``"naive"`` uses the plain
t-interval (useful as a baseline — it makes the engine a pure
sequential stopping rule with no variance reduction).

:func:`compare_scenarios` is the CRN companion: it simulates two
scenarios under **common random numbers** (same master seed → the
:class:`~repro.simulation.rng.RngStreams` CRN contract aligns their
streams replication by replication) and reports paired-t difference
intervals next to the independent-streams Welch intervals they beat.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro import obs
from repro.cluster.model import ClusterModel
from repro.core.batch_eval import BatchEvaluator
from repro.exceptions import ModelValidationError
from repro.simulation.cache import SimulationCache
from repro.simulation.parallel import ReplicationTiming
from repro.simulation.replications import (
    ReplicatedResult,
    _aggregate,
    _ReplicationRunner,
    _resolve_cache,
    _sim_kwargs_common,
    simulate_replications,
)
from repro.simulation.rng import RngStreams
from repro.simulation.simulator import SimulationResult
from repro.simulation.vrt import (
    VrEstimate,
    antithetic_estimate,
    control_variate_estimate,
    independent_difference,
    naive_estimate,
    paired_difference,
    variance_reduction_factor,
)
from repro.workload.arrivals import ArrivalProcess
from repro.workload.classes import Workload

__all__ = [
    "DEFAULT_METRICS",
    "PrecisionTarget",
    "Scenario",
    "ScenarioComparison",
    "simulate_replications_adaptive",
    "compare_scenarios",
]

#: Metrics the precision target applies to when given a scalar
#: tolerance — the two headline quantities of every accuracy table.
DEFAULT_METRICS = ("mean_delay", "average_power")

_ESTIMATORS = ("naive", "cv", "antithetic")


@dataclass(frozen=True)
class PrecisionTarget:
    """When the adaptive engine may stop.

    Parameters
    ----------
    rel_ci:
        Relative CI half-width target(s): a scalar applies to every
        metric in :data:`DEFAULT_METRICS`; a mapping names its metrics
        explicitly (``"mean_delay"``, ``"average_power"`` or
        ``"delay/<class>"``).
    level:
        Confidence level of the half-widths (default 95%).
    min_replications:
        Never stop on fewer units than this (a variance estimate from
        2–3 replications is too noisy to trust a stopping decision to).
    max_replications:
        Hard cap on *simulated replications* (pair members count
        individually under the antithetic estimator). Reaching it stops
        the engine with ``meta["adaptive"]["target_met"] == False``.
    round_size:
        Replications added per round after the first (the first round
        runs ``min_replications``). Purely a batching knob: the chosen
        prefix — and every exported number — is invariant to it.
    estimator:
        ``"cv"`` (default), ``"antithetic"`` or ``"naive"`` — the
        stopping estimator, see the module docstring.
    """

    rel_ci: float | Mapping[str, float] = 0.02
    level: float = 0.95
    min_replications: int = 4
    max_replications: int = 64
    round_size: int = 4
    estimator: str = "cv"

    def __post_init__(self) -> None:
        if not 0.0 < self.level < 1.0:
            raise ModelValidationError(f"confidence level must be in (0, 1), got {self.level}")
        if self.estimator not in _ESTIMATORS:
            raise ModelValidationError(
                f"estimator must be one of {_ESTIMATORS}, got {self.estimator!r}"
            )
        if self.min_replications < 2:
            raise ModelValidationError(
                f"min_replications must be >= 2, got {self.min_replications}"
            )
        if self.max_replications < self.min_replications:
            raise ModelValidationError(
                f"max_replications ({self.max_replications}) must be >= "
                f"min_replications ({self.min_replications})"
            )
        if self.round_size < 1:
            raise ModelValidationError(f"round_size must be >= 1, got {self.round_size}")
        for metric, tol in self.metric_targets().items():
            if not 0.0 < tol < 1.0:
                raise ModelValidationError(
                    f"relative CI target for {metric!r} must be in (0, 1), got {tol}"
                )

    def metric_targets(self) -> dict[str, float]:
        """The explicit ``{metric: rel_ci}`` mapping this target means."""
        if isinstance(self.rel_ci, Mapping):
            if not self.rel_ci:
                raise ModelValidationError("precision target needs at least one metric")
            return {str(k): float(v) for k, v in self.rel_ci.items()}
        return {m: float(self.rel_ci) for m in DEFAULT_METRICS}

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view for telemetry and ``meta`` records."""
        return {
            "rel_ci": self.metric_targets(),
            "level": self.level,
            "min_replications": self.min_replications,
            "max_replications": self.max_replications,
            "round_size": self.round_size,
            "estimator": self.estimator,
        }


def _metric_values(
    runs: list[SimulationResult], metric: str, class_names: tuple[str, ...]
) -> np.ndarray:
    """Per-replication values of one named metric, in run order."""
    if metric == "mean_delay":
        return np.array([r.mean_delay for r in runs])
    if metric == "average_power":
        return np.array([r.average_power for r in runs])
    if metric.startswith("delay/"):
        name = metric.split("/", 1)[1]
        if name not in class_names:
            raise ModelValidationError(
                f"unknown class {name!r} in metric {metric!r}; have {class_names}"
            )
        k = class_names.index(name)
        return np.array([r.delays[k] for r in runs])
    raise ModelValidationError(
        f"unknown metric {metric!r}; supported: 'mean_delay', 'average_power', 'delay/<class>'"
    )


class _ControlPlan:
    """Analytic control variates for the ``cv`` stopping estimator.

    Every replication simulates *all* metrics at once, so a correlated
    companion for each target metric comes for free from the same runs:

    * delay metrics ← the replication's **average power** (both are
      driven by the realized traffic volume), with the known mean
      :meth:`BatchEvaluator.average_power` at the scenario's speeds;
    * the power metric ← the replication's **mean utilization**, with
      known mean ``mean_i(R_i / (c_i s_i))`` from the same kernels.

    Configurations the analytic model does not describe exactly
    (arrival-process overrides, custom routing) get no plan — the
    engine falls back to naive stopping estimates there rather than
    trusting a control mean that is no longer the true expectation.
    """

    def __init__(self, cluster: ClusterModel, workload: Workload):
        ev = BatchEvaluator(cluster, workload)
        speeds = np.asarray(cluster.speeds, dtype=float)
        self.power_mean = float(ev.average_power(speeds)[0])
        rho = np.array(
            [tk.work_rate for tk in ev.kernels]
        ) / (speeds * np.asarray(cluster.server_counts, dtype=float))
        self.utilization_mean = float(rho.mean())

    def control_for(self, metric: str, runs: list[SimulationResult]) -> tuple[np.ndarray, float]:
        """``(control values, known control mean)`` for one metric."""
        if metric == "average_power":
            return (
                np.array([float(np.mean(r.utilizations)) for r in runs]),
                self.utilization_mean,
            )
        return np.array([r.average_power for r in runs]), self.power_mean


def _make_control_plan(
    cluster: ClusterModel,
    workload: Workload,
    arrival_processes: list[ArrivalProcess] | None,
    routing: list | None,
) -> _ControlPlan | None:
    if arrival_processes is not None or routing is not None:
        return None
    try:
        return _ControlPlan(cluster, workload)
    except ModelValidationError:
        return None


def _prefix_estimates(
    runs: list[SimulationResult],
    metrics: dict[str, float],
    target: PrecisionTarget,
    plan: _ControlPlan | None,
    class_names: tuple[str, ...],
) -> dict[str, VrEstimate]:
    """Stopping estimates for every target metric over one run prefix."""
    out: dict[str, VrEstimate] = {}
    for metric in metrics:
        values = _metric_values(runs, metric, class_names)
        if target.estimator == "antithetic":
            out[metric] = antithetic_estimate(values[0::2], values[1::2], target.level)
        elif target.estimator == "cv" and plan is not None and values.size >= 3:
            controls, mu = plan.control_for(metric, runs)
            out[metric] = control_variate_estimate(values, controls, mu, target.level)
        else:
            out[metric] = naive_estimate(values, target.level)
    return out


def _satisfied(estimates: dict[str, VrEstimate], metrics: dict[str, float]) -> bool:
    return all(estimates[m].rel_halfwidth <= tol for m, tol in metrics.items())


def simulate_replications_adaptive(
    cluster: ClusterModel,
    workload: Workload,
    horizon: float,
    target: PrecisionTarget | None = None,
    warmup_fraction: float = 0.1,
    seed: int = 0,
    arrival_processes: list[ArrivalProcess] | None = None,
    collect_delay_samples: bool = False,
    *,
    routing: list | None = None,
    allow_unstable: bool = False,
    collect_job_log: bool = False,
    n_jobs: int | None = None,
    cache_dir: str | SimulationCache | None = None,
    progress: Callable[[ReplicationTiming, int, int], None] | None = None,
) -> ReplicatedResult:
    """Replicate until ``target`` precision is reached (or its cap).

    Drop-in sibling of
    :func:`repro.simulation.replications.simulate_replications`: same
    configuration surface, same :class:`ReplicatedResult`, same
    bit-identical-for-any-``n_jobs`` guarantee — but the replication
    count is chosen by the engine. ``meta["adaptive"]`` records the
    full round trace: per-round estimates, the stopping decision, the
    replications/events saved against the cap and the measured
    variance-reduction factors.
    """
    tgt = target if target is not None else PrecisionTarget()
    with obs.span(
        "sim.replications.adaptive",
        horizon=horizon,
        estimator=tgt.estimator,
        max_replications=tgt.max_replications,
        n_jobs=n_jobs,
        cache=cache_dir is not None,
    ):
        return _adaptive(
            cluster,
            workload,
            horizon,
            tgt,
            warmup_fraction,
            seed,
            arrival_processes,
            collect_delay_samples,
            routing=routing,
            allow_unstable=allow_unstable,
            collect_job_log=collect_job_log,
            n_jobs=n_jobs,
            cache_dir=cache_dir,
            progress=progress,
        )


def _adaptive(
    cluster: ClusterModel,
    workload: Workload,
    horizon: float,
    target: PrecisionTarget,
    warmup_fraction: float,
    seed: int,
    arrival_processes: list[ArrivalProcess] | None,
    collect_delay_samples: bool,
    *,
    routing: list | None,
    allow_unstable: bool,
    collect_job_log: bool,
    n_jobs: int | None,
    cache_dir: str | SimulationCache | None,
    progress: Callable[[ReplicationTiming, int, int], None] | None,
) -> ReplicatedResult:
    t_start = time.perf_counter()
    metrics = target.metric_targets()
    antithetic = target.estimator == "antithetic"
    # The iid *unit* of the stopping rule: an antithetic pair costs two
    # simulated replications, every other estimator's unit costs one.
    members = 2 if antithetic else 1
    max_units = max(target.max_replications // members, 1)
    min_units = min(max(-(-target.min_replications // members), 2), max_units)

    if antithetic:
        pairs = RngStreams.replication_seed_pairs(seed, max_units)
        seeds: list[Any] = [member for pair in pairs for member in pair]
    else:
        seeds = list(RngStreams.replication_seeds(seed, max_units))

    plan = (
        _make_control_plan(cluster, workload, arrival_processes, routing)
        if target.estimator == "cv"
        else None
    )
    class_names = tuple(workload.names)

    runner = _ReplicationRunner(
        _sim_kwargs_common(
            cluster,
            workload,
            horizon,
            warmup_fraction,
            arrival_processes,
            collect_delay_samples,
            routing,
            allow_unstable,
            collect_job_log,
        ),
        seeds,
        cache=_resolve_cache(cache_dir),
        n_jobs=n_jobs,
        progress=progress,
    )

    rounds: list[dict[str, Any]] = []
    n_units_done = 0
    n_units_used: int | None = None
    with runner:
        while True:
            grow = min_units if not rounds else target.round_size
            n_units_done = min(n_units_done + grow, max_units)
            runner.ensure(range(n_units_done * members))
            # Smallest satisfying prefix: scanned from min_units every
            # round, so the chosen prefix cannot depend on how the
            # rounds happened to be batched.
            estimates = None
            for n in range(min_units, n_units_done + 1):
                candidate = _prefix_estimates(
                    runner.runs(n * members), metrics, target, plan, class_names
                )
                if _satisfied(candidate, metrics):
                    n_units_used, estimates = n, candidate
                    break
            if estimates is None:
                estimates = _prefix_estimates(
                    runner.runs(n_units_done * members), metrics, target, plan, class_names
                )
            rounds.append(
                {
                    "round": len(rounds),
                    "n_available": n_units_done * members,
                    "estimates": {m: e.as_dict() for m, e in estimates.items()},
                    "stop_at": None if n_units_used is None else n_units_used * members,
                }
            )
            obs.event(
                "sim.adaptive.round",
                round=rounds[-1]["round"],
                n_available=rounds[-1]["n_available"],
                stop_at=rounds[-1]["stop_at"],
                **{
                    f"rel_ci.{m}": estimates[m].rel_halfwidth
                    for m in metrics
                },
            )
            if n_units_used is not None or n_units_done >= max_units:
                break

    target_met = n_units_used is not None
    final_units = n_units_used if target_met else n_units_done
    n_used = final_units * members
    n_simulated = len(runner.results)
    final_runs = runner.runs(n_used)

    # Final-prefix estimates: the stopping estimator next to the naive
    # baseline, so the realized variance-reduction factor is on record.
    stopping = _prefix_estimates(final_runs, metrics, target, plan, class_names)
    naive = {
        m: naive_estimate(_metric_values(final_runs, m, class_names), target.level)
        for m in metrics
    }
    adaptive_meta = {
        "target": target.as_dict(),
        "rounds": rounds,
        "n_rounds": len(rounds),
        "n_simulated": n_simulated,
        "n_used": n_used,
        "reps_saved_vs_cap": target.max_replications - n_simulated,
        "target_met": target_met,
        "estimates": {m: e.as_dict() for m, e in stopping.items()},
        "naive_estimates": {m: e.as_dict() for m, e in naive.items()},
        "vr_factor": {
            m: variance_reduction_factor(naive[m], stopping[m]) for m in metrics
        },
    }
    obs.counter("sim.adaptive.rounds").add(len(rounds))
    obs.counter("sim.adaptive.reps_saved").add(max(target.max_replications - n_simulated, 0))
    meta = runner.meta(time.perf_counter() - t_start, adaptive=adaptive_meta)
    return _aggregate(final_runs, n_used, meta)


# ----------------------------------------------------------------------
# CRN-paired scenario comparison
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One side of a CRN-paired comparison."""

    cluster: ClusterModel
    workload: Workload
    label: str = ""
    arrival_processes: list[ArrivalProcess] | None = None
    routing: list | None = None
    allow_unstable: bool = False


@dataclass
class ScenarioComparison:
    """Paired vs independent difference intervals for two scenarios.

    ``metrics[name]`` holds the CRN ``paired`` interval (paired-t over
    per-replication differences), the ``independent`` Welch interval
    the pairing is measured against, the within-pair ``correlation``
    and the ``vr_factor`` — how many independent replications one CRN
    pair is worth, ``(hw_indep / hw_paired)^2``.
    """

    result_a: ReplicatedResult
    result_b: ReplicatedResult
    label_a: str
    label_b: str
    metrics: dict[str, dict[str, Any]]
    meta: dict[str, Any] = field(default_factory=dict)

    def paired(self, metric: str) -> VrEstimate:
        """The CRN paired-t difference interval for ``metric``."""
        return self.metrics[metric]["paired"]

    def independent(self, metric: str) -> VrEstimate:
        """The independent-streams Welch interval for ``metric``."""
        return self.metrics[metric]["independent"]

    def vr_factor(self, metric: str) -> float:
        """Replication-count multiplier the pairing is worth."""
        return self.metrics[metric]["vr_factor"]


def compare_scenarios(
    scenario_a: Scenario,
    scenario_b: Scenario,
    horizon: float,
    n_replications: int = 5,
    metrics: tuple[str, ...] = DEFAULT_METRICS,
    warmup_fraction: float = 0.1,
    seed: int = 0,
    level: float = 0.95,
    collect_delay_samples: bool = False,
    *,
    n_jobs: int | None = None,
    cache_dir: str | SimulationCache | None = None,
) -> ScenarioComparison:
    """Simulate two scenarios under CRN and compare them pairwise.

    Both scenarios replicate from the **same master seed**, so the
    :class:`~repro.simulation.rng.RngStreams` CRN contract aligns their
    arrival and service streams replication by replication; replication
    ``j`` of A and of B form one pair. For each requested metric the
    comparison reports the paired-t interval on the per-pair
    differences and the Welch interval that ignores the pairing — with
    positively correlated pairs (the CRN case) the paired interval is
    strictly tighter at the same replication count.
    """
    if n_replications < 2:
        raise ModelValidationError(
            f"a paired comparison needs at least 2 replications, got {n_replications}"
        )
    with obs.span(
        "sim.compare",
        n_replications=n_replications,
        horizon=horizon,
        n_jobs=n_jobs,
    ):
        results = []
        for sc in (scenario_a, scenario_b):
            results.append(
                simulate_replications(
                    sc.cluster,
                    sc.workload,
                    horizon,
                    n_replications,
                    warmup_fraction,
                    seed,
                    sc.arrival_processes,
                    collect_delay_samples,
                    routing=sc.routing,
                    allow_unstable=sc.allow_unstable,
                    n_jobs=n_jobs,
                    cache_dir=cache_dir,
                )
            )
        ra, rb = results
        table: dict[str, dict[str, Any]] = {}
        for metric in metrics:
            va = _metric_values(ra.replications, metric, ra.class_names)
            vb = _metric_values(rb.replications, metric, rb.class_names)
            paired = paired_difference(va, vb, level)
            indep = independent_difference(va, vb, level)
            if va.size >= 2 and np.std(va) > 0.0 and np.std(vb) > 0.0:
                correlation = float(np.corrcoef(va, vb)[0, 1])
            else:
                correlation = float("nan")
            table[metric] = {
                "paired": paired,
                "independent": indep,
                "correlation": correlation,
                "vr_factor": variance_reduction_factor(indep, paired),
            }
            obs.event(
                "sim.compare.metric",
                metric=metric,
                difference=paired.value,
                hw_paired=paired.halfwidth,
                hw_independent=indep.halfwidth,
                correlation=correlation,
            )
        return ScenarioComparison(
            result_a=ra,
            result_b=rb,
            label_a=scenario_a.label,
            label_b=scenario_b.label,
            metrics=table,
            meta={
                "seed": seed,
                "n_replications": n_replications,
                "horizon": horizon,
                "level": level,
                "crn": True,
            },
        )
